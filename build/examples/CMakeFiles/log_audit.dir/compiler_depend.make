# Empty compiler generated dependencies file for log_audit.
# This may be replaced when dependencies are built.
