file(REMOVE_RECURSE
  "CMakeFiles/log_audit.dir/log_audit.cpp.o"
  "CMakeFiles/log_audit.dir/log_audit.cpp.o.d"
  "log_audit"
  "log_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
