# Empty dependencies file for model_and_replay.
# This may be replaced when dependencies are built.
