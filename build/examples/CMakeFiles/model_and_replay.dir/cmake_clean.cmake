file(REMOVE_RECURSE
  "CMakeFiles/model_and_replay.dir/model_and_replay.cpp.o"
  "CMakeFiles/model_and_replay.dir/model_and_replay.cpp.o.d"
  "model_and_replay"
  "model_and_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_and_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
