file(REMOVE_RECURSE
  "libfullweb_core.a"
)
