# Empty compiler generated dependencies file for fullweb_core.
# This may be replaced when dependencies are built.
