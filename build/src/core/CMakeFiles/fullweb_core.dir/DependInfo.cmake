
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arrival_analysis.cpp" "src/core/CMakeFiles/fullweb_core.dir/arrival_analysis.cpp.o" "gcc" "src/core/CMakeFiles/fullweb_core.dir/arrival_analysis.cpp.o.d"
  "/root/repo/src/core/error_analysis.cpp" "src/core/CMakeFiles/fullweb_core.dir/error_analysis.cpp.o" "gcc" "src/core/CMakeFiles/fullweb_core.dir/error_analysis.cpp.o.d"
  "/root/repo/src/core/fullweb_model.cpp" "src/core/CMakeFiles/fullweb_core.dir/fullweb_model.cpp.o" "gcc" "src/core/CMakeFiles/fullweb_core.dir/fullweb_model.cpp.o.d"
  "/root/repo/src/core/interarrival.cpp" "src/core/CMakeFiles/fullweb_core.dir/interarrival.cpp.o" "gcc" "src/core/CMakeFiles/fullweb_core.dir/interarrival.cpp.o.d"
  "/root/repo/src/core/report_markdown.cpp" "src/core/CMakeFiles/fullweb_core.dir/report_markdown.cpp.o" "gcc" "src/core/CMakeFiles/fullweb_core.dir/report_markdown.cpp.o.d"
  "/root/repo/src/core/stationary.cpp" "src/core/CMakeFiles/fullweb_core.dir/stationary.cpp.o" "gcc" "src/core/CMakeFiles/fullweb_core.dir/stationary.cpp.o.d"
  "/root/repo/src/core/tail_analysis.cpp" "src/core/CMakeFiles/fullweb_core.dir/tail_analysis.cpp.o" "gcc" "src/core/CMakeFiles/fullweb_core.dir/tail_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lrd/CMakeFiles/fullweb_lrd.dir/DependInfo.cmake"
  "/root/repo/build/src/tail/CMakeFiles/fullweb_tail.dir/DependInfo.cmake"
  "/root/repo/build/src/poisson/CMakeFiles/fullweb_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/weblog/CMakeFiles/fullweb_weblog.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/fullweb_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fullweb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
