file(REMOVE_RECURSE
  "CMakeFiles/fullweb_core.dir/arrival_analysis.cpp.o"
  "CMakeFiles/fullweb_core.dir/arrival_analysis.cpp.o.d"
  "CMakeFiles/fullweb_core.dir/error_analysis.cpp.o"
  "CMakeFiles/fullweb_core.dir/error_analysis.cpp.o.d"
  "CMakeFiles/fullweb_core.dir/fullweb_model.cpp.o"
  "CMakeFiles/fullweb_core.dir/fullweb_model.cpp.o.d"
  "CMakeFiles/fullweb_core.dir/interarrival.cpp.o"
  "CMakeFiles/fullweb_core.dir/interarrival.cpp.o.d"
  "CMakeFiles/fullweb_core.dir/report_markdown.cpp.o"
  "CMakeFiles/fullweb_core.dir/report_markdown.cpp.o.d"
  "CMakeFiles/fullweb_core.dir/stationary.cpp.o"
  "CMakeFiles/fullweb_core.dir/stationary.cpp.o.d"
  "CMakeFiles/fullweb_core.dir/tail_analysis.cpp.o"
  "CMakeFiles/fullweb_core.dir/tail_analysis.cpp.o.d"
  "libfullweb_core.a"
  "libfullweb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
