
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tail/bootstrap.cpp" "src/tail/CMakeFiles/fullweb_tail.dir/bootstrap.cpp.o" "gcc" "src/tail/CMakeFiles/fullweb_tail.dir/bootstrap.cpp.o.d"
  "/root/repo/src/tail/curvature.cpp" "src/tail/CMakeFiles/fullweb_tail.dir/curvature.cpp.o" "gcc" "src/tail/CMakeFiles/fullweb_tail.dir/curvature.cpp.o.d"
  "/root/repo/src/tail/hill.cpp" "src/tail/CMakeFiles/fullweb_tail.dir/hill.cpp.o" "gcc" "src/tail/CMakeFiles/fullweb_tail.dir/hill.cpp.o.d"
  "/root/repo/src/tail/llcd.cpp" "src/tail/CMakeFiles/fullweb_tail.dir/llcd.cpp.o" "gcc" "src/tail/CMakeFiles/fullweb_tail.dir/llcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/fullweb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
