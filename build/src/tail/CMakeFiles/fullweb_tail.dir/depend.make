# Empty dependencies file for fullweb_tail.
# This may be replaced when dependencies are built.
