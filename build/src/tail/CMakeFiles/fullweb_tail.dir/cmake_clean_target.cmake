file(REMOVE_RECURSE
  "libfullweb_tail.a"
)
