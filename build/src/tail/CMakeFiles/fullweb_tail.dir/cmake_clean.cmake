file(REMOVE_RECURSE
  "CMakeFiles/fullweb_tail.dir/bootstrap.cpp.o"
  "CMakeFiles/fullweb_tail.dir/bootstrap.cpp.o.d"
  "CMakeFiles/fullweb_tail.dir/curvature.cpp.o"
  "CMakeFiles/fullweb_tail.dir/curvature.cpp.o.d"
  "CMakeFiles/fullweb_tail.dir/hill.cpp.o"
  "CMakeFiles/fullweb_tail.dir/hill.cpp.o.d"
  "CMakeFiles/fullweb_tail.dir/llcd.cpp.o"
  "CMakeFiles/fullweb_tail.dir/llcd.cpp.o.d"
  "libfullweb_tail.a"
  "libfullweb_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
