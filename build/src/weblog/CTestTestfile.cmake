# CMake generated Testfile for 
# Source directory: /root/repo/src/weblog
# Build directory: /root/repo/build/src/weblog
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
