file(REMOVE_RECURSE
  "CMakeFiles/fullweb_weblog.dir/clf.cpp.o"
  "CMakeFiles/fullweb_weblog.dir/clf.cpp.o.d"
  "CMakeFiles/fullweb_weblog.dir/dataset.cpp.o"
  "CMakeFiles/fullweb_weblog.dir/dataset.cpp.o.d"
  "CMakeFiles/fullweb_weblog.dir/merge.cpp.o"
  "CMakeFiles/fullweb_weblog.dir/merge.cpp.o.d"
  "CMakeFiles/fullweb_weblog.dir/sessionizer.cpp.o"
  "CMakeFiles/fullweb_weblog.dir/sessionizer.cpp.o.d"
  "libfullweb_weblog.a"
  "libfullweb_weblog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_weblog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
