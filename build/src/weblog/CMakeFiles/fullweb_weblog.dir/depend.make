# Empty dependencies file for fullweb_weblog.
# This may be replaced when dependencies are built.
