
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/weblog/clf.cpp" "src/weblog/CMakeFiles/fullweb_weblog.dir/clf.cpp.o" "gcc" "src/weblog/CMakeFiles/fullweb_weblog.dir/clf.cpp.o.d"
  "/root/repo/src/weblog/dataset.cpp" "src/weblog/CMakeFiles/fullweb_weblog.dir/dataset.cpp.o" "gcc" "src/weblog/CMakeFiles/fullweb_weblog.dir/dataset.cpp.o.d"
  "/root/repo/src/weblog/merge.cpp" "src/weblog/CMakeFiles/fullweb_weblog.dir/merge.cpp.o" "gcc" "src/weblog/CMakeFiles/fullweb_weblog.dir/merge.cpp.o.d"
  "/root/repo/src/weblog/sessionizer.cpp" "src/weblog/CMakeFiles/fullweb_weblog.dir/sessionizer.cpp.o" "gcc" "src/weblog/CMakeFiles/fullweb_weblog.dir/sessionizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/fullweb_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fullweb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
