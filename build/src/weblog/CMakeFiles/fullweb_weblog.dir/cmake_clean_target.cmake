file(REMOVE_RECURSE
  "libfullweb_weblog.a"
)
