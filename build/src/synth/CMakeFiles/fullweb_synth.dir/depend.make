# Empty dependencies file for fullweb_synth.
# This may be replaced when dependencies are built.
