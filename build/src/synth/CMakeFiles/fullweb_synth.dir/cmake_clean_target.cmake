file(REMOVE_RECURSE
  "libfullweb_synth.a"
)
