file(REMOVE_RECURSE
  "CMakeFiles/fullweb_synth.dir/fit.cpp.o"
  "CMakeFiles/fullweb_synth.dir/fit.cpp.o.d"
  "CMakeFiles/fullweb_synth.dir/generator.cpp.o"
  "CMakeFiles/fullweb_synth.dir/generator.cpp.o.d"
  "CMakeFiles/fullweb_synth.dir/profile.cpp.o"
  "CMakeFiles/fullweb_synth.dir/profile.cpp.o.d"
  "CMakeFiles/fullweb_synth.dir/profile_io.cpp.o"
  "CMakeFiles/fullweb_synth.dir/profile_io.cpp.o.d"
  "libfullweb_synth.a"
  "libfullweb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
