# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("stats")
subdirs("timeseries")
subdirs("lrd")
subdirs("tail")
subdirs("poisson")
subdirs("weblog")
subdirs("queueing")
subdirs("synth")
subdirs("core")
