# Empty compiler generated dependencies file for fullweb_stats.
# This may be replaced when dependencies are built.
