
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/acf.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/acf.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/acf.cpp.o.d"
  "/root/repo/src/stats/anderson_darling.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/anderson_darling.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/anderson_darling.cpp.o.d"
  "/root/repo/src/stats/binomial.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/binomial.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/binomial.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/fft.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/fft.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/fft.cpp.o.d"
  "/root/repo/src/stats/kpss.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/kpss.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/kpss.cpp.o.d"
  "/root/repo/src/stats/periodogram.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/periodogram.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/periodogram.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/fullweb_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/fullweb_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
