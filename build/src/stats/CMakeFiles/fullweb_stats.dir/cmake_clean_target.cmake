file(REMOVE_RECURSE
  "libfullweb_stats.a"
)
