file(REMOVE_RECURSE
  "CMakeFiles/fullweb_stats.dir/acf.cpp.o"
  "CMakeFiles/fullweb_stats.dir/acf.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/anderson_darling.cpp.o"
  "CMakeFiles/fullweb_stats.dir/anderson_darling.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/binomial.cpp.o"
  "CMakeFiles/fullweb_stats.dir/binomial.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/descriptive.cpp.o"
  "CMakeFiles/fullweb_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/distributions.cpp.o"
  "CMakeFiles/fullweb_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/fft.cpp.o"
  "CMakeFiles/fullweb_stats.dir/fft.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/kpss.cpp.o"
  "CMakeFiles/fullweb_stats.dir/kpss.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/periodogram.cpp.o"
  "CMakeFiles/fullweb_stats.dir/periodogram.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/regression.cpp.o"
  "CMakeFiles/fullweb_stats.dir/regression.cpp.o.d"
  "CMakeFiles/fullweb_stats.dir/special.cpp.o"
  "CMakeFiles/fullweb_stats.dir/special.cpp.o.d"
  "libfullweb_stats.a"
  "libfullweb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
