file(REMOVE_RECURSE
  "CMakeFiles/fullweb_timeseries.dir/detrend.cpp.o"
  "CMakeFiles/fullweb_timeseries.dir/detrend.cpp.o.d"
  "CMakeFiles/fullweb_timeseries.dir/fgn.cpp.o"
  "CMakeFiles/fullweb_timeseries.dir/fgn.cpp.o.d"
  "CMakeFiles/fullweb_timeseries.dir/seasonal.cpp.o"
  "CMakeFiles/fullweb_timeseries.dir/seasonal.cpp.o.d"
  "CMakeFiles/fullweb_timeseries.dir/series.cpp.o"
  "CMakeFiles/fullweb_timeseries.dir/series.cpp.o.d"
  "CMakeFiles/fullweb_timeseries.dir/wavelet.cpp.o"
  "CMakeFiles/fullweb_timeseries.dir/wavelet.cpp.o.d"
  "libfullweb_timeseries.a"
  "libfullweb_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
