file(REMOVE_RECURSE
  "libfullweb_timeseries.a"
)
