
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/detrend.cpp" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/detrend.cpp.o" "gcc" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/detrend.cpp.o.d"
  "/root/repo/src/timeseries/fgn.cpp" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/fgn.cpp.o" "gcc" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/fgn.cpp.o.d"
  "/root/repo/src/timeseries/seasonal.cpp" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/seasonal.cpp.o" "gcc" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/seasonal.cpp.o.d"
  "/root/repo/src/timeseries/series.cpp" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/series.cpp.o" "gcc" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/series.cpp.o.d"
  "/root/repo/src/timeseries/wavelet.cpp" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/wavelet.cpp.o" "gcc" "src/timeseries/CMakeFiles/fullweb_timeseries.dir/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/fullweb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
