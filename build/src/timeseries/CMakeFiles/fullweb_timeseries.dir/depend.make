# Empty dependencies file for fullweb_timeseries.
# This may be replaced when dependencies are built.
