# Empty dependencies file for fullweb_queueing.
# This may be replaced when dependencies are built.
