
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/admission.cpp" "src/queueing/CMakeFiles/fullweb_queueing.dir/admission.cpp.o" "gcc" "src/queueing/CMakeFiles/fullweb_queueing.dir/admission.cpp.o.d"
  "/root/repo/src/queueing/fifo_queue.cpp" "src/queueing/CMakeFiles/fullweb_queueing.dir/fifo_queue.cpp.o" "gcc" "src/queueing/CMakeFiles/fullweb_queueing.dir/fifo_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/weblog/CMakeFiles/fullweb_weblog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fullweb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/fullweb_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
