file(REMOVE_RECURSE
  "libfullweb_queueing.a"
)
