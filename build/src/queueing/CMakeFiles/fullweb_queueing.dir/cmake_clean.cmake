file(REMOVE_RECURSE
  "CMakeFiles/fullweb_queueing.dir/admission.cpp.o"
  "CMakeFiles/fullweb_queueing.dir/admission.cpp.o.d"
  "CMakeFiles/fullweb_queueing.dir/fifo_queue.cpp.o"
  "CMakeFiles/fullweb_queueing.dir/fifo_queue.cpp.o.d"
  "libfullweb_queueing.a"
  "libfullweb_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
