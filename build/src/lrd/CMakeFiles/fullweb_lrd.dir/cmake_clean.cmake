file(REMOVE_RECURSE
  "CMakeFiles/fullweb_lrd.dir/abry_veitch.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/abry_veitch.cpp.o.d"
  "CMakeFiles/fullweb_lrd.dir/dfa.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/dfa.cpp.o.d"
  "CMakeFiles/fullweb_lrd.dir/estimator_suite.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/estimator_suite.cpp.o.d"
  "CMakeFiles/fullweb_lrd.dir/hurst.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/hurst.cpp.o.d"
  "CMakeFiles/fullweb_lrd.dir/periodogram_hurst.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/periodogram_hurst.cpp.o.d"
  "CMakeFiles/fullweb_lrd.dir/rs.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/rs.cpp.o.d"
  "CMakeFiles/fullweb_lrd.dir/variance_time.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/variance_time.cpp.o.d"
  "CMakeFiles/fullweb_lrd.dir/whittle.cpp.o"
  "CMakeFiles/fullweb_lrd.dir/whittle.cpp.o.d"
  "libfullweb_lrd.a"
  "libfullweb_lrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_lrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
