# Empty dependencies file for fullweb_lrd.
# This may be replaced when dependencies are built.
