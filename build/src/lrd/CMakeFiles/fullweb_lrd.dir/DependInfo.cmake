
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lrd/abry_veitch.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/abry_veitch.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/abry_veitch.cpp.o.d"
  "/root/repo/src/lrd/dfa.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/dfa.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/dfa.cpp.o.d"
  "/root/repo/src/lrd/estimator_suite.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/estimator_suite.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/estimator_suite.cpp.o.d"
  "/root/repo/src/lrd/hurst.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/hurst.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/hurst.cpp.o.d"
  "/root/repo/src/lrd/periodogram_hurst.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/periodogram_hurst.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/periodogram_hurst.cpp.o.d"
  "/root/repo/src/lrd/rs.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/rs.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/rs.cpp.o.d"
  "/root/repo/src/lrd/variance_time.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/variance_time.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/variance_time.cpp.o.d"
  "/root/repo/src/lrd/whittle.cpp" "src/lrd/CMakeFiles/fullweb_lrd.dir/whittle.cpp.o" "gcc" "src/lrd/CMakeFiles/fullweb_lrd.dir/whittle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/fullweb_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fullweb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
