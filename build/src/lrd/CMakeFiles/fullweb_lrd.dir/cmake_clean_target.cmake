file(REMOVE_RECURSE
  "libfullweb_lrd.a"
)
