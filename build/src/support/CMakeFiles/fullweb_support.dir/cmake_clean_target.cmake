file(REMOVE_RECURSE
  "libfullweb_support.a"
)
