file(REMOVE_RECURSE
  "CMakeFiles/fullweb_support.dir/ascii_plot.cpp.o"
  "CMakeFiles/fullweb_support.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/fullweb_support.dir/cli.cpp.o"
  "CMakeFiles/fullweb_support.dir/cli.cpp.o.d"
  "CMakeFiles/fullweb_support.dir/strings.cpp.o"
  "CMakeFiles/fullweb_support.dir/strings.cpp.o.d"
  "CMakeFiles/fullweb_support.dir/table.cpp.o"
  "CMakeFiles/fullweb_support.dir/table.cpp.o.d"
  "libfullweb_support.a"
  "libfullweb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
