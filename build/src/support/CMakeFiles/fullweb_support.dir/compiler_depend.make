# Empty compiler generated dependencies file for fullweb_support.
# This may be replaced when dependencies are built.
