# Empty dependencies file for fullweb_poisson.
# This may be replaced when dependencies are built.
