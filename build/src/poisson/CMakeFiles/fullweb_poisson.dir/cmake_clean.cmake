file(REMOVE_RECURSE
  "CMakeFiles/fullweb_poisson.dir/poisson_test.cpp.o"
  "CMakeFiles/fullweb_poisson.dir/poisson_test.cpp.o.d"
  "libfullweb_poisson.a"
  "libfullweb_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
