file(REMOVE_RECURSE
  "libfullweb_poisson.a"
)
