# Empty dependencies file for test_tail_llcd.
# This may be replaced when dependencies are built.
