file(REMOVE_RECURSE
  "CMakeFiles/test_tail_llcd.dir/test_tail_llcd.cpp.o"
  "CMakeFiles/test_tail_llcd.dir/test_tail_llcd.cpp.o.d"
  "test_tail_llcd"
  "test_tail_llcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail_llcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
