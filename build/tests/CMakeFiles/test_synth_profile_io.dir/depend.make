# Empty dependencies file for test_synth_profile_io.
# This may be replaced when dependencies are built.
