file(REMOVE_RECURSE
  "CMakeFiles/test_synth_profile_io.dir/test_synth_profile_io.cpp.o"
  "CMakeFiles/test_synth_profile_io.dir/test_synth_profile_io.cpp.o.d"
  "test_synth_profile_io"
  "test_synth_profile_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_profile_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
