file(REMOVE_RECURSE
  "CMakeFiles/test_stats_acf.dir/test_stats_acf.cpp.o"
  "CMakeFiles/test_stats_acf.dir/test_stats_acf.cpp.o.d"
  "test_stats_acf"
  "test_stats_acf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_acf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
