# Empty dependencies file for test_stats_acf.
# This may be replaced when dependencies are built.
