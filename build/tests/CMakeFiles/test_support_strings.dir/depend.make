# Empty dependencies file for test_support_strings.
# This may be replaced when dependencies are built.
