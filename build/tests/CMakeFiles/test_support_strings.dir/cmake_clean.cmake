file(REMOVE_RECURSE
  "CMakeFiles/test_support_strings.dir/test_support_strings.cpp.o"
  "CMakeFiles/test_support_strings.dir/test_support_strings.cpp.o.d"
  "test_support_strings"
  "test_support_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
