# Empty dependencies file for test_weblog_sessionizer.
# This may be replaced when dependencies are built.
