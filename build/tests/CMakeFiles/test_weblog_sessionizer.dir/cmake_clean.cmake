file(REMOVE_RECURSE
  "CMakeFiles/test_weblog_sessionizer.dir/test_weblog_sessionizer.cpp.o"
  "CMakeFiles/test_weblog_sessionizer.dir/test_weblog_sessionizer.cpp.o.d"
  "test_weblog_sessionizer"
  "test_weblog_sessionizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weblog_sessionizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
