# Empty dependencies file for test_core_error_analysis.
# This may be replaced when dependencies are built.
