file(REMOVE_RECURSE
  "CMakeFiles/test_core_error_analysis.dir/test_core_error_analysis.cpp.o"
  "CMakeFiles/test_core_error_analysis.dir/test_core_error_analysis.cpp.o.d"
  "test_core_error_analysis"
  "test_core_error_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_error_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
