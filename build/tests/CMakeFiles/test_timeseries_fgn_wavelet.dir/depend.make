# Empty dependencies file for test_timeseries_fgn_wavelet.
# This may be replaced when dependencies are built.
