file(REMOVE_RECURSE
  "CMakeFiles/test_timeseries_fgn_wavelet.dir/test_timeseries_fgn_wavelet.cpp.o"
  "CMakeFiles/test_timeseries_fgn_wavelet.dir/test_timeseries_fgn_wavelet.cpp.o.d"
  "test_timeseries_fgn_wavelet"
  "test_timeseries_fgn_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeseries_fgn_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
