file(REMOVE_RECURSE
  "CMakeFiles/test_stats_distributions.dir/test_stats_distributions.cpp.o"
  "CMakeFiles/test_stats_distributions.dir/test_stats_distributions.cpp.o.d"
  "test_stats_distributions"
  "test_stats_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
