# Empty dependencies file for test_tail_curvature.
# This may be replaced when dependencies are built.
