file(REMOVE_RECURSE
  "CMakeFiles/test_tail_curvature.dir/test_tail_curvature.cpp.o"
  "CMakeFiles/test_tail_curvature.dir/test_tail_curvature.cpp.o.d"
  "test_tail_curvature"
  "test_tail_curvature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail_curvature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
