file(REMOVE_RECURSE
  "CMakeFiles/test_weblog_edge.dir/test_weblog_edge.cpp.o"
  "CMakeFiles/test_weblog_edge.dir/test_weblog_edge.cpp.o.d"
  "test_weblog_edge"
  "test_weblog_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weblog_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
