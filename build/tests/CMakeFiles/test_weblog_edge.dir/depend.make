# Empty dependencies file for test_weblog_edge.
# This may be replaced when dependencies are built.
