# Empty dependencies file for test_support_result.
# This may be replaced when dependencies are built.
