file(REMOVE_RECURSE
  "CMakeFiles/test_support_result.dir/test_support_result.cpp.o"
  "CMakeFiles/test_support_result.dir/test_support_result.cpp.o.d"
  "test_support_result"
  "test_support_result.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
