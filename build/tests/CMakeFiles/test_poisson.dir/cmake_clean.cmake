file(REMOVE_RECURSE
  "CMakeFiles/test_poisson.dir/test_poisson.cpp.o"
  "CMakeFiles/test_poisson.dir/test_poisson.cpp.o.d"
  "test_poisson"
  "test_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
