# Empty compiler generated dependencies file for test_poisson.
# This may be replaced when dependencies are built.
