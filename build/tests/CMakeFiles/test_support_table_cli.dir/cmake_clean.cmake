file(REMOVE_RECURSE
  "CMakeFiles/test_support_table_cli.dir/test_support_table_cli.cpp.o"
  "CMakeFiles/test_support_table_cli.dir/test_support_table_cli.cpp.o.d"
  "test_support_table_cli"
  "test_support_table_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_table_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
