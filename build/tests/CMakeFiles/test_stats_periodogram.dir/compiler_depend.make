# Empty compiler generated dependencies file for test_stats_periodogram.
# This may be replaced when dependencies are built.
