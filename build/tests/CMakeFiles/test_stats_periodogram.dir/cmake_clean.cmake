file(REMOVE_RECURSE
  "CMakeFiles/test_stats_periodogram.dir/test_stats_periodogram.cpp.o"
  "CMakeFiles/test_stats_periodogram.dir/test_stats_periodogram.cpp.o.d"
  "test_stats_periodogram"
  "test_stats_periodogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_periodogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
