# Empty compiler generated dependencies file for test_lrd_dfa.
# This may be replaced when dependencies are built.
