file(REMOVE_RECURSE
  "CMakeFiles/test_lrd_dfa.dir/test_lrd_dfa.cpp.o"
  "CMakeFiles/test_lrd_dfa.dir/test_lrd_dfa.cpp.o.d"
  "test_lrd_dfa"
  "test_lrd_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrd_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
