file(REMOVE_RECURSE
  "CMakeFiles/test_weblog_merge.dir/test_weblog_merge.cpp.o"
  "CMakeFiles/test_weblog_merge.dir/test_weblog_merge.cpp.o.d"
  "test_weblog_merge"
  "test_weblog_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weblog_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
