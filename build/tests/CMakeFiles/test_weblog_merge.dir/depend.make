# Empty dependencies file for test_weblog_merge.
# This may be replaced when dependencies are built.
