# Empty dependencies file for test_support_ascii_plot.
# This may be replaced when dependencies are built.
