# Empty compiler generated dependencies file for test_integration_endtoend.
# This may be replaced when dependencies are built.
