file(REMOVE_RECURSE
  "CMakeFiles/test_integration_endtoend.dir/test_integration_endtoend.cpp.o"
  "CMakeFiles/test_integration_endtoend.dir/test_integration_endtoend.cpp.o.d"
  "test_integration_endtoend"
  "test_integration_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
