file(REMOVE_RECURSE
  "CMakeFiles/test_stats_sampling_ks.dir/test_stats_sampling_ks.cpp.o"
  "CMakeFiles/test_stats_sampling_ks.dir/test_stats_sampling_ks.cpp.o.d"
  "test_stats_sampling_ks"
  "test_stats_sampling_ks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_sampling_ks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
