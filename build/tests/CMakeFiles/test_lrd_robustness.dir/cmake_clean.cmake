file(REMOVE_RECURSE
  "CMakeFiles/test_lrd_robustness.dir/test_lrd_robustness.cpp.o"
  "CMakeFiles/test_lrd_robustness.dir/test_lrd_robustness.cpp.o.d"
  "test_lrd_robustness"
  "test_lrd_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrd_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
