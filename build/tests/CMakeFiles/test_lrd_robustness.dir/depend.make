# Empty dependencies file for test_lrd_robustness.
# This may be replaced when dependencies are built.
