file(REMOVE_RECURSE
  "CMakeFiles/test_core_interarrival.dir/test_core_interarrival.cpp.o"
  "CMakeFiles/test_core_interarrival.dir/test_core_interarrival.cpp.o.d"
  "test_core_interarrival"
  "test_core_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
