# Empty compiler generated dependencies file for test_core_interarrival.
# This may be replaced when dependencies are built.
