# Empty compiler generated dependencies file for test_core_stationary.
# This may be replaced when dependencies are built.
