file(REMOVE_RECURSE
  "CMakeFiles/test_core_stationary.dir/test_core_stationary.cpp.o"
  "CMakeFiles/test_core_stationary.dir/test_core_stationary.cpp.o.d"
  "test_core_stationary"
  "test_core_stationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_stationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
