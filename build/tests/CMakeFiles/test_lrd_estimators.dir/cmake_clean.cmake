file(REMOVE_RECURSE
  "CMakeFiles/test_lrd_estimators.dir/test_lrd_estimators.cpp.o"
  "CMakeFiles/test_lrd_estimators.dir/test_lrd_estimators.cpp.o.d"
  "test_lrd_estimators"
  "test_lrd_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrd_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
