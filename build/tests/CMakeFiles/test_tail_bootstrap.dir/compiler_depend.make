# Empty compiler generated dependencies file for test_tail_bootstrap.
# This may be replaced when dependencies are built.
