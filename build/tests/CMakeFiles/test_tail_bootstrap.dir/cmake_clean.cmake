file(REMOVE_RECURSE
  "CMakeFiles/test_tail_bootstrap.dir/test_tail_bootstrap.cpp.o"
  "CMakeFiles/test_tail_bootstrap.dir/test_tail_bootstrap.cpp.o.d"
  "test_tail_bootstrap"
  "test_tail_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
