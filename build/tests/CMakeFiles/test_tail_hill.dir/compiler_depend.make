# Empty compiler generated dependencies file for test_tail_hill.
# This may be replaced when dependencies are built.
