file(REMOVE_RECURSE
  "CMakeFiles/test_tail_hill.dir/test_tail_hill.cpp.o"
  "CMakeFiles/test_tail_hill.dir/test_tail_hill.cpp.o.d"
  "test_tail_hill"
  "test_tail_hill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail_hill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
