# Empty dependencies file for test_lrd_spectral.
# This may be replaced when dependencies are built.
