file(REMOVE_RECURSE
  "CMakeFiles/test_lrd_spectral.dir/test_lrd_spectral.cpp.o"
  "CMakeFiles/test_lrd_spectral.dir/test_lrd_spectral.cpp.o.d"
  "test_lrd_spectral"
  "test_lrd_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrd_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
