# Empty compiler generated dependencies file for test_weblog_dataset.
# This may be replaced when dependencies are built.
