file(REMOVE_RECURSE
  "CMakeFiles/test_weblog_dataset.dir/test_weblog_dataset.cpp.o"
  "CMakeFiles/test_weblog_dataset.dir/test_weblog_dataset.cpp.o.d"
  "test_weblog_dataset"
  "test_weblog_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weblog_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
