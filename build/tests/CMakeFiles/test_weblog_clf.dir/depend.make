# Empty dependencies file for test_weblog_clf.
# This may be replaced when dependencies are built.
