file(REMOVE_RECURSE
  "CMakeFiles/test_weblog_clf.dir/test_weblog_clf.cpp.o"
  "CMakeFiles/test_weblog_clf.dir/test_weblog_clf.cpp.o.d"
  "test_weblog_clf"
  "test_weblog_clf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weblog_clf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
