
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stats_tests.cpp" "tests/CMakeFiles/test_stats_tests.dir/test_stats_tests.cpp.o" "gcc" "tests/CMakeFiles/test_stats_tests.dir/test_stats_tests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fullweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fullweb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/fullweb_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/weblog/CMakeFiles/fullweb_weblog.dir/DependInfo.cmake"
  "/root/repo/build/src/poisson/CMakeFiles/fullweb_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/tail/CMakeFiles/fullweb_tail.dir/DependInfo.cmake"
  "/root/repo/build/src/lrd/CMakeFiles/fullweb_lrd.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/fullweb_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fullweb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fullweb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
