# Empty dependencies file for test_stats_tests.
# This may be replaced when dependencies are built.
