file(REMOVE_RECURSE
  "CMakeFiles/test_stats_tests.dir/test_stats_tests.cpp.o"
  "CMakeFiles/test_stats_tests.dir/test_stats_tests.cpp.o.d"
  "test_stats_tests"
  "test_stats_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
