# Empty compiler generated dependencies file for test_synth_generator.
# This may be replaced when dependencies are built.
