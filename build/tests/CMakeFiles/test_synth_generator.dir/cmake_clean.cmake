file(REMOVE_RECURSE
  "CMakeFiles/test_synth_generator.dir/test_synth_generator.cpp.o"
  "CMakeFiles/test_synth_generator.dir/test_synth_generator.cpp.o.d"
  "test_synth_generator"
  "test_synth_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
