# Empty dependencies file for test_synth_fit.
# This may be replaced when dependencies are built.
