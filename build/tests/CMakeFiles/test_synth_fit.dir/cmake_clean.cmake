file(REMOVE_RECURSE
  "CMakeFiles/test_synth_fit.dir/test_synth_fit.cpp.o"
  "CMakeFiles/test_synth_fit.dir/test_synth_fit.cpp.o.d"
  "test_synth_fit"
  "test_synth_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
