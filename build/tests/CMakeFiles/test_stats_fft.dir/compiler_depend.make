# Empty compiler generated dependencies file for test_stats_fft.
# This may be replaced when dependencies are built.
