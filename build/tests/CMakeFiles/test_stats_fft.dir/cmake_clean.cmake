file(REMOVE_RECURSE
  "CMakeFiles/test_stats_fft.dir/test_stats_fft.cpp.o"
  "CMakeFiles/test_stats_fft.dir/test_stats_fft.cpp.o.d"
  "test_stats_fft"
  "test_stats_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
