# Empty compiler generated dependencies file for bench_sec512_poisson_sessions.
# This may be replaced when dependencies are built.
