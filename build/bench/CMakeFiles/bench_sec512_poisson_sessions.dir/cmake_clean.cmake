file(REMOVE_RECURSE
  "CMakeFiles/bench_sec512_poisson_sessions.dir/bench_sec512_poisson_sessions.cpp.o"
  "CMakeFiles/bench_sec512_poisson_sessions.dir/bench_sec512_poisson_sessions.cpp.o.d"
  "bench_sec512_poisson_sessions"
  "bench_sec512_poisson_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec512_poisson_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
