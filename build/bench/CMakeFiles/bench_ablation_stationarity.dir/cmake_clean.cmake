file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stationarity.dir/bench_ablation_stationarity.cpp.o"
  "CMakeFiles/bench_ablation_stationarity.dir/bench_ablation_stationarity.cpp.o.d"
  "bench_ablation_stationarity"
  "bench_ablation_stationarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stationarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
