# Empty dependencies file for bench_ablation_stationarity.
# This may be replaced when dependencies are built.
