# Empty dependencies file for fullweb_bench_common.
# This may be replaced when dependencies are built.
