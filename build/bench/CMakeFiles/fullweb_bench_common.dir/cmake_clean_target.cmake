file(REMOVE_RECURSE
  "libfullweb_bench_common.a"
)
