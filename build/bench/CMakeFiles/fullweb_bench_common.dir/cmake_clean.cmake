file(REMOVE_RECURSE
  "CMakeFiles/fullweb_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/fullweb_bench_common.dir/bench_common.cpp.o.d"
  "libfullweb_bench_common.a"
  "libfullweb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullweb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
