# Empty compiler generated dependencies file for bench_curvature_tests.
# This may be replaced when dependencies are built.
