file(REMOVE_RECURSE
  "CMakeFiles/bench_curvature_tests.dir/bench_curvature_tests.cpp.o"
  "CMakeFiles/bench_curvature_tests.dir/bench_curvature_tests.cpp.o.d"
  "bench_curvature_tests"
  "bench_curvature_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_curvature_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
