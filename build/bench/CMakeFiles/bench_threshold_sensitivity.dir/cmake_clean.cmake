file(REMOVE_RECURSE
  "CMakeFiles/bench_threshold_sensitivity.dir/bench_threshold_sensitivity.cpp.o"
  "CMakeFiles/bench_threshold_sensitivity.dir/bench_threshold_sensitivity.cpp.o.d"
  "bench_threshold_sensitivity"
  "bench_threshold_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threshold_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
