# Empty compiler generated dependencies file for bench_table3_requests_per_session.
# This may be replaced when dependencies are built.
