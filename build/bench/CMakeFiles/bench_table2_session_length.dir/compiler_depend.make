# Empty compiler generated dependencies file for bench_table2_session_length.
# This may be replaced when dependencies are built.
