file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_session_length.dir/bench_table2_session_length.cpp.o"
  "CMakeFiles/bench_table2_session_length.dir/bench_table2_session_length.cpp.o.d"
  "bench_table2_session_length"
  "bench_table2_session_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_session_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
