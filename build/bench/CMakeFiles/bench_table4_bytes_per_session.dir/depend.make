# Empty dependencies file for bench_table4_bytes_per_session.
# This may be replaced when dependencies are built.
