file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_bytes_per_session.dir/bench_table4_bytes_per_session.cpp.o"
  "CMakeFiles/bench_table4_bytes_per_session.dir/bench_table4_bytes_per_session.cpp.o.d"
  "bench_table4_bytes_per_session"
  "bench_table4_bytes_per_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_bytes_per_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
