# Empty compiler generated dependencies file for bench_fig4_6_hurst_requests.
# This may be replaced when dependencies are built.
