file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_6_hurst_requests.dir/bench_fig4_6_hurst_requests.cpp.o"
  "CMakeFiles/bench_fig4_6_hurst_requests.dir/bench_fig4_6_hurst_requests.cpp.o.d"
  "bench_fig4_6_hurst_requests"
  "bench_fig4_6_hurst_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_6_hurst_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
