# Empty compiler generated dependencies file for bench_sec42_poisson_requests.
# This may be replaced when dependencies are built.
