file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_poisson_requests.dir/bench_sec42_poisson_requests.cpp.o"
  "CMakeFiles/bench_sec42_poisson_requests.dir/bench_sec42_poisson_requests.cpp.o.d"
  "bench_sec42_poisson_requests"
  "bench_sec42_poisson_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_poisson_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
