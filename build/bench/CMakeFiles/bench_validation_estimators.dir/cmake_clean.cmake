file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_estimators.dir/bench_validation_estimators.cpp.o"
  "CMakeFiles/bench_validation_estimators.dir/bench_validation_estimators.cpp.o.d"
  "bench_validation_estimators"
  "bench_validation_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
