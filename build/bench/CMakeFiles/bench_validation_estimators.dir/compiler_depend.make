# Empty compiler generated dependencies file for bench_validation_estimators.
# This may be replaced when dependencies are built.
