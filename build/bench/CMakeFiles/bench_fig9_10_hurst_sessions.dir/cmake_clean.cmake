file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10_hurst_sessions.dir/bench_fig9_10_hurst_sessions.cpp.o"
  "CMakeFiles/bench_fig9_10_hurst_sessions.dir/bench_fig9_10_hurst_sessions.cpp.o.d"
  "bench_fig9_10_hurst_sessions"
  "bench_fig9_10_hurst_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10_hurst_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
