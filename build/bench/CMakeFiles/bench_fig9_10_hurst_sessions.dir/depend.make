# Empty dependencies file for bench_fig9_10_hurst_sessions.
# This may be replaced when dependencies are built.
