file(REMOVE_RECURSE
  "CMakeFiles/bench_model_fit_roundtrip.dir/bench_model_fit_roundtrip.cpp.o"
  "CMakeFiles/bench_model_fit_roundtrip.dir/bench_model_fit_roundtrip.cpp.o.d"
  "bench_model_fit_roundtrip"
  "bench_model_fit_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_fit_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
