# Empty dependencies file for bench_model_fit_roundtrip.
# This may be replaced when dependencies are built.
