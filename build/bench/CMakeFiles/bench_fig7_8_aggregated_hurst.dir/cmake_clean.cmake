file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_aggregated_hurst.dir/bench_fig7_8_aggregated_hurst.cpp.o"
  "CMakeFiles/bench_fig7_8_aggregated_hurst.dir/bench_fig7_8_aggregated_hurst.cpp.o.d"
  "bench_fig7_8_aggregated_hurst"
  "bench_fig7_8_aggregated_hurst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_aggregated_hurst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
