# Empty dependencies file for bench_fig7_8_aggregated_hurst.
# This may be replaced when dependencies are built.
