file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_5_series_acf.dir/bench_fig2_3_5_series_acf.cpp.o"
  "CMakeFiles/bench_fig2_3_5_series_acf.dir/bench_fig2_3_5_series_acf.cpp.o.d"
  "bench_fig2_3_5_series_acf"
  "bench_fig2_3_5_series_acf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_5_series_acf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
