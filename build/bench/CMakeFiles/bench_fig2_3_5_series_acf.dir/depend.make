# Empty dependencies file for bench_fig2_3_5_series_acf.
# This may be replaced when dependencies are built.
