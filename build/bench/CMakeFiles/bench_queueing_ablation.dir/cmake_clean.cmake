file(REMOVE_RECURSE
  "CMakeFiles/bench_queueing_ablation.dir/bench_queueing_ablation.cpp.o"
  "CMakeFiles/bench_queueing_ablation.dir/bench_queueing_ablation.cpp.o.d"
  "bench_queueing_ablation"
  "bench_queueing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queueing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
