# Empty dependencies file for bench_queueing_ablation.
# This may be replaced when dependencies are built.
