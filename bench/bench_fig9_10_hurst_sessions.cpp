// Figures 9 and 10 — Hurst exponent of the sessions-initiated-per-second
// series for all four servers (sorted by weekly session count), raw (Fig 9)
// vs stationary (Fig 10).
//
// Shape goals from §5.1.1: (1) raw values mostly exceed stationary values;
// (2) estimates exceed 0.5 => session arrivals are LRD; (3) the session
// series' LRD is *less* influenced by workload intensity than the request
// series'; (4) NASA-Pub2's session series is already stationary.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/arrival_analysis.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Figures 9 & 10 — Hurst exponent, sessions initiated/s",
                      "paper §5.1.1, Figures 9 and 10", ctx);

  support::Table table({"server", "series", "KPSS", "Variance", "R/S",
                        "Periodogram", "Whittle", "Abry-Veitch", "mean H"});
  core::ArrivalAnalysisOptions opts;
  opts.run_aggregation_sweep = false;
  // The paper's session-level flow is conditional: only the series that
  // fail KPSS get trend/periodicity removal (§5.1.1 — NASA-Pub2's session
  // series is stationary and is analyzed as-is).
  opts.stationary.only_if_nonstationary = true;

  struct Row {
    std::string name;
    double raw_mean;
    double st_mean;
    bool was_stationary;
  };
  std::vector<Row> rows;

  for (const auto& profile : synth::ServerProfile::all_four()) {
    const auto ds = bench::generate_server(profile, ctx);
    const auto analysis = core::analyze_arrivals(ds.sessions_per_second(), opts);
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   analysis.error().message.c_str());
      continue;
    }
    auto add = [&](const char* label, const lrd::HurstSuiteResult& suite,
                   const std::string& kpss) {
      std::vector<std::string> row = {profile.name, label, kpss};
      for (auto method :
           {lrd::HurstMethod::kVarianceTime, lrd::HurstMethod::kRoverS,
            lrd::HurstMethod::kPeriodogram, lrd::HurstMethod::kWhittle,
            lrd::HurstMethod::kAbryVeitch}) {
        const auto* est = suite.find(method);
        row.push_back(est != nullptr ? bench::fmt_h(est->h) : "-");
      }
      row.push_back(bench::fmt_h(suite.mean_h()));
      table.add_row(std::move(row));
    };
    const auto& st = analysis.value().stationarity;
    add("raw (Fig 9)", analysis.value().hurst_raw,
        st.was_stationary ? "stationary" : "non-stat.");
    add("stationary (Fig 10)", analysis.value().hurst_stationary, "-");
    table.add_separator();
    rows.push_back({profile.name, analysis.value().hurst_raw.mean_h(),
                    analysis.value().hurst_stationary.mean_h(),
                    st.was_stationary});
  }
  table.print(std::cout);

  std::printf("\nshape checks (paper §5.1.1):\n");
  std::size_t raw_higher = 0;
  for (const auto& r : rows)
    if (r.raw_mean >= r.st_mean - 1e-9) ++raw_higher;
  std::printf("  (1) raw >= stationary mean H for %zu/%zu servers\n", raw_higher,
              rows.size());
  bool all_above_half = true;
  for (const auto& r : rows) all_above_half = all_above_half && r.st_mean > 0.5;
  std::printf("  (2) all mean stationary H above 0.5 (session LRD): %s\n",
              all_above_half ? "YES" : "NO");
  const double spread_sessions =
      rows.empty() ? 0.0 : rows.front().st_mean - rows.back().st_mean;
  std::printf("  (3) H spread across servers: %s (paper: smaller than for the\n"
              "      request series — LRD less influenced by intensity)\n",
              bench::fmt(spread_sessions, 3).c_str());
  std::printf("  (4) NASA-Pub2 session series raw KPSS verdict: %s (paper: "
              "stationary)\n",
              !rows.empty() && rows.back().was_stationary ? "stationary"
                                                          : "non-stationary");
  return all_above_half ? 0 : 1;
}
