// bench_fullscale: the paper-scale end-to-end headline.
//
// Synthesizes the WVU profile's full observed week (15.79M requests at
// --scale 1.0, Table 1's largest server), renders it once as CLF text and
// once as a FWC1 columnar file, and then times the pipeline stages a real
// reproduction run pays:
//
//   1. cold CLF ingest        — from_clf_stream, parse + intern + sessionize
//   2. fast vs reference parse — the SIMD/SWAR parser against the scalar
//                                reference over the identical bytes; the
//                                ratio is pure parser work reduction, so it
//                                holds on any host and carries the
//                                --min-speedup floor (see bench/CMakeLists)
//   3. columnar re-ingest     — from_columnar of the same traffic
//   4. full model fit         — fit_fullweb_model, every Figure 1 branch
//   5. validation             — the CLF and columnar datasets must be
//                                bit-identical tables and the fitted model
//                                must match the ingested volumes; any
//                                mismatch exits nonzero
//
// end_to_end is the sum of the stages a cold reproduction actually runs
// (CLF ingest + fit + validation). Output is bench_compare-compatible JSON:
//
//   bench_fullscale --scale 1.0 --json-out BENCH_fullscale.json
//   bench_compare --min-speedup 2 --name parse_fast_vs_reference \
//       BENCH_fullscale.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fullweb_model.h"
#include "support/cli.h"
#include "support/executor.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/strings.h"
#include "synth/generator.h"
#include "synth/profile.h"
#include "weblog/clf.h"
#include "weblog/clf_scan.h"
#include "weblog/dataset.h"

namespace {

using namespace fullweb;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median-of-reps wall time for one call.
template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const double start = now_seconds();
    fn();
    times.push_back(now_seconds() - start);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct BenchRow {
  std::string name;
  double seconds = 0.0;
  double items_per_second = 0.0;
  double speedup = 0.0;  ///< 0 = omit the field
};

/// One pass over the slurped CLF text with either parser; returns the number
/// of lines that parsed, and accumulates a checksum so the work cannot be
/// optimized away. Line splitting is shared so the ratio isolates parsing.
template <typename ParseLine>
std::size_t parse_pass(const std::string& text, std::uint64_t& checksum,
                       ParseLine&& parse_line) {
  std::size_t ok = 0;
  const char* p = text.data();
  const char* end = p + text.size();
  while (p < end) {
    const char* nl = weblog::scan::find_byte_long(p, end, '\n');
    const auto line = support::trim(std::string_view(p, nl - p));
    p = nl < end ? nl + 1 : end;
    if (line.empty()) continue;
    if (parse_line(line, checksum)) ++ok;
  }
  return ok;
}

[[noreturn]] void die(const char* stage, const std::string& message) {
  std::fprintf(stderr, "bench_fullscale: %s: %s\n", stage, message.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  support::CliFlags flags;
  flags.define("scale", "1.0",
               "fraction of the WVU week (1.0 = the paper's 15.79M requests)");
  flags.define("threads", "1", "executor width for ingest and model fit");
  flags.define("reps", "3", "repetitions per ingest/parse timing (median)");
  flags.define("json-out", "BENCH_fullscale.json",
               "bench_compare-compatible output");
  if (!flags.parse(argc, argv)) return 2;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads"));
  const double scale = flags.get_double("scale");
  const std::string clf_path = "/tmp/fullweb_bench_fullscale.log";
  const std::string fwc_path = "/tmp/fullweb_bench_fullscale.fwc";

  std::vector<BenchRow> rows;

  // Fixture: the WVU week as CLF text. Written streaming so peak memory is
  // the workload, not the rendered text.
  std::uint64_t clf_bytes = 0;
  std::size_t clf_lines = 0;
  const double synth_seconds = now_seconds();
  {
    support::Rng rng(20060625);
    synth::GeneratorOptions gen;
    gen.duration = 7.0 * 86400.0;
    gen.scale = scale;
    auto workload =
        synth::generate_workload(synth::ServerProfile::wvu(), gen, rng);
    if (!workload.ok()) die("fixture", workload.error().message);
    std::ofstream os(clf_path, std::ios::binary | std::ios::trunc);
    support::Rng rng2(20060626);
    for (const auto& e : synth::to_log_entries(workload.value(), rng2)) {
      const std::string line = weblog::to_clf_line(e);
      os << line << '\n';
      clf_bytes += line.size() + 1;
      ++clf_lines;
    }
    if (!os) die("fixture", "cannot write " + clf_path);
  }
  const double synth_elapsed = now_seconds() - synth_seconds;
  rows.push_back({"fullscale/synthesize_write", synth_elapsed,
                  static_cast<double>(clf_lines) / synth_elapsed, 0.0});
  std::printf("fixture: %zu requests, %.2f GiB CLF\n", clf_lines,
              static_cast<double>(clf_bytes) / (1024.0 * 1024.0 * 1024.0));

  // 1) Cold CLF ingest: the full text -> tables path.
  support::Executor ex(threads);
  const std::vector<std::string> paths = {clf_path};
  const double clf_seconds = time_reps(reps, [&] {
    weblog::StreamIngestOptions opts;
    opts.reader.executor = &ex;
    auto ds = weblog::Dataset::from_clf_stream("wvu-week", paths, opts);
    if (!ds.ok()) die("clf ingest", ds.error().message);
  });
  rows.push_back({"fullscale/ingest_clf_cold", clf_seconds,
                  static_cast<double>(clf_lines) / clf_seconds, 0.0});

  // Keep one ingested dataset for the fit/validation stages below.
  weblog::StreamIngestOptions ingest_opts;
  ingest_opts.reader.executor = &ex;
  auto ds_clf = weblog::Dataset::from_clf_stream("wvu-week", paths, ingest_opts);
  if (!ds_clf.ok()) die("clf ingest", ds_clf.error().message);
  const std::size_t fixture_requests = ds_clf.value().requests().size();
  const std::size_t fixture_sessions = ds_clf.value().sessions().size();

  // 2) Fast vs reference parser over the identical bytes. This is the
  // tentpole's floor: the ratio is single-threaded work reduction.
  {
    std::ifstream in(clf_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    if (text.size() != clf_bytes) die("parse floor", "fixture reread mismatch");

    std::uint64_t fast_sum = 0, ref_sum = 0;
    std::size_t fast_ok = 0, ref_ok = 0;
    weblog::ClfLineParser parser;
    const double fast_seconds = time_reps(reps, [&] {
      fast_sum = 0;
      parser.clear_owned();
      fast_ok = parse_pass(text, fast_sum,
                           [&](std::string_view line, std::uint64_t& sum) {
                             weblog::ClfRecord rec;
                             if (!parser.parse(line, rec)) return false;
                             sum += static_cast<std::uint64_t>(rec.status) +
                                    rec.bytes;
                             return true;
                           });
      parser.clear_owned();
    });
    const double ref_seconds = time_reps(reps, [&] {
      ref_sum = 0;
      ref_ok = parse_pass(text, ref_sum,
                          [&](std::string_view line, std::uint64_t& sum) {
                            auto e = weblog::parse_clf_line_reference(line);
                            if (!e.ok()) return false;
                            sum += static_cast<std::uint64_t>(
                                       e.value().status) +
                                   e.value().bytes;
                            return true;
                          });
    });
    if (fast_ok != clf_lines || ref_ok != clf_lines || fast_sum != ref_sum)
      die("parse floor", "fast and reference parsers disagree on the corpus");
    rows.push_back({"fullscale/parse_fast_vs_reference", fast_seconds,
                    static_cast<double>(clf_lines) / fast_seconds,
                    ref_seconds / fast_seconds});
  }

  // 3) FWC1 columnar re-ingest of the identical dataset.
  auto written = ds_clf.value().to_columnar(fwc_path);
  if (!written.ok()) die("columnar store", written.error().message);
  const double fwc_seconds = time_reps(reps, [&] {
    auto ds = weblog::Dataset::from_columnar(fwc_path);
    if (!ds.ok()) die("columnar ingest", ds.error().message);
  });
  rows.push_back({"fullscale/ingest_columnar_vs_clf", fwc_seconds,
                  static_cast<double>(fixture_requests) / fwc_seconds,
                  clf_seconds / fwc_seconds});

  // 4) Full model fit: every Figure 1 branch at paper scale (timed once —
  // at --scale 1.0 this is minutes, and the number is a headline, not a
  // regression gate).
  core::FullWebOptions fit_opts;
  fit_opts.executor = &ex;
  support::Rng fit_rng(42);
  const double fit_start = now_seconds();
  auto model = core::fit_fullweb_model(ds_clf.value(), fit_rng, fit_opts);
  if (!model.ok()) die("model fit", model.error().message);
  const double fit_seconds = now_seconds() - fit_start;
  rows.push_back({"fullscale/model_fit", fit_seconds,
                  static_cast<double>(fixture_requests) / fit_seconds, 0.0});

  // 5) Validation: the two ingest paths must agree bit-for-bit and the model
  // must describe the ingested volumes.
  const double validate_start = now_seconds();
  {
    auto ds_fwc = weblog::Dataset::from_columnar(fwc_path);
    if (!ds_fwc.ok()) die("validate", ds_fwc.error().message);
    const auto& a = ds_clf.value();
    const auto& b = ds_fwc.value();
    if (a.requests().size() != b.requests().size() ||
        a.sessions().size() != b.sessions().size())
      die("validate", "CLF and columnar table sizes differ");
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
      const auto& ra = a.requests()[i];
      const auto& rb = b.requests()[i];
      if (ra.time != rb.time || ra.client != rb.client ||
          ra.status != rb.status || ra.bytes != rb.bytes)
        die("validate", "request " + std::to_string(i) + " differs");
    }
    for (std::size_t i = 0; i < a.sessions().size(); ++i) {
      const auto& sa = a.sessions()[i];
      const auto& sb = b.sessions()[i];
      if (sa.client != sb.client || sa.start != sb.start || sa.end != sb.end ||
          sa.requests != sb.requests || sa.bytes != sb.bytes)
        die("validate", "session " + std::to_string(i) + " differs");
    }
    if (model.value().total_requests != fixture_requests ||
        model.value().total_sessions != fixture_sessions)
      die("validate", "model volumes disagree with the ingested tables");
    if (model.value().mb_transferred <= 0.0)
      die("validate", "model transferred zero bytes");
  }
  const double validate_seconds = now_seconds() - validate_start;
  rows.push_back({"fullscale/validate", validate_seconds,
                  static_cast<double>(fixture_requests) / validate_seconds,
                  0.0});

  rows.push_back({"fullscale/end_to_end",
                  clf_seconds + fit_seconds + validate_seconds,
                  static_cast<double>(fixture_requests) /
                      (clf_seconds + fit_seconds + validate_seconds),
                  0.0});

  for (const BenchRow& r : rows) {
    std::printf("%-36s %10.3f s  %12.0f items/s", r.name.c_str(), r.seconds,
                r.items_per_second);
    if (r.speedup > 0.0) std::printf("  speedup %.2fx", r.speedup);
    std::printf("\n");
  }

  const std::string json_path = flags.get("json-out");
  if (!json_path.empty()) {
    support::JsonWriter w;
    w.begin_object();
    w.key("context");
    w.begin_object();
#ifdef NDEBUG
    w.field("binary_build_type", "release");
#else
    w.field("binary_build_type", "debug");
#endif
    w.field("profile", "WVU");
    w.field("scale", scale);
    w.field("fixture_requests", fixture_requests);
    w.field("fixture_sessions", fixture_sessions);
    w.field("clf_bytes", static_cast<std::size_t>(clf_bytes));
    w.field("fwc_bytes", static_cast<std::size_t>(written.value()));
    w.field("threads", threads);
    w.field("reps", reps);
    w.field("simd", weblog::scan::compiled_with_avx2() ? "avx2+swar" : "swar");
    w.end_object();
    w.key("benchmarks");
    w.begin_array();
    for (const BenchRow& r : rows) {
      w.begin_object();
      w.field("name", r.name);
      w.field("real_time", r.seconds * 1e9);
      w.field("time_unit", "ns");
      w.field("items_per_second", r.items_per_second);
      if (r.speedup > 0.0) {
        w.field("speedup", r.speedup);
        w.field("speedup_source", "measured");
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream json(json_path, std::ios::binary | std::ios::trunc);
    json << std::move(w).str() << '\n';
    if (!json) die("json", "cannot write " + json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
