// Session-threshold sensitivity (paper §2, after the study in [12]).
//
// The paper adopts a 30-minute inactivity threshold based on its companion
// study of how the threshold changes the session count. This driver sweeps
// the threshold on one synthetic server and reports the session count, mean
// session length, and the Table 2/3 tail indices — showing (a) the count is
// sensitive below ~10 minutes and plateaus around 30, and (b) the
// heavy-tail conclusions are robust to the choice.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/tail_analysis.h"
#include "stats/descriptive.h"
#include "support/table.h"
#include "weblog/sessionizer.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Session-threshold sensitivity",
                      "paper §2 (threshold choice, after ref [12])", ctx);

  // Generate once (CSEE), re-sessionize per threshold.
  const auto profile = synth::ServerProfile::csee();
  support::Rng rng(ctx.seed ^ 0xC5EE);
  synth::GeneratorOptions gen;
  gen.scale = profile.bench_scale * ctx.scale_multiplier;
  gen.duration = ctx.days * 86400.0;
  auto workload = synth::generate_workload(profile, gen, rng);
  if (!workload) {
    std::fprintf(stderr, "generation failed: %s\n",
                 workload.error().message.c_str());
    return 1;
  }

  support::Table table({"threshold (min)", "sessions", "vs 30min", "mean len (s)",
                        "len aLLCD", "req aLLCD"});
  core::TailAnalysisOptions topts;
  topts.run_curvature = false;

  std::size_t sessions_at_30 = 0;
  struct Row {
    double minutes;
    std::size_t count;
    std::string mean_len, len_a, req_a;
  };
  std::vector<Row> rows;
  for (double minutes : {1.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 120.0}) {
    weblog::SessionizerOptions sopts;
    sopts.threshold_seconds = minutes * 60.0;
    const auto sessions = weblog::sessionize(workload.value().requests, sopts);

    std::vector<double> lengths, counts;
    for (const auto& s : sessions) {
      lengths.push_back(s.length());
      counts.push_back(static_cast<double>(s.requests));
    }
    support::Rng trng(ctx.seed + 1);
    const auto len_tail = core::analyze_tail(lengths, trng, topts);
    const auto req_tail = core::analyze_tail(counts, trng, topts);
    if (minutes == 30.0) sessions_at_30 = sessions.size();
    rows.push_back({minutes, sessions.size(),
                    bench::fmt(stats::mean(lengths), 4), len_tail.llcd_cell(),
                    req_tail.llcd_cell()});
  }
  for (const auto& r : rows) {
    char rel[16];
    std::snprintf(rel, sizeof rel, "%+.1f%%",
                  100.0 * (static_cast<double>(r.count) /
                               static_cast<double>(sessions_at_30) -
                           1.0));
    table.add_row({bench::fmt(r.minutes, 3), std::to_string(r.count), rel,
                   r.mean_len, r.len_a, r.req_a});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: the session count moves steeply below ~10 minutes (gaps\n"
      "inside real visits get split) and flattens near the paper's 30-minute\n"
      "choice; the tail indices barely move above ~20 minutes, so the\n"
      "paper's heavy-tail conclusions do not hinge on the exact threshold.\n");
  return 0;
}
