// bench_online: the online layer's headline number.
//
// The point of src/online is that a fresh estimate over an unbounded stream
// costs O(window + sketch), not O(stream). This bench measures that claim
// directly: the same synthetic ClarkNet stream is replayed once through an
// OnlineAnalyzer (per-event sketch/ring updates plus a snapshot at each of
// --checkpoints evenly spaced points), and once through the batch
// alternative — at each checkpoint, rebuild the counts-per-bin series over
// the whole prefix and re-run KPSS, variance-time Hurst, FRS, Hill, and the
// LLCD fit from scratch, the way the offline pipeline would if asked for a
// fresh answer mid-stream.
//
// The gated ratio "stream/online_vs_batch" = batch-refit / online is a
// work-reduction speedup over identical traffic and checkpoints, so it
// holds on any host; it grows with stream length because the batch side is
// O(checkpoints * stream) while the online side is bounded by the window.
//
// Output is bench_compare-compatible JSON:
//
//   bench_online --json-out BENCH_online.json
//   bench_compare --min-speedup 2 --name online_vs_batch BENCH_online.json
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "lrd/variance_time.h"
#include "online/analyzer.h"
#include "online/frs_memory.h"
#include "stats/kpss.h"
#include "support/cli.h"
#include "support/json.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "synth/profile.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "timeseries/series.h"

namespace {

using namespace fullweb;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median-of-reps wall time for one call.
template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const double start = now_seconds();
    fn();
    times.push_back(now_seconds() - start);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct BenchRow {
  std::string name;
  double seconds = 0.0;
  double items_per_second = 0.0;
  double speedup = 0.0;  ///< 0 = omit the field
};

/// Consume a value so the optimizer cannot drop the estimator calls.
volatile double g_sink = 0.0;

template <typename T>
void sink(const support::Result<T>& r, double v) {
  g_sink = r.ok() ? v : -v;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliFlags flags;
  flags.define("hours", "24", "stream duration (hours)");
  flags.define("scale", "0.5", "synthetic volume scale");
  flags.define("checkpoints", "16", "estimate points along the stream");
  flags.define("reps", "3", "repetitions per timing (median reported)");
  flags.define("json-out", "BENCH_online.json",
               "bench_compare-compatible output");
  if (!flags.parse(argc, argv)) return 2;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  const auto checkpoints =
      std::max<std::size_t>(1, static_cast<std::size_t>(flags.get_int("checkpoints")));

  // Fixture: one synthetic ClarkNet stream, replayed identically by every
  // timed path below. Event order defines sketch item identity, so the
  // online path sees exactly the stream the batch path re-reads.
  std::vector<double> times, bytes;
  {
    support::Rng rng(2026);
    synth::GeneratorOptions gen;
    gen.duration = flags.get_double("hours") * 3600.0;
    gen.scale = flags.get_double("scale");
    auto ds = synth::generate_dataset(synth::ServerProfile::clarknet(), gen, rng);
    if (!ds.ok()) {
      std::fprintf(stderr, "bench_online: fixture: %s\n",
                   ds.error().message.c_str());
      return 1;
    }
    const auto& requests = ds.value().requests();
    times.reserve(requests.size());
    bytes.reserve(requests.size());
    for (const auto& r : requests) {
      times.push_back(r.time);
      bytes.push_back(static_cast<double>(r.bytes));
    }
  }
  const std::size_t n = times.size();
  if (n < checkpoints) {
    std::fprintf(stderr, "bench_online: fixture too small (%zu events)\n", n);
    return 1;
  }
  const online::OnlineOptions opts;  // production defaults
  const std::size_t window_bins = opts.block_bins * opts.window_blocks;
  std::printf("fixture: %zu events over %.1f h, %zu checkpoints, "
              "window %zu bins\n",
              n, flags.get_double("hours"), checkpoints, window_bins);

  // Checkpoint j fires after event index marks[j] (evenly spaced; the last
  // one lands on the final event).
  std::vector<std::size_t> marks;
  for (std::size_t j = 1; j <= checkpoints; ++j)
    marks.push_back(j * n / checkpoints - 1);

  std::vector<BenchRow> rows;

  // 1) Pure ingest: per-event ring + sketch update cost, no snapshots.
  const double update_seconds = time_reps(reps, [&] {
    online::OnlineAnalyzer analyzer(opts, support::Rng(7));
    for (std::size_t i = 0; i < n; ++i) analyzer.add(times[i], bytes[i]);
    g_sink = static_cast<double>(analyzer.records());
  });
  rows.push_back({"stream/online_update", update_seconds,
                  static_cast<double>(n) / update_seconds, 0.0});

  // 2) Online: ingest plus a full snapshot (KPSS + VT Hurst + FRS over the
  // window, Hill + LLCD + quantiles from the sketch) at each checkpoint.
  const double online_seconds = time_reps(reps, [&] {
    online::OnlineAnalyzer analyzer(opts, support::Rng(7));
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
      analyzer.add(times[i], bytes[i]);
      if (next < marks.size() && i == marks[next]) {
        const auto snap = analyzer.snapshot();
        g_sink = snap.p99;
        ++next;
      }
    }
  });
  rows.push_back({"stream/online_snapshots", online_seconds,
                  static_cast<double>(n) / online_seconds, 0.0});

  // 3) Batch: at each checkpoint, refit the whole prefix from scratch —
  // rebuild the 1 s counts series, then KPSS, variance-time Hurst, and FRS
  // over it, and Hill + LLCD over all transfer sizes so far. This is what
  // "just rerun the offline pipeline" costs per fresh answer.
  const double batch_seconds = time_reps(reps, [&] {
    for (const std::size_t mark : marks) {
      const std::span<const double> prefix_times(times.data(), mark + 1);
      const double t0 = std::floor(times.front());
      const double t1 = std::floor(times[mark]) + 1.0;
      const auto counts =
          timeseries::counts_per_bin(prefix_times, t0, t1, opts.bin_seconds);
      sink(stats::kpss_test(counts, opts.kpss_null), 1.0);
      sink(lrd::variance_time_hurst(counts), 2.0);
      sink(online::frs_memory_from_counts(
               counts, online::FrsOptions{opts.frs_scales}),
           3.0);
      std::vector<double> sizes(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(mark + 1));
      sink(tail::hill_estimate(sizes, opts.hill), 4.0);
      sink(tail::llcd_fit(sizes), 5.0);
    }
  });
  rows.push_back({"stream/batch_refit", batch_seconds,
                  static_cast<double>(n) / batch_seconds, 0.0});

  // 4) The headline ratio: identical checkpoints, identical traffic.
  rows.push_back({"stream/online_vs_batch", online_seconds,
                  static_cast<double>(n) / online_seconds,
                  batch_seconds / online_seconds});

  for (const BenchRow& r : rows) {
    std::printf("%-28s %10.4f s  %12.0f items/s", r.name.c_str(), r.seconds,
                r.items_per_second);
    if (r.speedup > 0.0) std::printf("  speedup %.2fx", r.speedup);
    std::printf("\n");
  }

  const std::string json_path = flags.get("json-out");
  if (!json_path.empty()) {
    support::JsonWriter w;
    w.begin_object();
    w.key("context");
    w.begin_object();
    w.field("fixture_events", n);
    w.field("hours", flags.get_double("hours"));
    w.field("scale", flags.get_double("scale"));
    w.field("checkpoints", checkpoints);
    w.field("window_bins", window_bins);
    w.field("reps", reps);
    // bench_compare --check-release reads this stamp; committed baselines
    // must come from an optimized binary (same contract as bench_fullscale).
#ifdef NDEBUG
    w.field("binary_build_type", "release");
#else
    w.field("binary_build_type", "debug");
#endif
    w.end_object();
    w.key("benchmarks");
    w.begin_array();
    for (const BenchRow& r : rows) {
      w.begin_object();
      w.field("name", r.name);
      w.field("real_time", r.seconds * 1e9);
      w.field("time_unit", "ns");
      w.field("items_per_second", r.items_per_second);
      if (r.speedup > 0.0) {
        w.field("speedup", r.speedup);
        w.field("speedup_source", "measured");
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream json(json_path, std::ios::binary | std::ios::trunc);
    json << std::move(w).str() << '\n';
    if (!json) {
      std::fprintf(stderr, "bench_online: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
