// Table 4 — heavy-tail analysis of BYTES TRANSFERRED PER SESSION.
//
// Shape goals: this is the heaviest-tailed intra-session characteristic —
// every server has infinite-variance tails (alpha < 2) at every intensity,
// and CSEE sits at or below alpha ~ 1 (infinite mean).
#include <cstdio>
#include <iostream>

#include "bench_tails_common.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Table 4 — bytes transferred per session",
                      "paper §5.2.3, Table 4", ctx);

  const bench::PaperTable paper = {
      {"Low",
       {{"1.1", "1.168", "0.998"},
        {"1.7", "1.786", "0.978"},
        {"0.8", "0.788", "0.935"},
        {"NA", "NA", "NA"}}},
      {"Med",
       {{"1.32", "1.371", "0.996"},
        {"1.89", "1.799", "0.991"},
        {"0.84", "0.898", "0.974"},
        {"NS", "1.676", "0.949"}}},
      {"High",
       {{"1.63", "1.418", "0.993"},
        {"1.86", "1.754", "0.993"},
        {"1.06", "1.026", "0.989"},
        {"1.78", "1.641", "0.949"}}},
      {"Week",
       {{"1.4", "1.454", "0.995"},
        {"2.0", "1.842", "0.990"},
        {"0.95", "0.954", "0.998"},
        {"1.1", "1.424", "0.960"}}},
  };

  const auto servers = bench::generate_all_servers(ctx);
  bench::run_tail_table(
      servers, ctx,
      [](const weblog::Dataset& ds, double t0, double t1) {
        return ds.session_byte_counts(t0, t1);
      },
      paper);

  std::printf(
      "\nshape goals: all Week alphas < 2 (infinite variance everywhere);\n"
      "CSEE's alpha ~ 1 or below (infinite mean) — the heaviest tail of the\n"
      "three intra-session characteristics, driven by heavy-tailed file\n"
      "sizes ([2], [3], [7]).\n");
  return 0;
}
