// §5.1.2 — testing for Poisson arrivals at session level.
//
// Paper result: session arrivals are indistinguishable from Poisson ONLY in
// the CSEE Low and Med intervals (< 1,000 sessions per 4-hour window);
// NASA-Pub2 has too few sessions to run the test at all; every other cell
// rejects Poisson.
#include <cstdio>

#include "bench_poisson_common.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("§5.1.2 — Poisson tests, session arrivals",
                      "paper §5.1.2 (textual result)", ctx);

  const auto servers = bench::generate_all_servers(ctx);
  const auto outcome = bench::run_poisson_bench(
      servers, ctx,
      [](const weblog::Dataset& ds) { return ds.session_start_times(); },
      /*min_events=*/400);

  std::printf("\nconfigurations consistent with Poisson: %zu / %zu\n",
              outcome.cells_poisson, outcome.cells_ran);
  for (const auto& cell : outcome.poisson_cells)
    std::printf("  Poisson cell: %s\n", cell.c_str());
  std::printf(
      "paper shape: session arrivals look Poisson only under LOW workload\n"
      "(CSEE Low/Med; < 1,000 sessions per 4 h), and NASA-Pub2 is NA; the\n"
      "busy servers (WVU, ClarkNet) reject Poisson in every configuration.\n");

  // Shape check: any cell that passed must come from a low-rate interval.
  bool shape_ok = true;
  for (const auto& cell : outcome.poisson_cells) {
    if (cell.rfind("WVU", 0) == 0 || cell.rfind("ClarkNet High", 0) == 0)
      shape_ok = false;
  }
  std::printf("shape check (busy servers reject): %s\n", shape_ok ? "YES" : "NO");
  return shape_ok ? 0 : 1;
}
