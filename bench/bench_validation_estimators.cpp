// Validation — estimator accuracy on processes with KNOWN parameters.
//
// Not a paper table, but the evidence that our reimplemented estimators can
// be trusted for Figures 4-12: every Hurst estimator vs fGn with known H,
// and LLCD/Hill vs Pareto samples with known alpha (including the lognormal
// case where Hill must report NS).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "lrd/estimator_suite.h"
#include "stats/distributions.h"
#include "support/table.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "timeseries/fgn.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Validation — estimators on known ground truth",
                      "methodology check for Figures 4-12", ctx);

  // ---- Hurst estimators on fGn.
  std::printf("Hurst estimators on fractional Gaussian noise (n = 2^16, "
              "3 realizations averaged):\n");
  support::Table hurst({"true H", "Variance", "R/S", "Periodogram", "Whittle",
                        "Abry-Veitch"});
  for (double h : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    double sums[5] = {0, 0, 0, 0, 0};
    int counts[5] = {0, 0, 0, 0, 0};
    for (int rep = 0; rep < 3; ++rep) {
      support::Rng rng(ctx.seed + static_cast<std::uint64_t>(h * 1000) + rep);
      auto fgn = timeseries::generate_fgn(1 << 16, h, 1.0, rng);
      if (!fgn.ok()) continue;
      const auto suite = lrd::hurst_suite(fgn.value());
      const lrd::HurstMethod methods[5] = {
          lrd::HurstMethod::kVarianceTime, lrd::HurstMethod::kRoverS,
          lrd::HurstMethod::kPeriodogram, lrd::HurstMethod::kWhittle,
          lrd::HurstMethod::kAbryVeitch};
      for (int m = 0; m < 5; ++m) {
        if (const auto* est = suite.find(methods[m])) {
          sums[m] += est->h;
          ++counts[m];
        }
      }
    }
    std::vector<std::string> row = {bench::fmt(h, 3)};
    for (int m = 0; m < 5; ++m)
      row.push_back(counts[m] > 0 ? bench::fmt_h(sums[m] / counts[m]) : "-");
    hurst.add_row(std::move(row));
  }
  hurst.print(std::cout);

  // ---- Tail estimators on Pareto samples.
  std::printf("\ntail estimators on Pareto(alpha, k=1) samples (n = 50,000):\n");
  support::Table tail_table({"true alpha", "alpha_LLCD", "R^2", "alpha_Hill",
                             "Hill verdict"});
  for (double alpha : {0.8, 1.2, 1.6, 2.0, 2.4, 3.0}) {
    support::Rng rng(ctx.seed + static_cast<std::uint64_t>(alpha * 100));
    const stats::Pareto p(alpha, 1.0);
    std::vector<double> xs(50000);
    for (auto& x : xs) x = p.sample(rng);
    const auto llcd = tail::llcd_fit(xs);
    const auto hill = tail::hill_estimate(xs);
    tail_table.add_row(
        {bench::fmt(alpha, 2),
         llcd.ok() ? bench::fmt(llcd.value().alpha, 3) : "NA",
         llcd.ok() ? bench::fmt(llcd.value().r_squared, 3) : "NA",
         hill.ok() ? bench::fmt(hill.value().alpha, 3) : "NA",
         hill.ok() ? (hill.value().stabilized ? "stable" : "NS") : "NA"});
  }
  tail_table.print(std::cout);

  // ---- Hill on lognormal: must flag NS (no true power tail).
  {
    support::Rng rng(ctx.seed + 777);
    const stats::Lognormal ln(0.0, 2.0);
    std::vector<double> xs(50000);
    for (auto& x : xs) x = ln.sample(rng);
    tail::HillOptions hopts;
    hopts.stability_cv = 0.04;
    const auto hill = tail::hill_estimate(xs, hopts);
    std::printf("\nHill on lognormal(0, 2) with strict stability: %s "
                "(expected: NS — no Pareto tail to settle on)\n",
                hill.ok() ? (hill.value().stabilized ? "stable (!)" : "NS")
                          : "NA");
  }
  return 0;
}
