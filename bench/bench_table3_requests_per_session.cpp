// Table 3 (+ Figure 13) — heavy-tail analysis of the NUMBER OF REQUESTS PER
// SESSION, plus the ClarkNet one-week LLCD plot (Fig 13).
//
// Shape goals: Week-level tail indices sit near 2 (borderline finite /
// infinite variance) for WVU/ClarkNet/CSEE and clearly below 2 only for
// NASA-Pub2; the ClarkNet LLCD shows a drooping extreme tail yet the Pareto
// fit is good over the fitted range.
#include <cstdio>
#include <iostream>

#include "bench_tails_common.h"
#include "support/ascii_plot.h"
#include "tail/llcd.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Table 3 — session length in number of requests",
                      "paper §5.2.2, Table 3 and Figure 13", ctx);

  const bench::PaperTable paper = {
      {"Low",
       {{"1.7", "1.965", "0.986"},
        {"2.32", "2.218", "0.975"},
        {"2.0", "2.047", "0.976"},
        {"NA", "NA", "NA"}}},
      {"Med",
       {{"2.0", "2.055", "0.996"},
        {"1.8", "1.724", "0.987"},
        {"1.93", "1.931", "0.987"},
        {"1.9", "1.948", "0.903"}}},
      {"High",
       {{"1.9", "1.965", "0.993"},
        {"1.9", "1.928", "0.979"},
        {"2.33", "2.167", "0.981"},
        {"1.62", "1.437", "0.971"}}},
      {"Week",
       {{"2.1", "2.151", "0.995"},
        {"2.6", "2.586", "0.996"},
        {"2.0", "1.932", "0.989"},
        {"1.6", "1.615", "0.967"}}},
  };

  const auto servers = bench::generate_all_servers(ctx);
  bench::run_tail_table(
      servers, ctx,
      [](const weblog::Dataset& ds, double t0, double t1) {
        return ds.session_request_counts(t0, t1);
      },
      paper);

  // ---- Figure 13: LLCD of requests/session, ClarkNet, one week.
  const auto& clarknet = servers[1];
  const auto counts = clarknet.session_request_counts();
  auto plot = tail::llcd_plot(counts);
  if (plot.ok()) {
    std::vector<double> x(plot.value().log10_x.size());
    std::vector<double> y(plot.value().log10_ccdf.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = std::pow(10.0, plot.value().log10_x[i]);
      y[i] = std::pow(10.0, plot.value().log10_ccdf[i]);
    }
    support::PlotOptions popts;
    popts.title =
        "\nFigure 13: LLCD — ClarkNet session length in requests, one week";
    popts.x_label = "log10 requests per session";
    popts.y_label = "log10 P[X > x]";
    popts.log_x = true;
    popts.log_y = true;
    popts.height = 14;
    std::fputs(support::render_plot(x, y, popts).c_str(), stdout);
    bench::maybe_write_csv(ctx, "fig13_clarknet_llcd_requests",
                           {"log10_x", "log10_ccdf"},
                           {plot.value().log10_x, plot.value().log10_ccdf});
    const auto fit = tail::llcd_fit(counts);
    if (fit.ok()) {
      std::printf("  fit: alpha_LLCD=%s R^2=%s (paper: 2.586 / 0.996)\n",
                  bench::fmt(fit.value().alpha, 4).c_str(),
                  bench::fmt(fit.value().r_squared, 3).c_str());
    }
  }
  std::printf(
      "\nshape goals: Week alphas near 2 for the three larger servers and\n"
      "below 2 for NASA-Pub2 (its heavy requests-per-session tail is the\n"
      "paper's standout finding for this characteristic).\n");
  return 0;
}
