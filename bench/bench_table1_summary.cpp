// Table 1: summary of the raw data — requests, sessions, MB transferred per
// server-week. Our numbers are the synthetic workloads at bench scale; the
// paper's absolute values are printed alongside (scaled for comparison).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "support/strings.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Table 1 — Summary of the raw data", "paper §2, Table 1",
                      ctx);

  struct PaperRow {
    const char* name;
    long long requests;
    long long sessions;
    double mb;
  };
  const PaperRow paper[] = {
      {"WVU", 15785164, 188213, 34485.0},
      {"ClarkNet", 1654882, 139745, 13785.0},
      {"CSEE", 396743, 34343, 10138.0},
      {"NASA-Pub2", 39137, 3723, 311.0},
  };

  support::Table table({"Data set", "bench scale", "Requests", "Sessions",
                        "MB transf.", "paper req (scaled)", "paper sess (scaled)",
                        "paper MB (scaled)"});
  const auto profiles = synth::ServerProfile::all_four();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto ds = bench::generate_server(profiles[i], ctx);
    const double s = profiles[i].bench_scale * ctx.scale_multiplier *
                     (ctx.days / 7.0);
    table.add_row({ds.name(), bench::fmt(s, 3),
                   support::with_commas(static_cast<long long>(ds.requests().size())),
                   support::with_commas(static_cast<long long>(ds.sessions().size())),
                   bench::fmt(static_cast<double>(ds.total_bytes()) / 1048576.0, 5),
                   support::with_commas(static_cast<long long>(paper[i].requests * s)),
                   support::with_commas(static_cast<long long>(paper[i].sessions * s)),
                   bench::fmt(paper[i].mb * s, 5)});
  }
  table.print(std::cout);
  std::printf(
      "\nshape check: volumes span ~3 orders of magnitude across servers, and\n"
      "per-server requests/sessions/MB track the paper's scaled targets.\n");
  return 0;
}
