// Parallel-scaling driver: end-to-end FullWebModel fit at 1..N threads.
//
// Reports per-stage and total wall-clock for the serial run and for each
// thread count, the resulting speedup, and — the refactor's core invariant —
// verifies that every run produces a bit-identical model (same rendered
// report, same Hurst estimates to the last bit).
//
// Two Amdahl serial-fraction estimates accompany the measured curve:
//   * measured — least-squares fit of T(N) = T1 * (s + (1-s)/N) to the
//     observed run times. Only meaningful when the host can actually run N
//     threads at once.
//   * modeled — span/work from the serial run's StageTimings span tree
//     (see support/timing.h), which captures the task graph's critical
//     path independently of how many cores the host has.
// Each run's JSON record carries both speedups plus a speedup_source label:
// "measured" when the host had enough cores for the run, "modeled"
// otherwise (e.g. CI boxes with fewer cores than the sweep).
//
//   ./bench_parallel_scaling --server CSEE --scale 0.5 --max-threads 8 \
//       --timings-json spans.json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fullweb_model.h"
#include "support/executor.h"
#include "support/json.h"
#include "support/timing.h"

namespace {

using namespace fullweb;

struct RunResult {
  std::size_t threads = 0;
  double seconds = 0.0;
  double work_seconds = 0.0;
  double span_seconds = 0.0;
  double serial_fraction = 1.0;  ///< span/work from the stage tree
  std::string report;
  std::string stage_table;   // StageTimings holds a mutex; keep the rendering
  std::string timings_json;  // full span tree
};

RunResult run_once(const weblog::Dataset& dataset, std::uint64_t seed,
                   std::size_t threads) {
  RunResult out;
  out.threads = threads;
  support::Executor ex(threads);
  support::StageTimings timings;

  core::FullWebOptions opts;
  opts.executor = &ex;
  opts.timings = &timings;
  opts.tails.curvature_replicates = 99;

  support::Rng rng(seed);
  support::StageTimings wall;
  {
    support::StageTimer t(&wall, "total");
    auto model = core::fit_fullweb_model(dataset, rng, opts);
    if (!model.ok()) {
      std::fprintf(stderr, "fatal: fit failed: %s\n",
                   model.error().message.c_str());
      std::exit(1);
    }
    out.report = core::render_report(model.value());
  }
  out.seconds = wall.entries().front().seconds;
  out.stage_table = timings.table();
  out.work_seconds = timings.work_seconds();
  out.span_seconds = timings.span_seconds();
  out.serial_fraction = timings.serial_fraction();
  out.timings_json = timings.to_json();
  return out;
}

double amdahl_speedup(double s, std::size_t threads) {
  return 1.0 / (s + (1.0 - s) / static_cast<double>(threads));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx;
  support::CliFlags flags;
  flags.define("server", "CSEE", "WVU | ClarkNet | CSEE | NASA-Pub2");
  flags.define("max-threads", "8",
               "highest thread count in the 1,2,4,.. sweep (0 = hardware)");
  flags.define("json-out", "BENCH_scaling.json",
               "machine-readable results file, bench_compare-compatible "
               "(empty = skip)");
  flags.define("timings-json", "",
               "dump the serial run's stage span tree to this file "
               "(empty = skip)");
  if (!bench::parse_bench_flags(argc, argv, &ctx, &flags)) return 2;

  synth::ServerProfile profile = synth::ServerProfile::csee();
  const std::string which = flags.get("server");
  for (const auto& p : synth::ServerProfile::all_four())
    if (p.name == which) profile = p;

  const std::size_t host_threads = support::Executor(0).threads();
  std::size_t max_threads =
      static_cast<std::size_t>(flags.get_int("max-threads"));
  if (max_threads == 0) max_threads = host_threads;

  bench::print_header("Parallel scaling: FullWebModel end to end",
                      "Figure 1 pipeline as a task graph (this reproduction)",
                      ctx);

  const auto dataset = bench::generate_server(profile, ctx);
  std::printf("dataset: %s, %zu requests, %zu sessions\n",
              dataset.name().c_str(), dataset.requests().size(),
              dataset.sessions().size());
  std::printf("host threads: %zu\n\n", host_threads);

  std::vector<std::size_t> counts = {1};
  for (std::size_t t = 2; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads && max_threads > 1)
    counts.push_back(max_threads);

  std::vector<RunResult> runs;
  for (std::size_t t : counts) runs.push_back(run_once(dataset, ctx.seed, t));

  const RunResult& serial = runs.front();
  std::printf("per-stage wall-clock, serial run:\n%s\n",
              serial.stage_table.c_str());
  std::printf(
      "span model (serial run): work %.3f s, span %.3f s, serial fraction "
      "%.4f\n",
      serial.work_seconds, serial.span_seconds, serial.serial_fraction);

  // Least-squares Amdahl fit to the measured curve:
  //   T(N)/T(1) = s * (1 - 1/N) + 1/N.
  double sxx = 0.0, sxy = 0.0;
  for (const RunResult& r : runs) {
    if (r.threads == 1) continue;
    const double inv = 1.0 / static_cast<double>(r.threads);
    const double x = 1.0 - inv;
    const double y = r.seconds / serial.seconds - inv;
    sxx += x * x;
    sxy += x * y;
  }
  const double s_measured =
      sxx > 0.0 ? std::clamp(sxy / sxx, 0.0, 1.0) : 1.0;
  std::printf("amdahl fit (measured): serial fraction %.4f%s\n\n", s_measured,
              max_threads > host_threads
                  ? "  [host has fewer cores than the sweep]"
                  : "");

  std::printf("%-10s %12s %10s %10s %14s\n", "threads", "total (s)",
              "measured", "modeled", "bit-identical");
  bool all_identical = true;
  for (const RunResult& r : runs) {
    const bool identical = r.report == serial.report;
    all_identical = all_identical && identical;
    std::printf("%-10zu %12.3f %9.2fx %9.2fx %14s\n", r.threads, r.seconds,
                serial.seconds / r.seconds,
                amdahl_speedup(serial.serial_fraction, r.threads),
                identical ? "yes" : "NO");
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFATAL: parallel run diverged from the serial run — the "
                 "determinism invariant is broken\n");
    return 1;
  }
  std::printf("\nall runs bit-identical to the serial fit\n");

  const std::string timings_path = flags.get("timings-json");
  if (!timings_path.empty()) {
    std::ofstream spans(timings_path);
    if (!spans) {
      std::fprintf(stderr, "warning: cannot write %s\n", timings_path.c_str());
    } else {
      spans << serial.timings_json << "\n";
      std::printf("wrote %s\n", timings_path.c_str());
    }
  }

  // Machine-readable mirror of the table, shaped like google-benchmark JSON
  // so tools/bench_compare can diff it against a committed baseline. The
  // headline "speedup" is the measured one when the host genuinely ran that
  // many threads, and the span-tree projection otherwise — either way the
  // numbers derive from the same bit-identical serial fit.
  const std::string json_path = flags.get("json-out");
  if (!json_path.empty()) {
    support::JsonWriter w;
    w.begin_object();
    w.key("context");
    w.begin_object();
    w.field("server", dataset.name());
    w.field("seed", static_cast<double>(ctx.seed));
    w.field("requests", dataset.requests().size());
    w.field("max_threads", max_threads);
    w.field("host_threads", host_threads);
    w.field("work_seconds", serial.work_seconds);
    w.field("span_seconds", serial.span_seconds);
    w.field("serial_fraction_modeled", serial.serial_fraction);
    w.field("serial_fraction_measured", s_measured);
    w.end_object();
    w.key("benchmarks");
    w.begin_array();
    for (const RunResult& r : runs) {
      const double measured = serial.seconds / r.seconds;
      const double modeled = amdahl_speedup(serial.serial_fraction, r.threads);
      const bool host_covers = r.threads <= host_threads;
      w.begin_object();
      w.field("name", "fullweb_fit/threads:" + std::to_string(r.threads));
      w.field("real_time", r.seconds * 1e9);
      w.field("time_unit", "ns");
      w.field("items_per_second",
              static_cast<double>(dataset.requests().size()) / r.seconds);
      w.field("speedup", host_covers ? measured : modeled);
      w.field("speedup_measured", measured);
      w.field("speedup_modeled", modeled);
      w.field("speedup_source", host_covers ? "measured" : "modeled");
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    } else {
      json << std::move(w).str() << "\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
