// Parallel-scaling driver: end-to-end FullWebModel fit at 1..N threads.
//
// Reports per-stage and total wall-clock for the serial run and for each
// thread count, the resulting speedup, and — the refactor's core invariant —
// verifies that every run produces a bit-identical model (same rendered
// report, same Hurst estimates to the last bit).
//
//   ./bench_parallel_scaling --server CSEE --scale 0.5 --max-threads 8
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fullweb_model.h"
#include "support/executor.h"
#include "support/timing.h"

namespace {

using namespace fullweb;

struct RunResult {
  std::size_t threads = 0;
  double seconds = 0.0;
  std::string report;
  std::string stage_table;  // StageTimings holds a mutex; keep the rendering
};

RunResult run_once(const weblog::Dataset& dataset, std::uint64_t seed,
                   std::size_t threads) {
  RunResult out;
  out.threads = threads;
  support::Executor ex(threads);
  support::StageTimings timings;

  core::FullWebOptions opts;
  opts.executor = &ex;
  opts.timings = &timings;
  opts.tails.curvature_replicates = 99;

  support::Rng rng(seed);
  support::StageTimings wall;
  {
    support::StageTimer t(&wall, "total");
    auto model = core::fit_fullweb_model(dataset, rng, opts);
    if (!model.ok()) {
      std::fprintf(stderr, "fatal: fit failed: %s\n",
                   model.error().message.c_str());
      std::exit(1);
    }
    out.report = core::render_report(model.value());
  }
  out.seconds = wall.entries().front().seconds;
  out.stage_table = timings.table();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx;
  support::CliFlags flags;
  flags.define("server", "CSEE", "WVU | ClarkNet | CSEE | NASA-Pub2");
  flags.define("max-threads", "0",
               "highest thread count to scale to (0 = hardware)");
  flags.define("json-out", "BENCH_scaling.json",
               "machine-readable results file, bench_compare-compatible "
               "(empty = skip)");
  if (!bench::parse_bench_flags(argc, argv, &ctx, &flags)) return 2;

  synth::ServerProfile profile = synth::ServerProfile::csee();
  const std::string which = flags.get("server");
  for (const auto& p : synth::ServerProfile::all_four())
    if (p.name == which) profile = p;

  std::size_t max_threads =
      static_cast<std::size_t>(flags.get_int("max-threads"));
  if (max_threads == 0) max_threads = support::Executor(0).threads();

  bench::print_header("Parallel scaling: FullWebModel end to end",
                      "Figure 1 pipeline as a task graph (this reproduction)",
                      ctx);

  const auto dataset = bench::generate_server(profile, ctx);
  std::printf("dataset: %s, %zu requests, %zu sessions\n\n",
              dataset.name().c_str(), dataset.requests().size(),
              dataset.sessions().size());

  std::vector<std::size_t> counts = {1};
  for (std::size_t t = 2; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads && max_threads > 1)
    counts.push_back(max_threads);

  std::vector<RunResult> runs;
  for (std::size_t t : counts) runs.push_back(run_once(dataset, ctx.seed, t));

  const RunResult& serial = runs.front();
  std::printf("per-stage wall-clock, serial run:\n%s\n",
              serial.stage_table.c_str());

  std::printf("%-10s %12s %10s %14s\n", "threads", "total (s)", "speedup",
              "bit-identical");
  bool all_identical = true;
  for (const RunResult& r : runs) {
    const bool identical = r.report == serial.report;
    all_identical = all_identical && identical;
    std::printf("%-10zu %12.3f %9.2fx %14s\n", r.threads, r.seconds,
                serial.seconds / r.seconds, identical ? "yes" : "NO");
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFATAL: parallel run diverged from the serial run — the "
                 "determinism invariant is broken\n");
    return 1;
  }
  std::printf("\nall runs bit-identical to the serial fit\n");

  // Machine-readable mirror of the table, shaped like google-benchmark JSON
  // so tools/bench_compare can diff it against a committed baseline.
  const std::string json_path = flags.get("json-out");
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    } else {
      json << std::setprecision(17);
      json << "{\n  \"context\": {\"server\": \"" << dataset.name()
           << "\", \"seed\": " << ctx.seed
           << ", \"requests\": " << dataset.requests().size()
           << ", \"max_threads\": " << max_threads << "},\n"
           << "  \"benchmarks\": [\n";
      for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunResult& r = runs[i];
        json << "    {\"name\": \"fullweb_fit/threads:" << r.threads
             << "\", \"real_time\": " << r.seconds * 1e9
             << ", \"time_unit\": \"ns\", \"items_per_second\": "
             << static_cast<double>(dataset.requests().size()) / r.seconds
             << ", \"speedup\": " << serial.seconds / r.seconds << "}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
      }
      json << "  ]\n}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
