// §4.2 — testing for Poisson arrivals at request level.
//
// Paper result: request arrivals do NOT follow a piecewise Poisson process
// with fixed 1-hour or 10-minute rates on ANY server or interval, regardless
// of the sub-second spreading assumption.
#include <cstdio>

#include "bench_poisson_common.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("§4.2 — Poisson tests, request arrivals",
                      "paper §4.2 (no table; textual result)", ctx);

  const auto servers = bench::generate_all_servers(ctx);
  const auto outcome = bench::run_poisson_bench(
      servers, ctx,
      [](const weblog::Dataset& ds) { return ds.request_times(); },
      /*min_events=*/500);

  std::printf("\nconfigurations consistent with Poisson: %zu / %zu\n",
              outcome.cells_poisson, outcome.cells_ran);
  std::printf("paper: 0 (request arrivals are never piecewise-Poisson)\n");
  for (const auto& cell : outcome.poisson_cells)
    std::printf("  unexpected Poisson cell: %s\n", cell.c_str());
  return outcome.cells_poisson == 0 ? 0 : 1;
}
