// §5.2.1 curvature tests — Pareto vs lognormal for the three intra-session
// characteristics, plus the paper's two sensitivity observations:
//   (a) the Pareto p-value is sensitive to the plugged-in alpha estimate;
//   (b) the p-value varies with the Monte-Carlo replicate sample (seed).
//
// Paper result: neither Pareto nor lognormal can be rejected at 5% for any
// interval shown in Tables 2-4 (extreme-tail observations are too few to
// separate the models).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "support/table.h"
#include "tail/curvature.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("§5.2.1 — curvature tests (Pareto vs lognormal)",
                      "paper §5.2.1-§5.2.3 (textual results)", ctx);

  const auto servers = bench::generate_all_servers(ctx);

  support::Table table({"server", "characteristic", "curvature", "p Pareto",
                        "p lognormal", "verdict"});
  std::size_t cells = 0;
  std::size_t both_not_rejected = 0;
  for (const auto& ds : servers) {
    struct Char {
      const char* label;
      std::vector<double> samples;
    };
    const Char characteristics[] = {
        {"session length", ds.session_lengths()},
        {"requests/session", ds.session_request_counts()},
        {"bytes/session", ds.session_byte_counts()},
    };
    for (const auto& c : characteristics) {
      support::Rng rng(ctx.seed + 5);
      tail::CurvatureOptions copts;
      copts.replicates = 99;
      copts.model = tail::TailModel::kPareto;
      const auto pareto = tail::curvature_test(c.samples, rng, copts);
      copts.model = tail::TailModel::kLognormal;
      const auto lognormal = tail::curvature_test(c.samples, rng, copts);
      if (!pareto.ok() || !lognormal.ok()) {
        table.add_row({ds.name(), c.label, "-", "NA", "NA", "NA"});
        continue;
      }
      ++cells;
      const bool neither =
          !pareto.value().rejected_at_5pct && !lognormal.value().rejected_at_5pct;
      if (neither) ++both_not_rejected;
      const char* verdict = neither ? "neither rejected"
                            : pareto.value().rejected_at_5pct &&
                                    lognormal.value().rejected_at_5pct
                                ? "both rejected"
                            : pareto.value().rejected_at_5pct
                                ? "Pareto rejected"
                                : "lognormal rejected";
      table.add_row({ds.name(), c.label,
                     bench::fmt(pareto.value().curvature, 3),
                     bench::fmt(pareto.value().p_value, 3),
                     bench::fmt(lognormal.value().p_value, 3), verdict});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\ncells where neither model is rejected: %zu / %zu "
              "(paper: all cells)\n\n",
              both_not_rejected, cells);

  // ---- Sensitivity (a): alpha override sweeps the Pareto p-value.
  const auto lengths = servers[2].session_lengths();  // CSEE week
  std::printf("sensitivity of the Pareto p-value to the plugged-in alpha "
              "(CSEE session length, week):\n");
  support::Table sens({"alpha used", "p-value"});
  for (double alpha : {0.8, 1.2, 1.6, 2.0, 2.6, 3.5}) {
    support::Rng rng(ctx.seed + 6);
    tail::CurvatureOptions copts;
    copts.replicates = 99;
    copts.alpha_override = alpha;
    const auto r = tail::curvature_test(lengths, rng, copts);
    sens.add_row({bench::fmt(alpha, 2),
                  r.ok() ? bench::fmt(r.value().p_value, 3) : "NA"});
  }
  sens.print(std::cout);

  // ---- Sensitivity (b): same data and alpha, different Monte-Carlo seed.
  std::printf("\nsensitivity to the simulated Pareto replicate sample "
              "(same data, fitted alpha, three seeds):\n");
  support::Table seeds({"seed", "p Pareto"});
  for (std::uint64_t s : {1ULL, 2ULL, 3ULL}) {
    support::Rng rng(ctx.seed * 1000 + s);
    tail::CurvatureOptions copts;
    copts.replicates = 99;
    const auto r = tail::curvature_test(lengths, rng, copts);
    seeds.add_row({std::to_string(s),
                   r.ok() ? bench::fmt(r.value().p_value, 3) : "NA"});
  }
  seeds.print(std::cout);
  std::printf("\npaper: \"the same estimates ... with different random samples\n"
              "from Pareto distribution ... yielded different p-values\".\n");
  return 0;
}
