// Figures 7 and 8 — Whittle and Abry-Veitch estimates H^(m) with 95%
// confidence intervals on m-aggregated stationary request series.
//
// Shape goals: H^(m) stays roughly constant as m grows (evidence of
// *asymptotic* second-order self-similarity); CI bands widen with m (fewer
// observations); the WVU band sits high (~0.77-0.99 in the paper) and
// NASA-Pub2's sits just above 0.5 (~0.53-0.69).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/stationary.h"
#include "lrd/estimator_suite.h"
#include "support/ascii_plot.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header(
      "Figures 7 & 8 — aggregated-series Hurst estimates with 95% CIs",
      "paper §4.1, Figures 7 and 8", ctx);

  const std::vector<std::size_t> levels = {1, 2, 5, 10, 20, 50, 100, 200, 500};
  bool ok = true;

  for (const auto& profile :
       {synth::ServerProfile::wvu(), synth::ServerProfile::nasa_pub2()}) {
    const auto ds = bench::generate_server(profile, ctx);
    const auto st = core::make_stationary(ds.requests_per_second());
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   st.error().message.c_str());
      return 1;
    }

    for (auto method : {lrd::HurstMethod::kWhittle, lrd::HurstMethod::kAbryVeitch}) {
      const char* fig =
          method == lrd::HurstMethod::kWhittle ? "Figure 7" : "Figure 8";
      const auto sweep =
          lrd::aggregated_hurst_sweep(st.value().series, method, levels);
      std::printf("%s (%s) — %s, stationary request series:\n", fig,
                  to_string(method).c_str(), profile.name.c_str());
      support::Table table({"m", "H^(m)", "95% CI low", "95% CI high"});
      std::vector<double> xs, hs, los, his;
      double h_min = 1.0, h_max = 0.0;
      for (const auto& p : sweep) {
        table.add_row({std::to_string(p.m), bench::fmt_h(p.estimate.h),
                       bench::fmt_h(p.estimate.ci_low()),
                       bench::fmt_h(p.estimate.ci_high())});
        xs.push_back(static_cast<double>(p.m));
        hs.push_back(p.estimate.h);
        los.push_back(p.estimate.ci_low());
        his.push_back(p.estimate.ci_high());
        h_min = std::min(h_min, p.estimate.h);
        h_max = std::max(h_max, p.estimate.h);
      }
      table.print(std::cout);
      bench::maybe_write_csv(
          ctx,
          std::string(method == lrd::HurstMethod::kWhittle ? "fig7" : "fig8") +
              "_" + profile.name,
          {"m", "h", "ci_low", "ci_high"}, {xs, hs, los, his});
      support::PlotOptions popts;
      popts.log_x = true;
      popts.height = 12;
      popts.x_label = "aggregation level m (log)";
      std::fputs(support::render_plot({{"H", xs, hs, '*'},
                                       {"ci-low", xs, los, '.'},
                                       {"ci-high", xs, his, '.'}},
                                      popts)
                     .c_str(),
                 stdout);
      std::printf("  H^(m) range: [%s, %s]\n\n", bench::fmt_h(h_min).c_str(),
                  bench::fmt_h(h_max).c_str());
      // Shape: estimates stay in a band (no collapse toward 0.5 with m).
      // Judge only m <= 100: beyond that the aggregated series is short,
      // the CI is wide, and single-realization scatter dominates.
      double lo = 1.0, hi = 0.0;
      std::size_t used = 0;
      for (const auto& p : sweep) {
        if (p.m > 100) continue;
        lo = std::min(lo, p.estimate.h);
        hi = std::max(hi, p.estimate.h);
        ++used;
      }
      if (used >= 4) ok = ok && (hi - lo) < 0.30;
    }
  }
  std::printf("shape check: H^(m) roughly constant across aggregation levels "
              "(asymptotic self-similarity): %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
