// Shared driver logic for the §4.2 (request-level) and §5.1.2
// (session-level) Poisson-arrival experiment tables.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "poisson/poisson_test.h"
#include "support/table.h"
#include "weblog/dataset.h"

namespace fullweb::bench {

struct PoissonBenchOutcome {
  std::size_t cells_ran = 0;
  std::size_t cells_poisson = 0;
  std::vector<std::string> poisson_cells;  ///< "server Load config" labels
};

/// Run the four test configurations ({1h, 10min} x {uniform, deterministic})
/// on the Low/Med/High intervals of each dataset; event times come from
/// `event_times_of` (request times or session-start times).
template <typename EventTimesOf>
PoissonBenchOutcome run_poisson_bench(const std::vector<weblog::Dataset>& servers,
                                      const BenchContext& ctx,
                                      EventTimesOf&& event_times_of,
                                      std::size_t min_events) {
  PoissonBenchOutcome outcome;
  support::Table table({"server", "interval", "events", "rate cfg", "spread",
                        "indep?", "expon?", "verdict"});

  for (const auto& ds : servers) {
    const auto times = event_times_of(ds);
    for (auto load : {weblog::Load::kLow, weblog::Load::kMed, weblog::Load::kHigh}) {
      auto interval = ds.pick(load);
      if (!interval.ok()) continue;
      std::vector<double> in_window;
      for (double t : times)
        if (t >= interval.value().t0 && t < interval.value().t1)
          in_window.push_back(t);

      if (in_window.size() < min_events) {
        table.add_row({ds.name(), to_string(load),
                       std::to_string(in_window.size()), "-", "-", "-", "-",
                       "NA (too few events)"});
        continue;
      }

      struct Config {
        double seconds;
        poisson::SpreadMode spread;
        const char* rate_label;
        const char* spread_label;
      };
      const Config configs[] = {
          {3600.0, poisson::SpreadMode::kUniform, "1-hour", "uniform"},
          {3600.0, poisson::SpreadMode::kDeterministic, "1-hour", "determ."},
          {600.0, poisson::SpreadMode::kUniform, "10-min", "uniform"},
          {600.0, poisson::SpreadMode::kDeterministic, "10-min", "determ."},
      };
      for (const auto& cfg : configs) {
        poisson::PoissonTestOptions popts;
        popts.interval_seconds = cfg.seconds;
        popts.spread = cfg.spread;
        support::Rng rng(ctx.seed + 17);
        const auto r = poisson::test_poisson_arrivals(
            in_window, interval.value().t0, interval.value().t1, popts, rng);
        if (!r.ok()) {
          table.add_row({ds.name(), to_string(load),
                         std::to_string(in_window.size()), cfg.rate_label,
                         cfg.spread_label, "-", "-",
                         "NA (" + r.error().category + ")"});
          continue;
        }
        ++outcome.cells_ran;
        const bool poisson_verdict = r.value().poisson();
        if (poisson_verdict) {
          ++outcome.cells_poisson;
          outcome.poisson_cells.push_back(ds.name() + " " + to_string(load) +
                                          " " + cfg.rate_label + "/" +
                                          cfg.spread_label);
        }
        table.add_row({ds.name(), to_string(load),
                       std::to_string(in_window.size()), cfg.rate_label,
                       cfg.spread_label, r.value().independent ? "yes" : "NO",
                       r.value().exponential ? "yes" : "NO",
                       poisson_verdict ? "Poisson" : "NOT Poisson"});
      }
    }
    table.add_separator();
  }
  table.print(std::cout);
  return outcome;
}

}  // namespace fullweb::bench
