// Engineering-consequence ablation: how queueing delay depends on the
// workload's Hurst exponent at FIXED utilization.
//
// The paper motivates workload characterization with "performance analysis
// and prediction, capacity planning, and admission control". This driver
// closes that loop: synthetic traffic with swept H (all else equal) feeds a
// FIFO server at constant utilization; p99 delay grows dramatically with H
// while the Poisson baseline stays put — the quantitative reason the
// paper's LRD findings matter to practitioners.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "queueing/fifo_queue.h"
#include "stats/distributions.h"
#include "timeseries/fgn.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Queueing-delay ablation over the Hurst exponent",
                      "engineering consequence of §4 (not a paper figure)",
                      ctx);

  const double utilization = 0.7;
  support::Table table({"workload H (target)", "arrivals", "mean wait (s)",
                        "p95 (s)", "p99 (s)", "max (s)"});

  // Arrival model: a doubly-stochastic Poisson process whose intensity is
  // exp-transformed fGn with swept H — the controllable version of the
  // session generator's rate modulation. (The full session workload's
  // request-level H is dominated by the heavy-tailed session structure and
  // barely tracks the rate knob, so it cannot isolate this effect.)
  const double horizon = std::min(ctx.days, 2.0) * 86400.0;
  const double base_rate = 0.65;  // CSEE's order of magnitude
  const double sigma = 0.6;

  double p99_low = 0.0;
  double p99_high = 0.0;
  constexpr int kSeedsPerH = 3;  // average out single-realization noise
  for (double h : {0.55, 0.65, 0.75, 0.85, 0.92}) {
    double mean_w = 0, p95 = 0, p99 = 0, max_w = 0;
    std::size_t arrivals_total = 0;
    int used = 0;
    for (int rep = 0; rep < kSeedsPerH; ++rep) {
      support::Rng rng(ctx.seed ^ static_cast<std::uint64_t>(h * 1000) ^
                       static_cast<std::uint64_t>(rep * 7919));
      const auto seconds = static_cast<std::size_t>(horizon);
      auto fgn = timeseries::generate_fgn(seconds, h, 1.0, rng);
      if (!fgn.ok()) continue;
      std::vector<double> arrivals;
      arrivals.reserve(static_cast<std::size_t>(base_rate * horizon * 1.2));
      for (std::size_t t = 0; t < seconds; ++t) {
        const double rate =
            base_rate * std::exp(sigma * fgn.value()[t] - 0.5 * sigma * sigma);
        const long long n = stats::poisson_sample(rate, rng);
        for (long long i = 0; i < n; ++i)
          arrivals.push_back(static_cast<double>(t) + rng.uniform());
      }
      std::sort(arrivals.begin(), arrivals.end());
      if (arrivals.empty()) continue;
      const double rate = static_cast<double>(arrivals.size()) / horizon;
      const auto stats =
          queueing::simulate_fifo_deterministic(arrivals, utilization / rate);
      if (!stats.ok()) continue;
      mean_w += stats.value().mean_wait;
      p95 += stats.value().p95_wait;
      p99 += stats.value().p99_wait;
      max_w += stats.value().max_wait;
      arrivals_total += stats.value().arrivals;
      ++used;
    }
    if (used == 0) continue;
    mean_w /= used;
    p95 /= used;
    p99 /= used;
    max_w /= used;
    table.add_row({bench::fmt(h, 3), std::to_string(arrivals_total / used),
                   bench::fmt(mean_w, 4), bench::fmt(p95, 4),
                   bench::fmt(p99, 4), bench::fmt(max_w, 4)});
    if (h == 0.55) p99_low = p99;
    if (h == 0.92) p99_high = p99;
  }

  // Poisson baseline at the same utilization.
  {
    support::Rng rng(ctx.seed ^ 0xBEEF);
    const double rate = 0.65;  // same order as CSEE's request rate
    std::vector<double> arrivals;
    double t = 0.0;
    const double horizon = std::min(ctx.days, 2.0) * 86400.0;
    for (;;) {
      t += -std::log(rng.uniform_pos()) / rate;
      if (t >= horizon) break;
      arrivals.push_back(t);
    }
    const auto stats =
        queueing::simulate_fifo_deterministic(arrivals, utilization / rate);
    if (stats.ok()) {
      table.add_row({"Poisson (H=0.5)", std::to_string(stats.value().arrivals),
                     bench::fmt(stats.value().mean_wait, 4),
                     bench::fmt(stats.value().p95_wait, 4),
                     bench::fmt(stats.value().p99_wait, 4),
                     bench::fmt(stats.value().max_wait, 4)});
    }
  }
  table.print(std::cout);
  std::printf("\nutilization fixed at %.2f; p99 wait grows %.1fx from H=0.55 "
              "to H=0.92.\n",
              utilization, p99_high / std::max(1e-9, p99_low));
  return 0;
}
