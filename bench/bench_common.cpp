#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/executor.h"
#include "support/strings.h"

namespace fullweb::bench {

bool parse_bench_flags(int argc, const char* const* argv, BenchContext* ctx,
                       support::CliFlags* extra) {
  support::CliFlags local;
  support::CliFlags& flags = extra != nullptr ? *extra : local;
  flags.define("scale", "1.0", "multiplier on each server's bench scale");
  flags.define("days", "7", "days of synthetic traffic");
  flags.define("seed", std::to_string(kDefaultSeed), "random seed");
  flags.define("threads", "0",
               "analysis threads (0 = hardware concurrency, 1 = serial)");
  flags.define("csv-dir", "", "existing directory for figure-data CSV dumps");
  if (!flags.parse(argc, argv)) return false;
  ctx->scale_multiplier = flags.get_double("scale");
  ctx->days = flags.get_double("days");
  ctx->seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const long long threads = flags.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return false;
  }
  ctx->threads = static_cast<std::size_t>(threads);
  ctx->csv_dir = flags.get("csv-dir");
  support::Executor::set_global_threads(ctx->threads);
  return true;
}

weblog::Dataset generate_server(const synth::ServerProfile& profile,
                                const BenchContext& ctx) {
  // Per-server stream derived from the seed and a stable name hash so a
  // driver that generates only one server sees the same data as one that
  // generates all four.
  std::uint64_t name_hash = 1469598103934665603ULL;
  for (char c : profile.name) {
    name_hash ^= static_cast<unsigned char>(c);
    name_hash *= 1099511628211ULL;
  }
  support::Rng rng(ctx.seed ^ name_hash);

  synth::GeneratorOptions opts;
  opts.scale = profile.bench_scale * ctx.scale_multiplier;
  opts.duration = ctx.days * 86400.0;
  auto ds = synth::generate_dataset(profile, opts, rng);
  if (!ds.ok()) {
    std::fprintf(stderr, "fatal: generating %s failed: %s\n",
                 profile.name.c_str(), ds.error().message.c_str());
    std::exit(1);
  }
  return std::move(ds).value();
}

std::vector<weblog::Dataset> generate_all_servers(const BenchContext& ctx) {
  std::vector<weblog::Dataset> out;
  for (const auto& profile : synth::ServerProfile::all_four())
    out.push_back(generate_server(profile, ctx));
  return out;
}

void print_header(const std::string& title, const std::string& paper_ref,
                  const BenchContext& ctx) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("workload: synthetic (see DESIGN.md substitutions); days=%.1f "
              "scale-mult=%.3g seed=%llu threads=%zu\n",
              ctx.days, ctx.scale_multiplier,
              static_cast<unsigned long long>(ctx.seed),
              support::Executor::global().threads());
  std::printf("================================================================\n\n");
}

std::string fmt(double v, int digits) { return support::format_sig(v, digits); }

std::string fmt_h(double h) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.3f", h);
  return buf;
}

void maybe_write_csv(const BenchContext& ctx, const std::string& name,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& columns) {
  if (ctx.csv_dir.empty() || columns.empty()) return;
  const std::string path = ctx.csv_dir + "/" + name + ".csv";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  for (std::size_t c = 0; c < header.size(); ++c) {
    os << header[c];
    if (c + 1 < header.size()) os << ',';
  }
  os << '\n';
  std::size_t rows = columns.front().size();
  for (const auto& col : columns) rows = std::min(rows, col.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      os << support::format_sig(columns[c][r], 10);
      if (c + 1 < columns.size()) os << ',';
    }
    os << '\n';
  }
  std::printf("  [csv] wrote %s (%zu rows)\n", path.c_str(), rows);
}

}  // namespace fullweb::bench
