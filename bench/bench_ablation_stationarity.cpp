// Ablation — how much does each stationarization step matter?
//
// The paper's central methodological claim (§4.1) is that trend and
// periodicity inflate Hurst estimates. This driver quantifies it on the WVU
// request series by estimating H under four treatments:
//   raw | detrend only | deseasonalize only | detrend + deseasonalize
// and for both seasonal-removal methods (differencing vs seasonal means).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "lrd/estimator_suite.h"
#include "stats/kpss.h"
#include "support/table.h"
#include "timeseries/detrend.h"
#include "timeseries/seasonal.h"

namespace {

using namespace fullweb;

void add_row(support::Table& table, const std::string& label,
             const std::vector<double>& series) {
  const auto suite = lrd::hurst_suite(series);
  std::vector<std::string> row = {label};
  for (auto method :
       {lrd::HurstMethod::kVarianceTime, lrd::HurstMethod::kRoverS,
        lrd::HurstMethod::kPeriodogram, lrd::HurstMethod::kWhittle,
        lrd::HurstMethod::kAbryVeitch}) {
    const auto* est = suite.find(method);
    row.push_back(est != nullptr ? bench::fmt_h(est->h) : "-");
  }
  row.push_back(bench::fmt_h(suite.mean_h()));
  const auto kpss = stats::kpss_test(series);
  row.push_back(kpss.ok() ? (kpss.value().stationary_at_5pct() ? "yes" : "NO")
                          : "-");
  table.add_row(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Ablation — stationarization steps vs Hurst estimates",
                      "paper §4.1 methodology (design-choice ablation)", ctx);

  const auto ds = bench::generate_server(synth::ServerProfile::wvu(), ctx);
  const auto raw = ds.requests_per_second();

  const auto detrended = timeseries::detrend_linear(raw).residual;
  const auto period_r = timeseries::detect_period(raw, 3600, 2 * 86400);
  const std::size_t period = period_r.ok() ? period_r.value() : 86400;

  const auto deseason_only = timeseries::seasonal_difference(raw, period);
  const auto both_diff = timeseries::seasonal_difference(detrended, period);
  const auto both_means = timeseries::remove_seasonal_means(detrended, period);

  support::Table table({"treatment", "Variance", "R/S", "Periodogram",
                        "Whittle", "Abry-Veitch", "mean H", "KPSS pass"});
  add_row(table, "raw", raw);
  add_row(table, "detrend only", detrended);
  add_row(table, "deseasonalize only (diff)", deseason_only);
  add_row(table, "detrend + diff (paper)", both_diff);
  add_row(table, "detrend + seasonal means", both_means);
  table.print(std::cout);

  std::printf(
      "\nreading: the time-domain estimators (Variance, R/S) absorb the 24 h\n"
      "cycle and trend as spurious long memory — raw mean H exceeds the fully\n"
      "stationarized mean H. Wavelet/Whittle estimators are more robust (D4\n"
      "is blind to linear trends by construction). Differencing and\n"
      "seasonal-means agree closely, so the paper's differencing choice is\n"
      "not load-bearing. Detected period: %zu s.\n",
      period);
  return 0;
}
