// bench_fleet: the fleet pipeline's two headline numbers.
//
//  1. Columnar vs CLF re-ingest: the same server-half-day loaded through
//     Dataset::from_columnar (binary store, no parsing/sessionization)
//     versus the streaming CLF text path. The ratio is a work-reduction
//     speedup, so it holds on any host regardless of core count; the
//     perf-smoke gate puts a --min-speedup floor under it.
//  2. Fleet fit throughput: shards fitted per second through
//     analyze_fleet at 1 and --threads workers, over --shards synthetic
//     servers (trimmed fit options, matching the fleet_determinism gate).
//
// Output is bench_compare-compatible JSON (a "benchmarks" array whose
// entries carry "speedup" fields):
//
//   bench_fleet --json-out BENCH_fleet.json
//   bench_compare --min-speedup 3 --name columnar BENCH_fleet.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "store/columnar.h"
#include "support/cli.h"
#include "support/executor.h"
#include "support/json.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "synth/profile.h"
#include "weblog/clf.h"
#include "weblog/dataset.h"

namespace {

using namespace fullweb;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median-of-reps wall time for one call.
template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const double start = now_seconds();
    fn();
    times.push_back(now_seconds() - start);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::vector<weblog::Dataset> synthetic_fleet(std::size_t shards, double hours,
                                             double scale) {
  std::vector<weblog::Dataset> fleet;
  const auto profiles = synth::ServerProfile::all_four();
  for (std::size_t i = 0; i < shards; ++i) {
    support::Rng rng(1000 + i);
    synth::GeneratorOptions opt;
    opt.duration = hours * 3600.0;
    opt.scale = scale;
    opt.start_time = 1073865600.0 + static_cast<double>(i) * opt.duration;
    auto ds = synth::generate_dataset(profiles[i % profiles.size()], opt, rng);
    if (!ds.ok()) {
      std::fprintf(stderr, "bench_fleet: shard %zu: %s\n", i,
                   ds.error().message.c_str());
      std::exit(1);
    }
    fleet.push_back(std::move(ds).value());
  }
  return fleet;
}

core::FleetOptions trimmed_options(support::Executor* ex) {
  core::FleetOptions opt;
  opt.executor = ex;
  opt.fit.run_poisson = false;
  opt.fit.run_error_analysis = false;
  opt.fit.arrivals.run_aggregation_sweep = false;
  opt.fit.arrivals.hurst.run_whittle = false;
  opt.fit.tails.run_curvature = false;
  return opt;
}

struct BenchRow {
  std::string name;
  double seconds = 0.0;
  double items_per_second = 0.0;
  double speedup = 0.0;  ///< 0 = omit the field
};

}  // namespace

int main(int argc, char** argv) {
  support::CliFlags flags;
  flags.define("scale", "0.6", "synthetic volume scale for the ingest fixture");
  flags.define("hours", "12", "ingest fixture duration (hours)");
  flags.define("shards", "8", "fleet size for the fit-throughput runs");
  flags.define("shard-hours", "3", "per-shard duration (hours)");
  flags.define("shard-scale", "0.5", "per-shard volume scale");
  flags.define("threads", "8", "parallel executor width for the fleet fit");
  flags.define("reps", "5", "repetitions per timing (median reported)");
  flags.define("json-out", "BENCH_fleet.json", "bench_compare-compatible output");
  if (!flags.parse(argc, argv)) return 2;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  const std::string clf_path = "/tmp/fullweb_bench_fleet.log";
  const std::string fwc_path = "/tmp/fullweb_bench_fleet.fwc";

  // Fixture: one synthetic ClarkNet window rendered once as CLF text, then
  // stored once as columnar binary; both paths re-ingest the same traffic.
  std::size_t fixture_requests = 0;
  std::uint64_t clf_bytes = 0;
  {
    support::Rng rng(1234);
    synth::GeneratorOptions gen;
    gen.duration = flags.get_double("hours") * 3600.0;
    gen.scale = flags.get_double("scale");
    auto workload =
        synth::generate_workload(synth::ServerProfile::clarknet(), gen, rng);
    if (!workload.ok()) {
      std::fprintf(stderr, "bench_fleet: fixture: %s\n",
                   workload.error().message.c_str());
      return 1;
    }
    std::ofstream os(clf_path, std::ios::binary | std::ios::trunc);
    support::Rng rng2(1235);
    for (const auto& e : synth::to_log_entries(workload.value(), rng2)) {
      const std::string line = weblog::to_clf_line(e);
      os << line << '\n';
      clf_bytes += line.size() + 1;
    }
    os.close();
    const std::vector<std::string> paths = {clf_path};
    auto ds = weblog::Dataset::from_clf_stream("bench-fleet", paths);
    if (!ds.ok()) {
      std::fprintf(stderr, "bench_fleet: fixture ingest: %s\n",
                   ds.error().message.c_str());
      return 1;
    }
    fixture_requests = ds.value().requests().size();
    auto written = ds.value().to_columnar(fwc_path);
    if (!written.ok()) {
      std::fprintf(stderr, "bench_fleet: fixture store: %s\n",
                   written.error().message.c_str());
      return 1;
    }
    std::printf("fixture: %zu requests, CLF %llu bytes -> columnar %llu bytes "
                "(%.1fx smaller)\n",
                fixture_requests, static_cast<unsigned long long>(clf_bytes),
                static_cast<unsigned long long>(written.value()),
                static_cast<double>(clf_bytes) /
                    static_cast<double>(written.value()));
  }

  std::vector<BenchRow> rows;

  // 1) CLF text re-ingest (serial executor: isolate parse work, not pool).
  support::Executor serial(1);
  const double clf_seconds = time_reps(reps, [&] {
    weblog::StreamIngestOptions opts;
    opts.reader.executor = &serial;
    const std::vector<std::string> paths = {clf_path};
    auto ds = weblog::Dataset::from_clf_stream("bench-fleet", paths, opts);
    if (!ds.ok()) std::exit(1);
  });
  rows.push_back({"ingest/clf", clf_seconds,
                  static_cast<double>(fixture_requests) / clf_seconds, 0.0});

  // 2) Columnar re-ingest of the identical dataset.
  const double fwc_seconds = time_reps(reps, [&] {
    auto ds = weblog::Dataset::from_columnar(fwc_path);
    if (!ds.ok()) std::exit(1);
  });
  rows.push_back({"ingest/columnar_vs_clf", fwc_seconds,
                  static_cast<double>(fixture_requests) / fwc_seconds,
                  clf_seconds / fwc_seconds});

  // 3) Fleet fit throughput, serial and parallel.
  const auto shards = static_cast<std::size_t>(flags.get_int("shards"));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads"));
  const auto fleet = synthetic_fleet(shards, flags.get_double("shard-hours"),
                                     flags.get_double("shard-scale"));
  double fleet_serial_seconds = 0.0;
  for (const std::size_t t : {std::size_t{1}, threads}) {
    support::Executor ex(t);
    const double seconds = time_reps(reps, [&] {
      support::Rng rng(42);
      auto report = core::analyze_fleet(fleet, rng, trimmed_options(&ex));
      if (!report.ok()) std::exit(1);
    });
    if (t == 1) fleet_serial_seconds = seconds;
    rows.push_back({"fleet_fit/threads:" + std::to_string(t), seconds,
                    static_cast<double>(shards) / seconds,
                    t == 1 ? 0.0 : fleet_serial_seconds / seconds});
  }

  for (const BenchRow& r : rows) {
    std::printf("%-28s %10.4f s  %12.0f items/s", r.name.c_str(), r.seconds,
                r.items_per_second);
    if (r.speedup > 0.0) std::printf("  speedup %.2fx", r.speedup);
    std::printf("\n");
  }

  const std::string json_path = flags.get("json-out");
  if (!json_path.empty()) {
    support::JsonWriter w;
    w.begin_object();
    w.key("context");
    w.begin_object();
    w.field("fixture_requests", fixture_requests);
    w.field("clf_bytes", static_cast<std::size_t>(clf_bytes));
    w.field("shards", shards);
    w.field("threads", threads);
    w.field("reps", reps);
    w.end_object();
    w.key("benchmarks");
    w.begin_array();
    for (const BenchRow& r : rows) {
      w.begin_object();
      w.field("name", r.name);
      w.field("real_time", r.seconds * 1e9);
      w.field("time_unit", "ns");
      w.field("items_per_second", r.items_per_second);
      if (r.speedup > 0.0) {
        w.field("speedup", r.speedup);
        w.field("speedup_source", "measured");
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream json(json_path, std::ios::binary | std::ios::trunc);
    json << std::move(w).str() << '\n';
    if (!json) {
      std::fprintf(stderr, "bench_fleet: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
