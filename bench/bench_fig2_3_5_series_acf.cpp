// Figures 2, 3, 5 — WVU request series and its autocorrelation before and
// after removing trend + periodicity.
//   Fig 2: requests/second time-series (rendered at 10-minute resolution).
//   Fig 3: ACF of the raw per-second series (slowly decaying).
//   Fig 5: ACF after stationarization (lower, but still non-summable).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/stationary.h"
#include "stats/acf.h"
#include "support/ascii_plot.h"
#include "support/table.h"
#include "timeseries/series.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Figures 2, 3, 5 — WVU request series and ACF",
                      "paper §4.1, Figures 2/3/5", ctx);

  const auto ds = bench::generate_server(synth::ServerProfile::wvu(), ctx);
  const auto series = ds.requests_per_second();

  // ---- Figure 2: the series itself, aggregated to 10-minute bins for
  // rendering (the per-second figure is visually identical in shape).
  {
    const auto coarse = timeseries::aggregate(series, 600);
    std::vector<double> x(coarse.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = static_cast<double>(i) * 600.0 / 3600.0;  // hours
    support::PlotOptions popts;
    popts.title = "Figure 2: requests per second (10-min averages) — WVU";
    popts.x_label = "hours since trace start";
    popts.height = 14;
    std::fputs(support::render_plot(x, coarse, popts).c_str(), stdout);
    std::printf("\n");
    bench::maybe_write_csv(ctx, "fig2_wvu_series", {"hours", "req_per_s"},
                           {x, coarse});
  }

  // ---- Figures 3 and 5: ACF raw vs stationary.
  constexpr std::size_t kMaxLag = 600;
  const auto acf_raw = stats::acf(series, kMaxLag);

  core::StationaryOptions sopts;
  const auto st = core::make_stationary(series, sopts);
  if (!st.ok()) {
    std::fprintf(stderr, "stationarization failed: %s\n",
                 st.error().message.c_str());
    return 1;
  }
  const auto acf_st = stats::acf(st.value().series, kMaxLag);

  std::printf("KPSS raw: stat=%s (%s); detected period=%zu s; trend slope=%s/s\n\n",
              bench::fmt(st.value().kpss_raw.statistic, 4).c_str(),
              st.value().was_stationary ? "stationary" : "NON-stationary",
              st.value().period, bench::fmt(st.value().trend_slope, 3).c_str());

  {
    std::vector<double> lags(kMaxLag);
    std::vector<double> raw(kMaxLag), stat(kMaxLag);
    for (std::size_t k = 1; k <= kMaxLag; ++k) {
      lags[k - 1] = static_cast<double>(k);
      raw[k - 1] = acf_raw[k];
      stat[k - 1] = acf_st[k];
    }
    support::PlotOptions popts;
    popts.title = "Figures 3/5: ACF of requests/second — raw (r) vs stationary (s)";
    popts.x_label = "lag (seconds)";
    popts.height = 14;
    std::fputs(support::render_plot({{"raw", lags, raw, 'r'},
                                     {"stationary", lags, stat, 's'}},
                                    popts)
                   .c_str(),
               stdout);
    bench::maybe_write_csv(ctx, "fig3_5_wvu_acf",
                           {"lag_s", "acf_raw", "acf_stationary"},
                           {lags, raw, stat});
  }

  support::Table table({"lag", "ACF raw (Fig 3)", "ACF stationary (Fig 5)"});
  for (std::size_t lag : {1, 2, 5, 10, 30, 60, 120, 300, 600}) {
    table.add_row({std::to_string(lag), bench::fmt(acf_raw[lag], 3),
                   bench::fmt(acf_st[lag], 3)});
  }
  std::printf("\n");
  table.print(std::cout);

  const double sum_raw = stats::acf_abs_sum(series, kMaxLag);
  const double sum_st = stats::acf_abs_sum(st.value().series, kMaxLag);
  std::printf(
      "\nsum |ACF| over lags 1..%zu: raw=%s  stationary=%s\n"
      "shape check (paper §4.1): the stationary ACF is lower than the raw ACF\n"
      "(ignoring trend/periodicity OVERESTIMATES long-range dependence), yet\n"
      "still decays slowly => long-range dependence remains.\n",
      kMaxLag, bench::fmt(sum_raw, 4).c_str(), bench::fmt(sum_st, 4).c_str());
  return sum_st < sum_raw ? 0 : 1;
}
