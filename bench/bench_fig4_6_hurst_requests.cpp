// Figures 4 and 6 — Hurst exponent of the requests-per-second series for
// all four servers (sorted by volume), estimated with all five methods on
// the raw data (Fig 4) and on the stationary data (Fig 6).
//
// Shape goals from the paper: (1) raw estimates are mostly higher than
// stationary ones; (2) all stationary estimates lie in (0.5, 1) — LRD;
// (3) the degree of self-similarity increases with workload intensity.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/arrival_analysis.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Figures 4 & 6 — Hurst exponent, requests per second",
                      "paper §4.1, Figures 4 and 6", ctx);

  support::Table table({"server", "series", "Variance", "R/S", "Periodogram",
                        "Whittle", "Abry-Veitch", "mean H"});
  struct MeanPair {
    std::string server;
    double raw = 0.0;
    double stationary = 0.0;
    bool lrd = false;
  };
  std::vector<MeanPair> means;

  core::ArrivalAnalysisOptions opts;
  opts.run_aggregation_sweep = false;

  for (const auto& profile : synth::ServerProfile::all_four()) {
    const auto ds = bench::generate_server(profile, ctx);
    const auto analysis = core::analyze_arrivals(ds.requests_per_second(), opts);
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   analysis.error().message.c_str());
      continue;
    }
    auto row_for = [&](const char* label, const lrd::HurstSuiteResult& suite) {
      std::vector<std::string> row = {profile.name, label};
      for (auto method :
           {lrd::HurstMethod::kVarianceTime, lrd::HurstMethod::kRoverS,
            lrd::HurstMethod::kPeriodogram, lrd::HurstMethod::kWhittle,
            lrd::HurstMethod::kAbryVeitch}) {
        const auto* est = suite.find(method);
        row.push_back(est != nullptr ? bench::fmt_h(est->h) : "-");
      }
      row.push_back(bench::fmt_h(suite.mean_h()));
      table.add_row(std::move(row));
    };
    row_for("raw (Fig 4)", analysis.value().hurst_raw);
    row_for("stationary (Fig 6)", analysis.value().hurst_stationary);
    table.add_separator();
    means.push_back({profile.name, analysis.value().hurst_raw.mean_h(),
                     analysis.value().hurst_stationary.mean_h(),
                     analysis.value().long_range_dependent()});
  }
  table.print(std::cout);

  std::printf("\nshape checks (paper §4.1 observations):\n");
  bool ok = true;
  std::size_t raw_higher = 0;
  for (const auto& m : means)
    if (m.raw >= m.stationary) ++raw_higher;
  std::printf("  (1) raw >= stationary mean H for %zu/%zu servers "
              "(paper: higher 'with a few exceptions')\n",
              raw_higher, means.size());

  bool all_lrd = true;
  for (const auto& m : means) all_lrd = all_lrd && m.lrd;
  std::printf("  (2) all stationary estimates in (0.5, 1): %s\n",
              all_lrd ? "YES — request arrivals are LRD on every server"
                      : "NO");
  ok = ok && all_lrd;

  bool monotone = true;
  for (std::size_t i = 1; i < means.size(); ++i)
    monotone = monotone && means[i - 1].stationary >= means[i].stationary - 0.03;
  std::printf("  (3) degree of self-similarity grows with workload intensity: %s\n",
              monotone ? "YES (within 0.03 tolerance)" : "NO");
  ok = ok && monotone;
  return ok ? 0 : 1;
}
