// Ingest microbenchmarks (google-benchmark) — throughput of the streaming
// ingestion layer: chunked parallel CLF reading at 1/4/8 threads, the
// batch (slurp + from_entries) reference path, chunk parsing, and the
// streaming vs batch sessionizers.
//
// Unless --benchmark_out is given explicitly, results are also written as
// google-benchmark JSON to BENCH_ingest.json in the working directory; diff
// two runs with tools/bench_compare (see EXPERIMENTS.md "Perf baseline").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "support/executor.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "weblog/clf.h"
#include "weblog/clf_reader.h"
#include "weblog/dataset.h"
#include "weblog/merge.h"
#include "weblog/sessionizer.h"
#include "weblog/streaming_sessionizer.h"

namespace {

using namespace fullweb;

/// One synthetic half-day of ClarkNet traffic written once as a CLF file;
/// every benchmark ingests the same bytes.
class LogFixture {
 public:
  static LogFixture& get() {
    static LogFixture fixture;
    return fixture;
  }

  const std::string& path() const { return path_; }
  std::int64_t bytes() const { return bytes_; }
  std::size_t lines() const { return lines_; }

 private:
  LogFixture() {
    path_ = "/tmp/fullweb_bench_ingest.log";
    support::Rng rng(1234);
    synth::GeneratorOptions gen;
    gen.duration = 12 * 3600.0;
    gen.scale = 0.6;
    auto workload =
        synth::generate_workload(synth::ServerProfile::clarknet(), gen, rng);
    if (!workload.ok()) {
      std::fprintf(stderr, "bench_ingest: fixture generation failed: %s\n",
                   workload.error().message.c_str());
      std::exit(1);
    }
    std::ofstream os(path_, std::ios::binary);
    support::Rng rng2(1235);
    for (const auto& e : synth::to_log_entries(workload.value(), rng2)) {
      const std::string line = weblog::to_clf_line(e);
      os << line << '\n';
      bytes_ += static_cast<std::int64_t>(line.size()) + 1;
      ++lines_;
    }
  }

  std::string path_;
  std::int64_t bytes_ = 0;
  std::size_t lines_ = 0;
};

/// Full streaming ingest (read + parse + intern + sessionize) at a given
/// thread count.
void BM_IngestStream(benchmark::State& state) {
  auto& fx = LogFixture::get();
  support::Executor ex(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::string> paths = {fx.path()};
  for (auto _ : state) {
    weblog::StreamIngestOptions opts;
    opts.reader.executor = &ex;
    auto ds = weblog::Dataset::from_clf_stream("bench", paths, opts);
    if (!ds.ok()) state.SkipWithError("ingest failed");
    benchmark::DoNotOptimize(ds);
  }
  state.SetBytesProcessed(state.iterations() * fx.bytes());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.lines()));
}
BENCHMARK(BM_IngestStream)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

/// The pre-streaming reference: slurp-parse everything, then from_entries.
void BM_IngestBatch(benchmark::State& state) {
  auto& fx = LogFixture::get();
  const std::vector<std::string> paths = {fx.path()};
  for (auto _ : state) {
    auto merged = weblog::merge_clf_files(paths);
    if (!merged.ok()) state.SkipWithError("merge failed");
    auto ds = weblog::Dataset::from_entries("bench", merged.value().entries);
    if (!ds.ok()) state.SkipWithError("dataset failed");
    benchmark::DoNotOptimize(ds);
  }
  state.SetBytesProcessed(state.iterations() * fx.bytes());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.lines()));
}
BENCHMARK(BM_IngestBatch)->UseRealTime();

/// Reader alone (no dataset/sessionizer): parallel parse throughput.
void BM_ReadClfFile(benchmark::State& state) {
  auto& fx = LogFixture::get();
  support::Executor ex(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    weblog::ClfReaderOptions opts;
    opts.executor = &ex;
    std::size_t n = 0;
    auto stats = weblog::read_clf_file(fx.path(), opts,
                                       [&](weblog::LogEntry&&) { ++n; });
    if (!stats.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(state.iterations() * fx.bytes());
}
BENCHMARK(BM_ReadClfFile)->Arg(1)->Arg(8)->UseRealTime();

std::vector<weblog::Request> sorted_requests(std::size_t n) {
  support::Rng rng(7);
  std::vector<weblog::Request> requests(n);
  for (auto& r : requests) {
    r.time = rng.uniform(0.0, 7 * 86400.0);
    r.client = static_cast<std::uint32_t>(rng.below(n / 20 + 1));
    r.bytes = rng.below(100000);
  }
  std::sort(requests.begin(), requests.end(),
            [](const weblog::Request& a, const weblog::Request& b) {
              return a.time < b.time;
            });
  return requests;
}

/// Incremental sessionization of a time-sorted stream (O(open) memory).
void BM_SessionizeStreaming(benchmark::State& state) {
  const auto requests = sorted_requests(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    weblog::StreamingSessionizer ss;
    for (const auto& r : requests) ss.add(r);
    auto sessions = ss.finish();
    benchmark::DoNotOptimize(sessions);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SessionizeStreaming)->Arg(1 << 16)->Arg(1 << 20);

/// Batch sessionization of the same sorted input, for the ratio.
void BM_SessionizeBatchSorted(benchmark::State& state) {
  const auto requests = sorted_requests(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto sessions = weblog::sessionize(requests);
    benchmark::DoNotOptimize(sessions);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SessionizeBatchSorted)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

// BENCHMARK_MAIN() plus a default JSON sink (same contract as bench_micro):
// running the binary regenerates the machine-readable baseline
// BENCH_ingest.json unless --benchmark_out overrides it.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_ingest.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc_eff = static_cast<int>(args.size());
  benchmark::Initialize(&argc_eff, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_eff, args.data())) return 1;
  // library_build_type in the JSON describes the system libbenchmark (which
  // reports "debug" regardless of our flags); stamp how *this binary* was
  // compiled so bench_compare --check-release can audit the baseline.
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
