// Microbenchmarks (google-benchmark) — throughput of the computational
// kernels: FFT, ACF, periodogram, Hurst estimators, FGN synthesis, KPSS,
// bootstrap tail CIs, the CLF parser, and the sessionizer.
//
// Unless --benchmark_out is given explicitly, results are also written as
// google-benchmark JSON to BENCH_micro.json in the working directory; diff
// two runs with tools/bench_compare (see EXPERIMENTS.md "Perf baseline").
#include <benchmark/benchmark.h>

#include <complex>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "lrd/abry_veitch.h"
#include "lrd/estimator_suite.h"
#include "lrd/rs.h"
#include "lrd/variance_time.h"
#include "lrd/whittle.h"
#include "stats/acf.h"
#include "stats/distributions.h"
#include "stats/fft.h"
#include "stats/kpss.h"
#include "stats/periodogram.h"
#include "support/executor.h"
#include "support/rng.h"
#include "tail/bootstrap.h"
#include "timeseries/fgn.h"
#include "weblog/clf.h"
#include "weblog/sessionizer.h"

namespace {

using namespace fullweb;

std::vector<double> noise(std::size_t n, std::uint64_t seed = 1) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  return xs;
}

/// Real-input transform, power-of-two length: packed half-length path.
void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = noise(n);
  std::vector<std::complex<double>> spec;
  for (auto _ : state) {
    stats::fft_real(xs, spec);
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/// Full complex transform at the same lengths, for the real-path ratio.
void BM_FftComplexPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = noise(n);
  std::vector<std::complex<double>> src(n);
  for (std::size_t i = 0; i < n; ++i) src[i] = {xs[i], 0.0};
  std::vector<std::complex<double>> buf;
  for (auto _ : state) {
    buf = src;
    stats::fft(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftComplexPow2)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/// Genuine Bluestein lengths (prime / highly composite non-pow-2), through
/// the complex fft() entry point so no pow-2 fast path can hide the chirp
/// machinery. 86,400 = one day of per-second samples.
void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = noise(n);
  std::vector<std::complex<double>> src(n);
  for (std::size_t i = 0; i < n; ++i) src[i] = {xs[i], 0.0};
  std::vector<std::complex<double>> buf;
  for (auto _ : state) {
    buf = src;
    stats::fft(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftBluestein)->Arg(10007)->Arg(86400);

void BM_Acf(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = stats::acf(xs, 100);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Acf)->Arg(1 << 14)->Arg(1 << 18);

void BM_Periodogram(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto pg = stats::periodogram(xs);
    benchmark::DoNotOptimize(pg);
  }
}
BENCHMARK(BM_Periodogram)->Arg(1 << 16);

void BM_Kpss(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = stats::kpss_test(xs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Kpss)->Arg(1 << 14)->Arg(1 << 18);

void BM_GenerateFgn(benchmark::State& state) {
  support::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto xs = timeseries::generate_fgn(n, 0.8, 1.0, rng);
    benchmark::DoNotOptimize(xs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GenerateFgn)->Arg(1 << 14)->Arg(1 << 18);

/// Monte-Carlo shape: 100 draws at one (n, H) configuration per iteration,
/// the access pattern of bench_validation_estimators and the curvature
/// tests. Exercises the circulant-spectrum cache across replicates.
void BM_GenerateFgnSweep100(benchmark::State& state) {
  support::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (int rep = 0; rep < 100; ++rep) {
      auto xs = timeseries::generate_fgn(n, 0.8, 1.0, rng);
      benchmark::DoNotOptimize(xs);
    }
  }
  state.SetItemsProcessed(state.iterations() * 100 * static_cast<int64_t>(n));
}
BENCHMARK(BM_GenerateFgnSweep100)->Arg(1 << 14);

void BM_BootstrapHillCi(benchmark::State& state) {
  support::Rng sample_rng(8);
  const stats::Pareto dist(1.4, 1.0);
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (auto& x : xs) x = dist.sample(sample_rng);
  tail::BootstrapOptions opts;
  opts.replicates = 60;
  for (auto _ : state) {
    support::Rng rng(9);
    auto ci = tail::bootstrap_hill_ci(xs, rng, opts);
    benchmark::DoNotOptimize(ci);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(opts.replicates));
}
BENCHMARK(BM_BootstrapHillCi)->Arg(5000);

void BM_BootstrapLlcdCi(benchmark::State& state) {
  support::Rng sample_rng(10);
  const stats::Pareto dist(1.4, 1.0);
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (auto& x : xs) x = dist.sample(sample_rng);
  tail::BootstrapOptions opts;
  opts.replicates = 60;
  for (auto _ : state) {
    support::Rng rng(11);
    auto ci = tail::bootstrap_llcd_ci(xs, rng, opts);
    benchmark::DoNotOptimize(ci);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(opts.replicates));
}
BENCHMARK(BM_BootstrapLlcdCi)->Arg(5000);

void BM_WhittleHurst(benchmark::State& state) {
  support::Rng rng(4);
  auto fgn = timeseries::generate_fgn(
      static_cast<std::size_t>(state.range(0)), 0.8, 1.0, rng);
  for (auto _ : state) {
    auto r = lrd::whittle_hurst(fgn.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WhittleHurst)->Arg(1 << 14)->Arg(1 << 18);

void BM_AbryVeitchHurst(benchmark::State& state) {
  support::Rng rng(5);
  auto fgn = timeseries::generate_fgn(
      static_cast<std::size_t>(state.range(0)), 0.8, 1.0, rng);
  for (auto _ : state) {
    auto r = lrd::abry_veitch_hurst(fgn.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AbryVeitchHurst)->Arg(1 << 14)->Arg(1 << 18);

void BM_RsHurst(benchmark::State& state) {
  support::Rng rng(13);
  auto fgn = timeseries::generate_fgn(
      static_cast<std::size_t>(state.range(0)), 0.8, 1.0, rng);
  for (auto _ : state) {
    auto r = lrd::rs_hurst(fgn.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RsHurst)->Arg(1 << 18);

/// WVU-scale reference series: one week of per-second samples, H = 0.8.
/// Shared by the suite/sweep benches below (the acceptance series for the
/// compute-sharing layer; see EXPERIMENTS.md "Perf baseline").
const std::vector<double>& wvu_series() {
  static const std::vector<double> xs = [] {
    support::Rng rng(12);
    auto r = timeseries::generate_fgn(604800, 0.8, 1.0, rng);
    return r.ok() ? r.value() : std::vector<double>{};
  }();
  return xs;
}

/// Serial executor so the suite/sweep benches measure single-thread cost
/// regardless of the host's core count.
support::Executor& serial_executor() {
  static support::Executor ex(1);
  return ex;
}

/// Full five-estimator battery on the WVU-scale series at 1 thread.
void BM_EstimatorSuite(benchmark::State& state) {
  const auto& xs = wvu_series();
  lrd::HurstSuiteOptions opts;
  opts.executor = &serial_executor();
  for (auto _ : state) {
    auto r = lrd::hurst_suite(xs, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EstimatorSuite);

/// Figure 7/8 m-aggregation validation sweep at 1 thread. Arg 0 = Whittle
/// (Fig. 7), Arg 1 = Abry-Veitch (Fig. 8); the paper's level grid.
void BM_AggregatedHurstSweep(benchmark::State& state) {
  const auto& xs = wvu_series();
  static constexpr std::size_t kLevels[] = {1, 2, 5, 10, 20, 50, 100, 200, 500};
  const auto method = state.range(0) == 0 ? lrd::HurstMethod::kWhittle
                                          : lrd::HurstMethod::kAbryVeitch;
  lrd::HurstSuiteOptions opts;
  opts.executor = &serial_executor();
  for (auto _ : state) {
    auto r = lrd::aggregated_hurst_sweep(xs, method, kLevels, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AggregatedHurstSweep)->Arg(0)->Arg(1);

void BM_VarianceTimeHurst(benchmark::State& state) {
  support::Rng rng(6);
  auto fgn = timeseries::generate_fgn(
      static_cast<std::size_t>(state.range(0)), 0.8, 1.0, rng);
  for (auto _ : state) {
    auto r = lrd::variance_time_hurst(fgn.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VarianceTimeHurst)->Arg(1 << 18);

void BM_ParseClfLine(benchmark::State& state) {
  const std::string line =
      "10.12.34.56 - - [12/Jan/2004:13:55:36 +0000] "
      "\"GET /pages/p123.html HTTP/1.0\" 200 23261";
  for (auto _ : state) {
    auto e = weblog::parse_clf_line(line);
    benchmark::DoNotOptimize(e);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(line.size()));
}
BENCHMARK(BM_ParseClfLine);

void BM_Sessionize(benchmark::State& state) {
  support::Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<weblog::Request> requests(n);
  for (auto& r : requests) {
    r.time = rng.uniform(0.0, 7 * 86400.0);
    r.client = static_cast<std::uint32_t>(rng.below(n / 20 + 1));
    r.bytes = rng.below(100000);
  }
  for (auto _ : state) {
    auto sessions = weblog::sessionize(requests);
    benchmark::DoNotOptimize(sessions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Sessionize)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

// BENCHMARK_MAIN(), plus a default JSON sink: unless the caller passes its
// own --benchmark_out, results are mirrored to BENCH_micro.json in the
// working directory so the machine-readable perf baseline is regenerated by
// simply running the binary (tools/bench_compare diffs two such files).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc_eff = static_cast<int>(args.size());
  benchmark::Initialize(&argc_eff, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_eff, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
