// Microbenchmarks (google-benchmark) — throughput of the computational
// kernels: FFT, ACF, periodogram, Hurst estimators, FGN synthesis, KPSS,
// the CLF parser, and the sessionizer.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "lrd/abry_veitch.h"
#include "lrd/variance_time.h"
#include "lrd/whittle.h"
#include "stats/acf.h"
#include "stats/fft.h"
#include "stats/kpss.h"
#include "stats/periodogram.h"
#include "support/rng.h"
#include "timeseries/fgn.h"
#include "weblog/clf.h"
#include "weblog/sessionizer.h"

namespace {

using namespace fullweb;

std::vector<double> noise(std::size_t n, std::uint64_t seed = 1) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  return xs;
}

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = noise(n);
  for (auto _ : state) {
    auto spec = stats::fft_real(xs);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = noise(n);
  for (auto _ : state) {
    auto spec = stats::fft_real(xs);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftBluestein)->Arg(10007)->Arg(86400);

void BM_Acf(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = stats::acf(xs, 100);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Acf)->Arg(1 << 14)->Arg(1 << 18);

void BM_Periodogram(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto pg = stats::periodogram(xs);
    benchmark::DoNotOptimize(pg);
  }
}
BENCHMARK(BM_Periodogram)->Arg(1 << 16);

void BM_Kpss(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = stats::kpss_test(xs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Kpss)->Arg(1 << 14)->Arg(1 << 18);

void BM_GenerateFgn(benchmark::State& state) {
  support::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto xs = timeseries::generate_fgn(n, 0.8, 1.0, rng);
    benchmark::DoNotOptimize(xs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GenerateFgn)->Arg(1 << 14)->Arg(1 << 18);

void BM_WhittleHurst(benchmark::State& state) {
  support::Rng rng(4);
  auto fgn = timeseries::generate_fgn(
      static_cast<std::size_t>(state.range(0)), 0.8, 1.0, rng);
  for (auto _ : state) {
    auto r = lrd::whittle_hurst(fgn.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WhittleHurst)->Arg(1 << 14)->Arg(1 << 18);

void BM_AbryVeitchHurst(benchmark::State& state) {
  support::Rng rng(5);
  auto fgn = timeseries::generate_fgn(
      static_cast<std::size_t>(state.range(0)), 0.8, 1.0, rng);
  for (auto _ : state) {
    auto r = lrd::abry_veitch_hurst(fgn.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AbryVeitchHurst)->Arg(1 << 14)->Arg(1 << 18);

void BM_VarianceTimeHurst(benchmark::State& state) {
  support::Rng rng(6);
  auto fgn = timeseries::generate_fgn(
      static_cast<std::size_t>(state.range(0)), 0.8, 1.0, rng);
  for (auto _ : state) {
    auto r = lrd::variance_time_hurst(fgn.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VarianceTimeHurst)->Arg(1 << 18);

void BM_ParseClfLine(benchmark::State& state) {
  const std::string line =
      "10.12.34.56 - - [12/Jan/2004:13:55:36 +0000] "
      "\"GET /pages/p123.html HTTP/1.0\" 200 23261";
  for (auto _ : state) {
    auto e = weblog::parse_clf_line(line);
    benchmark::DoNotOptimize(e);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(line.size()));
}
BENCHMARK(BM_ParseClfLine);

void BM_Sessionize(benchmark::State& state) {
  support::Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<weblog::Request> requests(n);
  for (auto& r : requests) {
    r.time = rng.uniform(0.0, 7 * 86400.0);
    r.client = static_cast<std::uint32_t>(rng.below(n / 20 + 1));
    r.bytes = rng.below(100000);
  }
  for (auto _ : state) {
    auto sessions = weblog::sessionize(requests);
    benchmark::DoNotOptimize(sessions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Sessionize)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
