// Shared driver for the Tables 2/3/4 intra-session tail experiments.
#pragma once

#include <cstdio>
#include <iostream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/tail_analysis.h"
#include "support/table.h"
#include "weblog/dataset.h"

namespace fullweb::bench {

/// Paper cell: {hill, llcd, r2} as strings ("NS"/"NA" included).
struct PaperCell {
  const char* hill;
  const char* llcd;
  const char* r2;
};
/// paper_rows[interval][server] with interval in {Low, Med, High, Week} and
/// server order WVU, ClarkNet, CSEE, NASA-Pub2.
using PaperTable = std::map<std::string, std::vector<PaperCell>>;

using SampleExtractor = std::function<std::vector<double>(
    const weblog::Dataset&, double t0, double t1)>;

/// Runs the tail analysis for one characteristic over Low/Med/High/Week and
/// all four servers; prints measured vs paper cells. Returns the count of
/// measured Week-level alphas on the correct side of 2 (variance verdict)
/// relative to the paper, for the shape check.
inline void run_tail_table(const std::vector<weblog::Dataset>& servers,
                           const BenchContext& ctx,
                           const SampleExtractor& extract,
                           const PaperTable& paper) {
  support::Table table({"interval", "server", "n sessions", "aHill", "aLLCD",
                        "sigma", "R^2", "paper aHill", "paper aLLCD",
                        "paper R^2"});
  core::TailAnalysisOptions topts;
  topts.run_curvature = false;  // bench_curvature_tests covers §5.2.1

  const std::vector<std::string> intervals = {"Low", "Med", "High", "Week"};
  for (const auto& label : intervals) {
    for (std::size_t s = 0; s < servers.size(); ++s) {
      const auto& ds = servers[s];
      double t0 = ds.t0();
      double t1 = ds.t1();
      if (label != "Week") {
        const weblog::Load load = label == "Low"   ? weblog::Load::kLow
                                  : label == "Med" ? weblog::Load::kMed
                                                   : weblog::Load::kHigh;
        auto interval = ds.pick(load);
        if (!interval.ok()) continue;
        t0 = interval.value().t0;
        t1 = interval.value().t1;
      }
      const auto samples = extract(ds, t0, t1);
      support::Rng rng(ctx.seed + 99 + s);
      const auto tail = core::analyze_tail(samples, rng, topts);
      const PaperCell& cell = paper.at(label)[s];
      table.add_row({label, ds.name(), std::to_string(samples.size()),
                     tail.hill_cell(), tail.llcd_cell(),
                     tail.available && tail.llcd
                         ? fmt(tail.llcd->stderr_alpha, 2)
                         : "-",
                     tail.r2_cell(), cell.hill, cell.llcd, cell.r2});
    }
    table.add_separator();
  }
  table.print(std::cout);
}

}  // namespace fullweb::bench
