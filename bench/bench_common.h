// Shared scaffolding for the experiment drivers.
//
// Every bench regenerates one table or figure of the paper from synthetic
// workloads. Drivers share the seed, the per-server bench scales, and the
// "paper vs measured" table conventions so EXPERIMENTS.md can be assembled
// from their outputs directly.
#pragma once

#include <string>
#include <vector>

#include "support/cli.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "weblog/dataset.h"

namespace fullweb::bench {

inline constexpr std::uint64_t kDefaultSeed = 20060625;  // DSN'06 week

struct BenchContext {
  double scale_multiplier = 1.0;  ///< multiplies each profile's bench_scale
  double days = 7.0;
  std::uint64_t seed = kDefaultSeed;
  std::size_t threads = 0;        ///< analysis threads (0 = hardware)
  std::string csv_dir;            ///< when non-empty, figure data is dumped
                                  ///< as CSV files here
};

/// Standard flags shared by all drivers (--scale, --days, --seed,
/// --threads). Returns false when parsing fails (usage already printed).
/// --threads resizes the global executor, so every analysis call in the
/// driver runs at the requested parallelism.
bool parse_bench_flags(int argc, const char* const* argv, BenchContext* ctx,
                       support::CliFlags* extra = nullptr);

/// Generate one server at bench scale. Deterministic in (ctx.seed, name).
weblog::Dataset generate_server(const synth::ServerProfile& profile,
                                const BenchContext& ctx);

/// Generate all four paper servers (volume-descending order).
std::vector<weblog::Dataset> generate_all_servers(const BenchContext& ctx);

/// Print the standard bench header with reproduction context.
void print_header(const std::string& title, const std::string& paper_ref,
                  const BenchContext& ctx);

/// Format helpers for table cells.
std::string fmt(double v, int digits = 3);
std::string fmt_h(double h);  ///< Hurst estimates: 3 decimals

/// When ctx.csv_dir is set, write the given equal-length columns as
/// `<csv_dir>/<name>.csv` (the directory must already exist) and print the
/// destination. No-op otherwise.
void maybe_write_csv(const BenchContext& ctx, const std::string& name,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& columns);

}  // namespace fullweb::bench
