// Table 2 (+ Figures 11 and 12) — heavy-tail analysis of SESSION LENGTH in
// time units: alpha_Hill, alpha_LLCD and R^2 per Low/Med/High/Week x server,
// plus the WVU-High LLCD plot (Fig 11) and Hill plot (Fig 12).
//
// Shape goals: session length is heavy-tailed (1 < alpha < 2) for the busy
// servers regardless of intensity; Week-level fits are good (R^2 > 0.95);
// small intervals on NASA-Pub2 degrade to NA.
#include <cstdio>
#include <iostream>

#include "bench_tails_common.h"
#include "support/ascii_plot.h"
#include "tail/hill.h"
#include "tail/llcd.h"

int main(int argc, char** argv) {
  using namespace fullweb;
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("Table 2 — session length in time units",
                      "paper §5.2.1, Table 2, Figures 11 and 12", ctx);

  const bench::PaperTable paper = {
      {"Low",
       {{"1.02", "1.044", "0.941"},
        {"0.8", "1.03", "0.982"},
        {"NS", "2.172", "0.937"},
        {"NA", "NA", "NA"}}},
      {"Med",
       {{"1.55", "1.609", "0.990"},
        {"1.27", "1.273", "0.981"},
        {"1.73", "1.888", "0.976"},
        {"NS", "1.840", "0.977"}}},
      {"High",
       {{"1.58", "1.670", "0.993"},
        {"1.5", "1.832", "0.966"},
        {"NS", "3.103", "0.981"},
        {"1.39", "1.422", "0.857"}}},
      {"Week",
       {{"1.8", "1.803", "0.994"},
        {"1.8", "1.723", "0.994"},
        {"2.2", "2.329", "0.987"},
        {"2.2", "2.286", "0.976"}}},
  };

  const auto servers = bench::generate_all_servers(ctx);
  bench::run_tail_table(
      servers, ctx,
      [](const weblog::Dataset& ds, double t0, double t1) {
        return ds.session_lengths(t0, t1);
      },
      paper);

  // ---- Figure 11: LLCD plot, WVU session length, High interval.
  const auto& wvu = servers[0];
  const auto high = wvu.pick(weblog::Load::kHigh);
  if (high.ok()) {
    const auto lengths = wvu.session_lengths(high.value().t0, high.value().t1);
    auto plot = tail::llcd_plot(lengths);
    if (plot.ok()) {
      support::PlotOptions popts;
      popts.title = "\nFigure 11: LLCD plot — WVU session length, High interval";
      popts.x_label = "log10 session length (s)";
      popts.y_label = "log10 P[X > x]";
      popts.height = 14;
      std::vector<double> x(plot.value().log10_x.size());
      std::vector<double> y(plot.value().log10_ccdf.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = std::pow(10.0, plot.value().log10_x[i]);
        y[i] = std::pow(10.0, plot.value().log10_ccdf[i]);
      }
      support::PlotOptions lopts = popts;
      lopts.log_x = true;
      lopts.log_y = true;
      std::fputs(support::render_plot(x, y, lopts).c_str(), stdout);
      bench::maybe_write_csv(ctx, "fig11_wvu_llcd_length_high",
                             {"log10_x", "log10_ccdf"},
                             {plot.value().log10_x, plot.value().log10_ccdf});
      const auto fit = tail::llcd_fit(lengths);
      if (fit.ok()) {
        std::printf("  fit: alpha_LLCD=%s sigma=%s R^2=%s theta=%s s "
                    "(paper: alpha=1.67, sigma=0.004, R^2=0.993, theta~1000 s)\n",
                    bench::fmt(fit.value().alpha, 4).c_str(),
                    bench::fmt(fit.value().stderr_alpha, 2).c_str(),
                    bench::fmt(fit.value().r_squared, 3).c_str(),
                    bench::fmt(fit.value().theta, 3).c_str());
      }
    }

    // ---- Figure 12: Hill plot for the same sample, upper 14% tail.
    tail::HillOptions hopts;
    hopts.max_tail_fraction = 0.14;
    auto hill = tail::hill_plot(lengths, hopts);
    if (hill.ok()) {
      std::vector<double> ks, alphas;
      for (std::size_t i = 0; i < hill.value().k.size(); ++i) {
        if (!std::isfinite(hill.value().alpha[i])) continue;
        ks.push_back(static_cast<double>(hill.value().k[i]));
        alphas.push_back(hill.value().alpha[i]);
      }
      support::PlotOptions popts;
      popts.title = "\nFigure 12: Hill plot — WVU session length, High (upper 14%)";
      popts.x_label = "k (number of upper-order statistics)";
      popts.y_label = "alpha_{k,n}";
      popts.height = 12;
      std::fputs(support::render_plot(ks, alphas, popts).c_str(), stdout);
      bench::maybe_write_csv(ctx, "fig12_wvu_hill_length_high",
                             {"k", "alpha"}, {ks, alphas});
      const auto est = tail::hill_estimate(lengths, hopts);
      if (est.ok()) {
        std::printf("  Hill estimate: alpha~%s over k in [%zu, %zu]%s "
                    "(paper: settles near 1.58)\n",
                    bench::fmt(est.value().alpha, 3).c_str(), est.value().k_low,
                    est.value().k_high,
                    est.value().stabilized ? "" : " [NS]");
      }
    }
  }
  std::printf(
      "\nshape goals: busy servers (WVU/ClarkNet) heavy-tailed (1<alpha<2) at\n"
      "every intensity; Week R^2 >= 0.97; NASA-Pub2 Low is NA.\n");
  return 0;
}
