// Model-fit round trip: for each of the four servers, generate the bench
// workload, fit the FULL-Web generative model, replay from the fitted
// parameters, and score how well the replay reproduces the observed
// fingerprint. This quantifies the fidelity of the library's end-use
// (workload cloning for performance studies).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/stationary.h"
#include "lrd/whittle.h"
#include "support/table.h"
#include "synth/fit.h"
#include "tail/llcd.h"

namespace {

using namespace fullweb;

struct Fingerprint {
  double requests = 0, sessions = 0, hurst = 0;
  double len_alpha = 0, req_alpha = 0, byte_alpha = 0;
};

Fingerprint fingerprint(const weblog::Dataset& ds) {
  Fingerprint f;
  f.requests = static_cast<double>(ds.requests().size());
  f.sessions = static_cast<double>(ds.sessions().size());
  core::StationaryOptions so;
  so.only_if_nonstationary = false;
  if (auto st = core::make_stationary(ds.requests_per_second(), so); st.ok()) {
    if (auto w = lrd::whittle_hurst(st.value().series); w.ok())
      f.hurst = w.value().estimate.h;
  }
  if (auto t = tail::llcd_fit(ds.session_lengths()); t.ok())
    f.len_alpha = t.value().alpha;
  if (auto t = tail::llcd_fit(ds.session_request_counts()); t.ok())
    f.req_alpha = t.value().alpha;
  if (auto t = tail::llcd_fit(ds.session_byte_counts()); t.ok())
    f.byte_alpha = t.value().alpha;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx;
  if (!bench::parse_bench_flags(argc, argv, &ctx)) return 2;
  bench::print_header("FULL-Web model fit round trip",
                      "library end-use validation (not a paper figure)", ctx);

  support::Table table({"server", "metric", "observed", "fitted replay",
                        "rel err"});
  bool ok = true;
  for (const auto& profile : synth::ServerProfile::all_four()) {
    const auto observed = bench::generate_server(profile, ctx);
    auto fitted = synth::fit_profile(observed);
    if (!fitted.ok()) {
      table.add_row({profile.name, "-", "fit failed", "-", "-"});
      continue;
    }
    support::Rng rng(ctx.seed + 31);
    synth::GeneratorOptions gen;
    gen.duration = ctx.days * 86400.0;
    auto replay = synth::generate_dataset(fitted.value().profile, gen, rng);
    if (!replay.ok()) continue;

    const Fingerprint obs = fingerprint(observed);
    const Fingerprint rep = fingerprint(replay.value());
    struct Metric {
      const char* name;
      double a, b;
    };
    const Metric metrics[] = {
        {"requests", obs.requests, rep.requests},
        {"sessions", obs.sessions, rep.sessions},
        {"Whittle H", obs.hurst, rep.hurst},
        {"len alpha", obs.len_alpha, rep.len_alpha},
        {"req alpha", obs.req_alpha, rep.req_alpha},
        {"byte alpha", obs.byte_alpha, rep.byte_alpha},
    };
    for (const auto& m : metrics) {
      const double rel = m.a != 0.0 ? std::fabs(m.b - m.a) / std::fabs(m.a) : 0.0;
      char rel_s[16];
      std::snprintf(rel_s, sizeof rel_s, "%.1f%%", 100.0 * rel);
      table.add_row({profile.name, m.name, bench::fmt(m.a, 4),
                     bench::fmt(m.b, 4), rel_s});
      // Volumes within 30%, H within 0.12 absolute, tails within 40%.
      if (std::string(m.name) == "Whittle H") ok = ok && std::fabs(m.b - m.a) < 0.12;
      else if (std::string(m.name) == "requests" || std::string(m.name) == "sessions")
        ok = ok && rel < 0.30;
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\nfidelity check (volumes < 30%% error, H within 0.12): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
