# Opt selected hot translation units into AVX2 code generation when the
# build host supports it. The flags are chosen so results stay bit-identical
# to the plain scalar build:
#   -mno-fma / -ffp-contract=off  -- no fused multiply-add contraction, every
#                                    operation rounds exactly like the scalar
#                                    ISA sequence
#   -mavx2                         -- wider registers only; IEEE semantics of
#                                    packed mul/add/div match scalar ops
#   -O3                            -- enables the loop/SLP vectorizers, which
#                                    GCC's -O2 cost model keeps off for these
#                                    kernels
# Vectorization therefore changes throughput, never bits, and the golden
# bit-pattern regression tests hold on both SIMD and scalar hosts.
#
# The gate also covers pure byte-scanning TUs (weblog/clf_scan.cpp): there
# the contract is trivially exact — integer compares have no rounding — and
# the scalar fallback is the SWAR tier in the matching header, pinned equal
# by test_weblog_parser_identity.
include(CheckCXXSourceRuns)

set(FULLWEB_HOT_SIMD_FLAGS "")
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang" AND NOT CMAKE_CROSSCOMPILING)
  set(CMAKE_REQUIRED_FLAGS "-mavx2")
  check_cxx_source_runs("
    int main() { return __builtin_cpu_supports(\"avx2\") ? 0 : 1; }
  " FULLWEB_HOST_AVX2)
  unset(CMAKE_REQUIRED_FLAGS)
  if(FULLWEB_HOST_AVX2)
    # -fno-trapping-math / -fno-math-errno drop FP-exception and errno side
    # effects (never inspected here) so comparisons and selects if-convert;
    # computed values are unaffected.
    set(FULLWEB_HOT_SIMD_FLAGS -mavx2 -mno-fma -ffp-contract=off
        -fno-trapping-math -fno-math-errno -O3)
  endif()
endif()

# Usage: fullweb_hot_simd(<source> [<source>...]) inside the directory that
# owns the sources. No-op when the host lacks AVX2 or the compiler is not
# GCC/Clang.
function(fullweb_hot_simd)
  if(FULLWEB_HOT_SIMD_FLAGS)
    set_source_files_properties(${ARGN} PROPERTIES
      COMPILE_OPTIONS "${FULLWEB_HOT_SIMD_FLAGS}")
  endif()
endfunction()
