# Runs the threading determinism tests under ThreadSanitizer.
#
# Invoked by the `tsan_determinism` ctest entry (see the top-level
# CMakeLists.txt). Configures a nested build of the same source tree with
# FULLWEB_SANITIZE=thread, builds only the test targets that exercise the
# executor, and runs them. Any data race aborts the test (halt_on_error=1).
#
# Expected -D variables: SOURCE_DIR, BUILD_DIR, GENERATOR, CXX_COMPILER.

foreach(var SOURCE_DIR BUILD_DIR GENERATOR CXX_COMPILER)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "tsan_determinism.cmake: missing -D${var}")
  endif()
endforeach()

message(STATUS "[tsan] configuring ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND}
    -S ${SOURCE_DIR} -B ${BUILD_DIR}
    -G ${GENERATOR}
    -DCMAKE_CXX_COMPILER=${CXX_COMPILER}
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    -DFULLWEB_SANITIZE=thread
    -DFULLWEB_TSAN_CHECK=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[tsan] configure failed (${rc})")
endif()

# test_weblog_streaming drives the chunked parallel CLF reader on the
# executor; test_weblog_corpus is serial but cheap and pins parser behaviour
# the reader depends on, so both run under the same gate.
# test_shared_kernels covers the compute-sharing layer (prefix moments,
# aggregation pyramid, shared periodogram) including its 1-vs-8-thread
# bit-identity checks, which only mean something under TSan.
# test_validation runs the Monte Carlo replicate runner's 1-vs-N-thread
# bit-identity checks; test_support_workspace pins the thread_local arena
# isolation — both are claims that only TSan can actually falsify.
# test_kernel_determinism does the same for the parallelized fit kernels
# (curvature Monte Carlo, wavelet transform, chunked periodogram), and
# test_support_timing exercises the cross-thread StageTimings sink.
# test_core_fleet asserts the fleet shard fan-out is bit-identical at 1 vs
# 8 threads — the claim is only falsifiable with TSan watching the merge —
# and test_store_columnar pins the columnar round-trip those shards load
# through.
# test_weblog_parser_identity pins the SWAR/AVX2 fast parser to the scalar
# reference; under TSan it additionally proves the per-chunk parser state
# (timestamp memo, request arena) shares nothing across workers.
# test_online_analyzer asserts snapshot byte-identity across 1/2/8 reader
# threads feeding one OnlineAnalyzer — the single-consumer ordering claim
# of read_clf_records is only falsifiable with TSan watching the handoff —
# and test_online_sketch pins the merge laws that byte-identity rests on.
set(FULLWEB_TSAN_TESTS
  test_support_executor test_core_determinism
  test_weblog_streaming test_weblog_corpus test_weblog_parser_identity
  test_shared_kernels test_validation test_support_workspace
  test_kernel_determinism test_support_timing
  test_store_columnar test_core_fleet
  test_online_sketch test_online_analyzer)

message(STATUS "[tsan] building ${FULLWEB_TSAN_TESTS}")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR}
    --target ${FULLWEB_TSAN_TESTS}
    --parallel
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[tsan] build failed (${rc})")
endif()

foreach(test_bin IN LISTS FULLWEB_TSAN_TESTS)
  message(STATUS "[tsan] running ${test_bin}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env TSAN_OPTIONS=halt_on_error=1
      ${BUILD_DIR}/tests/${test_bin}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "[tsan] ${test_bin} failed under TSan (${rc})")
  endif()
endforeach()

message(STATUS "[tsan] all determinism tests passed under ThreadSanitizer")
