# Runs the memory/UB-sensitive tests under AddressSanitizer + UBSan.
#
# Invoked by the `asan_ubsan` ctest entry (see the top-level
# CMakeLists.txt). Configures a nested build of the same source tree with
# FULLWEB_SANITIZE=address,undefined, builds only the targets that exercise
# parsers, workspace reuse, and the validation harness, and runs them. Any
# report aborts the test (halt_on_error=1, -fno-sanitize-recover).
#
# Expected -D variables: SOURCE_DIR, BUILD_DIR, GENERATOR, CXX_COMPILER.

foreach(var SOURCE_DIR BUILD_DIR GENERATOR CXX_COMPILER)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "asan_ubsan.cmake: missing -D${var}")
  endif()
endforeach()

message(STATUS "[asan] configuring ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND}
    -S ${SOURCE_DIR} -B ${BUILD_DIR}
    -G ${GENERATOR}
    -DCMAKE_CXX_COMPILER=${CXX_COMPILER}
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    "-DFULLWEB_SANITIZE=address,undefined"
    -DFULLWEB_TSAN_CHECK=OFF
    -DFULLWEB_ASAN_UBSAN_CHECK=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[asan] configure failed (${rc})")
endif()

# Parsers (weblog, bench_compare JSON, the binary columnar decoder with
# its corruption corpus), workspace arena reuse, the tail kernels that
# recycle arenas across replicates, and the validation harness (edge
# inputs + Monte Carlo fan-out) are where lifetime/UB bugs would live.
# test_weblog_parser_identity's exact-size buffers make any vector-scan
# read past a chunk or token end an ASan stop, which is the memory-safety
# half of the SIMD bit-identity contract.
# test_online_sketch and test_online_analyzer feed the online layer
# degenerate and adversarial streams (NaN/inf timestamps, merge pooling,
# alias-table draws); index math over the block ring and the sketch's
# retained vectors is exactly the kind of off-by-one ASan/UBSan catches.
set(FULLWEB_ASAN_TESTS
  test_support_workspace test_support_json
  test_tools_bench_compare test_edge_inputs
  test_validation test_weblog_corpus test_weblog_parser_identity
  test_store_columnar test_online_sketch test_online_analyzer)

message(STATUS "[asan] building ${FULLWEB_ASAN_TESTS}")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR}
    --target ${FULLWEB_ASAN_TESTS}
    --parallel
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[asan] build failed (${rc})")
endif()

foreach(test_bin IN LISTS FULLWEB_ASAN_TESTS)
  message(STATUS "[asan] running ${test_bin}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      ASAN_OPTIONS=halt_on_error=1:detect_leaks=1
      UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1
      ${BUILD_DIR}/tests/${test_bin}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "[asan] ${test_bin} failed under ASan+UBSan (${rc})")
  endif()
endforeach()

message(STATUS "[asan] all tests passed under ASan+UBSan")
