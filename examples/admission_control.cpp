// Session-based admission control under heavy-tailed session lengths.
//
// Cherkasova & Phaal's session-based admission control ([5], [6]) was
// evaluated assuming exponentially distributed session lengths; §5.2.1
// shows that assumption is wrong — session length is heavy-tailed. This
// example replays our synthetic sessions through a capacity-limited server
// (queueing::simulate_admission) under two overload policies:
//
//   request dropping: overloaded seconds shed individual requests — long
//                     sessions almost surely lose one and abort.
//   session-based AC: overloaded seconds defer NEW sessions; admitted
//                     sessions are always served ([5]'s goal: "increase the
//                     chances that longer sessions will be completed").
//
// It then contrasts the true heavy-tailed session-length distribution with
// the exponential fit used by [5]/[6]: the exponential model wildly
// underestimates the long-session mass that session-AC protects.
//
//   ./admission_control --capacity-factor 0.5 --seed 5
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "queueing/admission.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "support/cli.h"
#include "support/executor.h"
#include "support/table.h"
#include "synth/generator.h"
#include "tail/llcd.h"

int main(int argc, char** argv) {
  using namespace fullweb;

  support::CliFlags flags;
  flags.define("capacity-factor", "0.5",
               "per-second capacity as a fraction of the PEAK per-second load");
  flags.define("seed", "5", "random seed");
  flags.define("hours", "24", "hours of traffic");
  flags.define("threads", "0",
               "analysis threads (0 = hardware concurrency, 1 = serial)");
  if (!flags.parse(argc, argv)) return 2;
  const long long threads = flags.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  support::Executor::set_global_threads(static_cast<std::size_t>(threads));

  support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  synth::GeneratorOptions gen;
  gen.duration = flags.get_double("hours") * 3600.0;
  auto workload = synth::generate_workload(synth::ServerProfile::wvu(), gen, rng);
  if (!workload) {
    std::fprintf(stderr, "generation failed: %s\n",
                 workload.error().message.c_str());
    return 1;
  }
  const auto& w = workload.value();

  auto tagged = queueing::attribute_requests(w.requests, w.true_sessions);
  if (!tagged) {
    std::fprintf(stderr, "attribution failed: %s\n",
                 tagged.error().message.c_str());
    return 1;
  }

  // Peak per-second load determines the configured capacity.
  std::unordered_map<long long, std::size_t> per_second;
  for (const auto& r : tagged.value())
    ++per_second[static_cast<long long>(r.time)];
  std::size_t peak = 0;
  for (const auto& [sec, n] : per_second) peak = std::max(peak, n);

  queueing::AdmissionOptions opts;
  opts.capacity_per_second = static_cast<std::size_t>(std::max(
      1.0, flags.get_double("capacity-factor") * static_cast<double>(peak)));
  std::printf("requests: %zu  sessions: %zu  peak load: %zu req/s  capacity: "
              "%zu req/s\n\n",
              tagged.value().size(), w.true_sessions.size(), peak,
              opts.capacity_per_second);

  support::Table table({"policy", "completed", "completion %",
                        "long-session completion %", "requests rejected"});
  for (auto policy : {queueing::AdmissionPolicy::kRequestDropping,
                      queueing::AdmissionPolicy::kSessionBased}) {
    opts.policy = policy;
    support::Rng sim_rng(42);
    auto outcome = queueing::simulate_admission(tagged.value(), w.true_sessions,
                                                opts, sim_rng);
    if (!outcome) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   outcome.error().message.c_str());
      return 1;
    }
    char pct[16], lpct[16];
    std::snprintf(pct, sizeof pct, "%.1f%%",
                  100.0 * outcome.value().completion_rate());
    std::snprintf(lpct, sizeof lpct, "%.1f%%",
                  100.0 * outcome.value().long_completion_rate());
    table.add_row({policy == queueing::AdmissionPolicy::kSessionBased
                       ? "session-based AC"
                       : "request dropping",
                   std::to_string(outcome.value().completed), pct, lpct,
                   std::to_string(outcome.value().requests_rejected)});
  }
  table.print(std::cout);

  // Why the exponential assumption misleads: tail-mass comparison.
  std::vector<double> lengths;
  for (const auto& s : w.true_sessions)
    if (s.length() > 0) lengths.push_back(s.length());
  auto exp_fit = stats::Exponential::fit_mle(lengths);
  auto llcd = tail::llcd_fit(lengths);
  if (exp_fit.ok() && llcd.ok()) {
    std::sort(lengths.begin(), lengths.end());
    const double x = stats::quantile_sorted(lengths, 0.99);
    const double empirical = 0.01;
    const double exp_pred = exp_fit.value().ccdf(x);
    std::printf(
        "\nheavy-tail reality check (paper §5.2.1): P[session > %.0f s]\n"
        "  empirical: %.3g   exponential fit ([5]'s assumption): %.3g\n"
        "  LLCD tail index alpha = %.2f (infinite variance if < 2)\n"
        "The exponential model underestimates the 99th-percentile session\n"
        "mass by a factor of %.0f — session-based AC is protecting exactly\n"
        "the sessions that model says barely exist.\n",
        x, empirical, exp_pred, llcd.value().alpha,
        empirical / std::max(exp_pred, 1e-12));
  }
  return 0;
}
