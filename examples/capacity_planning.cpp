// Capacity planning under LRD traffic vs the Poisson assumption.
//
// The paper's §4.2 conclusion: queueing-network performance models that
// assume Poisson request arrivals ([23], [25], [30], [8]) "are based on
// incorrect assumptions and most likely provide misleading results". This
// example quantifies the error. We feed a single-server FIFO queue with
//   (a) a synthetic LRD request trace (our CSEE profile), and
//   (b) a Poisson trace with the *same* mean arrival rate,
// at identical utilizations, and compare waiting-time percentiles. The LRD
// trace's bursts produce dramatically heavier queueing tails — the Poisson
// model badly underestimates the capacity headroom a real server needs.
//
//   ./capacity_planning --utilization 0.7 --seed 11
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "queueing/fifo_queue.h"
#include "stats/descriptive.h"
#include "support/cli.h"
#include "support/executor.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/generator.h"

namespace {

using namespace fullweb;

void report(const char* label, const queueing::QueueStats& stats,
            support::Table& table) {
  table.add_row({label,
                 support::format_sig(stats.mean_wait, 4),
                 support::format_sig(stats.p50_wait, 4),
                 support::format_sig(stats.p95_wait, 4),
                 support::format_sig(stats.p99_wait, 4),
                 support::format_sig(stats.max_wait, 4)});
}

}  // namespace

int main(int argc, char** argv) {
  support::CliFlags flags;
  flags.define("utilization", "0.7", "target server utilization (0, 1)");
  flags.define("seed", "11", "random seed");
  flags.define("hours", "24", "hours of traffic to simulate");
  flags.define("threads", "0",
               "analysis threads (0 = hardware concurrency, 1 = serial)");
  if (!flags.parse(argc, argv)) return 2;
  const long long threads = flags.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  support::Executor::set_global_threads(static_cast<std::size_t>(threads));
  const double rho = flags.get_double("utilization");
  if (!(rho > 0.0 && rho < 1.0)) {
    std::fprintf(stderr, "utilization must be in (0, 1)\n");
    return 2;
  }

  support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  synth::GeneratorOptions gen;
  gen.duration = flags.get_double("hours") * 3600.0;
  gen.quantize_to_seconds = false;  // queueing needs sub-second timestamps
  auto workload = synth::generate_workload(synth::ServerProfile::csee(), gen, rng);
  if (!workload) {
    std::fprintf(stderr, "generation failed: %s\n",
                 workload.error().message.c_str());
    return 1;
  }

  std::vector<double> lrd_arrivals;
  lrd_arrivals.reserve(workload.value().requests.size());
  for (const auto& r : workload.value().requests) lrd_arrivals.push_back(r.time);
  const double mean_rate =
      static_cast<double>(lrd_arrivals.size()) / gen.duration;

  // Poisson comparator with identical mean rate over the same horizon.
  std::vector<double> poisson_arrivals;
  double t = workload.value().t0;
  while (true) {
    t += -std::log(rng.uniform_pos()) / mean_rate;
    if (t >= workload.value().t1) break;
    poisson_arrivals.push_back(t);
  }

  const double service_time = rho / mean_rate;
  std::printf("requests: %zu  mean rate: %.3f/s  service time: %.4f s  "
              "target utilization: %.2f\n\n",
              lrd_arrivals.size(), mean_rate, service_time, rho);

  support::Table table({"arrival process", "mean wait (s)", "p50", "p95",
                        "p99", "max"});
  const auto lrd_stats =
      queueing::simulate_fifo_deterministic(lrd_arrivals, service_time);
  const auto poisson_stats =
      queueing::simulate_fifo_deterministic(poisson_arrivals, service_time);
  if (!lrd_stats || !poisson_stats) {
    std::fprintf(stderr, "queue simulation failed\n");
    return 1;
  }
  report("synthetic Web trace (LRD)", lrd_stats.value(), table);
  report("Poisson (same mean rate)", poisson_stats.value(), table);
  table.print(std::cout);

  const double ratio =
      lrd_stats.value().p99_wait / std::max(1e-9, poisson_stats.value().p99_wait);
  std::printf(
      "\np99 waiting time under real(istic) traffic is %.1fx the Poisson\n"
      "prediction at the same utilization — the paper's warning about\n"
      "Poisson-based Web performance models, made concrete.\n",
      ratio);
  return 0;
}
