// Log audit: run the FULL-Web characterization on a Common Log Format file.
//
// This is the tool a downstream operator would actually point at their
// server logs. Given a CLF/Combined access log it parses, sessionizes
// (30-minute threshold), and reports:
//   - volume summary (Table 1 style),
//   - stationarity + Hurst battery for request and session arrivals,
//   - Poisson verdicts for the busiest 4-hour window,
//   - heavy-tail analysis of the three intra-session characteristics.
// With no argument it writes a demo log (synthetic ClarkNet day) first and
// audits that, so the example is runnable out of the box.
//
// A single file is ingested through the streaming path (chunked parallel
// parse, bounded-memory sessionization) with per-file IngestStats printed.
// Multiple files are merged chronologically before sessionization, the
// Figure 1 treatment of redundant-server architectures (WVU, CSEE ran
// replicated servers whose logs must be merged or sessions split).
//
//   ./log_audit [access1.log access2.log ...]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "core/error_analysis.h"
#include "core/fullweb_model.h"
#include "core/interarrival.h"
#include "core/report_markdown.h"
#include "support/cli.h"
#include "support/executor.h"
#include "synth/generator.h"
#include "weblog/clf.h"
#include "weblog/dataset.h"
#include "weblog/merge.h"

namespace {

using namespace fullweb;

int write_demo_log(const std::string& path) {
  support::Rng rng(99);
  synth::GeneratorOptions gen;
  gen.duration = 86400.0;
  gen.scale = 0.25;
  auto workload =
      synth::generate_workload(synth::ServerProfile::clarknet(), gen, rng);
  if (!workload) {
    std::fprintf(stderr, "demo generation failed: %s\n",
                 workload.error().message.c_str());
    return 1;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  support::Rng rng2(100);
  for (const auto& e : synth::to_log_entries(workload.value(), rng2))
    out << weblog::to_clf_line(e) << '\n';
  std::printf("wrote demo log to %s (%zu requests)\n", path.c_str(),
              workload.value().requests.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliFlags flags;
  flags.define("threshold-minutes", "30", "session inactivity threshold");
  flags.define("curvature-replicates", "99", "Monte-Carlo replicates (0 = skip)");
  flags.define("markdown", "", "also write a Markdown report to this path");
  flags.define("threads", "0",
               "analysis threads (0 = hardware concurrency, 1 = serial)");
  if (!flags.parse(argc, argv)) return 2;
  const long long threads = flags.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  support::Executor::set_global_threads(static_cast<std::size_t>(threads));

  std::vector<std::string> paths = flags.positional();
  if (paths.empty()) {
    const std::string demo = "demo_access.log";
    std::ifstream probe(demo);
    if (!probe && write_demo_log(demo) != 0) return 1;
    paths.push_back(demo);
  }

  weblog::SessionizerOptions sopts;
  sopts.threshold_seconds = flags.get_double("threshold-minutes") * 60.0;

  std::optional<weblog::Dataset> dataset;
  if (paths.size() == 1) {
    // Streaming ingest: chunked parallel parse, O(open sessions) memory.
    weblog::StreamIngestOptions iopts;
    iopts.sessionizer = sopts;
    weblog::StreamIngestReport report;
    auto ds = weblog::Dataset::from_clf_stream(paths.front(), paths, iopts,
                                               &report);
    if (!ds.ok()) {
      std::fprintf(stderr, "streaming ingest failed: %s\n",
                   ds.error().message.c_str());
      return 1;
    }
    for (const auto& f : report.files)
      std::printf("%s\n", f.summary().c_str());
    std::printf("peak open sessions: %zu (%s sessionization)\n",
                report.peak_open_sessions,
                report.sessionized_incrementally ? "incremental"
                                                 : "batch fallback");
    dataset = std::move(ds.value());
  } else {
    auto merged = weblog::merge_clf_files(paths);
    if (!merged.ok()) {
      std::fprintf(stderr, "no parsable entries: %s\n",
                   merged.error().message.c_str());
      return 1;
    }
    for (const auto& f : merged.value().files) {
      if (f.open_failed) {
        std::fprintf(stderr, "SKIPPED %s: %s\n", f.path.c_str(),
                     f.error.c_str());
        continue;
      }
      std::printf("parsed %zu entries from %s (%zu malformed lines skipped)\n",
                  f.parsed, f.path.c_str(), f.malformed);
    }
    auto ds = weblog::Dataset::from_entries(paths.front(),
                                            merged.value().entries, sopts);
    if (!ds.ok()) {
      std::fprintf(stderr, "dataset construction failed: %s\n",
                   ds.error().message.c_str());
      return 1;
    }
    dataset = std::move(ds.value());
  }

  core::FullWebOptions opts;
  const auto reps = static_cast<std::size_t>(flags.get_int("curvature-replicates"));
  opts.tails.run_curvature = reps > 0;
  opts.tails.curvature_replicates = reps;
  support::Rng rng(7);
  auto model = core::fit_fullweb_model((*dataset), rng, opts);
  if (!model.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", model.error().message.c_str());
    return 1;
  }
  std::cout << core::render_report(model.value());

  // Which classical model do the request inter-arrival times actually
  // follow? (Under LRD traffic the exponential loses badly — §4.2.)
  if (auto ia = core::analyze_interarrivals((*dataset).request_times()); ia.ok()) {
    std::printf("\nRequest inter-arrival model ranking (n=%zu, cv=%.2f):\n",
                ia.value().n, ia.value().cv);
    for (const auto& f : ia.value().fits) {
      std::printf("  %-12s AIC %+12.1f (delta %8.1f)  params: %.4g %.4g\n",
                  core::to_string(f.model).c_str(), f.aic, f.delta_aic,
                  f.param1, f.param2);
    }
    std::printf("  exponential adequate (AIC winner + A^2 pass): %s\n",
                ia.value().exponential_adequate() ? "yes" : "NO");
  }

  // Error / reliability view (Figure 1's error-analysis branch).
  if (auto err = core::analyze_errors((*dataset)); err.ok()) {
    const auto& e = err.value();
    std::printf("\nError & reliability analysis:\n");
    std::printf("  status mix: 1xx=%zu 2xx=%zu 3xx=%zu 4xx=%zu 5xx=%zu\n",
                e.statuses.by_class[1], e.statuses.by_class[2],
                e.statuses.by_class[3], e.statuses.by_class[4],
                e.statuses.by_class[5]);
    std::printf("  request error rate: %.2f%% (server errors %.2f%%)\n",
                100.0 * e.request_error_rate, 100.0 * e.server_error_rate);
    std::printf("  session reliability: %.2f%% (%zu of %zu sessions hit an "
                "error; %.1f errors per affected session)\n",
                100.0 * e.session_reliability, e.sessions_with_error,
                e.sessions, e.errors_per_bad_session);
  }

  // Optional Markdown artifact with everything above in shareable form.
  const std::string md_path = flags.get("markdown");
  if (!md_path.empty()) {
    std::ofstream md(md_path);
    if (!md) {
      std::fprintf(stderr, "cannot write %s\n", md_path.c_str());
      return 1;
    }
    md << core::render_markdown(model.value());
    if (auto err = core::analyze_errors((*dataset)); err.ok())
      md << core::render_markdown_errors(err.value());
    if (auto ia = core::analyze_interarrivals((*dataset).request_times()); ia.ok())
      md << core::render_markdown_interarrivals(ia.value());
    std::printf("\nwrote Markdown report to %s\n", md_path.c_str());
  }
  return 0;
}
