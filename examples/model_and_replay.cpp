// Workload cloning: fit a FULL-Web generative model to observed traffic,
// replay synthetic traffic from the fitted model, and verify the clone
// reproduces the original's statistical fingerprint.
//
// This is the paper's end-use: a workload model accurate enough to drive
// performance studies without shipping (or even keeping) the raw logs.
//
//   ./model_and_replay --server ClarkNet --days 7 --seed 3
#include <cstdio>
#include <iostream>

#include "core/stationary.h"
#include "lrd/whittle.h"
#include "support/cli.h"
#include "support/executor.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/fit.h"
#include "synth/generator.h"
#include "synth/profile_io.h"
#include "tail/llcd.h"

namespace {

using namespace fullweb;

struct Fingerprint {
  double requests = 0;
  double sessions = 0;
  double mb = 0;
  double hurst = 0;
  double len_alpha = 0;
  double req_alpha = 0;
  double bytes_alpha = 0;
};

Fingerprint fingerprint(const weblog::Dataset& ds) {
  Fingerprint f;
  f.requests = static_cast<double>(ds.requests().size());
  f.sessions = static_cast<double>(ds.sessions().size());
  f.mb = static_cast<double>(ds.total_bytes()) / 1048576.0;
  if (auto st = core::make_stationary(ds.requests_per_second()); st.ok()) {
    if (auto w = lrd::whittle_hurst(st.value().series); w.ok())
      f.hurst = w.value().estimate.h;
  }
  if (auto fit = tail::llcd_fit(ds.session_lengths()); fit.ok())
    f.len_alpha = fit.value().alpha;
  if (auto fit = tail::llcd_fit(ds.session_request_counts()); fit.ok())
    f.req_alpha = fit.value().alpha;
  if (auto fit = tail::llcd_fit(ds.session_byte_counts()); fit.ok())
    f.bytes_alpha = fit.value().alpha;
  return f;
}

void add_rows(support::Table& table, const char* label, const Fingerprint& f) {
  table.add_row({label, support::format_sig(f.requests, 6),
                 support::format_sig(f.sessions, 6),
                 support::format_sig(f.mb, 5), support::format_sig(f.hurst, 3),
                 support::format_sig(f.len_alpha, 3),
                 support::format_sig(f.req_alpha, 3),
                 support::format_sig(f.bytes_alpha, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  support::CliFlags flags;
  flags.define("server", "ClarkNet", "profile for the 'observed' traffic");
  flags.define("days", "7", "days of traffic");
  flags.define("scale", "0.3", "volume scale");
  flags.define("seed", "3", "random seed");
  flags.define("save", "", "write the fitted profile to this path");
  flags.define("threads", "0",
               "analysis threads (0 = hardware concurrency, 1 = serial)");
  if (!flags.parse(argc, argv)) return 2;
  const long long threads = flags.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  support::Executor::set_global_threads(static_cast<std::size_t>(threads));

  synth::ServerProfile truth = synth::ServerProfile::clarknet();
  const std::string which = flags.get("server");
  if (which == "WVU") truth = synth::ServerProfile::wvu();
  else if (which == "CSEE") truth = synth::ServerProfile::csee();
  else if (which == "NASA-Pub2") truth = synth::ServerProfile::nasa_pub2();

  support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  synth::GeneratorOptions gen;
  gen.scale = flags.get_double("scale");
  gen.duration = flags.get_double("days") * 86400.0;

  std::printf("1. generating 'observed' %s traffic...\n", truth.name.c_str());
  auto observed = synth::generate_dataset(truth, gen, rng);
  if (!observed) {
    std::fprintf(stderr, "generation failed: %s\n",
                 observed.error().message.c_str());
    return 1;
  }

  std::printf("2. fitting the FULL-Web model to the observed traffic...\n");
  auto fitted = synth::fit_profile(observed.value());
  if (!fitted) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.error().message.c_str());
    return 1;
  }
  const synth::ServerProfile& fp = fitted.value().profile;
  std::printf("   fitted: sessions/wk=%.0f req/sess=%.1f H=%.3f diurnal=%.2f\n"
              "           len-alpha=%.2f req-alpha=%.2f byte-alpha=%.2f "
              "rate-sigma=%.2f\n",
              fp.week_sessions, fp.requests_mean, fp.hurst, fp.diurnal_amplitude,
              fp.think.scale_alpha, fp.requests_alpha, fp.bytes.scale_alpha,
              fp.rate_log_sigma);

  const std::string save_path = flags.get("save");
  if (!save_path.empty()) {
    if (auto status = synth::save_profile(save_path, fp); status.ok()) {
      std::printf("   saved fitted profile to %s (editable key = value "
                  "format; reload with synth::load_profile)\n",
                  save_path.c_str());
    } else {
      std::fprintf(stderr, "save failed: %s\n", status.error().message.c_str());
    }
  }

  std::printf("3. replaying synthetic traffic from the FITTED model...\n\n");
  synth::GeneratorOptions replay_gen = gen;
  replay_gen.scale = 1.0;  // the fitted profile already encodes the volume
  replay_gen.duration = gen.duration;
  support::Rng replay_rng(static_cast<std::uint64_t>(flags.get_int("seed")) + 1);
  auto replay = synth::generate_dataset(fp, replay_gen, replay_rng);
  if (!replay) {
    std::fprintf(stderr, "replay failed: %s\n", replay.error().message.c_str());
    return 1;
  }

  support::Table table({"workload", "requests", "sessions", "MB", "Whittle H",
                        "len alpha", "req alpha", "byte alpha"});
  add_rows(table, "observed", fingerprint(observed.value()));
  add_rows(table, "fitted replay", fingerprint(replay.value()));
  table.print(std::cout);
  std::printf(
      "\nThe replay is generated purely from the fitted parameter vector —\n"
      "volumes, LRD level, diurnal shape, and all three heavy-tail indices\n"
      "carry over without any access to the original request records.\n");
  return 0;
}
