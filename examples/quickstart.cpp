// Quickstart: generate one synthetic server-week, fit the FULL-Web model,
// and print the complete report (arrival-process LRD, Poisson verdicts,
// intra-session tail indices).
//
//   ./quickstart --server CSEE --scale 1.0 --seed 7
#include <cstdio>
#include <iostream>

#include "core/fullweb_model.h"
#include "support/cli.h"
#include "support/executor.h"
#include "synth/generator.h"

int main(int argc, char** argv) {
  using namespace fullweb;

  support::CliFlags flags;
  flags.define("server", "CSEE", "WVU | ClarkNet | CSEE | NASA-Pub2");
  flags.define("scale", "1.0", "volume scale relative to the paper's week");
  flags.define("seed", "7", "random seed");
  flags.define("days", "7", "days of synthetic traffic");
  flags.define("threads", "0",
               "analysis threads (0 = hardware concurrency, 1 = serial)");
  if (!flags.parse(argc, argv)) return 2;
  const long long threads = flags.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  support::Executor::set_global_threads(static_cast<std::size_t>(threads));

  synth::ServerProfile profile = synth::ServerProfile::csee();
  const std::string which = flags.get("server");
  if (which == "WVU") profile = synth::ServerProfile::wvu();
  else if (which == "ClarkNet") profile = synth::ServerProfile::clarknet();
  else if (which == "NASA-Pub2") profile = synth::ServerProfile::nasa_pub2();
  else if (which != "CSEE") {
    std::fprintf(stderr, "unknown server '%s'\n", which.c_str());
    return 2;
  }

  support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  synth::GeneratorOptions gen;
  gen.scale = flags.get_double("scale");
  gen.duration = static_cast<double>(flags.get_int("days")) * 86400.0;

  std::printf("generating %s week (scale %.2f)...\n", profile.name.c_str(),
              gen.scale);
  auto dataset = synth::generate_dataset(profile, gen, rng);
  if (!dataset) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.error().message.c_str());
    return 1;
  }

  std::printf("fitting FULL-Web model (%zu requests, %zu sessions)...\n",
              dataset.value().requests().size(),
              dataset.value().sessions().size());
  auto model = core::fit_fullweb_model(dataset.value(), rng);
  if (!model) {
    std::fprintf(stderr, "analysis failed: %s\n", model.error().message.c_str());
    return 1;
  }
  std::cout << core::render_report(model.value());
  return 0;
}
