#include "support/timing.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

#include "support/json.h"

namespace fullweb::support {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Stages currently open on this thread, innermost last. Frames carry the
/// owning sink so independent sinks never see each other's nesting.
struct OpenFrame {
  const StageTimings* sink;
  std::size_t index;
};
thread_local std::vector<OpenFrame> t_open;

/// Innermost open frame on this thread belonging to `sink`, or -1.
int open_parent(const StageTimings* sink) {
  for (auto it = t_open.rbegin(); it != t_open.rend(); ++it)
    if (it->sink == sink) return static_cast<int>(it->index);
  return -1;
}

}  // namespace

StageTimings::StageTimings() : origin_(now_seconds()) {}

int StageTimings::thread_id_locked(std::thread::id id) {
  auto [it, inserted] =
      thread_ids_.emplace(id, static_cast<int>(thread_ids_.size()));
  return it->second;
}

std::size_t StageTimings::begin(std::string_view stage, Kind kind,
                                double width) {
  const double start = now_seconds() - origin_;
  std::size_t index = 0;
  {
    std::scoped_lock lock(m_);
    index = entries_.size();
    Entry e;
    e.stage = std::string(stage);
    e.start = start;
    e.thread = thread_id_locked(std::this_thread::get_id());
    e.parent = open_parent(this);
    e.kind = kind;
    e.width = width > 1.0 ? width : 1.0;
    entries_.push_back(std::move(e));
  }
  t_open.push_back({this, index});
  return index;
}

void StageTimings::end(std::size_t index) {
  const double now = now_seconds() - origin_;
  // Scoped timers close innermost-first, so the frame is normally the top;
  // scan defensively in case an enclosing timer was stop()ped early.
  for (auto it = t_open.rbegin(); it != t_open.rend(); ++it) {
    if (it->sink == this && it->index == index) {
      t_open.erase(std::next(it).base());
      break;
    }
  }
  std::scoped_lock lock(m_);
  assert(index < entries_.size());
  entries_[index].seconds = now - entries_[index].start;
}

void StageTimings::record(std::string_view stage, double seconds) {
  const double now = now_seconds() - origin_;
  std::scoped_lock lock(m_);
  Entry e;
  e.stage = std::string(stage);
  e.seconds = seconds;
  e.start = now - seconds;
  e.thread = thread_id_locked(std::this_thread::get_id());
  e.parent = open_parent(this);
  entries_.push_back(std::move(e));
}

std::vector<StageTimings::Entry> StageTimings::entries() const {
  std::scoped_lock lock(m_);
  return entries_;
}

bool StageTimings::empty() const {
  std::scoped_lock lock(m_);
  return entries_.empty();
}

double StageTimings::total_seconds() const {
  std::scoped_lock lock(m_);
  double total = 0.0;
  for (const auto& e : entries_) total += e.seconds;
  return total;
}

void StageTimings::analyze(const std::vector<Entry>& snapshot, double& work,
                           double& span) {
  work = 0.0;
  span = 0.0;
  const std::size_t n = snapshot.size();
  if (n == 0) return;

  // Children always have a larger index than their parent (the parent's
  // entry exists before any child begins), so one descending pass computes
  // spans bottom-up. `child_*` accumulate into the parent slot; slot n is
  // the virtual root that combines the top-level stages.
  std::vector<double> child_seconds(n + 1, 0.0);
  std::vector<double> child_phase_span(n + 1, 0.0);
  std::vector<double> child_task_span(n + 1, 0.0);
  std::vector<double> self(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t parent =
        snapshot[i].parent >= 0 ? static_cast<std::size_t>(snapshot[i].parent)
                                : n;
    child_seconds[parent] += snapshot[i].seconds;
  }
  for (std::size_t i = 0; i < n; ++i) {
    self[i] = std::max(0.0, snapshot[i].seconds - child_seconds[i]);
    work += self[i];
  }
  for (std::size_t i = n; i-- > 0;) {
    const double node_span = self[i] / snapshot[i].width +
                             child_phase_span[i] + child_task_span[i];
    const std::size_t parent =
        snapshot[i].parent >= 0 ? static_cast<std::size_t>(snapshot[i].parent)
                                : n;
    if (snapshot[i].kind == Kind::kPhase) {
      child_phase_span[parent] += node_span;
    } else {
      child_task_span[parent] = std::max(child_task_span[parent], node_span);
    }
  }
  span = child_phase_span[n] + child_task_span[n];
}

double StageTimings::work_seconds() const {
  double work = 0.0, span = 0.0;
  analyze(entries(), work, span);
  return work;
}

double StageTimings::span_seconds() const {
  double work = 0.0, span = 0.0;
  analyze(entries(), work, span);
  return span;
}

double StageTimings::serial_fraction() const {
  double work = 0.0, span = 0.0;
  analyze(entries(), work, span);
  if (work <= 0.0) return 1.0;
  return std::clamp(span / work, 0.0, 1.0);
}

double StageTimings::modeled_speedup(std::size_t threads) const {
  if (threads == 0) return 1.0;
  const double s = serial_fraction();
  return 1.0 / (s + (1.0 - s) / static_cast<double>(threads));
}

std::string StageTimings::table() const {
  const auto snapshot = entries();
  // Indent children under their parents; depth via the parent chain.
  std::vector<std::size_t> depth(snapshot.size(), 0);
  for (std::size_t i = 0; i < snapshot.size(); ++i)
    if (snapshot[i].parent >= 0)
      depth[i] = depth[static_cast<std::size_t>(snapshot[i].parent)] + 1;
  std::size_t width = 5;  // "stage"
  for (std::size_t i = 0; i < snapshot.size(); ++i)
    width = std::max(width, snapshot[i].stage.size() + 2 * depth[i]);
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto& e = snapshot[i];
    out += "  ";
    out.append(2 * depth[i], ' ');
    out += e.stage;
    out.append(width - e.stage.size() - 2 * depth[i] + 2, ' ');
    std::snprintf(buf, sizeof buf, "%9.3f s\n", e.seconds);
    out += buf;
  }
  return out;
}

std::string StageTimings::to_json() const {
  const auto snapshot = entries();
  double work = 0.0, span = 0.0;
  analyze(snapshot, work, span);

  JsonWriter w;
  w.begin_object();
  w.field("work_seconds", work);
  w.field("span_seconds", span);
  w.field("serial_fraction",
          work > 0.0 ? std::clamp(span / work, 0.0, 1.0) : 1.0);
  w.key("stages");
  w.begin_array();
  for (const auto& e : snapshot) {
    w.begin_object();
    w.field("stage", e.stage);
    w.field("seconds", e.seconds);
    w.field("start", e.start);
    w.field("thread", static_cast<double>(e.thread));
    w.field("parent", static_cast<double>(e.parent));
    w.field("kind", e.kind == Kind::kPhase ? "phase" : "task");
    w.field("width", e.width);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

StageTimer::StageTimer(StageTimings* sink, std::string_view stage,
                       StageTimings::Kind kind, double width)
    : sink_(sink), armed_(sink != nullptr) {
  if (armed_) {
    start_ = now_seconds();
    index_ = sink_->begin(stage, kind, width);
  }
}

StageTimer::~StageTimer() {
  if (armed_) stop();
}

double StageTimer::stop() {
  if (!armed_) return 0.0;
  armed_ = false;
  sink_->end(index_);
  return now_seconds() - start_;
}

}  // namespace fullweb::support
