#include "support/timing.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace fullweb::support {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void StageTimings::record(std::string_view stage, double seconds) {
  std::scoped_lock lock(m_);
  entries_.push_back({std::string(stage), seconds});
}

std::vector<StageTimings::Entry> StageTimings::entries() const {
  std::scoped_lock lock(m_);
  return entries_;
}

bool StageTimings::empty() const {
  std::scoped_lock lock(m_);
  return entries_.empty();
}

double StageTimings::total_seconds() const {
  std::scoped_lock lock(m_);
  double total = 0.0;
  for (const auto& e : entries_) total += e.seconds;
  return total;
}

std::string StageTimings::table() const {
  const auto snapshot = entries();
  std::size_t width = 5;  // "stage"
  for (const auto& e : snapshot) width = std::max(width, e.stage.size());
  std::string out;
  char buf[64];
  for (const auto& e : snapshot) {
    out += "  ";
    out += e.stage;
    out.append(width - e.stage.size() + 2, ' ');
    std::snprintf(buf, sizeof buf, "%9.3f s\n", e.seconds);
    out += buf;
  }
  return out;
}

StageTimer::StageTimer(StageTimings* sink, std::string_view stage)
    : sink_(sink), stage_(stage), armed_(sink != nullptr) {
  if (armed_) start_ = now_seconds();
}

StageTimer::~StageTimer() {
  if (armed_) stop();
}

double StageTimer::stop() {
  if (!armed_) return 0.0;
  armed_ = false;
  const double elapsed = now_seconds() - start_;
  sink_->record(stage_, elapsed);
  return elapsed;
}

}  // namespace fullweb::support
