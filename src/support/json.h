// Minimal JSON reading and writing shared by the offline tooling.
//
// The reader is the recursive-descent parser bench_compare grew for
// google-benchmark result files, promoted here so the validation report
// drift checker (tools/fullweb_selftest --baseline) and the bench comparison
// library parse the same dialect: objects, arrays, strings, numbers, bools,
// null; unknown fields are simply carried along. It is not a general
// standards-lawyer JSON library — \uXXXX escapes are preserved verbatim
// rather than decoded, and numbers are doubles.
//
// The writer produces deterministic output: keys in the order written,
// doubles via shortest round-trip formatting, fixed two-space indentation —
// so a report generated from a bit-identical run is byte-identical, and
// committed baselines diff cleanly.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace fullweb::support {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    auto p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const JsonArray* array() const {
    auto p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] std::optional<double> number() const {
    auto p = std::get_if<double>(&v);
    if (p) return *p;
    return std::nullopt;
  }
  [[nodiscard]] std::optional<std::string> string() const {
    auto p = std::get_if<std::string>(&v);
    if (p) return *p;
    return std::nullopt;
  }
  [[nodiscard]] std::optional<bool> boolean() const {
    auto p = std::get_if<bool>(&v);
    if (p) return *p;
    return std::nullopt;
  }

  /// Object member lookup; null for non-objects and missing keys.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const JsonObject* obj = object();
    if (obj == nullptr) return nullptr;
    auto it = obj->find(key);
    return it != obj->end() ? &it->second : nullptr;
  }
};

/// Parse a complete JSON document. Returns nullopt on any syntax error or
/// trailing garbage.
[[nodiscard]] std::optional<JsonValue> json_parse(const std::string& text);

/// Serialize a double the way the writer does: shortest representation that
/// round-trips bit-exactly ("%.17g" tightened when fewer digits suffice).
[[nodiscard]] std::string json_format_double(double x);

/// Escape and quote a string for JSON output.
[[nodiscard]] std::string json_quote(const std::string& s);

/// Streaming JSON writer with fixed two-space indentation. Call sequences
/// mirror the document structure:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("selftest");
///   w.key("cells"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string doc = std::move(w).str();
///
/// The writer inserts commas and newlines; misuse (value without key inside
/// an object) is a programming error and asserts.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);

  void value(const std::string& s);
  void value(const char* s);
  void value(double x);
  void value(bool b);
  void value(std::size_t n);
  void null();

  /// Convenience: key + value in one call.
  template <typename T>
  void field(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  [[nodiscard]] std::string str() &&;

 private:
  void before_value();
  void newline_indent();

  enum class Frame { kObject, kArray };
  struct Level {
    Frame frame;
    bool empty = true;
    bool key_pending = false;
  };
  std::string out_;
  std::vector<Level> stack_;
};

}  // namespace fullweb::support
