#include "support/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace fullweb::support {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return lo <= hi; }
};

std::string format_tick(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

}  // namespace

std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options) {
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);

  // Transform points into plotting space, applying log axes.
  struct Pt {
    double x, y;
    char glyph;
  };
  std::vector<Pt> pts;
  Range xr, yr;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      double x = s.x[i];
      double y = s.y[i];
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      if (options.log_x) {
        if (x <= 0) continue;
        x = std::log10(x);
      }
      if (options.log_y) {
        if (y <= 0) continue;
        y = std::log10(y);
      }
      pts.push_back({x, y, s.glyph});
      xr.include(x);
      yr.include(y);
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (pts.empty() || !xr.valid() || !yr.valid()) {
    out << "  (no plottable points)\n";
    return out.str();
  }
  if (xr.hi == xr.lo) xr.hi = xr.lo + 1.0;
  if (yr.hi == yr.lo) yr.hi = yr.lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& p : pts) {
    int cx = static_cast<int>(std::lround((p.x - xr.lo) / (xr.hi - xr.lo) * (w - 1)));
    int cy = static_cast<int>(std::lround((p.y - yr.lo) / (yr.hi - yr.lo) * (h - 1)));
    cx = std::clamp(cx, 0, w - 1);
    cy = std::clamp(cy, 0, h - 1);
    grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] = p.glyph;
  }

  if (!options.y_label.empty()) out << options.y_label << '\n';
  const std::string ylo = format_tick(options.log_y ? std::pow(10, yr.lo) : yr.lo);
  const std::string yhi = format_tick(options.log_y ? std::pow(10, yr.hi) : yr.hi);
  const std::size_t margin = std::max(ylo.size(), yhi.size());

  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) label = yhi;
    else if (r == h - 1) label = ylo;
    out << std::string(margin - label.size(), ' ') << label << " |"
        << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(margin + 1, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
      << '\n';
  const std::string xlo = format_tick(options.log_x ? std::pow(10, xr.lo) : xr.lo);
  const std::string xhi = format_tick(options.log_x ? std::pow(10, xr.hi) : xr.hi);
  out << std::string(margin + 2, ' ') << xlo
      << std::string(std::max<std::size_t>(1, static_cast<std::size_t>(w) -
                                                  xlo.size() - xhi.size()),
                     ' ')
      << xhi << '\n';
  if (!options.x_label.empty())
    out << std::string(margin + 2, ' ') << options.x_label << '\n';

  // Legend for multi-series plots.
  if (series.size() > 1) {
    out << "  legend:";
    for (const auto& s : series)
      if (!s.name.empty()) out << "  '" << s.glyph << "' = " << s.name;
    out << '\n';
  }
  return out.str();
}

std::string render_plot(const std::vector<double>& x, const std::vector<double>& y,
                        const PlotOptions& options) {
  return render_plot(std::vector<PlotSeries>{{"", x, y, '*'}}, options);
}

}  // namespace fullweb::support
