// Minimal command-line flag parsing for examples and bench drivers.
//
// Supports `--name value`, `--name=value`, and boolean `--name`. Unknown
// flags are an error so typos surface immediately.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fullweb::support {

class CliFlags {
 public:
  /// Declare a flag with a default value and help text. Call before parse().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parse argv. Returns false (and prints usage to stderr) on unknown flags
  /// or missing values. `--help` prints usage and returns false as well.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  void print_usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fullweb::support
