// Small thread-safe LRU cache of immutable shared values.
//
// Backs the process-wide kernel caches (FFT plans, fGn circulant spectra).
// Values are handed out as shared_ptr<const V>, so an entry evicted while
// another thread still uses it stays alive until that use ends; cached data
// is immutable after construction, which is what makes sharing across the
// executor's workers race-free (see DESIGN.md §5.6).
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace fullweb::support {

template <class Key, class Value, class Hash = std::hash<Key>>
class LruCache {
 public:
  /// Keeps at most `capacity` entries (least-recently-used evicted first).
  explicit LruCache(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value for `key`, building it with `factory` on a
  /// miss. The factory runs OUTSIDE the lock: it may be slow and may itself
  /// use this cache (the Bluestein plan builds its inner power-of-two plan
  /// this way). Two threads racing on the same fresh key may both run the
  /// factory; the first insertion wins and the loser adopts it, so callers
  /// always share one canonical value per key. The factory must return an
  /// equivalent value for equal keys.
  template <class Factory>
  std::shared_ptr<const Value> get_or_create(const Key& key, Factory&& factory) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (auto it = map_.find(key); it != map_.end()) {
        order_.splice(order_.begin(), order_, it->second.order_it);
        return it->second.value;
      }
    }
    std::shared_ptr<const Value> fresh = factory();
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = map_.find(key); it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second.order_it);
      return it->second.value;  // lost the race; share the winner
    }
    order_.push_front(key);
    map_.emplace(key, Entry{fresh, order_.begin()});
    if (map_.size() > capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
    return fresh;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
  }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    typename std::list<Key>::iterator order_it;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Key> order_;  // front = most recently used
  std::unordered_map<Key, Entry, Hash> map_;
};

}  // namespace fullweb::support
