#include "support/cli.h"

#include <cstdio>
#include <stdexcept>

#include "support/strings.h"

namespace fullweb::support {

void CliFlags::define(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

bool CliFlags::parse(int argc, const char* const* argv) {
  const std::string program = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg == "help") {
      print_usage(program);
      return false;
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      print_usage(program);
      return false;
    }
    if (!have_value) {
      // Boolean default: a bare `--flag` means "true" when the declared
      // default parses as a boolean; otherwise consume the next argument.
      const std::string& def = it->second.default_value;
      if (def == "true" || def == "false") {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

std::string CliFlags::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("undeclared flag: " + name);
  return it->second.value;
}

long long CliFlags::get_int(const std::string& name) const {
  auto v = parse_int(get(name));
  if (!v) throw std::invalid_argument("flag --" + name + " is not an integer");
  return *v;
}

double CliFlags::get_double(const std::string& name) const {
  auto v = parse_double(get(name));
  if (!v) throw std::invalid_argument("flag --" + name + " is not a number");
  return *v;
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = to_lower(get(name));
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

void CliFlags::print_usage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.default_value.c_str());
  }
}

}  // namespace fullweb::support
