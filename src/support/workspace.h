// Per-thread reusable scratch arena for the hot kernels.
//
// The spectral and tail paths used to allocate (and fault in) large buffers
// on every call: the FFT padded to 2n, the Bluestein convolution scratch,
// one resample vector per bootstrap replicate, a sorted copy per Hill/LLCD
// fit. Workspace keeps one buffer per (thread, slot) and lets those kernels
// reuse it: capacity survives across calls, so steady-state sweeps
// (bootstrap CIs, Monte-Carlo validation, periodogram sweeps) stop paying
// the allocator.
//
// Ownership contract (enforced by convention, documented in DESIGN.md §5.6):
//   - a slot has exactly one owning kernel along any call chain, so a caller
//     holding slot A may invoke a callee that uses slot B but never one that
//     reuses A (the slot table below encodes the call graph);
//   - buffers carry garbage from previous calls: owners must fully overwrite
//     before reading, and must never branch on leftover contents (that would
//     break run-to-run determinism);
//   - never hold a span into a slot across an Executor wait/parallel_for —
//     a worker that helps with stolen tasks would reuse its own arena.
//
// Thread safety: for_thread() hands each thread its own arena (thread_local),
// so there is no sharing and nothing to lock; TSan-clean by construction.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <vector>

namespace fullweb::support {

class Workspace {
 public:
  static constexpr std::size_t kSlots = 8;

  [[nodiscard]] std::vector<double>& real(std::size_t slot) noexcept {
    return real_[slot];
  }
  [[nodiscard]] std::vector<std::complex<double>>& cplx(
      std::size_t slot) noexcept {
    return cplx_[slot];
  }

  /// The calling thread's arena (main thread and every executor worker get
  /// their own).
  static Workspace& for_thread() noexcept;

 private:
  std::array<std::vector<double>, kSlots> real_;
  std::array<std::vector<std::complex<double>>, kSlots> cplx_;
};

/// Slot assignments. One owner per slot per call chain; see the contract
/// above before adding a user.
namespace ws {
// real() slots
inline constexpr std::size_t kBootstrapResample = 0;  ///< tail::bootstrap_ci replicate resample
inline constexpr std::size_t kTailSorted = 1;         ///< tail::hill_plot / llcd_fit positive-sample buffer
inline constexpr std::size_t kCurvatureSample = 2;    ///< tail::curvature_test MC replicate sample
inline constexpr std::size_t kFftStage = 4;           ///< stats::acf / periodogram real input staging
// cplx() slots
inline constexpr std::size_t kSpectrum = 0;      ///< stats::acf / periodogram spectrum buffer
inline constexpr std::size_t kRealFftHalf = 1;   ///< stats::fft_real packed half-length buffer
inline constexpr std::size_t kBluestein = 2;     ///< FftPlan Bluestein convolution scratch
inline constexpr std::size_t kFgnDraw = 3;       ///< timeseries::generate_fgn random spectrum
}  // namespace ws

}  // namespace fullweb::support
