// Fixed-width text tables and CSV emission for experiment drivers.
//
// Every bench binary prints the same rows the paper reports; this class keeps
// that output aligned and consistent, and can mirror it to CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fullweb::support {

/// Column-aligned text table. Usage:
///   Table t({"Data set", "Requests", "Sessions"});
///   t.add_row({"WVU", "15,785,164", "188,213"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with column padding and a header rule.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (fields containing comma/quote are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr const char* kSeparatorTag = "\x01--";
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fullweb::support
