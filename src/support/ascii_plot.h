// ASCII scatter/line plots for bench output.
//
// The paper's figures (time-series plots, ACFs, LLCD plots, Hill plots,
// aggregation sweeps) are rendered as character plots so every figure can be
// "seen" directly in the bench output without a plotting toolchain. Benches
// additionally dump the underlying (x, y) series as CSV for real plotting.
#pragma once

#include <string>
#include <vector>

namespace fullweb::support {

struct PlotOptions {
  int width = 72;        ///< plot area width in characters
  int height = 20;       ///< plot area height in characters
  bool log_x = false;    ///< log10 x axis (points with x <= 0 are dropped)
  bool log_y = false;    ///< log10 y axis (points with y <= 0 are dropped)
  std::string title;     ///< printed above the plot if non-empty
  std::string x_label;   ///< printed below the plot if non-empty
  std::string y_label;   ///< printed above the axis if non-empty
};

/// One named series of points; series are overlaid with distinct glyphs.
struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

/// Render one or more series into a character grid with axis annotations.
/// Returns the multi-line plot; empty input yields a short placeholder.
[[nodiscard]] std::string render_plot(const std::vector<PlotSeries>& series,
                                      const PlotOptions& options);

/// Convenience: single unnamed series.
[[nodiscard]] std::string render_plot(const std::vector<double>& x,
                                      const std::vector<double>& y,
                                      const PlotOptions& options);

}  // namespace fullweb::support
