// Lightweight per-stage wall-clock observer for the analysis pipeline.
//
// The FULL-Web task graph runs its branches concurrently, so a single
// outer stopwatch says nothing about where time goes. Each pipeline branch
// times itself with a StageTimer and reports into a shared (thread-safe)
// StageTimings sink; bench drivers print the resulting table. A null sink
// disables timing with no overhead beyond a pointer test.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fullweb::support {

class StageTimings {
 public:
  struct Entry {
    std::string stage;
    double seconds = 0.0;
  };

  /// Append one measurement (thread-safe; entries keep arrival order).
  void record(std::string_view stage, double seconds);

  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] bool empty() const;

  /// Sum of all recorded stage durations (CPU-side busy time; with
  /// parallel branches this exceeds elapsed wall-clock).
  [[nodiscard]] double total_seconds() const;

  /// Two-column "stage / seconds" text table, in arrival order.
  [[nodiscard]] std::string table() const;

 private:
  mutable std::mutex m_;
  std::vector<Entry> entries_;
};

/// RAII stopwatch: records the elapsed time into `sink` on destruction
/// (or at stop()). A null sink makes it a no-op.
class StageTimer {
 public:
  StageTimer(StageTimings* sink, std::string_view stage);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Record now and detach; returns the elapsed seconds.
  double stop();

 private:
  StageTimings* sink_;
  std::string stage_;
  double start_ = 0.0;  ///< steady-clock seconds
  bool armed_ = false;
};

}  // namespace fullweb::support
