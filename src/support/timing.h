// Lightweight per-stage wall-clock observer for the analysis pipeline.
//
// The FULL-Web task graph runs its branches concurrently, so a single
// outer stopwatch says nothing about where time goes. Each pipeline branch
// times itself with a StageTimer and reports into a shared (thread-safe)
// StageTimings sink; bench drivers print the resulting table. A null sink
// disables timing with no overhead beyond a pointer test.
//
// Beyond the flat table, the sink records a *span tree*: each entry keeps
// its start/stop timestamps, the dense id of the executing thread, and the
// index of the stage that was open on the same thread when it began. On a
// serial executor every task inlines at its submission site, so nesting
// reflects the task graph exactly; on a parallel pool a stolen task starts
// on a worker with no open stage and appears as a root (timestamps and
// thread ids stay meaningful, the tree does not).
//
// The tree drives a work/span model of the pipeline:
//   work W = sum of per-stage self times (time not covered by child stages)
//   span S = critical path, combining children by their Kind — kTask
//            siblings are concurrent (max), kPhase siblings are sequential
//            (sum) — with each stage's own self time divided by its
//            declared fan-out `width` (a stage whose body is a
//            parallel_for over `width` independent units contributes
//            self/width to the path).
// serial_fraction() = S/W and modeled_speedup(N) = 1/(s + (1-s)/N) give an
// Amdahl estimate of how the instrumented run would scale, measured from a
// single-threaded pass. Record the tree at threads=1: that is where nesting
// is faithful and timings deterministic.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace fullweb::support {

class StageTimings {
 public:
  /// How a stage overlaps with its siblings in the span model.
  enum class Kind {
    kTask,   ///< concurrent with sibling kTask stages (span takes the max)
    kPhase,  ///< sequential with every sibling (span adds it)
  };

  struct Entry {
    std::string stage;
    double seconds = 0.0;  ///< duration (0 while the stage is still open)
    double start = 0.0;    ///< begin time, seconds since the sink was made
    int thread = 0;        ///< dense id of the executing thread
    int parent = -1;       ///< index of the enclosing stage, -1 = root
    Kind kind = Kind::kTask;
    double width = 1.0;    ///< independent units the stage body fans into
  };

  StageTimings();

  /// Open a stage on this thread: the entry is created now (so children
  /// can reference it) and closed by end(). Returns the entry index.
  std::size_t begin(std::string_view stage, Kind kind = Kind::kTask,
                    double width = 1.0);

  /// Close a stage opened by begin() on the same thread.
  void end(std::size_t index);

  /// Append one already-measured leaf (thread-safe; keeps begin/arrival
  /// order). Parented under whatever stage is open on this thread.
  void record(std::string_view stage, double seconds);

  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] bool empty() const;

  /// Sum of all recorded *root* stage durations plus nothing else would
  /// undercount concurrent branches, so this remains the historical sum of
  /// every stage duration (CPU-side busy time; with parallel branches or
  /// nested stages this exceeds elapsed wall-clock).
  [[nodiscard]] double total_seconds() const;

  /// Total work: sum over stages of self time (duration minus the duration
  /// of direct children). Unlike total_seconds() nothing is double-counted.
  [[nodiscard]] double work_seconds() const;

  /// Critical path under the Kind/width model described above.
  [[nodiscard]] double span_seconds() const;

  /// Amdahl serial fraction s = span/work, clamped to [0, 1]. Returns 1
  /// when nothing was recorded.
  [[nodiscard]] double serial_fraction() const;

  /// Amdahl projection 1 / (s + (1 - s) / threads) from serial_fraction().
  [[nodiscard]] double modeled_speedup(std::size_t threads) const;

  /// "stage / seconds" text table in begin order, children indented under
  /// their parents.
  [[nodiscard]] std::string table() const;

  /// The span tree as a JSON document: sink-level work/span/serial-fraction
  /// plus one record per stage ({stage, seconds, start, thread, parent,
  /// kind, width}). Deterministic for a deterministic run.
  [[nodiscard]] std::string to_json() const;

 private:
  [[nodiscard]] int thread_id_locked(std::thread::id id);
  /// Work/span over a snapshot (no lock).
  static void analyze(const std::vector<Entry>& snapshot, double& work,
                      double& span);

  mutable std::mutex m_;
  std::vector<Entry> entries_;
  std::map<std::thread::id, int> thread_ids_;
  double origin_ = 0.0;  ///< steady-clock seconds at construction
};

/// RAII stopwatch: opens the stage in `sink` on construction, closes it on
/// destruction (or at stop()). A null sink makes it a no-op.
class StageTimer {
 public:
  StageTimer(StageTimings* sink, std::string_view stage,
             StageTimings::Kind kind = StageTimings::Kind::kTask,
             double width = 1.0);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Record now and detach; returns the elapsed seconds.
  double stop();

 private:
  StageTimings* sink_;
  std::size_t index_ = 0;
  double start_ = 0.0;  ///< steady-clock seconds
  bool armed_ = false;
};

}  // namespace fullweb::support
