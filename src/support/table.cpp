#include "support/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fullweb::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity " + std::to_string(cells.size()) +
                                " != header arity " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.push_back({kSeparatorTag}); }

namespace {

bool is_separator(const std::vector<std::string>& row) {
  return row.size() == 1 && row[0] == "\x01--";
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (is_separator(row)) continue;
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c], '-');
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };

  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (is_separator(row)) print_rule();
    else print_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!is_separator(row)) emit(row);
  }
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace fullweb::support
