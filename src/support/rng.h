// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (the synthetic workload generator,
// FGN generation, Monte-Carlo curvature tests) take an explicit Rng so every
// experiment is reproducible from a seed. The engine is xoshiro256++ (Blackman
// & Vigna), which is far faster than std::mt19937_64 and has no detectable
// statistical flaws at the sizes we use.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace fullweb::support {

/// xoshiro256++ engine with a SplitMix64 seeding routine. Satisfies the
/// UniformRandomBitGenerator concept so it can also feed std:: distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1) guaranteed strictly positive — safe as the
  /// argument of log() in inverse-CDF sampling.
  double uniform_pos() noexcept {
    double u;
    do {
      u = uniform();
    } while (u == 0.0);
    return u;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) *
            static_cast<unsigned __int128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method; caches the spare).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Advance the state by 2^128 steps (the xoshiro256++ jump polynomial).
  /// Repeated jumps partition the period into 2^128 non-overlapping
  /// subsequences: the canonical way to hand independent streams to
  /// parallel tasks without any risk of correlation.
  void jump() noexcept {
    apply_jump({0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL});
  }

  /// Advance the state by 2^192 steps. Use to reserve a whole region of the
  /// sequence (room for 2^64 jump()-spaced substreams) for derived streams.
  void long_jump() noexcept {
    apply_jump({0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                0x77710069854ee241ULL, 0x39109bb02acbe635ULL});
  }

  /// Advance the state by 2^e steps, for e in {96, 128, 160, 192, 224}.
  /// These are the stream spacings RngSplitter uses to keep nested splits
  /// disjoint. The e = 96, 160 and 224 polynomials are produced by
  /// tools/gen_jump_polys.cpp (x^(2^e) mod the characteristic polynomial of
  /// the state transition); as a self-check the generator reproduces the
  /// published e = 128 and e = 192 constants bit for bit.
  void jump_pow2(int e) noexcept {
    switch (e) {
      case 96:
        apply_jump({0x148c356c3114b7a9ULL, 0xcdb45d7def42c317ULL,
                    0xb27c05962ea56a13ULL, 0x31eebb6c82a9615fULL});
        return;
      case 128:
        jump();
        return;
      case 160:
        apply_jump({0xc04b4f9c5d26c200ULL, 0x69e6e6e431a2d40bULL,
                    0x4823b45b89dc689cULL, 0xf567382197055bf0ULL});
        return;
      case 192:
        long_jump();
        return;
      case 224:
        apply_jump({0x0c7840cbc3b121adULL, 0xd317530723ab526aULL,
                    0xf31d2e03157bc387ULL, 0xa2b5d83a373c7ac2ULL});
        return;
      default:
        assert(false && "jump_pow2: unsupported exponent");
    }
  }

  /// The k-th substream of this generator: a copy advanced by k jumps, i.e.
  /// the subsequence starting k * 2^128 steps ahead. Substreams with
  /// distinct k never overlap, and substream(k) is a pure function of
  /// (current state, k) — independent of how other substreams are used.
  [[nodiscard]] Rng substream(std::uint64_t k) const noexcept {
    Rng out = *this;
    out.have_spare_ = false;
    for (std::uint64_t i = 0; i < k; ++i) out.jump();
    return out;
  }

 private:
  void apply_jump(const std::array<std::uint64_t, 4>& poly) noexcept {
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : poly) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
    have_spare_ = false;
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// Hands out non-overlapping substreams of a base generator one index at a
/// time, with an explicit nesting *level* that keeps re-split streams
/// disjoint from their siblings.
///
/// A splitter at level L spaces consecutive streams 2^(128 + 32L) states
/// apart. Level-0 streams are leaves: consume them directly, or subdivide
/// them once into micro-streams with a level -1 splitter (see below) —
/// never re-split them at level >= 0. A stream from a level-L splitter
/// (L >= 1) owns the whole region up
/// to its successor — exactly enough room to host one level-(L-1) splitter
/// with up to 2^32 streams, each itself re-splittable one level further
/// down. The level is what prevents hierarchy aliasing: if every level used
/// the same 2^128 spacing, parent.stream(k) re-split would reproduce
/// parent.stream(k + j) bit for bit, silently correlating "independent"
/// branches of a task graph.
///
/// At level 0, stream(k) == base.substream(k) for every k; sequential
/// (monotonically increasing) access — the pattern task graphs use when
/// assigning stream ids at submission time — is O(1) amortized instead of
/// O(k), because the splitter caches the last jumped-to position.
///
/// Level -1 subdivides INSIDE a leaf instead of above it: micro-streams
/// spaced 2^96 apart, 2^32 of which tile exactly one level-0 leaf region
/// (2^32 * 2^96 = 2^128). This is how per-replicate Monte-Carlo fan-outs
/// (tail/curvature.cpp) hand every replicate its own stream without
/// deepening the whole hierarchy: a level-(-1) split CONSUMES the leaf — the
/// caller must not draw from the parent generator afterwards, because the
/// micro-streams start at its current state. Each micro-stream has 2^96
/// values of room, far beyond any replicate's appetite.
///
/// Constructing a splitter from a live generator advances the parent by
/// 2^224 states — past the entire region a splitter of any level can
/// occupy — so the parent may keep producing values (or seed further
/// splitters) without ever colliding with a derived stream. (For a
/// level -1 split this overshoots the leaf's own region; that is exactly
/// the leaf-consuming contract above.)
class RngSplitter {
 public:
  /// Deepest supported splitter level: a three-level hierarchy
  /// (2 -> 1 -> 0) as used by core::fit_fullweb_model.
  static constexpr int kMaxLevel = 2;
  /// Intra-leaf micro-stream level (see class comment).
  static constexpr int kMinLevel = -1;

  /// Splits `parent` at `level`: captures its state as the substream base,
  /// then jumps the parent out of the derived region.
  explicit RngSplitter(Rng& parent, int level = 0) noexcept
      : base_(parent.substream(0)),  // substream(0) drops the cached normal
                                     // spare, so stream(k) == substream(k)
        cursor_(base_),
        level_(level < kMinLevel ? kMinLevel
                                 : (level > kMaxLevel ? kMaxLevel : level)) {
    assert(level >= kMinLevel && level <= kMaxLevel);
    parent.jump_pow2(224);
  }

  /// Splitter over a copy of `rng` without touching it (the caller promises
  /// not to reuse the generator's current position).
  static RngSplitter over(const Rng& rng, int level = 0) noexcept {
    Rng copy = rng;
    return RngSplitter(copy, level);
  }

  [[nodiscard]] int level() const noexcept { return level_; }

  /// The k-th substream of the base generator. At kMaxLevel, k must stay
  /// below 2^32 so the stream remains inside the region reserved from the
  /// parent; at level -1 the same bound keeps micro-streams inside the one
  /// leaf being subdivided (intermediate levels accept any k).
  [[nodiscard]] Rng stream(std::uint64_t k) noexcept {
    assert((level_ < kMaxLevel && level_ > kMinLevel) ||
           k < (std::uint64_t{1} << 32));
    if (k < cursor_index_) {  // rewind: restart from the base state
      cursor_ = base_;
      cursor_index_ = 0;
    }
    while (cursor_index_ < k) {
      cursor_.jump_pow2(128 + 32 * level_);
      ++cursor_index_;
    }
    return cursor_;
  }

 private:
  Rng base_;
  Rng cursor_;
  std::uint64_t cursor_index_ = 0;
  int level_ = 0;
};

}  // namespace fullweb::support
