// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (the synthetic workload generator,
// FGN generation, Monte-Carlo curvature tests) take an explicit Rng so every
// experiment is reproducible from a seed. The engine is xoshiro256++ (Blackman
// & Vigna), which is far faster than std::mt19937_64 and has no detectable
// statistical flaws at the sizes we use.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace fullweb::support {

/// xoshiro256++ engine with a SplitMix64 seeding routine. Satisfies the
/// UniformRandomBitGenerator concept so it can also feed std:: distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1) guaranteed strictly positive — safe as the
  /// argument of log() in inverse-CDF sampling.
  double uniform_pos() noexcept {
    double u;
    do {
      u = uniform();
    } while (u == 0.0);
    return u;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) *
            static_cast<unsigned __int128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method; caches the spare).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Derive an independent stream: hashes this generator's next output with
  /// the stream id so parallel components (per-server generators) do not
  /// share sequences.
  Rng fork(std::uint64_t stream_id) noexcept {
    return Rng((*this)() ^ (stream_id * 0x2545f4914f6cdd1dULL + 0x9e3779b9ULL));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace fullweb::support
