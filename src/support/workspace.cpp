#include "support/workspace.h"

namespace fullweb::support {

Workspace& Workspace::for_thread() noexcept {
  thread_local Workspace arena;
  return arena;
}

}  // namespace fullweb::support
