#include "support/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace fullweb::support {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view p) noexcept {
  return s.size() >= p.size() && s.substr(0, p.size()) == p;
}

bool ends_with(std::string_view s, std::string_view p) noexcept {
  return s.size() >= p.size() && s.substr(s.size() - p.size()) == p;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long v = 0;
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return v;
}

std::string format_sig(double v, int digits) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string with_commas(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace fullweb::support
