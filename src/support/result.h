// Result<T>: lightweight expected-style error handling.
//
// The library avoids exceptions on anticipated failure paths (malformed log
// lines, insufficient samples, non-converging estimators) and reserves
// exceptions for programming errors / violated preconditions. C++20 has no
// std::expected, so this header provides a minimal, value-semantic stand-in.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace fullweb::support {

/// Error payload: a human-readable message plus an optional machine-readable
/// category tag used by callers that need to branch on failure kinds
/// (e.g. distinguishing "not enough data" from "parse error").
struct Error {
  std::string message;
  std::string category = "error";

  static Error insufficient_data(std::string msg) {
    return Error{std::move(msg), "insufficient_data"};
  }
  static Error parse(std::string msg) { return Error{std::move(msg), "parse"}; }
  static Error numeric(std::string msg) {
    return Error{std::move(msg), "numeric"};
  }
  static Error invalid_argument(std::string msg) {
    return Error{std::move(msg), "invalid_argument"};
  }
};

/// Value-or-error container. Inspect with ok(); extract with value() (throws
/// std::logic_error if called on an error, signalling a caller bug) or
/// value_or(). Construction from T or Error is implicit so functions can
/// `return Error{...}` / `return some_value;` directly.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}           // NOLINT(implicit)
  Result(Error error) : payload_(std::move(error)) {}       // NOLINT(implicit)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(payload_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(payload_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(std::move(payload_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(payload_);
  }

  /// Apply `fn` to the contained value, propagating errors unchanged.
  template <typename Fn>
  auto map(Fn&& fn) const -> Result<decltype(fn(std::declval<const T&>()))> {
    if (!ok()) return error();
    return fn(std::get<T>(payload_));
  }

 private:
  std::variant<T, Error> payload_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                        // success
  Status(Error error) : error_(std::move(error)) {}          // NOLINT(implicit)

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace fullweb::support
