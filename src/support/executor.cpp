#include "support/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fullweb::support {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// pool internals

struct Executor::Impl {
  struct WorkerQueue {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  explicit Impl(std::size_t workers) {
    queues_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads_.emplace_back([this, i] { worker_loop(i); });
  }

  ~Impl() {
    {
      std::scoped_lock lock(signal_m_);
      stop_ = true;
      ++work_epoch_;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Push a task: running workers push onto their own deque (LIFO pop keeps
  /// nested subtasks hot in cache); external threads use the shared
  /// injection queue.
  void push(std::function<void()> task) {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    if (current_pool == this) {
      WorkerQueue& mine = *queues_[current_index];
      std::scoped_lock lock(mine.m);
      mine.q.push_back(std::move(task));
    } else {
      std::scoped_lock lock(inject_m_);
      inject_q_.push_back(std::move(task));
    }
    bump_epoch();
  }

  /// Called after a popped task has run to completion (worker or helper).
  /// The epoch bump is what wakes blocked waiters: a completion may be the
  /// one that drops their WaitState::pending to zero.
  void finished_one() {
    outstanding_.fetch_sub(1, std::memory_order_release);
    bump_epoch();
  }

  bool idle() const { return outstanding_.load(std::memory_order_acquire) == 0; }

  std::uint64_t epoch() {
    std::scoped_lock lock(signal_m_);
    return work_epoch_;
  }

  /// Block until the epoch moves past `seen` (new work pushed, or a task
  /// completed). The timeout is a backstop only — every epoch change
  /// notifies — so it can be coarse.
  void wait_for_epoch_change(std::uint64_t seen) {
    std::unique_lock lock(signal_m_);
    work_cv_.wait_for(lock, 100ms, [&] { return work_epoch_ != seen; });
  }

  void bump_epoch() {
    {
      std::scoped_lock lock(signal_m_);
      ++work_epoch_;
    }
    work_cv_.notify_all();
  }

  /// Pop one task, preferring the caller's own deque, then the injection
  /// queue, then stealing the oldest task from a victim.
  bool try_pop(std::function<void()>& out) {
    if (current_pool == this) {
      WorkerQueue& mine = *queues_[current_index];
      std::scoped_lock lock(mine.m);
      if (!mine.q.empty()) {
        out = std::move(mine.q.back());  // LIFO: newest, cache-warm
        mine.q.pop_back();
        return true;
      }
    }
    {
      std::scoped_lock lock(inject_m_);
      if (!inject_q_.empty()) {
        out = std::move(inject_q_.front());
        inject_q_.pop_front();
        return true;
      }
    }
    const std::size_t self =
        current_pool == this ? current_index : queues_.size();
    for (std::size_t k = 0; k < queues_.size(); ++k) {
      if (k == self) continue;
      WorkerQueue& victim = *queues_[k];
      std::scoped_lock lock(victim.m);
      if (!victim.q.empty()) {
        out = std::move(victim.q.front());  // FIFO: steal the coarsest task
        victim.q.pop_front();
        return true;
      }
    }
    return false;
  }

  void worker_loop(std::size_t index) {
    current_pool = this;
    current_index = index;
    std::function<void()> task;
    for (;;) {
      std::uint64_t seen;
      {
        std::scoped_lock lock(signal_m_);
        if (stop_) return;
        seen = work_epoch_;
      }
      if (try_pop(task)) {
        task();
        task = nullptr;
        finished_one();
        continue;
      }
      std::unique_lock lock(signal_m_);
      // The epoch was sampled before the failed pop, so any push since then
      // makes the predicate true immediately — no wakeup can be lost. The
      // timeout is a coarse backstop, not a poll.
      work_cv_.wait_for(lock, 1s, [&] { return stop_ || work_epoch_ != seen; });
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::mutex inject_m_;
  std::deque<std::function<void()>> inject_q_;

  std::mutex signal_m_;
  std::condition_variable work_cv_;
  std::uint64_t work_epoch_ = 0;
  bool stop_ = false;

  /// Tasks pushed whose bodies have not yet returned (queued + executing).
  std::atomic<std::size_t> outstanding_{0};

  std::vector<std::thread> threads_;

  /// Which pool (if any) the current thread is a worker of.
  static thread_local Impl* current_pool;
  static thread_local std::size_t current_index;
};

thread_local Executor::Impl* Executor::Impl::current_pool = nullptr;
thread_local std::size_t Executor::Impl::current_index = 0;

// ---------------------------------------------------------------------------
// Executor

Executor::Executor(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // Hard cap: a wild request (e.g. a negative CLI value cast to size_t)
  // must not try to spawn billions of workers.
  constexpr std::size_t kMaxThreads = 1024;
  threads_ = std::min(threads, kMaxThreads);
  if (threads_ > 1) impl_ = std::make_unique<Impl>(threads_);
}

Executor::~Executor() = default;

void Executor::enqueue(std::function<void()> task) {
  impl_->push(std::move(task));
}

bool Executor::try_run_one() {
  if (!impl_) return false;
  std::function<void()> task;
  if (!impl_->try_pop(task)) return false;
  task();
  impl_->finished_one();
  return true;
}

void Executor::help_while_pending(detail::WaitState& state) {
  for (;;) {
    // Sample the epoch before checking for work: any push or completion
    // after this point changes it, so the wait below cannot sleep through
    // an event it needed.
    const std::uint64_t seen = impl_ ? impl_->epoch() : 0;
    {
      std::scoped_lock lock(state.m);
      if (state.pending == 0) return;
    }
    if (try_run_one()) continue;
    // Nothing runnable here (tasks are in flight on other threads): block
    // on the pool's event stream. Both events we care about — a completion
    // (which may zero state.pending) and new work spawned by in-flight
    // tasks (which we should help run) — bump the epoch and notify.
    if (impl_) {
      impl_->wait_for_epoch_change(seen);
    } else {
      // Serial executor: tasks run inline, so pending should already be 0
      // here; wait defensively rather than spin.
      std::unique_lock lock(state.m);
      state.cv.wait_for(lock, 1ms, [&] { return state.pending == 0; });
    }
  }
}

TaskGroup::~TaskGroup() {
  // Tasks capture state_ by shared_ptr, so letting them outlive the group
  // would be memory-safe but almost certainly a logic bug (results written
  // after the scope that owns them ended) — drain instead.
  executor_.help_while_pending(*state_);
}

void TaskGroup::wait() {
  executor_.help_while_pending(*state_);
  std::exception_ptr error;
  {
    std::scoped_lock lock(state_->m);
    error = state_->error;
    state_->error = nullptr;  // observed
  }
  if (error) std::rethrow_exception(error);
}

// ---------------------------------------------------------------------------
// global pool

namespace {
std::mutex g_global_m;
std::unique_ptr<Executor> g_global;  // guarded by g_global_m
}  // namespace

Executor& Executor::global() {
  std::scoped_lock lock(g_global_m);
  if (!g_global) g_global = std::make_unique<Executor>(0);
  return *g_global;
}

void Executor::set_global_threads(std::size_t n) {
  std::scoped_lock lock(g_global_m);
  if (g_global && g_global->impl_) {
    // global() hands out bare references, so swapping the pool while work
    // is in flight would dangle them. Tolerate the short window between a
    // waiter observing completion and the worker's wrapper returning, then
    // fail loudly instead of use-after-free.
    for (int spin = 0; !g_global->impl_->idle() && spin < 1000; ++spin)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    if (!g_global->impl_->idle())
      throw std::logic_error(
          "Executor::set_global_threads: the global pool has tasks "
          "outstanding; resize only between analyses");
  }
  g_global = std::make_unique<Executor>(n);
}

}  // namespace fullweb::support
