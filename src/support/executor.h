// Work-stealing task executor: the shared parallel substrate for the
// analysis pipeline.
//
// The FULL-Web pipeline is embarrassingly parallel at every layer — five
// independent Hurst estimators, Poisson batteries over three intervals,
// three tail analyses per interval, hundreds of bootstrap resamples — so
// one pool sized to the machine runs the whole task graph. Design points:
//
//  * Per-worker deques plus a shared injection queue. Workers pop their own
//    deque LIFO (cache locality for nested task graphs) and steal FIFO from
//    victims, so coarse outer tasks migrate while fine inner tasks stay put.
//  * Blocking waits HELP: a thread waiting on a TaskGroup or Future drains
//    pending tasks instead of sleeping, so nested parallelism (a task that
//    itself fans out) cannot deadlock even on a 1-worker pool.
//  * threads == 1 is a true serial executor — tasks run inline at submission
//    on the calling thread, with no pool and no synchronization. Combined
//    with per-task RNG substreams (support/rng.h), parallel and serial runs
//    of the pipeline produce bit-identical results by construction.
//  * Exceptions propagate: the first exception thrown by a task in a group
//    (or parallel_for) is captured and rethrown from wait()/get(); remaining
//    parallel_for chunks are cancelled.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>

namespace fullweb::support {

class Executor;

namespace detail {

/// Completion state shared between a waiter and the tasks it waits on.
struct WaitState {
  std::mutex m;
  std::condition_variable cv;
  std::size_t pending = 0;          ///< tasks submitted but not finished
  std::exception_ptr error;         ///< first failure, rethrown by the waiter
  bool cancelled = false;           ///< set on first failure; chunks may skip

  void task_started() {
    std::scoped_lock lock(m);
    ++pending;
  }
  void task_finished() {
    {
      std::scoped_lock lock(m);
      --pending;
    }
    cv.notify_all();
  }
  void task_failed(std::exception_ptr e) {
    {
      std::scoped_lock lock(m);
      if (!error) error = std::move(e);
      cancelled = true;
      --pending;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// A set of tasks submitted to one executor and awaited together.
/// Not thread-safe: run() and wait() must be called from the owning thread
/// (tasks themselves may run anywhere).
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor) noexcept
      : executor_(executor), state_(std::make_shared<detail::WaitState>()) {}
  ~TaskGroup();  ///< blocks until all tasks finish (exceptions swallowed —
                 ///< call wait() explicitly to observe them)

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit `fn` to the group's executor. On a serial executor the call
  /// runs inline before returning.
  template <typename F>
  void run(F&& fn);

  /// Block until every submitted task has finished, helping to execute
  /// pending tasks meanwhile. Rethrows the first task exception.
  void wait();

 private:
  Executor& executor_;
  std::shared_ptr<detail::WaitState> state_;
};

/// Result handle for Executor::async. get() helps the pool while waiting
/// and rethrows the task's exception, like std::future but deadlock-free
/// under nested parallelism.
template <typename T>
class Future {
 public:
  Future() = default;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Wait for the task, then return its value (exactly once).
  T get();

 private:
  friend class Executor;
  struct State : detail::WaitState {
    std::optional<T> value;
  };
  Future(Executor* executor, std::shared_ptr<State> state) noexcept
      : executor_(executor), state_(std::move(state)) {}

  Executor* executor_ = nullptr;
  std::shared_ptr<State> state_;
};

class Executor {
 public:
  /// threads == 0: use hardware_concurrency(). threads == 1: serial inline
  /// execution (no pool threads). threads >= 2: that many worker threads.
  explicit Executor(std::size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Configured parallelism (1 for the serial executor).
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }
  [[nodiscard]] bool serial() const noexcept { return threads_ == 1; }

  /// Submit a callable; returns a Future for its result.
  template <typename F>
  auto async(F&& fn) -> Future<std::invoke_result_t<std::decay_t<F>&>>;

  /// Run body(i) for every i in [begin, end), in parallel chunks of about
  /// `grain` indices (0 = pick automatically). Blocks until complete; the
  /// calling thread executes chunks too. The first exception thrown by any
  /// body is rethrown here and cancels chunks that have not yet started.
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& body,
                    std::size_t grain = 0);

  /// The process-wide default pool, sized by set_global_threads() or
  /// hardware_concurrency(). Created lazily on first use.
  static Executor& global();

  /// Replace the global pool with one of `n` threads (0 = hardware). Call
  /// between analyses: throws std::logic_error if the old pool still has
  /// tasks outstanding, because references handed out by global() would
  /// dangle. Examples and bench drivers call this from --threads at
  /// startup.
  static void set_global_threads(std::size_t n);

  /// options-plumbing helper: a null executor pointer means "the global
  /// pool", so every analysis entry point resolves through here.
  static Executor& resolve(Executor* executor) {
    return executor != nullptr ? *executor : global();
  }

 private:
  friend class TaskGroup;
  template <typename T>
  friend class Future;

  struct Impl;

  /// Enqueue a type-erased task (pool mode only).
  void enqueue(std::function<void()> task);
  /// Pop-and-run one pending task from anywhere in the pool, if any.
  bool try_run_one();
  /// Help until state->pending drops to zero.
  void help_while_pending(detail::WaitState& state);

  std::size_t threads_ = 1;
  std::unique_ptr<Impl> impl_;  ///< null for the serial executor
};

// ---------------------------------------------------------------------------
// template member implementations

template <typename F>
void TaskGroup::run(F&& fn) {
  if (executor_.serial()) {
    state_->task_started();
    try {
      fn();
      state_->task_finished();
    } catch (...) {
      state_->task_failed(std::current_exception());
    }
    return;
  }
  state_->task_started();
  executor_.enqueue(
      [state = state_, fn = std::forward<F>(fn)]() mutable {
        try {
          fn();
          state->task_finished();
        } catch (...) {
          state->task_failed(std::current_exception());
        }
      });
}

template <typename F>
auto Executor::async(F&& fn) -> Future<std::invoke_result_t<std::decay_t<F>&>> {
  using T = std::invoke_result_t<std::decay_t<F>&>;
  auto state = std::make_shared<typename Future<T>::State>();
  state->task_started();
  auto task = [state, fn = std::forward<F>(fn)]() mutable {
    try {
      if constexpr (std::is_void_v<T>) {
        fn();
        state->value.emplace();
      } else {
        state->value.emplace(fn());
      }
      state->task_finished();
    } catch (...) {
      state->task_failed(std::current_exception());
    }
  };
  if (serial()) {
    task();
  } else {
    enqueue(std::move(task));
  }
  return Future<T>(this, std::move(state));
}

// void needs a storable placeholder; reuse Future<bool>-style machinery by
// specializing the value slot away.
template <>
class Future<void> {
 public:
  Future() = default;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  void get();

 private:
  friend class Executor;
  struct State : detail::WaitState {
    std::optional<bool> value;  ///< set true on success
  };
  Future(Executor* executor, std::shared_ptr<State> state) noexcept
      : executor_(executor), state_(std::move(state)) {}

  Executor* executor_ = nullptr;
  std::shared_ptr<State> state_;
};

template <typename T>
T Future<T>::get() {
  executor_->help_while_pending(*state_);
  std::exception_ptr error;
  {
    std::scoped_lock lock(state_->m);
    error = state_->error;
  }
  if (error) std::rethrow_exception(error);
  return std::move(*state_->value);
}

inline void Future<void>::get() {
  executor_->help_while_pending(*state_);
  std::exception_ptr error;
  {
    std::scoped_lock lock(state_->m);
    error = state_->error;
  }
  if (error) std::rethrow_exception(error);
}

template <typename F>
void Executor::parallel_for(std::size_t begin, std::size_t end, F&& body,
                            std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (serial() || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  if (grain == 0) {
    // Aim for a few chunks per thread so stealing can balance uneven work.
    grain = std::max<std::size_t>(1, n / (4 * threads_));
  }
  auto state = std::make_shared<detail::WaitState>();
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    state->task_started();
    enqueue([state, lo, hi, &body]() {
      {
        std::scoped_lock lock(state->m);
        if (state->cancelled) {  // a sibling chunk already threw
          --state->pending;
          state->cv.notify_all();
          return;
        }
      }
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
        state->task_finished();
      } catch (...) {
        state->task_failed(std::current_exception());
      }
    });
  }
  help_while_pending(*state);
  std::exception_ptr error;
  {
    std::scoped_lock lock(state->m);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace fullweb::support
