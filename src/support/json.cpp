#include "support/json.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace fullweb::support {

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto value = parse_value();
    skip_ws();
    if (!value || pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue{*s};
    }
    if (literal("true")) return JsonValue{true};
    if (literal("false")) return JsonValue{false};
    if (literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  std::optional<JsonValue> parse_object() {
    if (!consume('{')) return std::nullopt;
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) return JsonValue{obj};
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key || !consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      (*obj)[*key] = *value;
      if (consume(',')) continue;
      if (consume('}')) return JsonValue{obj};
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    if (!consume('[')) return std::nullopt;
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) return JsonValue{arr};
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr->push_back(*value);
      if (consume(',')) continue;
      if (consume(']')) return JsonValue{arr};
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u':  // keep the raw escape; names never need code points
            if (pos_ + 4 > text_.size()) return std::nullopt;
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    try {
      return JsonValue{std::stod(text_.substr(start, pos_ - start))};
    } catch (...) {
      return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text) {
  return JsonParser(text).parse();
}

std::string json_format_double(double x) {
  // Shortest of %.15g / %.16g / %.17g that parses back to the same bits, so
  // common values print compactly while every double still round-trips.
  char buf[32];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, x);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == x || (x != x && back != back)) break;
  }
  std::string s(buf);
  // JSON has no inf/nan literals; emit them as strings the parser will at
  // least surface rather than corrupt the document.
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos)
    return json_quote(s);
  return s;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::newline_indent() {
  out_.push_back('\n');
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.frame == Frame::kObject) {
    assert(top.key_pending && "JsonWriter: value without key inside object");
    top.key_pending = false;
    return;  // key() already placed comma/indent
  }
  if (!top.empty) out_.push_back(',');
  top.empty = false;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back({Frame::kObject});
  out_.push_back('{');
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().frame == Frame::kObject);
  const bool empty = stack_.back().empty;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_.push_back('}');
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back({Frame::kArray});
  out_.push_back('[');
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().frame == Frame::kArray);
  const bool empty = stack_.back().empty;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_.push_back(']');
}

void JsonWriter::key(const std::string& name) {
  assert(!stack_.empty() && stack_.back().frame == Frame::kObject);
  Level& top = stack_.back();
  assert(!top.key_pending && "JsonWriter: two keys in a row");
  if (!top.empty) out_.push_back(',');
  top.empty = false;
  newline_indent();
  out_ += json_quote(name);
  out_ += ": ";
  top.key_pending = true;
}

void JsonWriter::value(const std::string& s) {
  before_value();
  out_ += json_quote(s);
}
void JsonWriter::value(const char* s) { value(std::string(s)); }
void JsonWriter::value(double x) {
  before_value();
  out_ += json_format_double(x);
}
void JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
}
void JsonWriter::value(std::size_t n) {
  before_value();
  out_ += std::to_string(n);
}
void JsonWriter::null() {
  before_value();
  out_ += "null";
}

std::string JsonWriter::str() && {
  assert(stack_.empty() && "JsonWriter: unclosed object/array");
  out_.push_back('\n');
  return std::move(out_);
}

}  // namespace fullweb::support
