// Small string utilities used by the log parser and CLI handling.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fullweb::support {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a single-character delimiter. Empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// True if `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view p) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view p) noexcept;

/// Locale-independent numeric parsing; returns nullopt on any trailing junk.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// Format a double with `digits` significant digits (for table output).
[[nodiscard]] std::string format_sig(double v, int digits = 4);

/// Format an integer with thousands separators: 15785164 -> "15,785,164".
[[nodiscard]] std::string with_commas(long long v);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view s);

}  // namespace fullweb::support
