#include "timeseries/seasonal.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "stats/descriptive.h"
#include "stats/periodogram.h"

namespace fullweb::timeseries {

using support::Error;
using support::Result;

Result<std::size_t> detect_period(std::span<const double> xs,
                                  std::size_t min_period, std::size_t max_period) {
  if (min_period < 2 || max_period < min_period)
    return Error::invalid_argument("detect_period: bad period bounds");
  if (xs.size() < 2 * max_period)
    return Error::insufficient_data(
        "detect_period: need at least two full cycles of max_period");

  return detect_period(stats::periodogram(xs), min_period, max_period);
}

Result<std::size_t> detect_period(const stats::Periodogram& pg,
                                  std::size_t min_period,
                                  std::size_t max_period) {
  if (min_period < 2 || max_period < min_period)
    return Error::invalid_argument("detect_period: bad period bounds");
  const double period =
      stats::dominant_period(pg, static_cast<double>(min_period),
                             static_cast<double>(max_period));
  if (period <= 0.0)
    return Error::numeric("detect_period: no periodogram ordinate in range");
  return static_cast<std::size_t>(std::lround(period));
}

std::vector<double> seasonal_difference(std::span<const double> xs,
                                        std::size_t period) {
  assert(period >= 1 && period < xs.size());
  std::vector<double> out(xs.size() - period);
  for (std::size_t t = period; t < xs.size(); ++t)
    out[t - period] = xs[t] - xs[t - period];
  return out;
}

std::vector<double> remove_seasonal_means(std::span<const double> xs,
                                          std::size_t period) {
  assert(period >= 1);
  const std::size_t n = xs.size();
  std::vector<double> phase_sum(period, 0.0);
  std::vector<std::size_t> phase_count(period, 0);
  for (std::size_t t = 0; t < n; ++t) {
    phase_sum[t % period] += xs[t];
    ++phase_count[t % period];
  }
  const double grand_mean = n > 0 ? stats::mean(xs) : 0.0;
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t p = t % period;
    const double pm = phase_count[p] > 0
                          ? phase_sum[p] / static_cast<double>(phase_count[p])
                          : grand_mean;
    out[t] = xs[t] - pm + grand_mean;
  }
  return out;
}

double seasonal_strength(std::span<const double> xs, std::size_t period) {
  if (xs.size() < 4 || period < 2) return 0.0;
  return seasonal_strength(stats::periodogram(xs), xs.size(), period);
}

double seasonal_strength(const stats::Periodogram& pg, std::size_t n,
                         std::size_t period) {
  if (n < 4 || period < 2) return 0.0;
  if (pg.power.empty()) return 0.0;

  const double target =
      2.0 * std::numbers::pi / static_cast<double>(period);
  double total = 0.0;
  for (double p : pg.power) total += p;
  if (!(total > 0.0)) return 0.0;

  // Sum power within one bin of the target frequency.
  const double bin = 2.0 * std::numbers::pi / static_cast<double>(n);
  double at_period = 0.0;
  for (std::size_t i = 0; i < pg.frequency.size(); ++i) {
    if (std::fabs(pg.frequency[i] - target) <= 1.5 * bin) at_period += pg.power[i];
  }
  return at_period / total;
}

}  // namespace fullweb::timeseries
