#include "timeseries/fgn.h"

#include <cmath>
#include <complex>

#include "stats/fft.h"

namespace fullweb::timeseries {

using support::Error;
using support::Result;

double fgn_autocovariance(double hurst, std::size_t lag) noexcept {
  if (lag == 0) return 1.0;
  const double k = static_cast<double>(lag);
  const double h2 = 2.0 * hurst;
  return 0.5 * (std::pow(k + 1.0, h2) - 2.0 * std::pow(k, h2) +
                std::pow(k - 1.0, h2));
}

Result<std::vector<double>> generate_fgn(std::size_t n, double hurst, double sigma,
                                         support::Rng& rng) {
  if (n == 0) return std::vector<double>{};
  if (!(hurst > 0.0 && hurst < 1.0))
    return Error::invalid_argument("generate_fgn: H must be in (0,1)");
  if (!(sigma >= 0.0))
    return Error::invalid_argument("generate_fgn: sigma must be >= 0");
  if (n == 1) {
    return std::vector<double>{sigma * rng.normal()};
  }

  // Circulant embedding: first row c = [g(0), g(1), .., g(n-1), g(n),
  // g(n-1), .., g(1)] of size 2n. Its eigenvalues are the FFT of c and are
  // non-negative for fGn covariances.
  const std::size_t m = 2 * n;
  std::vector<std::complex<double>> eigen(m);
  for (std::size_t k = 0; k <= n; ++k)
    eigen[k] = {fgn_autocovariance(hurst, k), 0.0};
  for (std::size_t k = n + 1; k < m; ++k) eigen[k] = eigen[m - k];
  stats::fft(eigen);

  // Clip round-off negatives; genuinely negative eigenvalues would mean the
  // embedding failed (cannot happen for 0 < H < 1, so treat as a bug guard).
  double min_eig = 0.0;
  for (auto& e : eigen) {
    min_eig = std::min(min_eig, e.real());
    if (e.real() < 0.0) e = {0.0, 0.0};
  }
  if (min_eig < -1e-6 * static_cast<double>(m))
    return Error::numeric("generate_fgn: circulant embedding not PSD");

  // Build the random spectrum W with the Hermitian symmetry that makes the
  // inverse transform real.
  std::vector<std::complex<double>> w(m);
  const double inv_m = 1.0 / static_cast<double>(m);
  w[0] = {std::sqrt(eigen[0].real() * inv_m) * rng.normal(), 0.0};
  w[n] = {std::sqrt(eigen[n].real() * inv_m) * rng.normal(), 0.0};
  for (std::size_t k = 1; k < n; ++k) {
    const double scale = std::sqrt(0.5 * eigen[k].real() * inv_m);
    const std::complex<double> z(scale * rng.normal(), scale * rng.normal());
    w[k] = z;
    w[m - k] = std::conj(z);
  }

  stats::fft(w);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = sigma * w[i].real();
  return out;
}

}  // namespace fullweb::timeseries
