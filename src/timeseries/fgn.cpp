#include "timeseries/fgn.h"

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <memory>

#include "stats/fft.h"
#include "support/lru_cache.h"
#include "support/workspace.h"

namespace fullweb::timeseries {

using support::Error;
using support::Result;

double fgn_autocovariance(double hurst, std::size_t lag) noexcept {
  if (lag == 0) return 1.0;
  const double k = static_cast<double>(lag);
  const double h2 = 2.0 * hurst;
  return 0.5 * (std::pow(k + 1.0, h2) - 2.0 * std::pow(k, h2) +
                std::pow(k - 1.0, h2));
}

namespace {

/// Circulant-embedding eigenstructure for one (n, H) configuration, reduced
/// to the per-bin standard deviations the sampler multiplies into the
/// Gaussian draws. Depends only on (n, H) yet costs a size-2n FFT, so
/// Monte-Carlo sweeps that redraw at a fixed configuration pay it once.
struct FgnSpectrum {
  bool psd_ok = false;
  /// scale[k] = sqrt(eigen[k]/(2n)) for k in {0, n}; sqrt(eigen[k]/(4n))
  /// for 0 < k < n — exactly the factors the draw loop used to compute
  /// inline, so cached draws are bit-identical to uncached ones.
  std::vector<double> scale;
};

struct FgnKey {
  std::size_t n = 0;
  std::uint64_t hurst_bits = 0;
  bool operator==(const FgnKey&) const = default;
};

struct FgnKeyHash {
  std::size_t operator()(const FgnKey& k) const noexcept {
    return std::hash<std::size_t>{}(k.n) ^
           (std::hash<std::uint64_t>{}(k.hurst_bits) * 0x9e3779b97f4a7c15ULL);
  }
};

support::LruCache<FgnKey, FgnSpectrum, FgnKeyHash>& spectrum_cache() {
  static support::LruCache<FgnKey, FgnSpectrum, FgnKeyHash> cache(8);
  return cache;
}

std::shared_ptr<const FgnSpectrum> fgn_spectrum(std::size_t n, double hurst) {
  const FgnKey key{n, std::bit_cast<std::uint64_t>(hurst)};
  return spectrum_cache().get_or_create(key, [n, hurst] {
    auto spec = std::make_shared<FgnSpectrum>();

    // Circulant embedding: first row c = [g(0), g(1), .., g(n-1), g(n),
    // g(n-1), .., g(1)] of size 2n. Its eigenvalues are the FFT of c and are
    // non-negative for fGn covariances.
    const std::size_t m = 2 * n;
    std::vector<std::complex<double>> eigen(m);
    for (std::size_t k = 0; k <= n; ++k)
      eigen[k] = {fgn_autocovariance(hurst, k), 0.0};
    for (std::size_t k = n + 1; k < m; ++k) eigen[k] = eigen[m - k];
    stats::fft(eigen);

    // Clip round-off negatives; genuinely negative eigenvalues would mean
    // the embedding failed (cannot happen for 0 < H < 1, so treat as a bug
    // guard).
    double min_eig = 0.0;
    for (auto& e : eigen) {
      min_eig = std::min(min_eig, e.real());
      if (e.real() < 0.0) e = {0.0, 0.0};
    }
    if (min_eig < -1e-6 * static_cast<double>(m)) return spec;  // not PSD

    spec->psd_ok = true;
    spec->scale.resize(n + 1);
    const double inv_m = 1.0 / static_cast<double>(m);
    spec->scale[0] = std::sqrt(eigen[0].real() * inv_m);
    spec->scale[n] = std::sqrt(eigen[n].real() * inv_m);
    for (std::size_t k = 1; k < n; ++k)
      spec->scale[k] = std::sqrt(0.5 * eigen[k].real() * inv_m);
    return spec;
  });
}

}  // namespace

Result<std::vector<double>> generate_fgn(std::size_t n, double hurst, double sigma,
                                         support::Rng& rng) {
  if (n == 0) return std::vector<double>{};
  if (!(hurst > 0.0 && hurst < 1.0))
    return Error::invalid_argument("generate_fgn: H must be in (0,1)");
  if (!(sigma >= 0.0))
    return Error::invalid_argument("generate_fgn: sigma must be >= 0");
  if (n == 1) {
    return std::vector<double>{sigma * rng.normal()};
  }

  const auto spec = fgn_spectrum(n, hurst);
  if (!spec->psd_ok)
    return Error::numeric("generate_fgn: circulant embedding not PSD");
  const std::vector<double>& scale = spec->scale;

  // Build the random spectrum W with the Hermitian symmetry that makes the
  // inverse transform real. The draw order (k = 0, n, then 1..n-1 as
  // real/imag pairs) is part of the bit-compatibility contract with the RNG
  // substream layout — do not reorder.
  const std::size_t m = 2 * n;
  auto& w = support::Workspace::for_thread().cplx(support::ws::kFgnDraw);
  w.assign(m, {0.0, 0.0});
  w[0] = {scale[0] * rng.normal(), 0.0};
  w[n] = {scale[n] * rng.normal(), 0.0};
  for (std::size_t k = 1; k < n; ++k) {
    const std::complex<double> z(scale[k] * rng.normal(),
                                 scale[k] * rng.normal());
    w[k] = z;
    w[m - k] = std::conj(z);
  }

  stats::fft(w);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = sigma * w[i].real();
  return out;
}

}  // namespace fullweb::timeseries
