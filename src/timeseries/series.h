// Counting time series: events-per-unit-of-time vectors and block
// aggregation.
//
// The paper's request-based and session-based series are "number of
// requests (sessions initiated) per second". Aggregation follows eq. (1):
//   X^(m)_k = (1/m) * sum_{i=(k-1)m+1..km} X_i,
// averaging non-overlapping blocks of size m (trailing partial block
// dropped), the operation under which self-similarity is defined (eq. 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fullweb::timeseries {

/// Build a counts-per-bin series from event timestamps (seconds, not
/// necessarily sorted). The series spans [t0, t1) with `bin_seconds` bins;
/// events outside the span are ignored.
[[nodiscard]] std::vector<double> counts_per_bin(std::span<const double> event_times,
                                                 double t0, double t1,
                                                 double bin_seconds = 1.0);

/// Block-average aggregation at level m (eq. 1). m == 1 returns a copy.
/// Precondition: m >= 1. A trailing partial block is dropped.
[[nodiscard]] std::vector<double> aggregate(std::span<const double> xs,
                                            std::size_t m);

/// Variance of the m-aggregated series for each m in `levels` — the raw
/// ingredient of the variance-time plot.
[[nodiscard]] std::vector<double> aggregated_variances(
    std::span<const double> xs, std::span<const std::size_t> levels);

/// Logarithmically spaced aggregation levels from 1 to at most n / min_blocks
/// (so each aggregated series keeps at least `min_blocks` points),
/// `count` levels, deduplicated and sorted.
[[nodiscard]] std::vector<std::size_t> log_spaced_levels(std::size_t n,
                                                         std::size_t count = 20,
                                                         std::size_t min_blocks = 50);

}  // namespace fullweb::timeseries
