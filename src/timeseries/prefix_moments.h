// timeseries-facing name for the shared prefix-moment layer.
//
// The class itself lives in stats (stats::kpss_test consumes it and the
// stats library sits below timeseries in the link order); aggregation-side
// code refers to it as timeseries::PrefixMoments.
#pragma once

#include "stats/prefix_moments.h"

namespace fullweb::timeseries {

using stats::PrefixMoments;

}  // namespace fullweb::timeseries
