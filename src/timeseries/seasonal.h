// Periodicity detection and seasonal-component removal.
//
// The paper finds a 24-hour period (day/night traffic cycle) in every
// request-based series via the periodogram, and removes the seasonal
// component by differencing (Box-Jenkins seasonal differencing) before
// re-running the KPSS test and the Hurst estimators. A seasonal-means
// alternative is provided for the stationarity ablation bench: unlike
// differencing it preserves series length and does not recolor the spectrum.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/periodogram.h"
#include "support/result.h"

namespace fullweb::timeseries {

/// Find the dominant period (in samples) of `xs` via the periodogram,
/// searching periods in [min_period, max_period]. Rounds to the nearest
/// integer number of samples. Errors when the series is too short
/// (needs at least two full cycles of max_period).
[[nodiscard]] support::Result<std::size_t> detect_period(
    std::span<const double> xs, std::size_t min_period, std::size_t max_period);

/// Same search on a precomputed periodogram of the series — the
/// stationarization pipeline computes one periodogram and shares it between
/// period detection and strength measurement instead of paying two full
/// FFTs. The caller is responsible for the series-length precondition
/// (>= two full cycles of max_period).
[[nodiscard]] support::Result<std::size_t> detect_period(
    const stats::Periodogram& pg, std::size_t min_period,
    std::size_t max_period);

/// Seasonal differencing: y_t = x_t - x_{t-s}. Output has n - s samples.
/// Precondition: 1 <= s < xs.size().
[[nodiscard]] std::vector<double> seasonal_difference(std::span<const double> xs,
                                                      std::size_t period);

/// Seasonal-means removal: subtract the mean of each phase (t mod s) and add
/// back the grand mean. Output has the same length as the input.
[[nodiscard]] std::vector<double> remove_seasonal_means(std::span<const double> xs,
                                                        std::size_t period);

/// Ratio of periodogram power at the detected period (+/- one bin) to total
/// power — an effect-size diagnostic for "how periodic is this series".
[[nodiscard]] double seasonal_strength(std::span<const double> xs,
                                       std::size_t period);

/// Same ratio from a precomputed periodogram; `n` is the length of the
/// series the periodogram was computed from (it sets the bin width).
[[nodiscard]] double seasonal_strength(const stats::Periodogram& pg,
                                       std::size_t n, std::size_t period);

}  // namespace fullweb::timeseries
