// Dyadic aggregation cascade for the m-aggregation sweeps.
//
// The Fig. 7/8 validation sweeps evaluate estimators on aggregate(xs, m)
// for a grid of levels; materializing each level from the raw series costs
// O(n) per level. The pyramid instead derives each level from the largest
// already-materialized level m' dividing m (block means of block means of
// equal-sized sub-blocks compose exactly), in n/m' adds — the halving
// cascade 2m-from-m is the common case on dyadic grids — and falls through
// to PrefixMoments block-mean queries (O(n/m) lookups against one shared
// O(n) build) for ragged levels with no useful divisor.
//
// Values at a given m are bit-stable for a fixed requested level set, but
// may differ in low-order bits from timeseries::aggregate(xs, m) and from
// the same m requested alongside a different level set, because the
// summation tree differs; see DESIGN.md §5.8 for the bit policy.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "stats/prefix_moments.h"

namespace fullweb::timeseries {

class AggregationPyramid {
 public:
  /// Materialize every level in `levels` (deduplicated, sorted, zeros
  /// dropped; m == 1 aliases the input). `pm`, when given, must be built
  /// over the same `xs` and outlive the pyramid; otherwise one is built
  /// lazily if a ragged level needs it. The input span must stay alive for
  /// the pyramid's lifetime.
  explicit AggregationPyramid(std::span<const double> xs,
                              std::span<const std::size_t> levels,
                              const stats::PrefixMoments* pm = nullptr);

  [[nodiscard]] std::size_t base_size() const noexcept { return base_.size(); }
  /// Sorted, deduplicated levels actually materialized.
  [[nodiscard]] const std::vector<std::size_t>& levels() const noexcept {
    return levels_;
  }
  /// The aggregated series at level m. m must be one of levels().
  [[nodiscard]] std::span<const double> level(std::size_t m) const noexcept;

 private:
  std::span<const double> base_;
  std::vector<std::size_t> levels_;
  std::vector<std::vector<double>> storage_;  ///< parallel to levels_
  std::optional<stats::PrefixMoments> owned_pm_;
};

}  // namespace fullweb::timeseries
