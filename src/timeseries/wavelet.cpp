#include "timeseries/wavelet.h"

#include <array>
#include <cmath>

namespace fullweb::timeseries {

namespace {

struct FilterPair {
  std::vector<double> h;  ///< low-pass (scaling)
  std::vector<double> g;  ///< high-pass (wavelet): g_k = (-1)^k h_{L-1-k}
};

FilterPair make_filters(WaveletKind kind) {
  FilterPair f;
  switch (kind) {
    case WaveletKind::kHaar: {
      const double s = 1.0 / std::sqrt(2.0);
      f.h = {s, s};
      break;
    }
    case WaveletKind::kD4: {
      const double r3 = std::sqrt(3.0);
      const double norm = 4.0 * std::sqrt(2.0);
      f.h = {(1.0 + r3) / norm, (3.0 + r3) / norm, (3.0 - r3) / norm,
             (1.0 - r3) / norm};
      break;
    }
  }
  const std::size_t len = f.h.size();
  f.g.resize(len);
  for (std::size_t k = 0; k < len; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    f.g[k] = sign * f.h[len - 1 - k];
  }
  return f;
}

}  // namespace

WaveletDecomposition dwt(std::span<const double> xs, WaveletKind kind,
                         std::size_t min_coeffs) {
  const FilterPair f = make_filters(kind);
  const std::size_t flen = f.h.size();

  WaveletDecomposition out;
  std::vector<double> approx(xs.begin(), xs.end());
  if (min_coeffs < 2) min_coeffs = 2;

  while (approx.size() / 2 >= min_coeffs && approx.size() >= flen) {
    if (approx.size() % 2 != 0) approx.pop_back();
    const std::size_t half = approx.size() / 2;
    std::vector<double> next(half, 0.0);
    std::vector<double> detail(half, 0.0);
    const std::size_t n = approx.size();
    for (std::size_t k = 0; k < half; ++k) {
      double a = 0.0;
      double d = 0.0;
      for (std::size_t t = 0; t < flen; ++t) {
        const std::size_t idx = (2 * k + t) % n;  // periodic extension
        a += f.h[t] * approx[idx];
        d += f.g[t] * approx[idx];
      }
      next[k] = a;
      detail[k] = d;
    }
    out.details.push_back(std::move(detail));
    approx = std::move(next);
  }
  out.final_approximation = std::move(approx);
  return out;
}

}  // namespace fullweb::timeseries
