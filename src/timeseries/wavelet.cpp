#include "timeseries/wavelet.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/executor.h"

namespace fullweb::timeseries {

namespace {

struct FilterPair {
  std::vector<double> h;  ///< low-pass (scaling)
  std::vector<double> g;  ///< high-pass (wavelet): g_k = (-1)^k h_{L-1-k}
};

FilterPair make_filters(WaveletKind kind) {
  FilterPair f;
  switch (kind) {
    case WaveletKind::kHaar: {
      const double s = 1.0 / std::sqrt(2.0);
      f.h = {s, s};
      break;
    }
    case WaveletKind::kD4: {
      const double r3 = std::sqrt(3.0);
      const double norm = 4.0 * std::sqrt(2.0);
      f.h = {(1.0 + r3) / norm, (3.0 + r3) / norm, (3.0 - r3) / norm,
             (1.0 - r3) / norm};
      break;
    }
  }
  const std::size_t len = f.h.size();
  f.g.resize(len);
  for (std::size_t k = 0; k < len; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    f.g[k] = sign * f.h[len - 1 - k];
  }
  return f;
}

}  // namespace

WaveletDecomposition dwt(std::span<const double> xs, WaveletKind kind,
                         std::size_t min_coeffs, support::Executor* executor) {
  const FilterPair f = make_filters(kind);
  const std::size_t flen = f.h.size();
  support::Executor& ex = support::Executor::resolve(executor);

  WaveletDecomposition out;
  std::vector<double> approx(xs.begin(), xs.end());
  if (min_coeffs < 2) min_coeffs = 2;

  while (approx.size() / 2 >= min_coeffs && approx.size() >= flen) {
    if (approx.size() % 2 != 0) approx.pop_back();
    const std::size_t half = approx.size() / 2;
    std::vector<double> next(half, 0.0);
    std::vector<double> detail(half, 0.0);
    const std::size_t n = approx.size();
    // The periodic wrap only matters for the last few outputs (2k + t >= n
    // needs 2k > n - flen), so the bulk of each level runs with direct
    // indexing — the per-tap modulo was the hot spot of the whole transform.
    // Accumulation order per output is identical to the wrapped loop.
    const std::size_t safe = (n - flen) / 2 + 1;
    const double* src = approx.data();
    auto convolve_range = [&](std::size_t lo, std::size_t hi) {
      if (flen == 4) {
        const double h0 = f.h[0], h1 = f.h[1], h2 = f.h[2], h3 = f.h[3];
        const double g0 = f.g[0], g1 = f.g[1], g2 = f.g[2], g3 = f.g[3];
        for (std::size_t k = lo; k < hi; ++k) {
          const double* p = src + 2 * k;
          next[k] = ((h0 * p[0] + h1 * p[1]) + h2 * p[2]) + h3 * p[3];
          detail[k] = ((g0 * p[0] + g1 * p[1]) + g2 * p[2]) + g3 * p[3];
        }
      } else {
        for (std::size_t k = lo; k < hi; ++k) {
          const double* p = src + 2 * k;
          double a = 0.0;
          double d = 0.0;
          for (std::size_t t = 0; t < flen; ++t) {
            a += f.h[t] * p[t];
            d += f.g[t] * p[t];
          }
          next[k] = a;
          detail[k] = d;
        }
      }
    };
    // Chunk the safe region across the pool: each output index k writes
    // only next[k]/detail[k], and the per-output accumulation order is the
    // serial loop's, so the decomposition is bit-identical at any thread
    // count. Only the first few octaves of a long series clear the block
    // threshold; deep (short) levels stay serial to dodge task overhead.
    constexpr std::size_t kBlock = 16384;
    if (ex.serial() || safe < 2 * kBlock) {
      convolve_range(0, safe);
    } else {
      const std::size_t blocks = (safe + kBlock - 1) / kBlock;
      ex.parallel_for(
          0, blocks,
          [&](std::size_t b) {
            convolve_range(b * kBlock, std::min(safe, (b + 1) * kBlock));
          },
          /*grain=*/1);
    }
    for (std::size_t k = safe; k < half; ++k) {
      double a = 0.0;
      double d = 0.0;
      for (std::size_t t = 0; t < flen; ++t) {
        const std::size_t idx = (2 * k + t) % n;  // periodic extension
        a += f.h[t] * approx[idx];
        d += f.g[t] * approx[idx];
      }
      next[k] = a;
      detail[k] = d;
    }
    out.details.push_back(std::move(detail));
    approx = std::move(next);
  }
  out.final_approximation = std::move(approx);
  return out;
}

}  // namespace fullweb::timeseries
