// Trend estimation and removal.
//
// The paper (§4.1) estimates a linear trend by least squares and removes it
// before Hurst estimation; all four servers showed "a slight trend".
#pragma once

#include <span>
#include <vector>

#include "stats/regression.h"

namespace fullweb::timeseries {

struct TrendFit {
  stats::LinearFit fit;          ///< y = intercept + slope * t (t in samples)
  std::vector<double> residual;  ///< x_t - fitted trend
  /// Trend magnitude relative to the series mean over the window — a cheap
  /// effect-size diagnostic reported alongside the KPSS verdict.
  double relative_drift = 0.0;
};

/// Least-squares linear detrend. The returned residual preserves the series
/// mean (the fitted mean level is added back) so downstream rate-sensitive
/// analyses keep physical units; set `keep_mean = false` for zero-mean output.
[[nodiscard]] TrendFit detrend_linear(std::span<const double> xs,
                                      bool keep_mean = true);

}  // namespace fullweb::timeseries
