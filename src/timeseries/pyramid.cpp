#include "timeseries/pyramid.h"

#include <algorithm>
#include <cassert>

#include "stats/descriptive.h"

namespace fullweb::timeseries {

AggregationPyramid::AggregationPyramid(std::span<const double> xs,
                                       std::span<const std::size_t> levels,
                                       const stats::PrefixMoments* pm)
    : base_(xs) {
  levels_.assign(levels.begin(), levels.end());
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
  while (!levels_.empty() && levels_.front() == 0) levels_.erase(levels_.begin());
  storage_.resize(levels_.size());

  const std::size_t n = xs.size();
  // The route chosen per level depends only on (n, levels), never on
  // whether a PrefixMoments was passed in, so values are reproducible for
  // a fixed level set regardless of the sharing configuration.
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    const std::size_t m = levels_[li];
    if (m == 1) continue;  // level() aliases the input
    const std::size_t blocks = n / m;
    auto& out = storage_[li];
    out.resize(blocks);
    if (blocks == 0) continue;

    // Largest already-materialized proper divisor: cascading block means of
    // equal-sized sub-blocks reproduces aggregate(xs, m) exactly up to
    // summation order, in n/m' adds instead of n.
    std::size_t parent = 1;
    for (std::size_t pi = li; pi-- > 0;) {
      const std::size_t cand = levels_[pi];
      if (cand > 1 && m % cand == 0 && n / cand > 0) {
        parent = cand;
        break;
      }
    }
    if (parent > 1) {
      const std::size_t pidx = static_cast<std::size_t>(
          std::lower_bound(levels_.begin(), levels_.end(), parent) -
          levels_.begin());
      const std::span<const double> src = storage_[pidx];
      stats::block_means(src.first(blocks * (m / parent)), m / parent, out);
    } else if (m >= 8) {
      // Ragged level: O(1) block-mean queries against one shared O(n) build.
      if (pm == nullptr && !owned_pm_.has_value()) owned_pm_.emplace(xs);
      const stats::PrefixMoments& p = pm != nullptr ? *pm : *owned_pm_;
      assert(p.size() == n);
      for (std::size_t k = 0; k < blocks; ++k)
        out[k] = p.block_mean(k * m, (k + 1) * m);
    } else {
      stats::block_means(xs.first(blocks * m), m, out);
    }
  }
}

std::span<const double> AggregationPyramid::level(std::size_t m) const noexcept {
  const auto it = std::lower_bound(levels_.begin(), levels_.end(), m);
  assert(it != levels_.end() && *it == m);
  if (it == levels_.end() || *it != m) return {};
  if (m == 1) return base_;
  return storage_[static_cast<std::size_t>(it - levels_.begin())];
}

}  // namespace fullweb::timeseries
