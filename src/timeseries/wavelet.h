// Discrete wavelet transform (Daubechies) for the Abry-Veitch estimator.
//
// The pyramid algorithm convolves the signal with the low-pass/high-pass
// filter pair and downsamples by two, octave by octave; the detail
// coefficients d_{j,k} at octave j carry the energy the Abry-Veitch
// estimator regresses against scale. Periodic boundary handling.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fullweb::support {
class Executor;
}

namespace fullweb::timeseries {

enum class WaveletKind {
  kHaar,  ///< D2: 2-tap; 1 vanishing moment
  kD4,    ///< Daubechies 4-tap; 2 vanishing moments (paper-appropriate
          ///< default: robust to the linear trends the paper removes)
};

/// Per-octave detail coefficients d_{j,k}, j = 1 (finest) .. J.
struct WaveletDecomposition {
  std::vector<std::vector<double>> details;  ///< details[j-1] = octave j
  std::vector<double> final_approximation;   ///< coarsest smooth remainder

  [[nodiscard]] std::size_t octaves() const noexcept { return details.size(); }
};

/// Decompose down to octaves whose detail vector still has at least
/// `min_coeffs` coefficients (default 4, so variances are estimable).
/// The input is truncated to an even length per level as needed.
/// Large levels chunk their filter convolutions across `executor` (null =
/// the global pool); every output index writes only its own coefficient
/// slot with an unchanged per-output accumulation order, so the transform
/// is bit-identical at any thread count.
[[nodiscard]] WaveletDecomposition dwt(std::span<const double> xs,
                                       WaveletKind kind = WaveletKind::kD4,
                                       std::size_t min_coeffs = 4,
                                       support::Executor* executor = nullptr);

}  // namespace fullweb::timeseries
