// Exact fractional Gaussian noise synthesis (Davies-Harte circulant
// embedding).
//
// fGn is the canonical stationary LRD process: the increments of fractional
// Brownian motion with Hurst exponent H, autocovariance
//   gamma(k) = (sigma^2 / 2) (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}).
// We use it (a) as the ground-truth process for validating every Hurst
// estimator, and (b) to modulate the synthetic workload generator's arrival
// intensity so the generated traffic is long-range dependent.
//
// Reference: Davies & Harte (1987); see also Paxson, "Fast, approximate
// synthesis of fractional Gaussian noise" (CCR 1997) for context.
#pragma once

#include <cstddef>
#include <vector>

#include "support/result.h"
#include "support/rng.h"

namespace fullweb::timeseries {

/// Theoretical fGn autocovariance gamma(k) for unit variance.
[[nodiscard]] double fgn_autocovariance(double hurst, std::size_t lag) noexcept;

/// Generate n samples of zero-mean fGn with the given Hurst exponent and
/// marginal standard deviation. H must lie in (0, 1); H = 0.5 reduces to
/// white noise. Errors if the circulant embedding produces a significantly
/// negative eigenvalue (does not happen for the admissible H range; small
/// negative values from round-off are clipped).
[[nodiscard]] support::Result<std::vector<double>> generate_fgn(
    std::size_t n, double hurst, double sigma, support::Rng& rng);

}  // namespace fullweb::timeseries
