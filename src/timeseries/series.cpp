#include "timeseries/series.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "stats/descriptive.h"
#include "stats/prefix_moments.h"

namespace fullweb::timeseries {

std::vector<double> counts_per_bin(std::span<const double> event_times, double t0,
                                   double t1, double bin_seconds) {
  assert(t1 > t0 && bin_seconds > 0.0);
  const auto nbins =
      static_cast<std::size_t>(std::ceil((t1 - t0) / bin_seconds));
  std::vector<double> counts(nbins, 0.0);
  for (double t : event_times) {
    if (t < t0 || t >= t1) continue;
    auto idx = static_cast<std::size_t>((t - t0) / bin_seconds);
    if (idx >= nbins) idx = nbins - 1;  // guard FP edge at t ~= t1
    counts[idx] += 1.0;
  }
  return counts;
}

std::vector<double> aggregate(std::span<const double> xs, std::size_t m) {
  assert(m >= 1);
  if (m == 1) return {xs.begin(), xs.end()};
  const std::size_t blocks = xs.size() / m;
  std::vector<double> out(blocks);
  stats::block_means(xs.first(blocks * m), m, out);
  return out;
}

std::vector<double> aggregated_variances(std::span<const double> xs,
                                         std::span<const std::size_t> levels) {
  // One O(n) prefix-moment build; each level is then O(n/m) block-mean
  // lookups instead of a fresh O(n) aggregate + variance pass.
  const stats::PrefixMoments pm(xs);
  std::vector<double> vars;
  vars.reserve(levels.size());
  for (std::size_t m : levels) vars.push_back(pm.aggregated_variance(m));
  return vars;
}

std::vector<std::size_t> log_spaced_levels(std::size_t n, std::size_t count,
                                           std::size_t min_blocks) {
  std::set<std::size_t> levels;
  if (n < 2 * min_blocks) {
    levels.insert(1);
    return {levels.begin(), levels.end()};
  }
  const double max_m = static_cast<double>(n) / static_cast<double>(min_blocks);
  const double log_max = std::log(max_m);
  for (std::size_t i = 0; i < count; ++i) {
    const double frac =
        count > 1 ? static_cast<double>(i) / static_cast<double>(count - 1) : 0.0;
    const auto m = static_cast<std::size_t>(std::lround(std::exp(frac * log_max)));
    levels.insert(std::max<std::size_t>(1, m));
  }
  return {levels.begin(), levels.end()};
}

}  // namespace fullweb::timeseries
