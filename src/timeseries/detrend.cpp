#include "timeseries/detrend.h"

#include <cmath>

#include "stats/descriptive.h"

namespace fullweb::timeseries {

TrendFit detrend_linear(std::span<const double> xs, bool keep_mean) {
  TrendFit out;
  const std::size_t n = xs.size();
  out.residual.assign(xs.begin(), xs.end());
  if (n < 2) return out;

  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = static_cast<double>(i);
  out.fit = stats::ols(t, xs);

  const double m = stats::mean(xs);
  for (std::size_t i = 0; i < n; ++i) {
    out.residual[i] = xs[i] - out.fit.predict(t[i]) + (keep_mean ? m : 0.0);
  }
  const double drift = out.fit.slope * static_cast<double>(n - 1);
  out.relative_drift = m != 0.0 ? std::fabs(drift / m) : std::fabs(drift);
  return out;
}

}  // namespace fullweb::timeseries
