#include "lrd/variance_time.h"

#include <cmath>

#include "stats/regression.h"
#include "stats/vecmath.h"
#include "timeseries/series.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

Result<VarianceTimePlot> variance_time_plot(const stats::PrefixMoments& pm,
                                            const VarianceTimeOptions& options) {
  if (pm.size() < 2 * options.min_blocks)
    return Error::insufficient_data("variance_time: series too short");

  const auto levels =
      timeseries::log_spaced_levels(pm.size(), options.levels, options.min_blocks);
  VarianceTimePlot plot;
  std::vector<double> ms, vars;
  for (std::size_t m : levels) {
    const double v = pm.aggregated_variance(m);
    if (!(v > 0.0)) continue;  // constant at this level; skip the point
    ms.push_back(static_cast<double>(m));
    vars.push_back(v);
  }
  if (ms.size() < 3)
    return Error::numeric("variance_time: fewer than 3 usable aggregation levels");
  plot.log10_m.resize(ms.size());
  plot.log10_var.resize(vars.size());
  stats::log10_batch(ms, plot.log10_m);
  stats::log10_batch(vars, plot.log10_var);
  return plot;
}

Result<VarianceTimePlot> variance_time_plot(std::span<const double> xs,
                                            const VarianceTimeOptions& options) {
  if (xs.size() < 2 * options.min_blocks)
    return Error::insufficient_data("variance_time: series too short");
  const stats::PrefixMoments pm(xs);
  return variance_time_plot(pm, options);
}

namespace {

Result<HurstEstimate> fit_vt(Result<VarianceTimePlot> plot) {
  if (!plot) return plot.error();
  const auto fit = stats::ols(plot.value().log10_m, plot.value().log10_var);
  HurstEstimate est;
  est.method = HurstMethod::kVarianceTime;
  est.h = 1.0 + fit.slope / 2.0;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope / 2.0;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace

Result<HurstEstimate> variance_time_hurst(std::span<const double> xs,
                                          const VarianceTimeOptions& options) {
  return fit_vt(variance_time_plot(xs, options));
}

Result<HurstEstimate> variance_time_hurst(const stats::PrefixMoments& pm,
                                          const VarianceTimeOptions& options) {
  return fit_vt(variance_time_plot(pm, options));
}

}  // namespace fullweb::lrd
