#include "lrd/variance_time.h"

#include <cmath>

#include "stats/descriptive.h"
#include "stats/regression.h"
#include "timeseries/series.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

Result<VarianceTimePlot> variance_time_plot(std::span<const double> xs,
                                            const VarianceTimeOptions& options) {
  if (xs.size() < 2 * options.min_blocks)
    return Error::insufficient_data("variance_time: series too short");

  const auto levels =
      timeseries::log_spaced_levels(xs.size(), options.levels, options.min_blocks);
  VarianceTimePlot plot;
  for (std::size_t m : levels) {
    const auto agg = timeseries::aggregate(xs, m);
    const double v = stats::variance_population(agg);
    if (!(v > 0.0)) continue;  // constant at this level; skip the point
    plot.log10_m.push_back(std::log10(static_cast<double>(m)));
    plot.log10_var.push_back(std::log10(v));
  }
  if (plot.log10_m.size() < 3)
    return Error::numeric("variance_time: fewer than 3 usable aggregation levels");
  return plot;
}

Result<HurstEstimate> variance_time_hurst(std::span<const double> xs,
                                          const VarianceTimeOptions& options) {
  auto plot = variance_time_plot(xs, options);
  if (!plot) return plot.error();

  const auto fit = stats::ols(plot.value().log10_m, plot.value().log10_var);
  HurstEstimate est;
  est.method = HurstMethod::kVarianceTime;
  est.h = 1.0 + fit.slope / 2.0;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope / 2.0;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace fullweb::lrd
