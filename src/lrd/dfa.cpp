#include "lrd/dfa.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/prefix_moments.h"
#include "stats/regression.h"
#include "stats/vecmath.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

namespace {

/// Per-box detrended SSR in O(1) from prefix moments of the profile.
///
/// Inside a box of size nb the fit regresses the profile on the discrete
/// orthogonal polynomials P0 = 1, P1 = i - ibar, P2 = (i - ibar)^2 - A with
/// ibar = (nb-1)/2 and A = (nb^2-1)/12 (uniform-weight Gram basis), so the
/// projections decouple: SSR = sum q^2 - beta1^2 |P1|^2 - beta2^2 |P2|^2
/// with q the box-mean-centered profile. sum q^2, sum i q and sum i^2 q all
/// come from the moment structure; |P1|^2 and |P2|^2 are closed forms.
struct BoxMoments {
  double ssq = 0.0;   ///< sum q^2 (centered second moment)
  double p1q = 0.0;   ///< sum P1 * q
  double p2q = 0.0;   ///< sum P2 * q
};

BoxMoments box_moments(const stats::PrefixMoments& pm, std::size_t start,
                       std::size_t nb, bool quadratic) {
  BoxMoments bm;
  const std::size_t end = start + nb;
  const double fnb = static_cast<double>(nb);
  const double fs = static_cast<double>(start);
  const double ibar = 0.5 * (fnb - 1.0);
  // Centered sums: q_t = v_t - delta with delta = (block mean - anchor).
  const double s = pm.centered_sum(start, end);
  const double delta = s / fnb;
  bm.ssq = pm.block_sum_sq_dev(start, end);
  // sum i*q from the global weighted prefix: sum (t - start)(v - delta).
  const double w = pm.weighted_centered_sum(start, end);
  const double sum_i = fnb * ibar;
  const double iq = (w - fs * s) - delta * sum_i;
  bm.p1q = iq - ibar * (s - fnb * delta);  // second term ~0; kept exact
  if (quadratic) {
    const double w2 = pm.weighted2_centered_sum(start, end);
    const double sum_i2 = (fnb - 1.0) * fnb * (2.0 * fnb - 1.0) / 6.0;
    const double i2q = (w2 - 2.0 * fs * w + fs * fs * s) - delta * sum_i2;
    const double a = (fnb * fnb - 1.0) / 12.0;
    const double sq = s - fnb * delta;  // sum q, ~0
    bm.p2q = i2q - 2.0 * ibar * iq + (ibar * ibar - a) * sq;
  }
  return bm;
}

double box_ssr(const stats::PrefixMoments& pm, std::size_t start,
               std::size_t nb, bool quadratic) {
  const BoxMoments bm = box_moments(pm, start, nb, quadratic);
  const double fnb = static_cast<double>(nb);
  const double p1_norm = fnb * (fnb * fnb - 1.0) / 12.0;  // sum P1^2
  double ssr = bm.ssq;
  if (p1_norm > 0.0) ssr -= bm.p1q * bm.p1q / p1_norm;
  if (quadratic) {
    // sum P2^2 = sum u^4 - nb A^2, u = i - ibar, A = (nb^2-1)/12.
    const double a = (fnb * fnb - 1.0) / 12.0;
    const double sum_u4 =
        fnb * (fnb * fnb - 1.0) * (3.0 * fnb * fnb - 7.0) / 240.0;
    const double p2_norm = sum_u4 - fnb * a * a;
    if (p2_norm > 0.0) ssr -= bm.p2q * bm.p2q / p2_norm;
  }
  return ssr > 0.0 ? ssr : 0.0;
}

}  // namespace

Result<DfaPlot> dfa_plot(std::span<const double> xs, const DfaOptions& options) {
  const std::size_t n = xs.size();
  if (n < options.min_box * options.min_boxes * 2)
    return Error::insufficient_data("dfa: series too short");

  // The integrated, mean-centered profile IS the centered cumsum of the
  // series' prefix moments; box statistics then need the profile's own
  // moment structure (with index weights for the polynomial fits).
  const stats::PrefixMoments series_pm(xs);
  const auto profile = series_pm.centered_cumsum().subspan(1);
  const bool quadratic = options.order >= 2;
  const stats::PrefixMoments pm(
      profile, quadratic ? stats::PrefixMoments::Weighted::kQuadratic
                         : stats::PrefixMoments::Weighted::kLinear);

  // Log-spaced box sizes, clamped into [min_box, n / min_boxes] (lround can
  // otherwise drift just outside the grid at either end).
  const std::size_t lo_sz = options.min_box;
  const std::size_t hi_sz = std::max(lo_sz, n / options.min_boxes);
  const auto lo = static_cast<double>(lo_sz);
  const double hi = static_cast<double>(hi_sz);
  std::set<std::size_t> sizes;
  for (std::size_t i = 0; i < options.levels; ++i) {
    const double frac =
        options.levels > 1
            ? static_cast<double>(i) / static_cast<double>(options.levels - 1)
            : 0.0;
    const auto raw = static_cast<std::size_t>(
        std::lround(lo * std::pow(hi / lo, frac)));
    sizes.insert(std::clamp(raw, lo_sz, hi_sz));
  }

  std::vector<double> used_boxes, fluctuation;
  for (std::size_t box : sizes) {
    if (box < 4) continue;
    const std::size_t boxes = n / box;
    if (boxes < options.min_boxes) continue;
    double total_ssr = 0.0;
    for (std::size_t b = 0; b < boxes; ++b)
      total_ssr += box_ssr(pm, b * box, box, quadratic);
    const double f =
        std::sqrt(total_ssr / static_cast<double>(boxes * box));
    if (!(f > 0.0)) continue;
    used_boxes.push_back(static_cast<double>(box));
    fluctuation.push_back(f);
  }
  if (used_boxes.size() < 3)
    return Error::numeric("dfa: fewer than 3 usable box sizes");
  DfaPlot plot;
  plot.log10_n.resize(used_boxes.size());
  plot.log10_f.resize(fluctuation.size());
  stats::log10_batch(used_boxes, plot.log10_n);
  stats::log10_batch(fluctuation, plot.log10_f);
  return plot;
}

Result<HurstEstimate> dfa_hurst(std::span<const double> xs,
                                const DfaOptions& options) {
  auto plot = dfa_plot(xs, options);
  if (!plot) return plot.error();
  const auto fit = stats::ols(plot.value().log10_n, plot.value().log10_f);
  HurstEstimate est;
  est.method = HurstMethod::kDfa;
  est.h = fit.slope;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace fullweb::lrd
