#include "lrd/dfa.h"

#include <cmath>
#include <set>

#include "stats/regression.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

namespace {

/// Sum of squared residuals of an OLS line over profile[start .. start+n).
/// Closed-form accumulation (no per-box allocation).
double box_ssr_linear(std::span<const double> profile, std::size_t start,
                      std::size_t n) {
  // Regress y on t = 0..n-1.
  const double nn = static_cast<double>(n);
  double sy = 0, sty = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sy += profile[start + i];
    sty += static_cast<double>(i) * profile[start + i];
  }
  const double st = nn * (nn - 1.0) / 2.0;
  const double stt = nn * (nn - 1.0) * (2.0 * nn - 1.0) / 6.0;
  const double denom = nn * stt - st * st;
  if (denom <= 0.0) return 0.0;
  const double slope = (nn * sty - st * sy) / denom;
  const double intercept = (sy - slope * st) / nn;

  double ssr = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r =
        profile[start + i] - (intercept + slope * static_cast<double>(i));
    ssr += r * r;
  }
  return ssr;
}

/// Quadratic-detrended residual sum of squares over one box.
double box_ssr_quadratic(std::span<const double> profile, std::size_t start,
                         std::size_t n) {
  std::vector<double> t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = static_cast<double>(i);
    y[i] = profile[start + i];
  }
  const auto fit = stats::quadratic_fit(t, y);
  double ssr = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - (fit.c0 + fit.c1 * t[i] + fit.c2 * t[i] * t[i]);
    ssr += r * r;
  }
  return ssr;
}

}  // namespace

Result<DfaPlot> dfa_plot(std::span<const double> xs, const DfaOptions& options) {
  const std::size_t n = xs.size();
  if (n < options.min_box * options.min_boxes * 2)
    return Error::insufficient_data("dfa: series too short");

  // Integrated, mean-centered profile.
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  std::vector<double> profile(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += xs[i] - mean;
    profile[i] = acc;
  }

  // Log-spaced box sizes.
  const double lo = static_cast<double>(options.min_box);
  const double hi = static_cast<double>(n / options.min_boxes);
  std::set<std::size_t> sizes;
  for (std::size_t i = 0; i < options.levels; ++i) {
    const double frac =
        options.levels > 1
            ? static_cast<double>(i) / static_cast<double>(options.levels - 1)
            : 0.0;
    sizes.insert(
        static_cast<std::size_t>(std::lround(lo * std::pow(hi / lo, frac))));
  }

  DfaPlot plot;
  for (std::size_t box : sizes) {
    if (box < 4) continue;
    const std::size_t boxes = n / box;
    if (boxes < options.min_boxes) continue;
    double total_ssr = 0.0;
    for (std::size_t b = 0; b < boxes; ++b) {
      total_ssr += options.order >= 2 ? box_ssr_quadratic(profile, b * box, box)
                                      : box_ssr_linear(profile, b * box, box);
    }
    const double f =
        std::sqrt(total_ssr / static_cast<double>(boxes * box));
    if (!(f > 0.0)) continue;
    plot.log10_n.push_back(std::log10(static_cast<double>(box)));
    plot.log10_f.push_back(std::log10(f));
  }
  if (plot.log10_n.size() < 3)
    return Error::numeric("dfa: fewer than 3 usable box sizes");
  return plot;
}

Result<HurstEstimate> dfa_hurst(std::span<const double> xs,
                                const DfaOptions& options) {
  auto plot = dfa_plot(xs, options);
  if (!plot) return plot.error();
  const auto fit = stats::ols(plot.value().log10_n, plot.value().log10_f);
  HurstEstimate est;
  est.method = HurstMethod::kDfa;
  est.h = fit.slope;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace fullweb::lrd
