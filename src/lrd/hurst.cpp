#include "lrd/hurst.h"

namespace fullweb::lrd {

std::string to_string(HurstMethod method) {
  switch (method) {
    case HurstMethod::kVarianceTime: return "Variance";
    case HurstMethod::kRoverS: return "R/S";
    case HurstMethod::kPeriodogram: return "Periodogram";
    case HurstMethod::kWhittle: return "Whittle";
    case HurstMethod::kAbryVeitch: return "Abry-Veitch";
    case HurstMethod::kDfa: return "DFA";
  }
  return "?";
}

}  // namespace fullweb::lrd
