#include "lrd/whittle.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/fft.h"
#include "stats/periodogram.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

double fgn_spectral_density(double lambda, double hurst) noexcept {
  // f*(l; H) = sin(pi H) Gamma(2H+1) (1 - cos l) [ |l|^{-2H-1} + B(l, H) ]
  // with B approximated by Paxson's 3-term sum plus tail correction.
  const double d = -(2.0 * hurst + 1.0);
  const double dprime = -2.0 * hurst;
  const double two_pi = 2.0 * std::numbers::pi;

  double b = 0.0;
  for (int j = 1; j <= 3; ++j) {
    const double a_j = two_pi * j + lambda;
    const double b_j = two_pi * j - lambda;
    b += std::pow(a_j, d) + std::pow(b_j, d);
  }
  const double a3 = two_pi * 3.0 + lambda;
  const double b3 = two_pi * 3.0 - lambda;
  const double a4 = two_pi * 4.0 + lambda;
  const double b4 = two_pi * 4.0 - lambda;
  b += (std::pow(a3, dprime) + std::pow(b3, dprime) + std::pow(a4, dprime) +
        std::pow(b4, dprime)) /
       (8.0 * hurst * std::numbers::pi);

  // Normalization: divide by pi so that the density of UNIT-variance fGn
  // integrates to gamma(0) = 1 over (-pi, pi], matching our periodogram
  // convention E[I(lambda)] = f(lambda) — this makes the profiled Whittle
  // scale sigma^2 equal the marginal variance. (The constant is irrelevant
  // for H itself.)
  const double scale = std::sin(std::numbers::pi * hurst) *
                       std::tgamma(2.0 * hurst + 1.0) / std::numbers::pi;
  // Numerical care: (1 - cos l) cancels catastrophically below l ~ 1e-8 and
  // l^{-2H-1} overflows for tiny l, so evaluate via 2 sin^2(l/2) and fold
  // the singular product into sinc^2(l/2) * l^{1-2H}, which stays finite
  // all the way down to denormal frequencies.
  const double half = 0.5 * lambda;
  const double sin_half = std::sin(half);
  const double sinc_half = half > 0.0 ? sin_half / half : 1.0;
  const double singular = 0.5 * sinc_half * sinc_half *
                          std::pow(std::fabs(lambda), 1.0 - 2.0 * hurst);
  return scale * (singular + 2.0 * sin_half * sin_half * b);
}

namespace {

/// Per-frequency invariants of the fGn density, precomputed once so each
/// objective evaluation is pure exp()/multiply work. With
///   f*(l; H) = s(H) (1 - cos l) [ e^{d log l} + sum_i e^{d log a_i}
///              + e^{d log b_i} + corr(H) ],
/// only the exponents depend on H.
struct FrequencyTerms {
  double power = 0.0;       ///< periodogram ordinate I(lambda)
  double singular_base = 0.0;  ///< 0.5 sinc^2(l/2); pairs with l^{1-2H}
  double two_sin2 = 0.0;    ///< 2 sin^2(l/2) = 1 - cos l, stable form
  double log_lambda = 0.0;
  double log_a[3];          ///< log(2 pi j + lambda), j = 1..3
  double log_b[3];          ///< log(2 pi j - lambda)
  double log_a4 = 0.0;      ///< for the Euler-Maclaurin correction
  double log_b4 = 0.0;
};

std::vector<FrequencyTerms> precompute_terms(const stats::Periodogram& pg,
                                             std::size_t max_frequencies) {
  const std::size_t m = pg.frequency.size();
  const std::size_t stride =
      max_frequencies == 0 ? 1 : std::max<std::size_t>(1, m / max_frequencies);
  const double two_pi = 2.0 * std::numbers::pi;

  std::vector<FrequencyTerms> terms;
  terms.reserve(m / stride + 1);
  for (std::size_t j = stride - 1; j < m; j += stride) {
    FrequencyTerms t;
    const double lambda = pg.frequency[j];
    t.power = pg.power[j];
    const double half = 0.5 * lambda;
    const double sin_half = std::sin(half);
    const double sinc_half = sin_half / half;
    t.singular_base = 0.5 * sinc_half * sinc_half;
    t.two_sin2 = 2.0 * sin_half * sin_half;
    t.log_lambda = std::log(lambda);
    for (int i = 0; i < 3; ++i) {
      t.log_a[i] = std::log(two_pi * (i + 1) + lambda);
      t.log_b[i] = std::log(two_pi * (i + 1) - lambda);
    }
    t.log_a4 = std::log(two_pi * 4.0 + lambda);
    t.log_b4 = std::log(two_pi * 4.0 - lambda);
    terms.push_back(t);
  }
  return terms;
}

/// Profiled Whittle objective Q(H); also yields the profiled scale.
double whittle_objective(const std::vector<FrequencyTerms>& terms, double hurst,
                         double* sigma2_out) {
  const double d = -(2.0 * hurst + 1.0);
  const double dprime = -2.0 * hurst;
  const double corr_scale = 1.0 / (8.0 * hurst * std::numbers::pi);
  const double scale = std::sin(std::numbers::pi * hurst) *
                       std::tgamma(2.0 * hurst + 1.0) / std::numbers::pi;

  double sum_ratio = 0.0;
  double sum_logf = 0.0;
  for (const auto& t : terms) {
    double b = 0.0;
    for (int i = 0; i < 3; ++i)
      b += std::exp(d * t.log_a[i]) + std::exp(d * t.log_b[i]);
    b += corr_scale *
         (std::exp(dprime * t.log_a[2]) + std::exp(dprime * t.log_b[2]) +
          std::exp(dprime * t.log_a4) + std::exp(dprime * t.log_b4));
    const double f =
        scale * (t.singular_base * std::exp((d + 2.0) * t.log_lambda) +
                 t.two_sin2 * b);
    sum_ratio += t.power / f;
    sum_logf += std::log(f);
  }
  const auto mm = static_cast<double>(terms.size());
  const double sigma2 = sum_ratio / mm;
  if (sigma2_out != nullptr) *sigma2_out = sigma2;
  return std::log(sigma2) + sum_logf / mm;
}

}  // namespace

Result<WhittleResult> whittle_hurst(std::span<const double> xs,
                                    const WhittleOptions& options) {
  if (xs.size() < options.min_samples)
    return Error::insufficient_data("whittle_hurst: series too short");

  // Truncate to the largest power-of-two length: keeps the periodogram on
  // the radix-2 FFT fast path (Bluestein on week-length series costs ~5x)
  // at the price of discarding at most half — in practice < 15% — of the
  // newest samples.
  std::span<const double> input = xs;
  if (!stats::is_pow2(input.size())) {
    std::size_t p = 1;
    while (p * 2 <= input.size()) p *= 2;
    input = input.subspan(0, p);
  }
  const auto pg = stats::periodogram(input);
  if (pg.frequency.size() < 16)
    return Error::insufficient_data("whittle_hurst: too few frequencies");
  for (double p : pg.power) {
    if (!(p >= 0.0)) return Error::numeric("whittle_hurst: invalid periodogram");
  }
  const auto terms = precompute_terms(pg, options.max_frequencies);
  const std::size_t m = terms.size();

  // Golden-section minimization of Q(H) on [h_min, h_max]. Q is smooth and,
  // for fGn-like spectra, unimodal in practice over (0, 1).
  constexpr double kGolden = 0.6180339887498949;
  double a = options.h_min;
  double b = options.h_max;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = whittle_objective(terms, x1, nullptr);
  double f2 = whittle_objective(terms, x2, nullptr);
  while (b - a > options.tolerance) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = whittle_objective(terms, x1, nullptr);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = whittle_objective(terms, x2, nullptr);
    }
  }
  const double h_hat = 0.5 * (a + b);

  WhittleResult result;
  result.objective = whittle_objective(terms, h_hat, &result.sigma2);

  // Observed information of the concentrated likelihood: -l(H) = (m/2) Q(H)
  // + const, so Var(H) ~= 2 / (m Q''(H)). Central second difference.
  const double eps = 1e-3;
  const double h_lo = std::max(options.h_min, h_hat - eps);
  const double h_hi = std::min(options.h_max, h_hat + eps);
  const double q_lo = whittle_objective(terms, h_lo, nullptr);
  const double q_hi = whittle_objective(terms, h_hi, nullptr);
  const double half = 0.5 * (h_hi - h_lo);
  const double q2 = (q_lo - 2.0 * result.objective + q_hi) / (half * half);

  result.estimate.method = HurstMethod::kWhittle;
  result.estimate.h = h_hat;
  if (q2 > 0.0) {
    const double var = 2.0 / (static_cast<double>(m) * q2);
    result.estimate.ci95_halfwidth = 1.96 * std::sqrt(var);
  }
  return result;
}

}  // namespace fullweb::lrd
