#include "lrd/whittle.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/fft.h"
#include "stats/vecmath.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

namespace detail {

double fgn_alias_sum(double lambda, double hurst) noexcept {
  // Paxson's 3-term aliasing sum plus the Euler-Maclaurin tail correction.
  const double d = -(2.0 * hurst + 1.0);
  const double dprime = -2.0 * hurst;
  const double two_pi = 2.0 * std::numbers::pi;

  double b = 0.0;
  for (int j = 1; j <= 3; ++j) {
    const double a_j = two_pi * j + lambda;
    const double b_j = two_pi * j - lambda;
    b += std::pow(a_j, d) + std::pow(b_j, d);
  }
  const double a3 = two_pi * 3.0 + lambda;
  const double b3 = two_pi * 3.0 - lambda;
  const double a4 = two_pi * 4.0 + lambda;
  const double b4 = two_pi * 4.0 - lambda;
  b += (std::pow(a3, dprime) + std::pow(b3, dprime) + std::pow(a4, dprime) +
        std::pow(b4, dprime)) /
       (8.0 * hurst * std::numbers::pi);
  return b;
}

namespace {

/// Shared Chebyshev geometry: node abscissae mapped to [0, pi] and the
/// type-II DCT cosines used to turn node values into coefficients. Fixed for
/// the class' node count, so computed once.
struct ChebTables {
  std::array<double, AliasChebyshev::kNodes> node_lambda;
  // dct[j * kNodes + k] = cos(pi * j * (k + 1/2) / kNodes)
  std::array<double, AliasChebyshev::kNodes * AliasChebyshev::kNodes> dct;
};

const ChebTables& cheb_tables() noexcept {
  static const ChebTables tables = [] {
    constexpr std::size_t n = AliasChebyshev::kNodes;
    ChebTables t;
    for (std::size_t k = 0; k < n; ++k) {
      const double theta = std::numbers::pi * (static_cast<double>(k) + 0.5) /
                           static_cast<double>(n);
      t.node_lambda[k] = (std::cos(theta) + 1.0) * (0.5 * std::numbers::pi);
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        t.dct[j * n + k] =
            std::cos(std::numbers::pi * static_cast<double>(j) *
                     (static_cast<double>(k) + 0.5) / static_cast<double>(n));
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

AliasChebyshev::AliasChebyshev(double hurst) noexcept {
  const ChebTables& t = cheb_tables();
  std::array<double, kNodes> fk;
  for (std::size_t k = 0; k < kNodes; ++k)
    fk[k] = fgn_alias_sum(t.node_lambda[k], hurst);
  const double norm = 2.0 / static_cast<double>(kNodes);
  for (std::size_t j = 0; j < kNodes; ++j) {
    double acc = 0.0;
    const double* row = t.dct.data() + j * kNodes;
    for (std::size_t k = 0; k < kNodes; ++k) acc += fk[k] * row[k];
    coef_[j] = norm * acc;
  }
}

double AliasChebyshev::operator()(double lambda) const noexcept {
  // Map [0, pi] -> [-1, 1] and run Clenshaw; sum is c0/2 + sum_j c_j T_j(x).
  const double x = lambda * (2.0 / std::numbers::pi) - 1.0;
  const double two_x = 2.0 * x;
  double b1 = 0.0, b2 = 0.0;
  for (std::size_t j = kNodes; j-- > 1;) {
    const double b0 = coef_[j] + two_x * b1 - b2;
    b2 = b1;
    b1 = b0;
  }
  return 0.5 * coef_[0] + x * b1 - b2;
}

void AliasChebyshev::eval_batch(std::span<const double> lambda,
                                std::span<double> out) const noexcept {
  // Four independent Clenshaw recurrences per step: each chain is serial,
  // but interleaving four breaks the dependency bottleneck.
  const std::size_t n = lambda.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double x0 = lambda[i] * (2.0 / std::numbers::pi) - 1.0;
    const double x1 = lambda[i + 1] * (2.0 / std::numbers::pi) - 1.0;
    const double x2 = lambda[i + 2] * (2.0 / std::numbers::pi) - 1.0;
    const double x3 = lambda[i + 3] * (2.0 / std::numbers::pi) - 1.0;
    double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
    double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
    for (std::size_t j = kNodes; j-- > 1;) {
      const double c = coef_[j];
      const double r0 = c + 2.0 * x0 * p0 - q0;
      const double r1 = c + 2.0 * x1 * p1 - q1;
      const double r2 = c + 2.0 * x2 * p2 - q2;
      const double r3 = c + 2.0 * x3 * p3 - q3;
      q0 = p0;
      q1 = p1;
      q2 = p2;
      q3 = p3;
      p0 = r0;
      p1 = r1;
      p2 = r2;
      p3 = r3;
    }
    const double half_c0 = 0.5 * coef_[0];
    out[i] = half_c0 + x0 * p0 - q0;
    out[i + 1] = half_c0 + x1 * p1 - q1;
    out[i + 2] = half_c0 + x2 * p2 - q2;
    out[i + 3] = half_c0 + x3 * p3 - q3;
  }
  for (; i < n; ++i) out[i] = (*this)(lambda[i]);
}

}  // namespace detail

double fgn_spectral_density(double lambda, double hurst) noexcept {
  // f*(l; H) = sin(pi H) Gamma(2H+1) (1 - cos l) [ |l|^{-2H-1} + B(l, H) ]
  // with B the Paxson 3-term sum plus tail correction (detail::fgn_alias_sum).
  const double b = detail::fgn_alias_sum(lambda, hurst);

  // Normalization: divide by pi so that the density of UNIT-variance fGn
  // integrates to gamma(0) = 1 over (-pi, pi], matching our periodogram
  // convention E[I(lambda)] = f(lambda) — this makes the profiled Whittle
  // scale sigma^2 equal the marginal variance. (The constant is irrelevant
  // for H itself.)
  const double scale = std::sin(std::numbers::pi * hurst) *
                       std::tgamma(2.0 * hurst + 1.0) / std::numbers::pi;
  // Numerical care: (1 - cos l) cancels catastrophically below l ~ 1e-8 and
  // l^{-2H-1} overflows for tiny l, so evaluate via 2 sin^2(l/2) and fold
  // the singular product into sinc^2(l/2) * l^{1-2H}, which stays finite
  // all the way down to denormal frequencies.
  const double half = 0.5 * lambda;
  const double sin_half = std::sin(half);
  const double sinc_half = half > 0.0 ? sin_half / half : 1.0;
  const double singular = 0.5 * sinc_half * sinc_half *
                          std::pow(std::fabs(lambda), 1.0 - 2.0 * hurst);
  return scale * (singular + 2.0 * sin_half * sin_half * b);
}

namespace {

constexpr double kLn2 = 0.69314718055994530942;

/// Per-frequency invariants of the fGn density in factored form. Writing
/// f(l; H) = scale(H) * c0(l) * l^{1-2H} * (1 + R) with R = l^{1+2H} B(l; H)
/// (the identity 2 sin^2(l/2) / c0(l) = l^2 folds the stable 1-cos form into
/// the singular factor exactly), the log-likelihood splits into
///   sum log f = m log scale + sum log c0 + (1-2H) sum log l + sum log1p(R),
/// where the first three pieces are H-independent up to the scalar (1-2H)
/// and precomputed here. Each objective evaluation then needs one exp and
/// one Clenshaw per term; sum log1p(R) is recovered from a running product
/// of (1+R) renormalized through frexp, so no per-term log remains.
struct WhittleTerms {
  std::vector<double> lambda;      ///< Fourier frequency
  std::vector<double> log_lambda;
  std::vector<double> lam2;        ///< lambda^2 = 2 sin^2(l/2) / c0(l)
  std::vector<double> q;           ///< I(lambda) / c0(lambda)
  double sum_log_lambda = 0.0;
  /// sum log c0; an H-constant offset of the objective, so it cancels in
  /// both the minimization and the curvature difference — subsampled CI
  /// grids leave it at zero.
  double sum_log_c0 = 0.0;
  std::vector<double> ebuf;        ///< scratch: lambda^{2H-1}
  std::vector<double> bbuf;        ///< scratch: aliasing-sum values

  [[nodiscard]] std::size_t size() const noexcept { return lambda.size(); }
};

WhittleTerms build_terms(const stats::Periodogram& pg,
                         std::size_t max_frequencies) {
  const std::size_t m = pg.frequency.size();
  const std::size_t stride =
      max_frequencies == 0 ? 1 : std::max<std::size_t>(1, m / max_frequencies);

  WhittleTerms t;
  const std::size_t count = (m + stride - 1) / stride;
  t.lambda.reserve(count);
  t.log_lambda.reserve(count);
  t.lam2.reserve(count);
  t.q.reserve(count);
  double c0_prod = 1.0;
  long c0_exp = 0;
  int renorm = 0;
  for (std::size_t j = stride - 1; j < m; j += stride) {
    const double lambda = pg.frequency[j];
    const double half = 0.5 * lambda;
    const double sin_half = std::sin(half);
    const double sinc_half = sin_half / half;
    const double c0 = 0.5 * sinc_half * sinc_half;
    t.lambda.push_back(lambda);
    t.lam2.push_back(lambda * lambda);
    t.q.push_back(pg.power[j] / c0);
    c0_prod *= c0;
    if (++renorm == 32) {
      int e = 0;
      c0_prod = std::frexp(c0_prod, &e);
      c0_exp += e;
      renorm = 0;
    }
  }
  t.sum_log_c0 =
      stats::vm_log(c0_prod) + static_cast<double>(c0_exp) * kLn2;
  t.log_lambda.resize(t.lambda.size());
  stats::log_batch(t.lambda, t.log_lambda);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= t.log_lambda.size(); i += 4) {
    s0 += t.log_lambda[i];
    s1 += t.log_lambda[i + 1];
    s2 += t.log_lambda[i + 2];
    s3 += t.log_lambda[i + 3];
  }
  for (; i < t.log_lambda.size(); ++i) s0 += t.log_lambda[i];
  t.sum_log_lambda = (s0 + s2) + (s1 + s3);
  return t;
}

/// Every fourth ordinate of `t`, for cheap curvature probes: the objective
/// restricted to the subgrid has the same per-ordinate expectation, so its
/// second difference estimates the same Q''(H) at a quarter of the cost.
WhittleTerms subsample_terms(const WhittleTerms& t, std::size_t stride) {
  WhittleTerms s;
  const std::size_t count = (t.size() + stride - 1) / stride;
  s.lambda.reserve(count);
  s.log_lambda.reserve(count);
  s.lam2.reserve(count);
  s.q.reserve(count);
  for (std::size_t j = 0; j < t.size(); j += stride) {
    s.lambda.push_back(t.lambda[j]);
    s.log_lambda.push_back(t.log_lambda[j]);
    s.lam2.push_back(t.lam2[j]);
    s.q.push_back(t.q[j]);
    s.sum_log_lambda += t.log_lambda[j];
  }
  return s;  // sum_log_c0 stays 0: it cancels in curvature differences
}

/// Profiled Whittle objective Q(H); also yields the profiled scale.
double whittle_objective(WhittleTerms& t, double hurst, double* sigma2_out) {
  const std::size_t m = t.size();
  const double d = 2.0 * hurst - 1.0;  // exponent of lambda in the ratio term
  const double scale = std::sin(std::numbers::pi * hurst) *
                       std::tgamma(2.0 * hurst + 1.0) / std::numbers::pi;
  const detail::AliasChebyshev cheb(hurst);

  t.ebuf.resize(m);
  t.bbuf.resize(m);
  for (std::size_t i = 0; i < m; ++i) t.ebuf[i] = d * t.log_lambda[i];
  stats::exp_batch(t.ebuf, t.ebuf);          // lambda^{2H-1}
  cheb.eval_batch(t.lambda, t.bbuf);         // B(lambda; H)

  // One pass: ratio sum q * e / (1+R) and the product of (1+R) per lane,
  // renormalized through frexp often enough that (1+R) <= ~30 per term can
  // never overflow the chunk.
  double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
  double p0 = 1.0, p1 = 1.0, p2 = 1.0, p3 = 1.0;
  long pexp = 0;
  int renorm = 0;
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double g0 = 1.0 + t.ebuf[i] * t.lam2[i] * t.bbuf[i];
    const double g1 = 1.0 + t.ebuf[i + 1] * t.lam2[i + 1] * t.bbuf[i + 1];
    const double g2 = 1.0 + t.ebuf[i + 2] * t.lam2[i + 2] * t.bbuf[i + 2];
    const double g3 = 1.0 + t.ebuf[i + 3] * t.lam2[i + 3] * t.bbuf[i + 3];
    r0 += t.q[i] * t.ebuf[i] / g0;
    r1 += t.q[i + 1] * t.ebuf[i + 1] / g1;
    r2 += t.q[i + 2] * t.ebuf[i + 2] / g2;
    r3 += t.q[i + 3] * t.ebuf[i + 3] / g3;
    p0 *= g0;
    p1 *= g1;
    p2 *= g2;
    p3 *= g3;
    if (++renorm == 32) {
      int e0 = 0, e1 = 0, e2 = 0, e3 = 0;
      p0 = std::frexp(p0, &e0);
      p1 = std::frexp(p1, &e1);
      p2 = std::frexp(p2, &e2);
      p3 = std::frexp(p3, &e3);
      pexp += e0 + e1 + e2 + e3;
      renorm = 0;
    }
  }
  for (; i < m; ++i) {
    const double g = 1.0 + t.ebuf[i] * t.lam2[i] * t.bbuf[i];
    r0 += t.q[i] * t.ebuf[i] / g;
    p0 *= g;
  }
  const double sum_ratio = ((r0 + r2) + (r1 + r3)) / scale;
  const double sum_log1p =
      ((stats::vm_log(p0) + stats::vm_log(p2)) +
       (stats::vm_log(p1) + stats::vm_log(p3))) +
      static_cast<double>(pexp) * kLn2;

  const auto mm = static_cast<double>(m);
  const double sum_logf = mm * std::log(scale) + t.sum_log_c0 -
                          d * t.sum_log_lambda + sum_log1p;
  const double sigma2 = sum_ratio / mm;
  if (sigma2_out != nullptr) *sigma2_out = sigma2;
  return std::log(sigma2) + sum_logf / mm;
}

/// Brent minimization on [ax, bx] with an absolute tolerance on x. Compared
/// to golden-section this reaches the same bracket width in roughly half the
/// objective evaluations by fitting parabolas through the three best points.
template <typename F>
double brent_min(double ax, double bx, double tol_abs, F&& fn) {
  constexpr double kGoldenComp = 0.3819660112501051;  // 2 - golden ratio
  double a = ax, b = bx;
  double x = a + kGoldenComp * (b - a);
  double w = x, v = x;
  double fx = fn(x);
  double fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 = tol_abs;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) break;
    bool parabolic = false;
    if (std::abs(e) > tol1) {
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double etemp = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * etemp) && p > q * (a - x) &&
          p < q * (b - x)) {
        parabolic = true;
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = std::copysign(tol1, xm - x);
      }
    }
    if (!parabolic) {
      e = x >= xm ? a - x : b - x;
      d = kGoldenComp * e;
    }
    const double u =
        std::abs(d) >= tol1 ? x + d : x + std::copysign(tol1, d);
    const double fu = fn(u);
    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      w = x;
      x = u;
      fv = fw;
      fw = fx;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        w = u;
        fv = fw;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  return x;
}

}  // namespace

Result<WhittleResult> whittle_hurst_pg(const stats::Periodogram& pg,
                                       const WhittleOptions& options) {
  if (pg.frequency.size() < 16)
    return Error::insufficient_data("whittle_hurst: too few frequencies");
  for (double p : pg.power) {
    if (!(p >= 0.0)) return Error::numeric("whittle_hurst: invalid periodogram");
  }
  WhittleTerms terms = build_terms(pg, options.max_frequencies);
  const std::size_t m = terms.size();
  WhittleTerms probe = m >= 2048 ? subsample_terms(terms, 4)
                                 : subsample_terms(terms, 1);

  // Q is smooth and, for fGn-like spectra, unimodal in practice over (0, 1).
  // Minimize in two stages: a coarse Brent pass on the quarter grid locates
  // the minimum to ~5e-3 at a quarter of the evaluation cost, then the full
  // grid polishes inside a bracket wide enough to absorb the subgrid's
  // statistical offset from the full-grid minimum. If the polish pins to an
  // interior bracket edge the bracket missed — fall back to the full sweep.
  const double tol = 0.5 * options.tolerance;
  auto full_q = [&terms](double h) {
    return whittle_objective(terms, h, nullptr);
  };
  const double h_coarse =
      brent_min(options.h_min, options.h_max, 5e-3,
                [&probe](double h) { return whittle_objective(probe, h, nullptr); });
  const double b_lo = std::max(options.h_min, h_coarse - 0.03);
  const double b_hi = std::min(options.h_max, h_coarse + 0.03);
  double h_hat = brent_min(b_lo, b_hi, tol, full_q);
  const bool pinned_lo = h_hat <= b_lo + options.tolerance &&
                         b_lo > options.h_min + options.tolerance;
  const bool pinned_hi = h_hat >= b_hi - options.tolerance &&
                         b_hi < options.h_max - options.tolerance;
  if (pinned_lo || pinned_hi)
    h_hat = brent_min(options.h_min, options.h_max, tol, full_q);

  WhittleResult result;
  result.objective = whittle_objective(terms, h_hat, &result.sigma2);

  // Observed information of the concentrated likelihood: -l(H) = (m/2) Q(H)
  // + const, so Var(H) ~= 2 / (m Q''(H)). Central second difference, probed
  // on a stride-4 subgrid when m is large: the per-ordinate curvature is the
  // same in expectation and the probes cost a quarter of a full evaluation.
  const double eps = 1e-3;
  const double h_lo = std::max(options.h_min, h_hat - eps);
  const double h_hi = std::min(options.h_max, h_hat + eps);
  const double q_lo = whittle_objective(probe, h_lo, nullptr);
  const double q_mid = whittle_objective(probe, h_hat, nullptr);
  const double q_hi = whittle_objective(probe, h_hi, nullptr);
  const double half = 0.5 * (h_hi - h_lo);
  const double q2 = (q_lo - 2.0 * q_mid + q_hi) / (half * half);

  result.estimate.method = HurstMethod::kWhittle;
  result.estimate.h = h_hat;
  if (q2 > 0.0) {
    const double var = 2.0 / (static_cast<double>(m) * q2);
    result.estimate.ci95_halfwidth = 1.96 * std::sqrt(var);
  }
  return result;
}

Result<WhittleResult> whittle_hurst(std::span<const double> xs,
                                    const WhittleOptions& options) {
  if (xs.size() < options.min_samples)
    return Error::insufficient_data("whittle_hurst: series too short");

  // Truncate to the largest power-of-two length: keeps the periodogram on
  // the radix-2 FFT fast path (Bluestein on week-length series costs ~5x)
  // at the price of discarding at most half — in practice < 15% — of the
  // newest samples.
  std::span<const double> input = xs;
  if (!stats::is_pow2(input.size())) {
    std::size_t p = 1;
    while (p * 2 <= input.size()) p *= 2;
    input = input.subspan(0, p);
  }
  const auto pg = stats::periodogram(input);
  return whittle_hurst_pg(pg, options);
}

}  // namespace fullweb::lrd
