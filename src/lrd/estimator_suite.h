// Run the paper's full battery of five Hurst estimators on one series,
// and the aggregated-series sweep of Figures 7 and 8.
//
// The five estimators are independent, as are the per-level estimates of a
// sweep, so both fan out on the configured support::Executor. Estimators
// take no RNG and results are collected in a fixed order, so parallel and
// serial runs are bit-identical.
#pragma once

#include <span>
#include <vector>

#include "lrd/abry_veitch.h"
#include "lrd/dfa.h"
#include "lrd/hurst.h"
#include "lrd/periodogram_hurst.h"
#include "lrd/rs.h"
#include "lrd/variance_time.h"
#include "lrd/whittle.h"
#include "support/result.h"
#include "timeseries/pyramid.h"

namespace fullweb::support {
class Executor;
class StageTimings;
}

namespace fullweb::lrd {

/// One row of Figures 4/6/9/10: all five estimates for one series.
/// Estimators that fail (short/degenerate input) are simply absent.
struct HurstSuiteResult {
  std::vector<HurstEstimate> estimates;

  [[nodiscard]] const HurstEstimate* find(HurstMethod method) const noexcept {
    for (const auto& e : estimates)
      if (e.method == method) return &e;
    return nullptr;
  }
  /// Mean of the available point estimates.
  [[nodiscard]] double mean_h() const noexcept;
  /// True when every available estimate lies in (0.5, 1): the paper's
  /// criterion for concluding long-range dependence.
  [[nodiscard]] bool all_indicate_lrd() const noexcept;
};

struct HurstSuiteOptions {
  VarianceTimeOptions variance_time;
  RsOptions rs;
  PeriodogramHurstOptions periodogram;
  WhittleOptions whittle;
  AbryVeitchOptions abry_veitch;
  bool run_whittle = true;  ///< Whittle is O(n log n + n * iters); allow skip
  /// Task executor for the estimator fan-out (null = the global pool).
  support::Executor* executor = nullptr;
  /// Optional per-stage observer (null = off; see support/timing.h).
  support::StageTimings* timings = nullptr;
};

[[nodiscard]] HurstSuiteResult hurst_suite(std::span<const double> xs,
                                           const HurstSuiteOptions& options = {});

/// Estimates Ĥ^(m) on the m-aggregated series (eq. 1) for each aggregation
/// level, with the method's confidence interval — the data behind Figures 7
/// (Whittle) and 8 (Abry-Veitch). Levels whose aggregated series is too
/// short for the method are skipped.
struct AggregatedHurstPoint {
  std::size_t m = 1;
  HurstEstimate estimate;
};
[[nodiscard]] std::vector<AggregatedHurstPoint> aggregated_hurst_sweep(
    std::span<const double> xs, HurstMethod method,
    std::span<const std::size_t> levels, const HurstSuiteOptions& options = {});

/// Same sweep over a prebuilt aggregation pyramid, so several sweeps (e.g.
/// Figures 7 and 8 on one trace) share the aggregated series instead of
/// recomputing them per method. Levels come from the pyramid (sorted,
/// deduplicated, zeros dropped).
[[nodiscard]] std::vector<AggregatedHurstPoint> aggregated_hurst_sweep(
    const timeseries::AggregationPyramid& pyramid, HurstMethod method,
    const HurstSuiteOptions& options = {});

}  // namespace fullweb::lrd
