// Whittle maximum-likelihood Hurst estimator for fractional Gaussian noise.
//
// Minimizes the (scale-profiled) Whittle spectral likelihood
//   Q(H) = log( (1/m) Σ_j I(λ_j)/f*(λ_j;H) ) + (1/m) Σ_j log f*(λ_j;H)
// over H in (0,1), where I is the periodogram and f* the unit-scale fGn
// spectral density. The fGn density's infinite aliasing sum is evaluated
// with Paxson's 3-term + Euler-Maclaurin-correction approximation
// (relative error < 0.01%). The 95% CI comes from the observed Fisher
// information (numeric second derivative of the profiled likelihood).
// References: Fox & Taqqu (1986); Taqqu & Teverovsky (1998); Paxson (1997).
#pragma once

#include <array>
#include <span>

#include "lrd/hurst.h"
#include "stats/periodogram.h"
#include "support/result.h"

namespace fullweb::lrd {

struct WhittleOptions {
  double h_min = 0.01;        ///< search interval lower edge
  double h_max = 0.99;        ///< search interval upper edge
  double tolerance = 1e-4;    ///< golden-section convergence on H
  std::size_t min_samples = 128;
  /// Periodogram decimation cap: when the series yields more Fourier
  /// frequencies than this, a uniform stride keeps roughly this many
  /// ordinates (low and high frequencies stay represented). The CI is
  /// computed from the ordinate count actually used, so decimation widens
  /// it honestly. 0 = use every ordinate (exact classical Whittle).
  std::size_t max_frequencies = 32768;
};

struct WhittleResult {
  HurstEstimate estimate;
  double sigma2 = 0.0;      ///< profiled innovation scale
  double objective = 0.0;   ///< Q(H) at the minimum
};

/// Unit-scale fGn spectral density f*(lambda; H), lambda in (0, pi].
/// Exposed for tests and for the aggregation bench diagnostics.
[[nodiscard]] double fgn_spectral_density(double lambda, double hurst) noexcept;

namespace detail {

/// Exact aliasing bracket B(lambda; H) of the fGn density: Paxson's 3-term
/// sum plus the Euler-Maclaurin correction, so that
///   f*(lambda; H) = scale * (0.5 * sinc_term * lambda^{-2H-1} +
///                            2 * sin^2(lambda/2) * B(lambda; H)).
/// Exposed for the interpolation-accuracy tests.
[[nodiscard]] double fgn_alias_sum(double lambda, double hurst) noexcept;

/// Chebyshev interpolant of fgn_alias_sum(., hurst) on [0, pi]. B is
/// analytic there (nearest singularity lambda = 2*pi), so 24 nodes reach
/// relative error far below the 1e-4 accuracy of the Paxson bracket itself;
/// evaluation is a short Clenshaw recurrence instead of ~10 pow/exp calls.
class AliasChebyshev {
 public:
  static constexpr std::size_t kNodes = 18;

  explicit AliasChebyshev(double hurst) noexcept;

  [[nodiscard]] double operator()(double lambda) const noexcept;
  /// Batched Clenshaw evaluation (independent recurrences, 4 per step).
  void eval_batch(std::span<const double> lambda,
                  std::span<double> out) const noexcept;

 private:
  std::array<double, kNodes> coef_{};
};

}  // namespace detail

[[nodiscard]] support::Result<WhittleResult> whittle_hurst(
    std::span<const double> xs, const WhittleOptions& options = {});

/// Same, against a prebuilt periodogram (shared across the estimator suite).
/// The caller is responsible for the min_samples policy; the periodogram
/// should come from a power-of-two-truncated series as whittle_hurst does.
[[nodiscard]] support::Result<WhittleResult> whittle_hurst_pg(
    const stats::Periodogram& pg, const WhittleOptions& options = {});

}  // namespace fullweb::lrd
