// Whittle maximum-likelihood Hurst estimator for fractional Gaussian noise.
//
// Minimizes the (scale-profiled) Whittle spectral likelihood
//   Q(H) = log( (1/m) Σ_j I(λ_j)/f*(λ_j;H) ) + (1/m) Σ_j log f*(λ_j;H)
// over H in (0,1), where I is the periodogram and f* the unit-scale fGn
// spectral density. The fGn density's infinite aliasing sum is evaluated
// with Paxson's 3-term + Euler-Maclaurin-correction approximation
// (relative error < 0.01%). The 95% CI comes from the observed Fisher
// information (numeric second derivative of the profiled likelihood).
// References: Fox & Taqqu (1986); Taqqu & Teverovsky (1998); Paxson (1997).
#pragma once

#include <span>

#include "lrd/hurst.h"
#include "support/result.h"

namespace fullweb::lrd {

struct WhittleOptions {
  double h_min = 0.01;        ///< search interval lower edge
  double h_max = 0.99;        ///< search interval upper edge
  double tolerance = 1e-4;    ///< golden-section convergence on H
  std::size_t min_samples = 128;
  /// Periodogram decimation cap: when the series yields more Fourier
  /// frequencies than this, a uniform stride keeps roughly this many
  /// ordinates (low and high frequencies stay represented). The CI is
  /// computed from the ordinate count actually used, so decimation widens
  /// it honestly. 0 = use every ordinate (exact classical Whittle).
  std::size_t max_frequencies = 32768;
};

struct WhittleResult {
  HurstEstimate estimate;
  double sigma2 = 0.0;      ///< profiled innovation scale
  double objective = 0.0;   ///< Q(H) at the minimum
};

/// Unit-scale fGn spectral density f*(lambda; H), lambda in (0, pi].
/// Exposed for tests and for the aggregation bench diagnostics.
[[nodiscard]] double fgn_spectral_density(double lambda, double hurst) noexcept;

[[nodiscard]] support::Result<WhittleResult> whittle_hurst(
    std::span<const double> xs, const WhittleOptions& options = {});

}  // namespace fullweb::lrd
