// Detrended fluctuation analysis (DFA) Hurst estimator — an extension
// beyond the paper's five methods.
//
// DFA integrates the series, splits the profile into boxes of size n, fits
// and removes a least-squares polynomial of degree `order` inside each box,
// and measures the RMS residual F(n); for LRD series F(n) ~ n^H. DFA(k) is
// blind to polynomial trends of degree k-1 in the original series (degree k
// in the profile), so the default DFA(2) is insensitive to the linear
// trends the paper must remove by hand for the classical estimators — a
// useful cross-check on the §4.1 methodology
// (see bench_ablation_stationarity).
// Reference: Peng et al., Phys. Rev. E 49 (1994).
#pragma once

#include <span>
#include <vector>

#include "lrd/hurst.h"
#include "support/result.h"

namespace fullweb::lrd {

struct DfaOptions {
  std::size_t min_box = 8;      ///< smallest box size
  std::size_t min_boxes = 4;    ///< largest box keeps >= this many boxes
  std::size_t levels = 24;      ///< log-spaced box sizes
  int order = 2;                ///< per-box detrending polynomial degree
                                ///< (1 or 2; 2 kills linear series trends)
};

struct DfaPlot {
  std::vector<double> log10_n;  ///< box sizes
  std::vector<double> log10_f;  ///< fluctuation function F(n)
};

/// The DFA(1) fluctuation plot. Errors on short/degenerate input.
[[nodiscard]] support::Result<DfaPlot> dfa_plot(std::span<const double> xs,
                                                const DfaOptions& options = {});

/// H estimate = slope of log F(n) vs log n.
[[nodiscard]] support::Result<HurstEstimate> dfa_hurst(
    std::span<const double> xs, const DfaOptions& options = {});

}  // namespace fullweb::lrd
