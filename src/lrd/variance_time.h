// Variance-time Hurst estimator.
//
// For a self-similar process, Var(X^(m)) ~ sigma^2 m^{2H-2}; the estimator
// aggregates the series at log-spaced levels m, regresses
// log Var(X^(m)) on log m, and reads H = 1 + slope/2 off the fitted slope
// (slope = 2H - 2, i.e. -beta in the paper's notation).
// Reference: Taqqu & Teverovsky (1998), §3.1 of the paper.
#pragma once

#include <span>
#include <vector>

#include "lrd/hurst.h"
#include "stats/prefix_moments.h"
#include "support/result.h"

namespace fullweb::lrd {

struct VarianceTimeOptions {
  std::size_t levels = 24;      ///< number of log-spaced aggregation levels
  std::size_t min_blocks = 32;  ///< keep >= this many blocks at the top level
};

/// Estimate H. Errors when the series is too short (< 2*min_blocks samples)
/// or degenerate (zero variance at the base level).
[[nodiscard]] support::Result<HurstEstimate> variance_time_hurst(
    std::span<const double> xs, const VarianceTimeOptions& options = {});

/// Same, against a prebuilt prefix-moment structure (shared across the
/// estimator suite); no per-level aggregate is materialized.
[[nodiscard]] support::Result<HurstEstimate> variance_time_hurst(
    const stats::PrefixMoments& pm, const VarianceTimeOptions& options = {});

/// The raw variance-time plot points (log10 m, log10 Var(X^(m))) — used by
/// diagnostics and the figure benches.
struct VarianceTimePlot {
  std::vector<double> log10_m;
  std::vector<double> log10_var;
};
[[nodiscard]] support::Result<VarianceTimePlot> variance_time_plot(
    std::span<const double> xs, const VarianceTimeOptions& options = {});
[[nodiscard]] support::Result<VarianceTimePlot> variance_time_plot(
    const stats::PrefixMoments& pm, const VarianceTimeOptions& options = {});

}  // namespace fullweb::lrd
