// Rescaled-range (R/S) Hurst estimator.
//
// For each block size n, the series is cut into non-overlapping blocks; in
// each block the adjusted range R (max minus min of the centered partial
// sums) is divided by the block standard deviation S. E[R/S](n) ~ c n^H, so
// the slope of log(R/S) vs log n estimates H. This is Hurst's original
// statistic and the paper's second time-domain estimator.
// Reference: Mandelbrot & Wallis; Taqqu & Teverovsky (1998).
#pragma once

#include <span>
#include <vector>

#include "lrd/hurst.h"
#include "stats/prefix_moments.h"
#include "support/result.h"

namespace fullweb::lrd {

struct RsOptions {
  std::size_t levels = 24;          ///< number of log-spaced block sizes
  std::size_t min_block_size = 16;  ///< smallest n (R/S is biased below this)
  std::size_t min_blocks = 4;       ///< largest n keeps >= this many blocks
};

[[nodiscard]] support::Result<HurstEstimate> rs_hurst(std::span<const double> xs,
                                                      const RsOptions& options = {});
/// Same, against a prebuilt prefix-moment structure (shared across the
/// estimator suite): block mean and S come from O(1) moment queries and the
/// cumulative-deviation walk reads the shared centered cumsum.
[[nodiscard]] support::Result<HurstEstimate> rs_hurst(
    const stats::PrefixMoments& pm, const RsOptions& options = {});

/// The pox-plot points (log10 n, log10 mean R/S).
struct RsPlot {
  std::vector<double> log10_n;
  std::vector<double> log10_rs;
};
[[nodiscard]] support::Result<RsPlot> rs_plot(std::span<const double> xs,
                                              const RsOptions& options = {});
[[nodiscard]] support::Result<RsPlot> rs_plot(const stats::PrefixMoments& pm,
                                              const RsOptions& options = {});

}  // namespace fullweb::lrd
