#include "lrd/periodogram_hurst.h"

#include <cmath>
#include <vector>

#include "stats/fft.h"
#include "stats/regression.h"
#include "stats/vecmath.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

Result<HurstEstimate> periodogram_hurst_pg(
    const stats::Periodogram& pg, const PeriodogramHurstOptions& options) {
  const auto use = static_cast<std::size_t>(
      std::floor(options.low_frequency_fraction *
                 static_cast<double>(pg.frequency.size())));
  if (use < options.min_ordinates)
    return Error::insufficient_data(
        "periodogram_hurst: too few low-frequency ordinates");

  std::vector<double> freq;
  std::vector<double> power;
  freq.reserve(use);
  power.reserve(use);
  for (std::size_t j = 0; j < use; ++j) {
    if (!(pg.power[j] > 0.0)) continue;  // exact zeros from degenerate input
    freq.push_back(pg.frequency[j]);
    power.push_back(pg.power[j]);
  }
  if (freq.size() < options.min_ordinates)
    return Error::numeric("periodogram_hurst: degenerate spectrum");

  std::vector<double> log_f(freq.size());
  std::vector<double> log_i(power.size());
  stats::log10_batch(freq, log_f);
  stats::log10_batch(power, log_i);

  const auto fit = stats::ols(log_f, log_i);
  HurstEstimate est;
  est.method = HurstMethod::kPeriodogram;
  est.h = (1.0 - fit.slope) / 2.0;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope / 2.0;
  est.r_squared = fit.r_squared;
  return est;
}

Result<HurstEstimate> periodogram_hurst(std::span<const double> xs,
                                        const PeriodogramHurstOptions& options) {
  // Power-of-two truncation keeps the FFT on the radix-2 fast path (see the
  // same trade-off note in whittle_hurst).
  std::span<const double> input = xs;
  if (!stats::is_pow2(input.size()) && input.size() > 1) {
    std::size_t p = 1;
    while (p * 2 <= input.size()) p *= 2;
    input = input.subspan(0, p);
  }
  const auto pg = stats::periodogram(input);
  return periodogram_hurst_pg(pg, options);
}

}  // namespace fullweb::lrd
