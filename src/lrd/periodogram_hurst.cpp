#include "lrd/periodogram_hurst.h"

#include <cmath>
#include <vector>

#include "stats/fft.h"
#include "stats/periodogram.h"
#include "stats/regression.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

Result<HurstEstimate> periodogram_hurst(std::span<const double> xs,
                                        const PeriodogramHurstOptions& options) {
  // Power-of-two truncation keeps the FFT on the radix-2 fast path (see the
  // same trade-off note in whittle_hurst).
  std::span<const double> input = xs;
  if (!stats::is_pow2(input.size()) && input.size() > 1) {
    std::size_t p = 1;
    while (p * 2 <= input.size()) p *= 2;
    input = input.subspan(0, p);
  }
  const auto pg = stats::periodogram(input);
  const auto use = static_cast<std::size_t>(
      std::floor(options.low_frequency_fraction *
                 static_cast<double>(pg.frequency.size())));
  if (use < options.min_ordinates)
    return Error::insufficient_data(
        "periodogram_hurst: too few low-frequency ordinates");

  std::vector<double> log_f;
  std::vector<double> log_i;
  log_f.reserve(use);
  log_i.reserve(use);
  for (std::size_t j = 0; j < use; ++j) {
    if (!(pg.power[j] > 0.0)) continue;  // exact zeros from degenerate input
    log_f.push_back(std::log10(pg.frequency[j]));
    log_i.push_back(std::log10(pg.power[j]));
  }
  if (log_f.size() < options.min_ordinates)
    return Error::numeric("periodogram_hurst: degenerate spectrum");

  const auto fit = stats::ols(log_f, log_i);
  HurstEstimate est;
  est.method = HurstMethod::kPeriodogram;
  est.h = (1.0 - fit.slope) / 2.0;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope / 2.0;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace fullweb::lrd
