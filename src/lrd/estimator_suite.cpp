#include "lrd/estimator_suite.h"

#include <array>
#include <optional>

#include "support/executor.h"
#include "timeseries/series.h"

namespace fullweb::lrd {

double HurstSuiteResult::mean_h() const noexcept {
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : estimates) sum += e.h;
  return sum / static_cast<double>(estimates.size());
}

bool HurstSuiteResult::all_indicate_lrd() const noexcept {
  if (estimates.empty()) return false;
  for (const auto& e : estimates)
    if (!e.indicates_lrd()) return false;
  return true;
}

namespace {

/// Dispatch one estimator by method on an already-aggregated series.
support::Result<HurstEstimate> run_estimator(std::span<const double> xs,
                                             HurstMethod method,
                                             const HurstSuiteOptions& options) {
  switch (method) {
    case HurstMethod::kVarianceTime:
      return variance_time_hurst(xs, options.variance_time);
    case HurstMethod::kRoverS:
      return rs_hurst(xs, options.rs);
    case HurstMethod::kPeriodogram:
      return periodogram_hurst(xs, options.periodogram);
    case HurstMethod::kWhittle: {
      auto r = whittle_hurst(xs, options.whittle);
      if (!r.ok()) return r.error();
      return r.value().estimate;
    }
    case HurstMethod::kAbryVeitch: {
      auto r = abry_veitch_hurst(xs, options.abry_veitch);
      if (!r.ok()) return r.error();
      return r.value().estimate;
    }
    case HurstMethod::kDfa:
      return dfa_hurst(xs);
  }
  return support::Error::invalid_argument("unsupported aggregation method");
}

}  // namespace

HurstSuiteResult hurst_suite(std::span<const double> xs,
                             const HurstSuiteOptions& options) {
  // Fixed battery order: fills the result slots concurrently, then collects
  // in this order so the output is identical to the old sequential code.
  const std::array<HurstMethod, 5> battery = {
      HurstMethod::kVarianceTime, HurstMethod::kRoverS,
      HurstMethod::kPeriodogram, HurstMethod::kWhittle,
      HurstMethod::kAbryVeitch};
  std::array<std::optional<HurstEstimate>, battery.size()> slots;

  support::Executor& ex = support::Executor::resolve(options.executor);
  support::TaskGroup group(ex);
  for (std::size_t i = 0; i < battery.size(); ++i) {
    if (battery[i] == HurstMethod::kWhittle && !options.run_whittle) continue;
    group.run([&, i] {
      if (auto r = run_estimator(xs, battery[i], options); r.ok())
        slots[i] = r.value();
    });
  }
  group.wait();

  HurstSuiteResult out;
  for (const auto& slot : slots)
    if (slot.has_value()) out.estimates.push_back(*slot);
  return out;
}

std::vector<AggregatedHurstPoint> aggregated_hurst_sweep(
    std::span<const double> xs, HurstMethod method,
    std::span<const std::size_t> levels, const HurstSuiteOptions& options) {
  std::vector<std::optional<AggregatedHurstPoint>> slots(levels.size());
  support::Executor& ex = support::Executor::resolve(options.executor);
  ex.parallel_for(0, levels.size(), [&](std::size_t i) {
    const std::size_t m = levels[i];
    if (m == 0) return;
    const auto agg = timeseries::aggregate(xs, m);
    if (auto est = run_estimator(agg, method, options); est.ok())
      slots[i] = AggregatedHurstPoint{m, est.value()};
  });

  std::vector<AggregatedHurstPoint> out;
  for (const auto& slot : slots)
    if (slot.has_value()) out.push_back(*slot);
  return out;
}

}  // namespace fullweb::lrd
