#include "lrd/estimator_suite.h"

#include "timeseries/series.h"

namespace fullweb::lrd {

double HurstSuiteResult::mean_h() const noexcept {
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : estimates) sum += e.h;
  return sum / static_cast<double>(estimates.size());
}

bool HurstSuiteResult::all_indicate_lrd() const noexcept {
  if (estimates.empty()) return false;
  for (const auto& e : estimates)
    if (!e.indicates_lrd()) return false;
  return true;
}

HurstSuiteResult hurst_suite(std::span<const double> xs,
                             const HurstSuiteOptions& options) {
  HurstSuiteResult out;
  if (auto r = variance_time_hurst(xs, options.variance_time); r.ok())
    out.estimates.push_back(r.value());
  if (auto r = rs_hurst(xs, options.rs); r.ok()) out.estimates.push_back(r.value());
  if (auto r = periodogram_hurst(xs, options.periodogram); r.ok())
    out.estimates.push_back(r.value());
  if (options.run_whittle) {
    if (auto r = whittle_hurst(xs, options.whittle); r.ok())
      out.estimates.push_back(r.value().estimate);
  }
  if (auto r = abry_veitch_hurst(xs, options.abry_veitch); r.ok())
    out.estimates.push_back(r.value().estimate);
  return out;
}

std::vector<AggregatedHurstPoint> aggregated_hurst_sweep(
    std::span<const double> xs, HurstMethod method,
    std::span<const std::size_t> levels, const HurstSuiteOptions& options) {
  std::vector<AggregatedHurstPoint> out;
  for (std::size_t m : levels) {
    if (m == 0) continue;
    const auto agg = timeseries::aggregate(xs, m);
    support::Result<HurstEstimate> est =
        support::Error::invalid_argument("unsupported aggregation method");
    switch (method) {
      case HurstMethod::kWhittle: {
        auto r = whittle_hurst(agg, options.whittle);
        est = r.ok() ? support::Result<HurstEstimate>(r.value().estimate)
                     : support::Result<HurstEstimate>(r.error());
        break;
      }
      case HurstMethod::kAbryVeitch: {
        auto r = abry_veitch_hurst(agg, options.abry_veitch);
        est = r.ok() ? support::Result<HurstEstimate>(r.value().estimate)
                     : support::Result<HurstEstimate>(r.error());
        break;
      }
      case HurstMethod::kVarianceTime:
        est = variance_time_hurst(agg, options.variance_time);
        break;
      case HurstMethod::kRoverS:
        est = rs_hurst(agg, options.rs);
        break;
      case HurstMethod::kPeriodogram:
        est = periodogram_hurst(agg, options.periodogram);
        break;
      case HurstMethod::kDfa:
        est = dfa_hurst(agg);
        break;
    }
    if (est.ok()) out.push_back({m, est.value()});
  }
  return out;
}

}  // namespace fullweb::lrd
