#include "lrd/estimator_suite.h"

#include <algorithm>
#include <array>
#include <optional>

#include "stats/fft.h"
#include "stats/prefix_moments.h"
#include "support/executor.h"
#include "support/timing.h"
#include "timeseries/series.h"

namespace fullweb::lrd {

double HurstSuiteResult::mean_h() const noexcept {
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : estimates) sum += e.h;
  return sum / static_cast<double>(estimates.size());
}

bool HurstSuiteResult::all_indicate_lrd() const noexcept {
  if (estimates.empty()) return false;
  for (const auto& e : estimates)
    if (!e.indicates_lrd()) return false;
  return true;
}

namespace {

/// Dispatch one estimator by method on an already-aggregated series.
support::Result<HurstEstimate> run_estimator(std::span<const double> xs,
                                             HurstMethod method,
                                             const HurstSuiteOptions& options) {
  switch (method) {
    case HurstMethod::kVarianceTime:
      return variance_time_hurst(xs, options.variance_time);
    case HurstMethod::kRoverS:
      return rs_hurst(xs, options.rs);
    case HurstMethod::kPeriodogram:
      return periodogram_hurst(xs, options.periodogram);
    case HurstMethod::kWhittle: {
      auto r = whittle_hurst(xs, options.whittle);
      if (!r.ok()) return r.error();
      return r.value().estimate;
    }
    case HurstMethod::kAbryVeitch: {
      auto r = abry_veitch_hurst(xs, options.abry_veitch);
      if (!r.ok()) return r.error();
      return r.value().estimate;
    }
    case HurstMethod::kDfa:
      return dfa_hurst(xs);
  }
  return support::Error::invalid_argument("unsupported aggregation method");
}

}  // namespace

HurstSuiteResult hurst_suite(std::span<const double> xs,
                             const HurstSuiteOptions& options) {
  // Shared inputs, built once before the fan-out: the prefix-moment
  // structure feeds both time-domain estimators (variance-time block
  // variances, R/S block moments and partial-sum walk) and the single
  // power-of-two-truncated periodogram feeds both frequency-domain ones
  // (GPH log-regression and Whittle likelihood). This removes the repeated
  // per-estimator cumsum/FFT passes over the same series.
  using Kind = support::StageTimings::Kind;
  support::StageTimer pm_timer(options.timings, "prefix moments", Kind::kPhase);
  const stats::PrefixMoments pm(xs);
  pm_timer.stop();
  std::span<const double> input = xs;
  if (!stats::is_pow2(input.size()) && input.size() > 1) {
    std::size_t p = 1;
    while (p * 2 <= input.size()) p *= 2;
    input = input.subspan(0, p);
  }
  support::Executor& ex = support::Executor::resolve(options.executor);
  // The shared FFT is serial work every estimator waits behind — chunk its
  // stages on the pool before the fan-out. (Width mirrors the FFT's ~16k
  // chunk granularity.)
  support::StageTimer pg_timer(
      options.timings, "shared periodogram", Kind::kPhase,
      std::max<double>(1.0, static_cast<double>(input.size()) / 32768.0));
  const stats::Periodogram pg = stats::periodogram(input, &ex);
  pg_timer.stop();

  // Fixed battery order: fills the result slots concurrently, then collects
  // in this order so the output is identical to the old sequential code.
  std::array<std::optional<HurstEstimate>, 5> slots;
  support::TaskGroup group(ex);
  group.run([&] {
    support::StageTimer t(options.timings, "variance-time");
    if (auto r = variance_time_hurst(pm, options.variance_time); r.ok())
      slots[0] = r.value();
  });
  group.run([&] {
    support::StageTimer t(options.timings, "r/s");
    if (auto r = rs_hurst(pm, options.rs); r.ok()) slots[1] = r.value();
  });
  group.run([&] {
    support::StageTimer t(options.timings, "gph periodogram");
    if (auto r = periodogram_hurst_pg(pg, options.periodogram); r.ok())
      slots[2] = r.value();
  });
  // The sample-count policy lives here because the shared periodogram no
  // longer carries the original series length.
  if (options.run_whittle && xs.size() >= options.whittle.min_samples) {
    group.run([&] {
      support::StageTimer t(options.timings, "whittle");
      if (auto r = whittle_hurst_pg(pg, options.whittle); r.ok())
        slots[3] = r.value().estimate;
    });
  }
  group.run([&] {
    // The wavelet transform chunks its big octaves on the same pool the
    // suite fans out on (nested waits help, so this cannot deadlock).
    support::StageTimer t(
        options.timings, "abry-veitch", Kind::kTask,
        std::max<double>(1.0, static_cast<double>(xs.size()) / 32768.0));
    AbryVeitchOptions av = options.abry_veitch;
    if (av.executor == nullptr) av.executor = &ex;
    if (auto r = abry_veitch_hurst(xs, av); r.ok())
      slots[4] = r.value().estimate;
  });
  group.wait();

  HurstSuiteResult out;
  for (const auto& slot : slots)
    if (slot.has_value()) out.estimates.push_back(*slot);
  return out;
}

namespace {

std::vector<AggregatedHurstPoint> sweep_over_pyramid(
    const timeseries::AggregationPyramid& pyramid,
    std::span<const std::size_t> levels, HurstMethod method,
    const HurstSuiteOptions& options) {
  std::vector<std::optional<AggregatedHurstPoint>> slots(levels.size());
  support::Executor& ex = support::Executor::resolve(options.executor);
  ex.parallel_for(0, levels.size(), [&](std::size_t i) {
    const std::size_t m = levels[i];
    if (m == 0) return;
    const auto agg = pyramid.level(m);
    if (auto est = run_estimator(agg, method, options); est.ok())
      slots[i] = AggregatedHurstPoint{m, est.value()};
  });

  std::vector<AggregatedHurstPoint> out;
  for (const auto& slot : slots)
    if (slot.has_value()) out.push_back(*slot);
  return out;
}

}  // namespace

std::vector<AggregatedHurstPoint> aggregated_hurst_sweep(
    std::span<const double> xs, HurstMethod method,
    std::span<const std::size_t> levels, const HurstSuiteOptions& options) {
  // The pyramid materializes every aggregated series once (cascading even
  // multiples from coarser levels), instead of one fresh O(n) aggregation
  // pass per level per method.
  const timeseries::AggregationPyramid pyramid(xs, levels);
  return sweep_over_pyramid(pyramid, levels, method, options);
}

std::vector<AggregatedHurstPoint> aggregated_hurst_sweep(
    const timeseries::AggregationPyramid& pyramid, HurstMethod method,
    const HurstSuiteOptions& options) {
  return sweep_over_pyramid(pyramid, pyramid.levels(), method, options);
}

}  // namespace fullweb::lrd
