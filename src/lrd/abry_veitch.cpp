#include "lrd/abry_veitch.h"

#include <cmath>
#include <numbers>

#include "stats/regression.h"
#include "stats/special.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

Result<AbryVeitchResult> abry_veitch_hurst(std::span<const double> xs,
                                           const AbryVeitchOptions& options) {
  if (xs.size() < 64)
    return Error::insufficient_data("abry_veitch_hurst: series too short");

  const auto decomp = timeseries::dwt(xs, options.wavelet, options.min_coeffs,
                                      options.executor);
  const std::size_t octaves = decomp.octaves();
  if (octaves < 3)
    return Error::insufficient_data("abry_veitch_hurst: fewer than 3 octaves");

  const std::size_t j1 = std::max<std::size_t>(1, options.j1);
  const std::size_t j2 = options.j2 == 0 ? octaves : std::min(options.j2, octaves);
  if (j2 < j1 + 2)
    return Error::insufficient_data(
        "abry_veitch_hurst: octave range too narrow (need >= 3 octaves)");

  // Coefficients computed with wrapped (periodic) indices see the artificial
  // jump between the series' last and first samples; with a trend present
  // that jump is large and would bias the coarse octaves upward. Drop the
  // trailing boundary-affected coefficients of every octave (the filter
  // spreads the boundary by ~filter_length coefficients per level).
  const std::size_t boundary =
      options.wavelet == timeseries::WaveletKind::kD4 ? 4 : 2;

  AbryVeitchResult result;
  const double ln2 = std::numbers::ln2;
  std::vector<double> jj;
  for (std::size_t j = j1; j <= j2; ++j) {
    const auto& d = decomp.details[j - 1];
    if (d.size() < options.min_coeffs) break;
    const std::size_t usable = d.size() - std::min(boundary, d.size() / 2);
    const auto n_j = static_cast<double>(usable);
    // Four-lane sum of squares with a fixed reduction tree: vectorizable and
    // deterministic for any thread count.
    double e0 = 0.0, e1 = 0.0, e2 = 0.0, e3 = 0.0;
    std::size_t k = 0;
    for (; k + 4 <= usable; k += 4) {
      e0 += d[k] * d[k];
      e1 += d[k + 1] * d[k + 1];
      e2 += d[k + 2] * d[k + 2];
      e3 += d[k + 3] * d[k + 3];
    }
    for (; k < usable; ++k) e0 += d[k] * d[k];
    const double energy = (e0 + e2) + (e1 + e3);
    const double mu = energy / n_j;
    if (!(mu > 0.0)) continue;  // octave with all-zero details (constant input)

    // Bias correction g(n_j) and variance of log2(mu_j).
    const double g = stats::digamma(n_j / 2.0) / ln2 - std::log2(n_j / 2.0);
    const double var = stats::trigamma(n_j / 2.0) / (ln2 * ln2);

    jj.push_back(static_cast<double>(j));
    result.octaves.push_back(j);
    result.log2_energy.push_back(std::log2(mu) - g);
    result.weight.push_back(1.0 / var);
  }
  if (jj.size() < 3)
    return Error::numeric("abry_veitch_hurst: fewer than 3 usable octaves");

  const auto fit = stats::wls(jj, result.log2_energy, result.weight);
  result.estimate.method = HurstMethod::kAbryVeitch;
  result.estimate.h = 0.5 * (fit.slope + 1.0);
  result.estimate.ci95_halfwidth = 1.96 * fit.stderr_slope / 2.0;
  result.estimate.r_squared = fit.r_squared;
  return result;
}

}  // namespace fullweb::lrd
