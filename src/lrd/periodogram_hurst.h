// Periodogram (GPH-style) Hurst estimator.
//
// An LRD process has spectral density f(λ) ~ c |λ|^{1-2H} as λ -> 0, so the
// slope of log I(λ) on log λ over the lowest frequencies estimates 1 - 2H:
// H = (1 - slope) / 2. Per Taqqu & Teverovsky only the lowest ~10% of
// frequencies are used, where the asymptotic form holds.
#pragma once

#include <span>

#include "lrd/hurst.h"
#include "stats/periodogram.h"
#include "support/result.h"

namespace fullweb::lrd {

struct PeriodogramHurstOptions {
  double low_frequency_fraction = 0.10;  ///< fraction of ordinates used
  std::size_t min_ordinates = 10;        ///< fail below this many points
};

[[nodiscard]] support::Result<HurstEstimate> periodogram_hurst(
    std::span<const double> xs, const PeriodogramHurstOptions& options = {});

/// Same, against a prebuilt periodogram (shared across the estimator suite
/// with the Whittle estimator, which uses the identical power-of-two
/// truncated transform).
[[nodiscard]] support::Result<HurstEstimate> periodogram_hurst_pg(
    const stats::Periodogram& pg, const PeriodogramHurstOptions& options = {});

}  // namespace fullweb::lrd
