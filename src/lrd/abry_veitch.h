// Abry-Veitch wavelet Hurst estimator.
//
// The detail-coefficient energy of an LRD process scales across octaves as
//   mu_j = (1/n_j) Σ_k d_{j,k}^2  ~  C 2^{j (2H - 1)},
// so a weighted linear regression of the bias-corrected log2(mu_j) on
// octave j gives slope gamma and H = (gamma + 1)/2. The bias correction
// g(n_j) = psi(n_j/2)/ln 2 - log2(n_j/2) and the per-octave variance
// zeta(2, n_j/2)/ln^2 2 (trigamma) follow Veitch & Abry (1999); Daubechies-4
// wavelets (2 vanishing moments) make the estimator blind to linear trends.
// Reference: Abry & Veitch, IEEE Trans. IT 44(1), 1998.
#pragma once

#include <span>

#include "lrd/hurst.h"
#include "support/result.h"
#include "timeseries/wavelet.h"

namespace fullweb::support {
class Executor;
}

namespace fullweb::lrd {

struct AbryVeitchOptions {
  timeseries::WaveletKind wavelet = timeseries::WaveletKind::kD4;
  std::size_t j1 = 2;             ///< finest octave in the regression
  std::size_t j2 = 0;             ///< coarsest octave; 0 = deepest with
                                  ///< at least `min_coeffs` coefficients
  std::size_t min_coeffs = 8;     ///< per-octave coefficient floor
  /// Task executor for the wavelet-transform chunking (null = global pool).
  support::Executor* executor = nullptr;
};

struct AbryVeitchResult {
  HurstEstimate estimate;
  std::vector<std::size_t> octaves;     ///< j values used in the regression
  std::vector<double> log2_energy;      ///< bias-corrected y_j
  std::vector<double> weight;           ///< regression weights 1/sigma_j^2
};

[[nodiscard]] support::Result<AbryVeitchResult> abry_veitch_hurst(
    std::span<const double> xs, const AbryVeitchOptions& options = {});

}  // namespace fullweb::lrd
