// Common types for Hurst-exponent estimation.
//
// The paper uses five estimators (§3.1): Variance-time and R/S from the
// time domain; Periodogram, Whittle, and Abry-Veitch from the
// frequency/wavelet domain. Whittle and Abry-Veitch also provide 95%
// confidence intervals. All estimators assume a stationary input — the
// whole point of §4.1 is that trend/periodicity must be removed first.
#pragma once

#include <optional>
#include <string>

#include "support/result.h"

namespace fullweb::lrd {

/// Which estimator produced an estimate (for table/figure labeling).
enum class HurstMethod {
  kVarianceTime,
  kRoverS,
  kPeriodogram,
  kWhittle,
  kAbryVeitch,
  kDfa,  ///< extension beyond the paper's five (see lrd/dfa.h)
};

[[nodiscard]] std::string to_string(HurstMethod method);

struct HurstEstimate {
  HurstMethod method = HurstMethod::kVarianceTime;
  double h = 0.5;
  /// 95% confidence half-width, when the method provides one
  /// (Whittle, Abry-Veitch; regression-based methods expose the slope SE
  /// converted to H units, which is optimistic and flagged as such).
  std::optional<double> ci95_halfwidth;
  /// Auxiliary regression quality where applicable.
  std::optional<double> r_squared;

  [[nodiscard]] bool indicates_lrd() const noexcept { return h > 0.5 && h < 1.0; }
  [[nodiscard]] double ci_low() const noexcept {
    return ci95_halfwidth ? h - *ci95_halfwidth : h;
  }
  [[nodiscard]] double ci_high() const noexcept {
    return ci95_halfwidth ? h + *ci95_halfwidth : h;
  }
  /// Whether the 95% CI contains `true_h`. False when the method provides
  /// no CI — callers measuring coverage must check ci95_halfwidth first.
  [[nodiscard]] bool ci_covers(double true_h) const noexcept {
    return ci95_halfwidth && h - *ci95_halfwidth <= true_h &&
           true_h <= h + *ci95_halfwidth;
  }
};

}  // namespace fullweb::lrd
