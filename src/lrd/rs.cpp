#include "lrd/rs.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/regression.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

namespace {

/// R/S statistic of one block; returns 0 when the block is constant
/// (S == 0), which callers skip.
double rs_statistic(std::span<const double> block) {
  const std::size_t n = block.size();
  double mean = 0.0;
  for (double x : block) mean += x;
  mean /= static_cast<double>(n);

  double w = 0.0;
  double w_min = 0.0;
  double w_max = 0.0;
  double ss = 0.0;
  for (double x : block) {
    const double d = x - mean;
    w += d;
    w_min = std::min(w_min, w);
    w_max = std::max(w_max, w);
    ss += d * d;
  }
  const double s = std::sqrt(ss / static_cast<double>(n));
  if (!(s > 0.0)) return 0.0;
  return (w_max - w_min) / s;
}

}  // namespace

Result<RsPlot> rs_plot(std::span<const double> xs, const RsOptions& options) {
  const std::size_t n = xs.size();
  if (n < options.min_block_size * options.min_blocks)
    return Error::insufficient_data("rs_hurst: series too short");

  // Log-spaced block sizes between min_block_size and n / min_blocks.
  const auto lo = static_cast<double>(options.min_block_size);
  const double hi = static_cast<double>(n / options.min_blocks);
  std::set<std::size_t> sizes;
  for (std::size_t i = 0; i < options.levels; ++i) {
    const double frac = options.levels > 1
                            ? static_cast<double>(i) /
                                  static_cast<double>(options.levels - 1)
                            : 0.0;
    sizes.insert(static_cast<std::size_t>(
        std::lround(lo * std::pow(hi / lo, frac))));
  }

  RsPlot plot;
  for (std::size_t size : sizes) {
    if (size < 2) continue;
    const std::size_t blocks = n / size;
    if (blocks == 0) continue;
    double sum = 0.0;
    std::size_t used = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      const double rs = rs_statistic(xs.subspan(b * size, size));
      if (rs > 0.0) {
        sum += rs;
        ++used;
      }
    }
    if (used == 0) continue;
    plot.log10_n.push_back(std::log10(static_cast<double>(size)));
    plot.log10_rs.push_back(std::log10(sum / static_cast<double>(used)));
  }
  if (plot.log10_n.size() < 3)
    return Error::numeric("rs_hurst: fewer than 3 usable block sizes");
  return plot;
}

Result<HurstEstimate> rs_hurst(std::span<const double> xs, const RsOptions& options) {
  auto plot = rs_plot(xs, options);
  if (!plot) return plot.error();

  const auto fit = stats::ols(plot.value().log10_n, plot.value().log10_rs);
  HurstEstimate est;
  est.method = HurstMethod::kRoverS;
  est.h = fit.slope;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace fullweb::lrd
