#include "lrd/rs.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/descriptive.h"
#include "stats/regression.h"
#include "stats/vecmath.h"

namespace fullweb::lrd {

using support::Error;
using support::Result;

namespace {

/// R/S statistic of the block [start, start + size) from the shared prefix
/// moments: S^2 is an O(1) moment query and the centered partial-sum walk
///   W_k = sum_{t <= k in block} (x_t - block mean)
///       = (C[start+k+1] - C[start]) - (k+1) * (block mean - anchor)
/// reads the global centered cumsum instead of re-deriving it per block.
/// Returns 0 when the block is constant (S == 0), which callers skip.
double rs_statistic(const stats::PrefixMoments& pm, std::size_t start,
                    std::size_t size) {
  const double s2 = pm.block_sum_sq_dev(start, start + size) /
                    static_cast<double>(size);
  const double s = std::sqrt(s2);
  if (!(s > 0.0)) return 0.0;

  const auto cum = pm.centered_cumsum();
  const double base = cum[start];
  const double step =
      (cum[start + size] - base) / static_cast<double>(size);
  double w_min = 0.0, w_max = 0.0;
  stats::minmax_prefix_walk(cum.subspan(start + 1, size), base, step, w_min,
                            w_max);
  return (w_max - w_min) / s;
}

}  // namespace

Result<RsPlot> rs_plot(const stats::PrefixMoments& pm, const RsOptions& options) {
  const std::size_t n = pm.size();
  if (n < options.min_block_size * options.min_blocks)
    return Error::insufficient_data("rs_hurst: series too short");

  // Log-spaced block sizes between min_block_size and n / min_blocks.
  // lround can collide or land outside the range (rounding above hi at the
  // top of the grid, or below lo for degenerate grids), so clamp every size
  // into [lo, hi]; the set dedupes collisions.
  const std::size_t lo_sz = options.min_block_size;
  const std::size_t hi_sz = std::max(lo_sz, n / options.min_blocks);
  const auto lo = static_cast<double>(lo_sz);
  const double hi = static_cast<double>(hi_sz);
  std::set<std::size_t> sizes;
  for (std::size_t i = 0; i < options.levels; ++i) {
    const double frac = options.levels > 1
                            ? static_cast<double>(i) /
                                  static_cast<double>(options.levels - 1)
                            : 0.0;
    const auto raw = static_cast<std::size_t>(
        std::lround(lo * std::pow(hi / lo, frac)));
    sizes.insert(std::clamp(raw, lo_sz, hi_sz));
  }

  std::vector<double> used_sizes, mean_rs;
  for (std::size_t size : sizes) {
    if (size < 2) continue;
    const std::size_t blocks = n / size;
    if (blocks == 0) continue;
    double sum = 0.0;
    std::size_t used = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      const double rs = rs_statistic(pm, b * size, size);
      if (rs > 0.0) {
        sum += rs;
        ++used;
      }
    }
    if (used == 0) continue;
    used_sizes.push_back(static_cast<double>(size));
    mean_rs.push_back(sum / static_cast<double>(used));
  }
  if (used_sizes.size() < 3)
    return Error::numeric("rs_hurst: fewer than 3 usable block sizes");
  RsPlot plot;
  plot.log10_n.resize(used_sizes.size());
  plot.log10_rs.resize(mean_rs.size());
  stats::log10_batch(used_sizes, plot.log10_n);
  stats::log10_batch(mean_rs, plot.log10_rs);
  return plot;
}

Result<RsPlot> rs_plot(std::span<const double> xs, const RsOptions& options) {
  if (xs.size() < options.min_block_size * options.min_blocks)
    return Error::insufficient_data("rs_hurst: series too short");
  const stats::PrefixMoments pm(xs);
  return rs_plot(pm, options);
}

namespace {

Result<HurstEstimate> fit_rs(Result<RsPlot> plot) {
  if (!plot) return plot.error();
  const auto fit = stats::ols(plot.value().log10_n, plot.value().log10_rs);
  HurstEstimate est;
  est.method = HurstMethod::kRoverS;
  est.h = fit.slope;
  est.ci95_halfwidth = 1.96 * fit.stderr_slope;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace

Result<HurstEstimate> rs_hurst(std::span<const double> xs,
                               const RsOptions& options) {
  return fit_rs(rs_plot(xs, options));
}

Result<HurstEstimate> rs_hurst(const stats::PrefixMoments& pm,
                               const RsOptions& options) {
  return fit_rs(rs_plot(pm, options));
}

}  // namespace fullweb::lrd
