// Single-server FIFO queue simulation.
//
// The paper's §4.2 punchline is that Poisson-based queueing models of Web
// servers ([23], [25], [30], [8]) are built on a false premise. This
// substrate lets the examples and benches quantify the consequence: replay
// any arrival trace (synthetic LRD traffic, a Poisson comparator, or a
// parsed real log) through a queue and compare delay distributions.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "support/result.h"

namespace fullweb::queueing {

/// Outcome of one FIFO replay.
struct QueueStats {
  std::size_t arrivals = 0;
  double utilization = 0.0;      ///< busy time / horizon
  double mean_wait = 0.0;        ///< queueing delay, excluding service
  double p50_wait = 0.0;
  double p95_wait = 0.0;
  double p99_wait = 0.0;
  double max_wait = 0.0;
  double mean_queue_length = 0.0;  ///< time-averaged number waiting
  std::vector<double> waits;       ///< per-request (same order as arrivals)
};

/// Service-time source: called once per request, must return > 0 seconds.
using ServiceSampler = std::function<double()>;

/// Replay `arrival_times` (ascending) through a single FIFO server.
/// Errors when arrivals are unsorted or a service sample is non-positive.
[[nodiscard]] support::Result<QueueStats> simulate_fifo(
    std::span<const double> arrival_times, const ServiceSampler& service);

/// Convenience: deterministic service time (isolates arrival-process
/// effects, the configuration used by the capacity-planning example).
[[nodiscard]] support::Result<QueueStats> simulate_fifo_deterministic(
    std::span<const double> arrival_times, double service_time);

}  // namespace fullweb::queueing
