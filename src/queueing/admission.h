// Session-based admission control simulation (Cherkasova & Phaal, refs
// [5]/[6] of the paper).
//
// A capacity-limited server processes a session-structured request stream
// under one of two overload policies; the simulator reports per-policy
// session completion rates, overall and for the longest sessions — the
// metric session-based AC is designed to protect. §5.2.1 shows session
// lengths are heavy-tailed, which is precisely why the distinction matters.
#pragma once

#include <cstdint>
#include <span>

#include "support/result.h"
#include "support/rng.h"
#include "weblog/sessionizer.h"

namespace fullweb::queueing {

enum class AdmissionPolicy {
  kRequestDropping,  ///< overloaded seconds drop individual requests
  kSessionBased,     ///< overloaded seconds defer NEW sessions only
};

struct AdmissionOptions {
  std::size_t capacity_per_second = 100;
  AdmissionPolicy policy = AdmissionPolicy::kSessionBased;
  /// Under request dropping, probability that an over-capacity request is
  /// actually dropped (models partial shedding).
  double drop_probability = 0.5;
  /// Quantile defining a "long" session for the protected-completion metric.
  double long_session_quantile = 0.9;
};

struct AdmissionOutcome {
  std::size_t sessions = 0;
  std::size_t completed = 0;
  std::size_t long_sessions = 0;
  std::size_t completed_long = 0;
  std::size_t requests_served = 0;
  std::size_t requests_rejected = 0;

  [[nodiscard]] double completion_rate() const noexcept {
    return sessions == 0 ? 0.0
                         : static_cast<double>(completed) /
                               static_cast<double>(sessions);
  }
  [[nodiscard]] double long_completion_rate() const noexcept {
    return long_sessions == 0 ? 0.0
                              : static_cast<double>(completed_long) /
                                    static_cast<double>(long_sessions);
  }
};

/// A request already attributed to a session (index into the session list).
struct SessionRequest {
  double time = 0.0;
  std::uint32_t session = 0;
};

/// Attribute a time-sorted request stream to ground-truth sessions (one
/// active session per client at a time, the generator's invariant).
/// Errors if requests reference clients with no session covering them.
[[nodiscard]] support::Result<std::vector<SessionRequest>> attribute_requests(
    std::span<const weblog::Request> requests,
    std::span<const weblog::Session> sessions);

/// Run the admission simulation. A session aborts the first time one of its
/// requests is rejected; aborted sessions stop consuming capacity.
[[nodiscard]] support::Result<AdmissionOutcome> simulate_admission(
    std::span<const SessionRequest> requests,
    std::span<const weblog::Session> sessions, const AdmissionOptions& options,
    support::Rng& rng);

}  // namespace fullweb::queueing
