#include "queueing/fifo_queue.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace fullweb::queueing {

using support::Error;
using support::Result;

Result<QueueStats> simulate_fifo(std::span<const double> arrival_times,
                                 const ServiceSampler& service) {
  QueueStats stats;
  stats.arrivals = arrival_times.size();
  if (arrival_times.empty()) return stats;

  stats.waits.reserve(arrival_times.size());
  double server_free_at = arrival_times.front();
  double busy_time = 0.0;
  double wait_area = 0.0;  // integral of (number waiting) dt, via Lindley

  double prev_arrival = arrival_times.front();
  for (double t : arrival_times) {
    if (t < prev_arrival)
      return Error::invalid_argument("simulate_fifo: arrivals not sorted");
    prev_arrival = t;

    const double start = std::max(t, server_free_at);
    const double wait = start - t;
    stats.waits.push_back(wait);
    wait_area += wait;  // each request contributes its own waiting time

    const double s = service();
    if (!(s > 0.0))
      return Error::invalid_argument("simulate_fifo: non-positive service time");
    busy_time += s;
    server_free_at = start + s;
  }

  const double horizon =
      std::max(server_free_at, arrival_times.back()) - arrival_times.front();
  stats.utilization = horizon > 0.0 ? std::min(1.0, busy_time / horizon) : 0.0;

  std::vector<double> sorted = stats.waits;
  std::sort(sorted.begin(), sorted.end());
  stats.mean_wait = stats::mean(sorted);
  stats.p50_wait = stats::quantile_sorted(sorted, 0.50);
  stats.p95_wait = stats::quantile_sorted(sorted, 0.95);
  stats.p99_wait = stats::quantile_sorted(sorted, 0.99);
  stats.max_wait = sorted.back();
  // Little's law: time-averaged queue length = arrival rate * mean wait.
  stats.mean_queue_length =
      horizon > 0.0
          ? wait_area / horizon
          : 0.0;
  return stats;
}

Result<QueueStats> simulate_fifo_deterministic(
    std::span<const double> arrival_times, double service_time) {
  if (!(service_time > 0.0))
    return Error::invalid_argument("simulate_fifo: service_time must be > 0");
  return simulate_fifo(arrival_times, [service_time] { return service_time; });
}

}  // namespace fullweb::queueing
