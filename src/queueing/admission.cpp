#include "queueing/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "stats/descriptive.h"

namespace fullweb::queueing {

using support::Error;
using support::Result;

Result<std::vector<SessionRequest>> attribute_requests(
    std::span<const weblog::Request> requests,
    std::span<const weblog::Session> sessions) {
  // Per-client chronological session lists (sessions are sorted by start).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_client;
  for (std::uint32_t i = 0; i < sessions.size(); ++i)
    by_client[sessions[i].client].push_back(i);

  std::vector<SessionRequest> out;
  out.reserve(requests.size());
  std::unordered_map<std::uint32_t, std::size_t> cursor;
  double prev_time = requests.empty() ? 0.0 : requests.front().time;
  for (const auto& r : requests) {
    if (r.time < prev_time)
      return Error::invalid_argument("attribute_requests: requests not sorted");
    prev_time = r.time;
    auto it = by_client.find(r.client);
    if (it == by_client.end())
      return Error::invalid_argument(
          "attribute_requests: request from client with no sessions");
    const auto& list = it->second;
    auto& cur = cursor[r.client];
    while (cur + 1 < list.size() && sessions[list[cur + 1]].start <= r.time)
      ++cur;
    const weblog::Session& s = sessions[list[cur]];
    if (r.time < s.start || r.time > s.end)
      return Error::invalid_argument(
          "attribute_requests: request outside its session window");
    out.push_back({r.time, list[cur]});
  }
  return out;
}

Result<AdmissionOutcome> simulate_admission(
    std::span<const SessionRequest> requests,
    std::span<const weblog::Session> sessions, const AdmissionOptions& options,
    support::Rng& rng) {
  if (options.capacity_per_second == 0)
    return Error::invalid_argument("simulate_admission: zero capacity");

  std::vector<bool> aborted(sessions.size(), false);
  std::vector<bool> admitted(sessions.size(), false);

  AdmissionOutcome out;
  out.sessions = sessions.size();

  std::size_t second_load = 0;
  double current_second = -std::numeric_limits<double>::infinity();
  for (const auto& r : requests) {
    if (r.session >= sessions.size())
      return Error::invalid_argument("simulate_admission: bad session index");
    const double sec = std::floor(r.time);
    if (sec != current_second) {
      current_second = sec;
      second_load = 0;
    }
    if (aborted[r.session]) continue;

    const bool overloaded = second_load >= options.capacity_per_second;
    if (overloaded) {
      const bool reject =
          options.policy == AdmissionPolicy::kSessionBased
              ? !admitted[r.session]  // only new sessions are turned away
              : rng.uniform() < options.drop_probability;
      if (reject) {
        aborted[r.session] = true;
        ++out.requests_rejected;
        continue;
      }
    }
    admitted[r.session] = true;
    ++out.requests_served;
    ++second_load;
  }

  // Completion accounting, including the protected longest-decile metric.
  std::vector<double> lengths;
  lengths.reserve(sessions.size());
  for (const auto& s : sessions) lengths.push_back(s.length());
  std::sort(lengths.begin(), lengths.end());
  const double long_cut = lengths.empty()
                              ? 0.0
                              : stats::quantile_sorted(
                                    lengths, options.long_session_quantile);
  for (std::uint32_t i = 0; i < sessions.size(); ++i) {
    const bool is_long = sessions[i].length() >= long_cut;
    if (is_long) ++out.long_sessions;
    if (!aborted[i]) {
      ++out.completed;
      if (is_long) ++out.completed_long;
    }
  }
  return out;
}

}  // namespace fullweb::queueing
