// ServerProfile persistence: a stable, human-editable `key = value` text
// format so fitted workload models (synth/fit.h) can be stored, diffed,
// versioned, and replayed later — the artifact a capacity-planning team
// would actually keep instead of raw logs.
#pragma once

#include <iosfwd>
#include <string>

#include "support/result.h"
#include "synth/profile.h"

namespace fullweb::synth {

/// Serialize to the text format (stable key order, one `key = value` per
/// line, '#' comments allowed on read).
[[nodiscard]] std::string profile_to_text(const ServerProfile& profile);
void write_profile(std::ostream& os, const ServerProfile& profile);

/// Parse a profile. Unknown keys are an error (typo safety); missing keys
/// keep their ServerProfile defaults. Values must parse as numbers except
/// `name`.
[[nodiscard]] support::Result<ServerProfile> profile_from_text(
    const std::string& text);
[[nodiscard]] support::Result<ServerProfile> read_profile(std::istream& is);

/// Convenience file round trips.
[[nodiscard]] support::Status save_profile(const std::string& path,
                                           const ServerProfile& profile);
[[nodiscard]] support::Result<ServerProfile> load_profile(const std::string& path);

}  // namespace fullweb::synth
