// Per-server synthetic workload profiles.
//
// The paper's four raw logs (WVU, ClarkNet, CSEE, NASA-Pub2) are not
// distributable, so each server is modelled by a ServerProfile calibrated
// to its published statistics: weekly volumes from Table 1, intra-session
// tail indices from Tables 2-4 (Week rows), and the Hurst level implied by
// Figures 6/10 (degree of LRD grows with workload intensity). The generator
// (generator.h) turns a profile into a week of request records.
#pragma once

#include <string>
#include <vector>

namespace fullweb::synth {

/// Think-time (inter-request gap within a session) model.
///
/// Per-gap structure: a mixture of embedded-object gaps (exponential) and
/// page-reading pauses (lognormal). Per-session structure: every "human"
/// session draws a Pareto *tempo multiplier* applied to all its gaps —
/// slow readers make long sessions — which gives session LENGTH a heavy
/// tail whose index (scale_alpha, Table 2 targets) is decoupled from the
/// requests-per-session tail (Table 3 targets). Sessions with very many
/// requests are "crawlers" with uniformly fast gaps, reproducing the
/// paper's observation that the longest sessions in time are NOT the
/// sessions with the most requests (§5.2.2). Every gap is capped strictly
/// below the 30-minute threshold so generated sessions survive
/// re-sessionization intact.
struct ThinkTimeModel {
  double p_object = 0.6;        ///< probability of an embedded-object gap
  double object_mean = 0.4;     ///< exponential mean (seconds)
  double page_log_mu = 3.0;     ///< lognormal mu for page pauses
  double page_log_sigma = 1.0;
  double scale_alpha = 1.8;     ///< Pareto tail of the session tempo
                                ///< multiplier (Table 2 target)
  double crawler_requests = 300.0;  ///< sessions above this are crawlers
  double crawler_gap_mean = 0.5;    ///< exponential gap mean for crawlers
  double gap_cap = 1700.0;      ///< strictly below the 1800 s threshold
};

/// Per-request transfer-size model: lognormal body plus a Pareto tail
/// component (file-size tails are heavy, [2]); the tail index is chosen so
/// per-session byte totals reproduce the Table 4 alpha for the server.
/// Per-request transfer sizes: a lognormal body scaled by a per-SESSION
/// Pareto "content factor" — a session browsing the software-mirror corner
/// of a site transfers big files throughout. The shared factor correlates
/// sizes within a session, which is what puts the Table 4 tail index of
/// bytes-per-session directly under scale_alpha's control (per-request
/// heavy tails alone dilute into the session sum). File-size marginals stay
/// heavy-tailed as in [2].
struct ByteModel {
  double body_log_mu = 8.0;    ///< lognormal body (~3 KB median)
  double body_log_sigma = 1.3;
  double scale_alpha = 1.4;    ///< session content-factor tail (Table 4)
  double scale_k = 0.3;        ///< factor location; chosen for ~unit mean
  double scale_cap = 3.0e4;    ///< factor cap (bounds infinite-mean cases)
  double cap = 4.0e9;          ///< 4 GB per-request transfer cap
};

struct ServerProfile {
  std::string name;

  // --- volume (Table 1, one week, scale 1.0) ---
  double week_sessions = 1e5;     ///< sessions initiated per week
  double requests_mean = 12.0;    ///< mean requests per session

  // --- arrival-process shape (Figures 2, 6, 10) ---
  double hurst = 0.8;             ///< LRD intensity of the session-rate noise
  double rate_log_sigma = 0.4;    ///< sd of the log-intensity FGN modulation
  double diurnal_amplitude = 0.5; ///< 24 h day/night swing, 0..1
  double diurnal_phase = 0.0;     ///< radians; shifts the daily peak
  double trend_per_week = 0.05;   ///< relative linear drift over the week

  // --- intra-session tails (Tables 2-4, Week rows) ---
  double requests_alpha = 2.0;    ///< Pareto tail of requests/session
  /// Hard cap on requests per session (0 = uncapped). Used for very-low-
  /// volume servers where a single extreme Pareto draw would otherwise be
  /// a double-digit share of the weekly traffic and destabilize every
  /// whole-trace statistic; the cap sits far above the LLCD/Hill fit
  /// ranges, so the Table 3 tail index is unaffected.
  double requests_cap = 0.0;
  ThinkTimeModel think;
  ByteModel bytes;

  /// Default scale used by the bench drivers (WVU's 15.8M requests are
  /// scaled to ~1.6M so the full suite runs in minutes).
  double bench_scale = 1.0;

  // Calibrated instances of the paper's four servers.
  static ServerProfile wvu();
  static ServerProfile clarknet();
  static ServerProfile csee();
  static ServerProfile nasa_pub2();
  /// All four, sorted by weekly request volume descending (the ordering the
  /// paper uses in Figures 4/6/9/10).
  static std::vector<ServerProfile> all_four();
};

}  // namespace fullweb::synth
