// Synthetic Web workload generation.
//
// Construction (a Cox / M/G/infinity-style model):
//  1. A per-second session-arrival intensity is built from a linear trend,
//     a 24-hour sinusoid, and exp-transformed fractional Gaussian noise
//     (Hurst H from the profile). Session starts are Poisson within each
//     second given the intensity — so arrivals are Poisson at sub-second
//     scales but long-range dependent at scales of seconds and above,
//     exactly the structure reported for real traffic ([15], §4.2).
//  2. Each session draws a heavy-tailed number of requests and walks
//     through think-time gaps (object/page/reading-break mixture, capped
//     below the 30-minute threshold) and per-request transfer sizes
//     (lognormal body, Pareto tail).
//  3. The request stream is the superposition over sessions; heavy-tailed
//     session "ON periods" make it LRD as well ([28]).
//
// The generated ground-truth session table is returned alongside the
// request records so integration tests can verify the sessionizer recovers
// it exactly.
#pragma once

#include <vector>

#include "support/result.h"
#include "support/rng.h"
#include "synth/profile.h"
#include "weblog/dataset.h"
#include "weblog/entry.h"
#include "weblog/sessionizer.h"

namespace fullweb::synth {

struct GeneratorOptions {
  double scale = 1.0;            ///< multiply the profile's weekly volume
  double duration = 7.0 * 86400; ///< observation window (seconds)
  double start_time = 1073865600.0;  ///< 12-Jan-2004 00:00 UTC (Table 1)
  /// Probability a session reuses an idle client IP (exercises the
  /// sessionizer's grouping logic); reused clients are guaranteed at least
  /// two thresholds of inactivity so ground-truth sessions stay intact.
  double client_reuse_prob = 0.2;
  bool quantize_to_seconds = true;   ///< emulate 1-second log granularity
};

struct GeneratedWorkload {
  std::vector<weblog::Request> requests;      ///< sorted by time
  std::vector<weblog::Session> true_sessions; ///< ground truth, sorted by start
  double t0 = 0.0;
  double t1 = 0.0;
  std::size_t clients = 0;
};

/// Generate one server-week. Errors on nonsensical options (zero duration,
/// scale <= 0).
[[nodiscard]] support::Result<GeneratedWorkload> generate_workload(
    const ServerProfile& profile, const GeneratorOptions& options,
    support::Rng& rng);

/// Render the generated requests as CLF log entries (synthetic IPs, paths,
/// status codes) — the input format for the end-to-end parse pipeline.
[[nodiscard]] std::vector<weblog::LogEntry> to_log_entries(
    const GeneratedWorkload& workload, support::Rng& rng);

/// Convenience: generate and wrap in a Dataset (no text round-trip).
[[nodiscard]] support::Result<weblog::Dataset> generate_dataset(
    const ServerProfile& profile, const GeneratorOptions& options,
    support::Rng& rng);

}  // namespace fullweb::synth
