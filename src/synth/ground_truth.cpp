#include "synth/ground_truth.h"

#include <cmath>
#include <numbers>

#include "stats/distributions.h"
#include "timeseries/fgn.h"

namespace fullweb::synth {

support::Result<std::vector<double>> draw_fgn(const FgnTruth& truth,
                                              support::Rng& rng) {
  return timeseries::generate_fgn(truth.n, truth.hurst, truth.sigma, rng);
}

std::vector<double> draw_pareto(const ParetoTruth& truth, support::Rng& rng) {
  const stats::Pareto p(truth.alpha, truth.k);
  std::vector<double> xs(truth.n);
  for (auto& x : xs) x = p.sample(rng);
  return xs;
}

std::vector<double> draw_lognormal(const LognormalTruth& truth,
                                   support::Rng& rng) {
  const stats::Lognormal ln(truth.mu, truth.sigma);
  std::vector<double> xs(truth.n);
  for (auto& x : xs) x = ln.sample(rng);
  return xs;
}

std::vector<double> draw_poisson_arrivals(const PoissonArrivalsTruth& truth,
                                          support::Rng& rng) {
  std::vector<double> times;
  times.reserve(
      static_cast<std::size_t>((truth.t1 - truth.t0) * truth.rate * 1.1) + 16);
  double t = truth.t0;
  while (true) {
    t += -std::log(rng.uniform_pos()) / truth.rate;
    if (t >= truth.t1) break;
    times.push_back(t);
  }
  return times;
}

std::vector<double> draw_contaminated_arrivals(
    const ContaminatedArrivalsTruth& truth, support::Rng& rng) {
  const double span = truth.t1 - truth.t0;
  // Thinning (Lewis & Shedler): simulate at the peak rate, keep each event
  // with probability r(t)/r_max. The acceptance draw happens for every
  // candidate, so the variate count per candidate is fixed.
  const double r_max = truth.base_rate *
      (1.0 + std::max(0.0, truth.trend_fraction) +
       std::abs(truth.cycle_amplitude));
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(span * truth.base_rate * 1.2) + 16);
  double t = truth.t0;
  while (true) {
    t += -std::log(rng.uniform_pos()) / r_max;
    if (t >= truth.t1) break;
    const double u = (t - truth.t0) / span;
    const double rate = truth.base_rate *
        (1.0 + truth.trend_fraction * u +
         truth.cycle_amplitude *
             std::sin(2.0 * std::numbers::pi * u * span / truth.cycle_period));
    const double accept = rng.uniform();
    if (accept * r_max < rate) times.push_back(t);
  }
  return times;
}

std::vector<double> draw_stationary_series(const StationarySeriesTruth& truth,
                                           support::Rng& rng) {
  std::vector<double> xs(truth.n);
  if (truth.n == 0) return xs;
  const double phi = truth.ar1;
  const double innovation_sigma =
      truth.sigma * std::sqrt(std::max(0.0, 1.0 - phi * phi));
  xs[0] = truth.sigma * rng.normal();  // stationary marginal: no burn-in
  for (std::size_t t = 1; t < truth.n; ++t)
    xs[t] = phi * xs[t - 1] + innovation_sigma * rng.normal();
  return xs;
}

std::vector<double> draw_trend_diurnal_series(
    const TrendDiurnalSeriesTruth& truth, support::Rng& rng) {
  std::vector<double> xs(truth.n);
  if (truth.n == 0) return xs;
  const double denom = static_cast<double>(truth.n);
  for (std::size_t t = 0; t < truth.n; ++t) {
    const double u = static_cast<double>(t) / denom;
    xs[t] = truth.sigma *
                (rng.normal() + truth.trend_per_n * u +
                 truth.cycle_amplitude *
                     std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                              truth.cycle_period));
  }
  return xs;
}

}  // namespace fullweb::synth
