#include "synth/profile.h"

namespace fullweb::synth {

// Calibration notes (per profile):
//  * week_sessions and requests_mean reproduce Table 1 volumes
//    (requests = week_sessions * requests_mean; MB via the byte model,
//    whose body_log_mu is solved from the target mean bytes/request).
//  * requests_alpha comes from Table 3 Week; bytes.tail_alpha from Table 4
//    Week; think.scale_alpha (the per-session tempo-multiplier tail, which
//    drives session LENGTH) from Table 2 Week.
//  * hurst/rate_log_sigma set the arrival-process LRD level: the paper finds
//    the degree of self-similarity grows with workload intensity (WVU
//    highest, NASA-Pub2 barely above 0.5). rate_log_sigma also controls how
//    decisively the piecewise-Poisson tests reject on the busy servers
//    (§4.2 / §5.1.2).
//  * Pareto location parameters are solved from the target means:
//    k = mean * (alpha - 1) / alpha.

ServerProfile ServerProfile::wvu() {
  ServerProfile p;
  p.name = "WVU";
  p.week_sessions = 188213.0;
  p.requests_mean = 83.9;       // 15.79M requests / 188k sessions
  p.hurst = 0.88;
  p.rate_log_sigma = 0.80;
  p.diurnal_amplitude = 0.55;
  p.diurnal_phase = 0.0;
  p.trend_per_week = 0.08;
  p.requests_alpha = 2.15;      // Table 3
  // 90% object gaps (embedded resources), pages ~e^3.5 s; tempo tail 1.80.
  p.think = {0.90, 0.4, 3.0, 1.0, 1.80, 300.0, 0.5, 1700.0};   // Table 2: 1.80
  // mean bytes/request target: 34,485 MB / 15.79M = ~2,290 B.
  p.bytes = {6.891, 1.3, 1.45, 0.3103, 3.0e4, 4.0e9};          // Table 4: 1.45
  p.bench_scale = 0.10;
  return p;
}

ServerProfile ServerProfile::clarknet() {
  ServerProfile p;
  p.name = "ClarkNet";
  p.week_sessions = 139745.0;
  p.requests_mean = 11.84;
  p.hurst = 0.82;
  p.rate_log_sigma = 0.70;
  p.diurnal_amplitude = 0.50;
  p.diurnal_phase = 0.8;
  p.trend_per_week = 0.05;
  p.requests_alpha = 2.59;
  p.think = {0.55, 0.4, 3.4, 1.0, 1.72, 300.0, 0.5, 1700.0};
  // mean bytes/request target: ~8,330 B.
  p.bytes = {8.183, 1.3, 1.84, 0.4565, 3.0e4, 4.0e9};
  p.bench_scale = 0.50;
  return p;
}

ServerProfile ServerProfile::csee() {
  ServerProfile p;
  p.name = "CSEE";
  p.week_sessions = 34343.0;
  p.requests_mean = 11.55;
  p.hurst = 0.72;
  p.rate_log_sigma = 0.50;
  p.diurnal_amplitude = 0.50;
  p.diurnal_phase = 0.3;
  p.trend_per_week = 0.06;
  p.requests_alpha = 1.93;
  p.think = {0.55, 0.4, 3.4, 1.0, 2.33, 300.0, 0.5, 1700.0};
  // mean bytes/request target: ~25,600 B (infinite-mean factor, capped;
  // E[factor] ~ 0.995 with k = 0.05, cap 3e4).
  p.bytes = {9.310, 1.3, 0.95, 0.05, 3.0e4, 4.0e9};
  p.bench_scale = 1.0;
  return p;
}

ServerProfile ServerProfile::nasa_pub2() {
  ServerProfile p;
  p.name = "NASA-Pub2";
  p.week_sessions = 3723.0;
  p.requests_mean = 10.51;
  p.hurst = 0.58;
  p.rate_log_sigma = 0.35;
  // Amplitude tuned so the sparse SESSION series passes KPSS while the
  // request series (10x the events + sustained robot bursts) rejects —
  // the paper's NASA-Pub2 asymmetry.
  p.diurnal_amplitude = 0.32;
  p.diurnal_phase = 0.5;
  p.trend_per_week = 0.03;
  p.requests_alpha = 1.62;
  // Capped at 60 requests/session: with only 39k requests per week a
  // single unbounded Pareto(1.62) draw would be a double-digit share of
  // the whole trace and its burst would swamp every whole-trace statistic
  // (H estimates read 0.9+). The Table 3 LLCD/Hill fits read the tail over
  // roughly R in [10, 60], where the index is intact.
  p.requests_cap = 60.0;
  p.think = {0.55, 0.4, 3.4, 1.0, 2.29, 60.0, 0.3, 1700.0};
  // mean bytes/request target: ~7,950 B.
  p.bytes = {8.136, 1.3, 1.42, 0.2958, 3.0e4, 4.0e9};
  p.bench_scale = 1.0;
  return p;
}

std::vector<ServerProfile> ServerProfile::all_four() {
  return {wvu(), clarknet(), csee(), nasa_pub2()};
}

}  // namespace fullweb::synth
