#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <queue>

#include "stats/distributions.h"
#include "timeseries/fgn.h"

namespace fullweb::synth {

using support::Error;
using support::Result;

namespace {

/// Per-session tempo multiplier: unit-mean Pareto with the Table 2 tail
/// index — slow-tempo sessions are the heavy session-length tail.
double sample_tempo(const ThinkTimeModel& m, support::Rng& rng) {
  const double k = (m.scale_alpha - 1.0) / m.scale_alpha;  // unit mean
  return stats::Pareto(m.scale_alpha, k).sample(rng);
}

/// One inter-request gap. `tempo` is the session's multiplier, or a
/// negative value to mark a crawler session (fast constant-rate fetching).
double sample_gap(const ThinkTimeModel& m, double tempo, support::Rng& rng) {
  double gap;
  if (tempo < 0.0) {
    gap = -m.crawler_gap_mean * std::log(rng.uniform_pos());
  } else {
    const double base =
        rng.uniform() < m.p_object
            ? -m.object_mean * std::log(rng.uniform_pos())
            : std::exp(m.page_log_mu + m.page_log_sigma * rng.normal());
    gap = tempo * base;
  }
  return std::min(gap, m.gap_cap);
}

/// Per-session content factor (see ByteModel doc).
double sample_byte_factor(const ByteModel& m, support::Rng& rng) {
  const double v = stats::Pareto(m.scale_alpha, m.scale_k).sample(rng);
  return std::min(v, m.scale_cap);
}

double sample_bytes(const ByteModel& m, double factor, support::Rng& rng) {
  const double v =
      factor * std::exp(m.body_log_mu + m.body_log_sigma * rng.normal());
  return std::min(v, m.cap);
}

/// Idle-client pool entry: the client id and the time its last session
/// ended. A client may be reused once two thresholds of inactivity have
/// passed, guaranteeing the sessionizer never merges the two sessions.
struct IdleClient {
  std::uint32_t id;
  double last_end;
  bool operator>(const IdleClient& other) const noexcept {
    return last_end > other.last_end;
  }
};

}  // namespace

Result<GeneratedWorkload> generate_workload(const ServerProfile& profile,
                                            const GeneratorOptions& options,
                                            support::Rng& rng) {
  if (!(options.scale > 0.0))
    return Error::invalid_argument("generate_workload: scale must be > 0");
  if (!(options.duration >= 3600.0))
    return Error::invalid_argument("generate_workload: duration < 1 hour");

  const auto seconds = static_cast<std::size_t>(std::floor(options.duration));

  // ---- 1. per-second session-arrival intensity --------------------------
  auto fgn_r = timeseries::generate_fgn(seconds, profile.hurst, 1.0, rng);
  if (!fgn_r) return fgn_r.error();
  const std::vector<double>& g = fgn_r.value();

  std::vector<double> weight(seconds);
  const double sigma = profile.rate_log_sigma;
  const double lognormal_mean_correction = 0.5 * sigma * sigma;
  double weight_sum = 0.0;
  for (std::size_t t = 0; t < seconds; ++t) {
    const double frac = static_cast<double>(t) / static_cast<double>(seconds);
    const double trend = profile.trend_per_week * (frac - 0.5) *
                         (options.duration / (7.0 * 86400.0));
    const double diurnal =
        profile.diurnal_amplitude *
        std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 86400.0 +
                 profile.diurnal_phase);
    const double deterministic = std::max(0.05, 1.0 + trend + diurnal);
    const double stochastic = std::exp(sigma * g[t] - lognormal_mean_correction);
    weight[t] = deterministic * stochastic;
    weight_sum += weight[t];
  }
  const double target_sessions = profile.week_sessions * options.scale *
                                 (options.duration / (7.0 * 86400.0));
  const double base_rate = target_sessions / weight_sum;

  // ---- 2. sessions and their requests -----------------------------------
  GeneratedWorkload out;
  out.t0 = options.start_time;
  out.t1 = options.start_time + options.duration;
  out.requests.reserve(static_cast<std::size_t>(
      target_sessions * profile.requests_mean * 1.05));

  const double req_k =
      profile.requests_mean * (profile.requests_alpha - 1.0) / profile.requests_alpha;
  const stats::Pareto requests_dist(profile.requests_alpha, std::max(req_k, 0.5));

  std::priority_queue<IdleClient, std::vector<IdleClient>, std::greater<>> idle;
  std::uint32_t next_client = 0;
  const double reuse_margin = 2.0 * 1800.0;

  for (std::size_t t = 0; t < seconds; ++t) {
    const long long n = stats::poisson_sample(base_rate * weight[t], rng);
    for (long long s = 0; s < n; ++s) {
      const double start =
          options.start_time + static_cast<double>(t) + rng.uniform();

      // Client assignment: reuse an idle client when allowed and safe.
      std::uint32_t client;
      if (!idle.empty() && idle.top().last_end + reuse_margin <= start &&
          rng.uniform() < options.client_reuse_prob) {
        client = idle.top().id;
        idle.pop();
      } else {
        client = next_client++;
      }

      double want_draw = requests_dist.sample(rng);
      if (profile.requests_cap > 0.0)
        want_draw = std::min(want_draw, profile.requests_cap);
      const auto want = static_cast<std::uint64_t>(
          std::max<long long>(1, std::llround(want_draw)));
      const double tempo =
          static_cast<double>(want) > profile.think.crawler_requests
              ? -1.0  // crawler: fast constant-rate gaps
              : sample_tempo(profile.think, rng);
      const double byte_factor = sample_byte_factor(profile.bytes, rng);

      weblog::Session truth{client, 0.0, 0.0, 0, 0};
      double when = start;
      for (std::uint64_t i = 0; i < want && when < out.t1; ++i) {
        const double stamp =
            options.quantize_to_seconds ? std::floor(when) : when;
        const auto bytes = static_cast<std::uint64_t>(
            sample_bytes(profile.bytes, byte_factor, rng));
        // Status mix approximating a production access log: mostly 200s,
        // some not-modified revalidations, sporadic errors ([11]/[12]'s
        // error analysis found single-digit error percentages).
        const double u = rng.uniform();
        const std::uint16_t status = u < 0.90   ? 200
                                     : u < 0.955 ? 304
                                     : u < 0.99  ? 404
                                                 : 500;
        out.requests.push_back(weblog::Request{stamp, client, status, bytes});
        if (truth.requests == 0) truth.start = stamp;
        truth.end = stamp;
        truth.requests += 1;
        truth.bytes += bytes;
        when += sample_gap(profile.think, tempo, rng);
      }
      if (truth.requests > 0) {
        out.true_sessions.push_back(truth);
        idle.push(IdleClient{client, truth.end});
      }
    }
  }
  out.clients = next_client;

  std::sort(out.requests.begin(), out.requests.end(),
            [](const weblog::Request& a, const weblog::Request& b) {
              return a.time < b.time;
            });
  std::sort(out.true_sessions.begin(), out.true_sessions.end(),
            [](const weblog::Session& a, const weblog::Session& b) {
              return a.start < b.start;
            });
  return out;
}

std::vector<weblog::LogEntry> to_log_entries(const GeneratedWorkload& workload,
                                             support::Rng& rng) {
  std::vector<weblog::LogEntry> entries;
  entries.reserve(workload.requests.size());
  for (const auto& r : workload.requests) {
    weblog::LogEntry e;
    e.timestamp = r.time;
    // Synthetic dotted-quad from the interned id (10.0.0.0/8 space).
    char ip[24];
    std::snprintf(ip, sizeof ip, "10.%u.%u.%u", (r.client >> 16) & 0xFF,
                  (r.client >> 8) & 0xFF, r.client & 0xFF);
    e.client = ip;
    e.method = "GET";
    char path[48];
    std::snprintf(path, sizeof path, "/pages/p%llu.html",
                  static_cast<unsigned long long>(rng.below(40000)));
    e.path = path;
    e.protocol = "HTTP/1.0";
    e.status = r.status;
    e.bytes = r.bytes;
    entries.push_back(std::move(e));
  }
  return entries;
}

Result<weblog::Dataset> generate_dataset(const ServerProfile& profile,
                                         const GeneratorOptions& options,
                                         support::Rng& rng) {
  auto workload = generate_workload(profile, options, rng);
  if (!workload) return workload.error();
  return weblog::Dataset::from_requests(profile.name,
                                        std::move(workload.value().requests));
}

}  // namespace fullweb::synth
