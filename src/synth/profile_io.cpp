#include "synth/profile_io.h"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "support/strings.h"

namespace fullweb::synth {

using support::Error;
using support::Result;
using support::Status;

namespace {

/// Field registry: one place defines serialization order, names, and
/// accessors for both directions.
struct Field {
  const char* key;
  std::function<double(const ServerProfile&)> get;
  std::function<void(ServerProfile&, double)> set;
};

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      {"week_sessions", [](const ServerProfile& p) { return p.week_sessions; },
       [](ServerProfile& p, double v) { p.week_sessions = v; }},
      {"requests_mean", [](const ServerProfile& p) { return p.requests_mean; },
       [](ServerProfile& p, double v) { p.requests_mean = v; }},
      {"hurst", [](const ServerProfile& p) { return p.hurst; },
       [](ServerProfile& p, double v) { p.hurst = v; }},
      {"rate_log_sigma",
       [](const ServerProfile& p) { return p.rate_log_sigma; },
       [](ServerProfile& p, double v) { p.rate_log_sigma = v; }},
      {"diurnal_amplitude",
       [](const ServerProfile& p) { return p.diurnal_amplitude; },
       [](ServerProfile& p, double v) { p.diurnal_amplitude = v; }},
      {"diurnal_phase", [](const ServerProfile& p) { return p.diurnal_phase; },
       [](ServerProfile& p, double v) { p.diurnal_phase = v; }},
      {"trend_per_week",
       [](const ServerProfile& p) { return p.trend_per_week; },
       [](ServerProfile& p, double v) { p.trend_per_week = v; }},
      {"requests_alpha",
       [](const ServerProfile& p) { return p.requests_alpha; },
       [](ServerProfile& p, double v) { p.requests_alpha = v; }},
      {"requests_cap", [](const ServerProfile& p) { return p.requests_cap; },
       [](ServerProfile& p, double v) { p.requests_cap = v; }},
      {"think.p_object", [](const ServerProfile& p) { return p.think.p_object; },
       [](ServerProfile& p, double v) { p.think.p_object = v; }},
      {"think.object_mean",
       [](const ServerProfile& p) { return p.think.object_mean; },
       [](ServerProfile& p, double v) { p.think.object_mean = v; }},
      {"think.page_log_mu",
       [](const ServerProfile& p) { return p.think.page_log_mu; },
       [](ServerProfile& p, double v) { p.think.page_log_mu = v; }},
      {"think.page_log_sigma",
       [](const ServerProfile& p) { return p.think.page_log_sigma; },
       [](ServerProfile& p, double v) { p.think.page_log_sigma = v; }},
      {"think.scale_alpha",
       [](const ServerProfile& p) { return p.think.scale_alpha; },
       [](ServerProfile& p, double v) { p.think.scale_alpha = v; }},
      {"think.crawler_requests",
       [](const ServerProfile& p) { return p.think.crawler_requests; },
       [](ServerProfile& p, double v) { p.think.crawler_requests = v; }},
      {"think.crawler_gap_mean",
       [](const ServerProfile& p) { return p.think.crawler_gap_mean; },
       [](ServerProfile& p, double v) { p.think.crawler_gap_mean = v; }},
      {"think.gap_cap", [](const ServerProfile& p) { return p.think.gap_cap; },
       [](ServerProfile& p, double v) { p.think.gap_cap = v; }},
      {"bytes.body_log_mu",
       [](const ServerProfile& p) { return p.bytes.body_log_mu; },
       [](ServerProfile& p, double v) { p.bytes.body_log_mu = v; }},
      {"bytes.body_log_sigma",
       [](const ServerProfile& p) { return p.bytes.body_log_sigma; },
       [](ServerProfile& p, double v) { p.bytes.body_log_sigma = v; }},
      {"bytes.scale_alpha",
       [](const ServerProfile& p) { return p.bytes.scale_alpha; },
       [](ServerProfile& p, double v) { p.bytes.scale_alpha = v; }},
      {"bytes.scale_k", [](const ServerProfile& p) { return p.bytes.scale_k; },
       [](ServerProfile& p, double v) { p.bytes.scale_k = v; }},
      {"bytes.scale_cap",
       [](const ServerProfile& p) { return p.bytes.scale_cap; },
       [](ServerProfile& p, double v) { p.bytes.scale_cap = v; }},
      {"bytes.cap", [](const ServerProfile& p) { return p.bytes.cap; },
       [](ServerProfile& p, double v) { p.bytes.cap = v; }},
      {"bench_scale", [](const ServerProfile& p) { return p.bench_scale; },
       [](ServerProfile& p, double v) { p.bench_scale = v; }},
  };
  return kFields;
}

}  // namespace

void write_profile(std::ostream& os, const ServerProfile& profile) {
  os << "# FULL-Web generative workload profile\n";
  os << "name = " << profile.name << '\n';
  for (const auto& f : fields()) {
    os << f.key << " = " << support::format_sig(f.get(profile), 10) << '\n';
  }
}

std::string profile_to_text(const ServerProfile& profile) {
  std::ostringstream os;
  write_profile(os, profile);
  return os.str();
}

Result<ServerProfile> read_profile(std::istream& is) {
  std::map<std::string, const Field*> by_key;
  for (const auto& f : fields()) by_key[f.key] = &f;

  ServerProfile profile;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = support::trim(line);
    if (trimmed.empty()) continue;

    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos)
      return Error::parse("profile line " + std::to_string(line_no) +
                          ": expected 'key = value'");
    const std::string key{support::trim(trimmed.substr(0, eq))};
    const std::string value{support::trim(trimmed.substr(eq + 1))};

    if (key == "name") {
      profile.name = value;
      continue;
    }
    auto it = by_key.find(key);
    if (it == by_key.end())
      return Error::parse("profile line " + std::to_string(line_no) +
                          ": unknown key '" + key + "'");
    const auto parsed = support::parse_double(value);
    if (!parsed)
      return Error::parse("profile line " + std::to_string(line_no) +
                          ": bad number '" + value + "'");
    it->second->set(profile, *parsed);
  }
  return profile;
}

Result<ServerProfile> profile_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_profile(is);
}

Status save_profile(const std::string& path, const ServerProfile& profile) {
  std::ofstream os(path);
  if (!os) return Error::invalid_argument("save_profile: cannot open " + path);
  write_profile(os, profile);
  return os.good() ? Status{} : Status{Error::numeric("save_profile: write failed")};
}

Result<ServerProfile> load_profile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Error::invalid_argument("load_profile: cannot open " + path);
  return read_profile(is);
}

}  // namespace fullweb::synth
