// Ground-truth process generators for the statistical self-validation
// harness (src/validation).
//
// Each generator draws from a process whose data-generating parameters are
// *declared up front* in an options struct, so a Monte Carlo calibration run
// can compare what an estimator recovered against what was actually put in:
// fGn with known H for the Hurst suite, Pareto/lognormal with known
// alpha/(mu, sigma) for the tail estimators and the curvature
// discrimination, homogeneous Poisson arrivals for the Paxson-Floyd size
// check, and trend+diurnal contaminated variants for the power checks that
// mirror the paper's §4.1 detrending argument.
//
// All generators take an explicit support::Rng, draw a deterministic number
// of variates for fixed parameters, and are pure functions of (parameters,
// rng state) — the properties the replicate runner relies on for
// bit-identical fan-out across thread counts.
#pragma once

#include <cstddef>
#include <vector>

#include "support/result.h"
#include "support/rng.h"

namespace fullweb::synth {

// ---------------------------------------------------------------------------
// Long-range dependent series (Hurst recovery).

struct FgnTruth {
  std::size_t n = 8192;
  double hurst = 0.7;   ///< the parameter every estimator must recover
  double sigma = 1.0;
};

/// Exact fGn via the cached Davies-Harte circulant generator
/// (timeseries::generate_fgn). Errors only on invalid parameters.
[[nodiscard]] support::Result<std::vector<double>> draw_fgn(
    const FgnTruth& truth, support::Rng& rng);

// ---------------------------------------------------------------------------
// Heavy-tailed samples (tail recovery / curvature discrimination).

struct ParetoTruth {
  std::size_t n = 20000;
  double alpha = 1.5;   ///< tail index to recover
  double k = 1.0;       ///< location (minimum)
};

[[nodiscard]] std::vector<double> draw_pareto(const ParetoTruth& truth,
                                              support::Rng& rng);

struct LognormalTruth {
  std::size_t n = 20000;
  double mu = 0.0;
  double sigma = 1.5;   ///< curvature grows with sigma; no true power tail
};

[[nodiscard]] std::vector<double> draw_lognormal(const LognormalTruth& truth,
                                                 support::Rng& rng);

// ---------------------------------------------------------------------------
// Arrival processes (Poisson battery size/power).

struct PoissonArrivalsTruth {
  double t0 = 0.0;
  double t1 = 4.0 * 3600.0;  ///< the paper's 4-hour analysis window
  double rate = 1.0;         ///< events per second
};

/// Homogeneous Poisson arrival times in [t0, t1), sorted ascending — the
/// null the Paxson-Floyd battery must NOT reject (size check).
[[nodiscard]] std::vector<double> draw_poisson_arrivals(
    const PoissonArrivalsTruth& truth, support::Rng& rng);

struct ContaminatedArrivalsTruth {
  double t0 = 0.0;
  double t1 = 4.0 * 3600.0;
  double base_rate = 1.0;       ///< mean rate, events per second
  double trend_fraction = 1.0;  ///< rate climbs by this fraction of base over
                                ///< the window (the paper's "slight trend",
                                ///< exaggerated to a detectable level)
  double cycle_amplitude = 0.9; ///< sinusoidal modulation, fraction of base
  /// Seconds per cycle. The piecewise battery tests each sub-interval
  /// separately, so rate variation slower than the sub-interval length is
  /// (by design) invisible to it; the power check uses a cycle matching the
  /// 10-minute sub-interval so the modulation lands *inside* each interval.
  double cycle_period = 600.0;
};

/// Inhomogeneous Poisson arrivals with rate
///   r(t) = base * (1 + trend_fraction * u + cycle_amplitude * sin(2 pi u T / P))
/// where u = (t - t0)/(t1 - t0), drawn by thinning — inter-arrivals are
/// neither exponential nor independent within sub-intervals, so the battery
/// should reject (power check).
[[nodiscard]] std::vector<double> draw_contaminated_arrivals(
    const ContaminatedArrivalsTruth& truth, support::Rng& rng);

// ---------------------------------------------------------------------------
// Level-stationary and contaminated series (KPSS size/power).

struct StationarySeriesTruth {
  std::size_t n = 2048;
  double ar1 = 0.0;     ///< AR(1) coefficient; 0 = white noise
  double sigma = 1.0;
};

/// Stationary Gaussian AR(1) around level 0: the KPSS null (size check).
/// The first sample is drawn from the stationary marginal so there is no
/// burn-in transient.
[[nodiscard]] std::vector<double> draw_stationary_series(
    const StationarySeriesTruth& truth, support::Rng& rng);

struct TrendDiurnalSeriesTruth {
  std::size_t n = 2048;
  double sigma = 1.0;
  double trend_per_n = 4.0;     ///< total drift over the window, in sigmas
  double cycle_amplitude = 2.0; ///< sinusoid amplitude, in sigmas
  double cycle_period = 256.0;  ///< samples per cycle
};

/// White noise plus linear trend plus sinusoid — the §4.1 non-stationarity
/// the KPSS test must detect (power check) and whose removal restores the
/// null.
[[nodiscard]] std::vector<double> draw_trend_diurnal_series(
    const TrendDiurnalSeriesTruth& truth, support::Rng& rng);

}  // namespace fullweb::synth
