// Fitting a FULL-Web generative model to observed data — the inverse of
// generation, and the paper's stated purpose ("a fundamental step necessary
// for performance modelling and prediction, capacity planning, and
// admission control").
//
// Given a Dataset (parsed real logs or synthetic traffic), estimate the
// ServerProfile parameters that the generator needs: volumes, arrival-rate
// shape (trend, diurnal amplitude, Hurst exponent), the requests-per-session
// tail, the session-length tempo tail, and the byte model. A fitted profile
// can be fed straight back into generate_workload() to produce statistically
// faithful replacement traffic — workload cloning without shipping logs.
#pragma once

#include "support/result.h"
#include "synth/profile.h"
#include "weblog/dataset.h"

namespace fullweb::synth {

/// Diagnostics accompanying a fitted profile: measured quantities that are
/// not profile parameters but that replay validation should reproduce.
struct FitDiagnostics {
  double mean_session_length = 0.0;
  double mean_bytes_per_request = 0.0;
  double request_hurst = 0.5;      ///< Whittle on stationarized requests/s
  double session_length_alpha = 0.0;  ///< LLCD on session lengths
  double requests_alpha = 0.0;        ///< LLCD on requests/session
  double bytes_alpha = 0.0;           ///< LLCD on bytes/session
};

struct FittedProfile {
  ServerProfile profile;
  FitDiagnostics diagnostics;
};

struct FitOptions {
  /// Period search bounds for the diurnal component (seconds).
  std::size_t min_period = 3600;
  std::size_t max_period = 2 * 86400;
};

/// Estimate a ServerProfile from data. Errors when the dataset is too small
/// to support the estimates (needs at least ~1000 sessions and a day of
/// traffic).
[[nodiscard]] support::Result<FittedProfile> fit_profile(
    const weblog::Dataset& dataset, const FitOptions& options = {});

}  // namespace fullweb::synth
