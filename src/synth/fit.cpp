#include "synth/fit.h"

#include <algorithm>
#include <cmath>

#include "core/stationary.h"
#include "lrd/whittle.h"
#include "stats/descriptive.h"
#include "stats/regression.h"
#include "tail/llcd.h"
#include "timeseries/seasonal.h"
#include "timeseries/series.h"

namespace fullweb::synth {

using support::Error;
using support::Result;

namespace {

/// Hour-of-day profile of session starts, averaged across days.
std::vector<double> hour_of_day_profile(const weblog::Dataset& ds) {
  std::vector<double> sum(24, 0.0);
  for (const auto& s : ds.sessions()) {
    const double tod = std::fmod(s.start - ds.t0(), 86400.0);
    sum[static_cast<std::size_t>(tod / 3600.0) % 24] += 1.0;
  }
  const double total_days = (ds.t1() - ds.t0()) / 86400.0;
  for (auto& v : sum) v /= std::max(1.0, total_days);
  return sum;
}

double clamp(double v, double lo, double hi) { return std::min(hi, std::max(lo, v)); }

}  // namespace

Result<FittedProfile> fit_profile(const weblog::Dataset& dataset,
                                  const FitOptions& options) {
  const double duration = dataset.t1() - dataset.t0();
  if (duration < 86400.0)
    return Error::insufficient_data("fit_profile: need at least one day");
  if (dataset.sessions().size() < 1000)
    return Error::insufficient_data("fit_profile: need at least 1000 sessions");

  FittedProfile out;
  ServerProfile& p = out.profile;
  p.name = dataset.name() + "-fitted";

  // ---- volumes -----------------------------------------------------------
  const double week_factor = 7.0 * 86400.0 / duration;
  p.week_sessions = static_cast<double>(dataset.sessions().size()) * week_factor;
  p.requests_mean = static_cast<double>(dataset.requests().size()) /
                    static_cast<double>(dataset.sessions().size());

  // ---- intra-session tails ------------------------------------------------
  const auto req_counts = dataset.session_request_counts();
  if (auto fit = tail::llcd_fit(req_counts); fit.ok()) {
    out.diagnostics.requests_alpha = fit.value().alpha;
    p.requests_alpha = clamp(fit.value().alpha, 1.05, 4.0);
  }
  const auto lengths = dataset.session_lengths();
  if (auto fit = tail::llcd_fit(lengths); fit.ok()) {
    out.diagnostics.session_length_alpha = fit.value().alpha;
    p.think.scale_alpha = clamp(fit.value().alpha, 1.05, 4.0);
  }
  const auto bytes = dataset.session_byte_counts();
  if (auto fit = tail::llcd_fit(bytes); fit.ok()) {
    out.diagnostics.bytes_alpha = fit.value().alpha;
    p.bytes.scale_alpha = clamp(fit.value().alpha, 0.55, 4.0);
    p.bytes.scale_k = p.bytes.scale_alpha > 1.0
                          ? (p.bytes.scale_alpha - 1.0) / p.bytes.scale_alpha
                          : 0.05;
  }

  // ---- byte body: match the mean bytes per request ------------------------
  out.diagnostics.mean_bytes_per_request =
      static_cast<double>(dataset.total_bytes()) /
      static_cast<double>(dataset.requests().size());
  {
    const double sigma = p.bytes.body_log_sigma;
    // E[factor] ~ 1 by construction of scale_k (approximation for the
    // capped infinite-mean case is within a few percent).
    p.bytes.body_log_mu =
        std::log(std::max(1.0, out.diagnostics.mean_bytes_per_request)) -
        0.5 * sigma * sigma;
  }

  // ---- think-time level: match the mean session length --------------------
  std::vector<double> positive_lengths;
  for (double v : lengths)
    if (v > 0.0) positive_lengths.push_back(v);
  if (!positive_lengths.empty() && p.requests_mean > 1.5) {
    out.diagnostics.mean_session_length = stats::mean(positive_lengths);
    const double mean_gap =
        out.diagnostics.mean_session_length / (p.requests_mean - 1.0);
    // Fix the object-gap share and solve the page-pause lognormal mu:
    // mean_gap = p_obj * object_mean + (1 - p_obj) * exp(mu + sigma^2 / 2).
    const double page_part =
        (mean_gap - p.think.p_object * p.think.object_mean) /
        (1.0 - p.think.p_object);
    if (page_part > 1.0) {
      p.think.page_log_mu = std::log(page_part) -
                            0.5 * p.think.page_log_sigma * p.think.page_log_sigma;
    }
  }

  // ---- arrival-rate shape --------------------------------------------------
  // Diurnal amplitude from the hour-of-day session profile.
  {
    const auto profile = hour_of_day_profile(dataset);
    const double hi = *std::max_element(profile.begin(), profile.end());
    const double lo = *std::min_element(profile.begin(), profile.end());
    if (hi + lo > 0.0)
      p.diurnal_amplitude = clamp((hi - lo) / (hi + lo), 0.0, 0.95);
  }

  // Linear trend of hourly session counts, expressed per week.
  {
    const auto hourly = timeseries::counts_per_bin(
        dataset.session_start_times(), dataset.t0(), dataset.t1(), 3600.0);
    if (hourly.size() >= 24) {
      std::vector<double> t(hourly.size());
      for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<double>(i);
      const auto fit = stats::ols(t, hourly);
      const double m = stats::mean(hourly);
      if (m > 0.0) {
        p.trend_per_week = clamp(
            fit.slope * (7.0 * 24.0) / m, -0.5, 0.5);
      }
    }
  }

  // Hurst exponent of the request arrival process (stationarized).
  {
    core::StationaryOptions sopts;
    sopts.min_period = options.min_period;
    sopts.max_period = options.max_period;
    auto st = core::make_stationary(dataset.requests_per_second(), sopts);
    if (st.ok()) {
      if (auto w = lrd::whittle_hurst(st.value().series); w.ok()) {
        out.diagnostics.request_hurst = w.value().estimate.h;
        p.hurst = clamp(w.value().estimate.h, 0.51, 0.97);
      }
    }
  }

  // Rate-modulation strength from the over-Poisson variance of hourly
  // session counts (after removing the hour-of-day means). The FGN
  // aggregated to hour bins has variance ~ 3600^{2H-2} of the per-second
  // sigma^2; invert that to recover the per-second log-sigma.
  {
    const auto hourly = timeseries::counts_per_bin(
        dataset.session_start_times(), dataset.t0(), dataset.t1(), 3600.0);
    if (hourly.size() >= 48) {
      const auto deseason = timeseries::remove_seasonal_means(hourly, 24);
      const double m = stats::mean(deseason);
      const double v = stats::variance(deseason);
      if (m > 1.0 && v > m) {
        const double excess = (v - m) / (m * m);  // (e^{sig_h^2} - 1)
        const double sig_h2 = std::log1p(clamp(excess, 0.0, 10.0));
        const double h = p.hurst;
        const double shrink = std::pow(3600.0, 2.0 * h - 2.0);
        p.rate_log_sigma = clamp(std::sqrt(sig_h2 / shrink), 0.05, 1.5);
      } else {
        p.rate_log_sigma = 0.05;  // indistinguishable from Poisson
      }
    }
  }
  return out;
}

}  // namespace fullweb::synth
