#include "stats/kpss.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/regression.h"

namespace fullweb::stats {

using support::Error;
using support::Result;

namespace {

// Published asymptotic critical values (Kwiatkowski et al. 1992, Table 1)
// at upper-tail levels 10%, 5%, 2.5%, 1%.
constexpr double kLevels[] = {0.10, 0.05, 0.025, 0.01};
constexpr double kCritLevel[] = {0.347, 0.463, 0.574, 0.739};
constexpr double kCritTrend[] = {0.119, 0.146, 0.176, 0.216};

/// Piecewise-linear interpolation of the p-value from the critical-value
/// table; clamped to [0.01, 0.10] as in common statistical packages.
double interpolate_p(double stat, const double* crit) {
  if (stat <= crit[0]) return 0.10;
  if (stat >= crit[3]) return 0.01;
  for (int i = 0; i < 3; ++i) {
    if (stat < crit[i + 1]) {
      const double frac = (stat - crit[i]) / (crit[i + 1] - crit[i]);
      return kLevels[i] + frac * (kLevels[i + 1] - kLevels[i]);
    }
  }
  return 0.01;
}

}  // namespace

Result<KpssResult> kpss_test(std::span<const double> xs, KpssNull null_hypothesis,
                             long lag) {
  const std::size_t n = xs.size();
  if (n < 10) return Error::insufficient_data("kpss_test: need n >= 10");

  // Residuals under the null: demean (level) or detrend (trend).
  std::vector<double> e(n);
  if (null_hypothesis == KpssNull::kLevel) {
    double m = 0.0;
    for (double x : xs) m += x;
    m /= static_cast<double>(n);
    for (std::size_t t = 0; t < n; ++t) e[t] = xs[t] - m;
  } else {
    std::vector<double> tt(n);
    for (std::size_t t = 0; t < n; ++t) tt[t] = static_cast<double>(t);
    const LinearFit fit = ols(tt, xs);
    for (std::size_t t = 0; t < n; ++t) e[t] = xs[t] - fit.predict(tt[t]);
  }

  // Partial-sum statistic numerator: n^-2 * sum_t S_t^2.
  double sum_s2 = 0.0;
  double s_t = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    s_t += e[t];
    sum_s2 += s_t * s_t;
  }
  const double nn = static_cast<double>(n);
  const double numerator = sum_s2 / (nn * nn);

  // Newey-West long-run variance with Bartlett kernel.
  std::size_t l;
  if (lag < 0) {
    l = static_cast<std::size_t>(std::floor(12.0 * std::pow(nn / 100.0, 0.25)));
  } else {
    l = static_cast<std::size_t>(lag);
  }
  l = std::min(l, n - 1);

  double s2 = 0.0;
  for (std::size_t t = 0; t < n; ++t) s2 += e[t] * e[t];
  s2 /= nn;
  for (std::size_t s = 1; s <= l; ++s) {
    const double w = 1.0 - static_cast<double>(s) / static_cast<double>(l + 1);
    double gamma = 0.0;
    for (std::size_t t = s; t < n; ++t) gamma += e[t] * e[t - s];
    s2 += 2.0 * w * gamma / nn;
  }
  if (!(s2 > 0.0))
    return Error::numeric("kpss_test: zero long-run variance (constant series)");

  KpssResult r;
  r.statistic = numerator / s2;
  r.lag = l;
  r.null_hypothesis = null_hypothesis;
  const double* crit =
      null_hypothesis == KpssNull::kLevel ? kCritLevel : kCritTrend;
  r.critical_5pct = crit[1];
  r.p_value = interpolate_p(r.statistic, crit);
  return r;
}

}  // namespace fullweb::stats
