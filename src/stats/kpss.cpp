#include "stats/kpss.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/prefix_moments.h"
#include "stats/regression.h"

namespace fullweb::stats {

using support::Error;
using support::Result;

namespace {

// Published asymptotic critical values (Kwiatkowski et al. 1992, Table 1)
// at upper-tail levels 10%, 5%, 2.5%, 1%.
constexpr double kLevels[] = {0.10, 0.05, 0.025, 0.01};
constexpr double kCritLevel[] = {0.347, 0.463, 0.574, 0.739};
constexpr double kCritTrend[] = {0.119, 0.146, 0.176, 0.216};

/// Piecewise-linear interpolation of the p-value from the critical-value
/// table; clamped to [0.01, 0.10] as in common statistical packages.
double interpolate_p(double stat, const double* crit) {
  if (stat <= crit[0]) return 0.10;
  if (stat >= crit[3]) return 0.01;
  for (int i = 0; i < 3; ++i) {
    if (stat < crit[i + 1]) {
      const double frac = (stat - crit[i]) / (crit[i + 1] - crit[i]);
      return kLevels[i] + frac * (kLevels[i + 1] - kLevels[i]);
    }
  }
  return 0.01;
}

/// Four-lane sum of squares of xs (the partial-sum numerator kernel).
double sum_sq4(std::span<const double> xs) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t t = 0;
  const double* p = xs.data();
  for (; t + 4 <= xs.size(); t += 4) {
    s0 += p[t] * p[t];
    s1 += p[t + 1] * p[t + 1];
    s2 += p[t + 2] * p[t + 2];
    s3 += p[t + 3] * p[t + 3];
  }
  for (; t < xs.size(); ++t) s0 += p[t] * p[t];
  return (s0 + s2) + (s1 + s3);
}

/// Four-lane lagged dot product sum_t e[t] * e[t - s].
double lagged_dot4(std::span<const double> e, std::size_t s) noexcept {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const double* p = e.data();
  const std::size_t n = e.size();
  std::size_t t = s;
  for (; t + 4 <= n; t += 4) {
    a0 += p[t] * p[t - s];
    a1 += p[t + 1] * p[t + 1 - s];
    a2 += p[t + 2] * p[t + 2 - s];
    a3 += p[t + 3] * p[t + 3 - s];
  }
  for (; t < n; ++t) a0 += p[t] * p[t - s];
  return (a0 + a2) + (a1 + a3);
}

}  // namespace

Result<KpssResult> kpss_test(std::span<const double> xs, KpssNull null_hypothesis,
                             long lag) {
  const std::size_t n = xs.size();
  if (n < 10) return Error::insufficient_data("kpss_test: need n >= 10");

  // Residuals under the null: demean (level) or detrend (trend). The level
  // path demeans against the compensated mean; either way the residuals'
  // partial sums S_t come from the PrefixMoments centered cumsum (the
  // detrended residuals have ~zero mean, so centering is a no-op there).
  std::vector<double> e(n);
  if (null_hypothesis == KpssNull::kLevel) {
    const double m = compensated_mean(xs);
    for (std::size_t t = 0; t < n; ++t) e[t] = xs[t] - m;
  } else {
    std::vector<double> tt(n);
    for (std::size_t t = 0; t < n; ++t) tt[t] = static_cast<double>(t);
    const LinearFit fit = ols(tt, xs);
    for (std::size_t t = 0; t < n; ++t) e[t] = xs[t] - fit.predict(tt[t]);
  }
  const PrefixMoments pm(e);

  // Partial-sum statistic numerator: n^-2 * sum_t S_t^2, with
  // S_t = sum_{u <= t} e_u = centered_prefix(t + 1) + (t + 1) * mean(e);
  // mean(e) is ~0 by construction, so use the centered prefix directly
  // (each partial sum is compensated instead of drifting).
  const double sum_s2 = sum_sq4(pm.centered_cumsum().subspan(1));
  const double nn = static_cast<double>(n);
  const double numerator = sum_s2 / (nn * nn);

  // Newey-West long-run variance with Bartlett kernel.
  std::size_t l;
  if (lag < 0) {
    l = static_cast<std::size_t>(std::floor(12.0 * std::pow(nn / 100.0, 0.25)));
  } else {
    l = static_cast<std::size_t>(lag);
  }
  l = std::min(l, n - 1);

  double s2 = pm.block_sum_sq_dev(0, n) / nn;
  for (std::size_t s = 1; s <= l; ++s) {
    const double w = 1.0 - static_cast<double>(s) / static_cast<double>(l + 1);
    s2 += 2.0 * w * lagged_dot4(e, s) / nn;
  }
  if (!(s2 > 0.0))
    return Error::numeric("kpss_test: zero long-run variance (constant series)");

  KpssResult r;
  r.statistic = numerator / s2;
  r.lag = l;
  r.null_hypothesis = null_hypothesis;
  const double* crit =
      null_hypothesis == KpssNull::kLevel ? kCritLevel : kCritTrend;
  r.critical_5pct = crit[1];
  r.p_value = interpolate_p(r.statistic, crit);
  return r;
}

}  // namespace fullweb::stats
