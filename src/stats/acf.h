// Sample autocorrelation function.
//
// The paper's Figures 3 and 5 plot the ACF of the requests-per-second series
// before and after removing trend and periodicity; the slow (non-summable)
// decay is the visual signature of long-range dependence. The Poisson test
// battery (§4.2) also needs lag-1 autocorrelations of inter-arrival times.
#pragma once

#include <span>
#include <vector>

namespace fullweb::stats {

/// Sample autocorrelation r(k) for k = 0..max_lag (r(0) == 1).
/// Uses the biased estimator r(k) = c(k)/c(0) with
/// c(k) = (1/n) * sum_{t} (x_t - xbar)(x_{t+k} - xbar), the standard choice
/// that guarantees a positive semi-definite sequence.
/// Computed via FFT in O(n log n); returns a vector of max_lag + 1 values.
/// A constant series (zero variance) returns r(0)=1 and r(k)=0 for k>0.
[[nodiscard]] std::vector<double> acf(std::span<const double> xs,
                                      std::size_t max_lag);

/// Direct O(n) lag-k autocorrelation (no FFT); exact same estimator.
[[nodiscard]] double autocorrelation_at(std::span<const double> xs,
                                        std::size_t lag) noexcept;

/// Sum of |r(k)| for k = 1..max_lag: a finite-sample proxy for the
/// non-summability criterion used when comparing raw vs detrended ACFs.
[[nodiscard]] double acf_abs_sum(std::span<const double> xs, std::size_t max_lag);

}  // namespace fullweb::stats
