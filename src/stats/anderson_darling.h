// Anderson-Darling goodness-of-fit test for exponentiality.
//
// The Poisson-arrival battery (§4.2) tests whether inter-arrival times in a
// constant-rate interval are exponential, using the A² statistic with the
// rate estimated from the sample ("case 2" in Stephens' classification). The
// paper rejects when the modified statistic A²(1 + 0.6/n) exceeds the 5%
// critical value 1.341. Reference: M. A. Stephens, "EDF statistics for
// goodness of fit and some comparisons", JASA 69 (1974).
#pragma once

#include <span>

#include "support/result.h"

namespace fullweb::stats {

struct AndersonDarlingResult {
  double a_squared = 0.0;        ///< raw A² statistic
  double modified = 0.0;         ///< A²(1 + 0.6/n), the tabulated form
  double lambda_hat = 0.0;       ///< MLE rate used, 1/mean
  std::size_t n = 0;
  double critical_5pct = 1.341;  ///< Stephens, exponential null, unknown rate

  /// True if exponentiality is NOT rejected at the 5% level.
  [[nodiscard]] bool exponential_at_5pct() const noexcept {
    return modified < critical_5pct;
  }
};

/// Critical value of the modified statistic for significance levels
/// 0.15, 0.10, 0.05, 0.025, 0.01 (throws on other levels).
[[nodiscard]] double ad_exponential_critical(double level);

/// A² test of H0: xs ~ Exponential(lambda) with lambda = 1/sample mean.
/// Requires n >= 5 and strictly positive samples (zeros are nudged to the
/// smallest positive representable spacing by the caller if needed).
[[nodiscard]] support::Result<AndersonDarlingResult> anderson_darling_exponential(
    std::span<const double> xs);

}  // namespace fullweb::stats
