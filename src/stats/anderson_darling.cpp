#include "stats/anderson_darling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fullweb::stats {

using support::Error;
using support::Result;

double ad_exponential_critical(double level) {
  // Stephens (1974), Table 4, case: exponential with estimated scale.
  if (level == 0.15) return 0.922;
  if (level == 0.10) return 1.078;
  if (level == 0.05) return 1.341;
  if (level == 0.025) return 1.606;
  if (level == 0.01) return 1.957;
  throw std::invalid_argument(
      "ad_exponential_critical: tabulated levels are 0.15/0.10/0.05/0.025/0.01");
}

Result<AndersonDarlingResult> anderson_darling_exponential(
    std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 5)
    return Error::insufficient_data("anderson_darling_exponential: need n >= 5");

  double sum = 0.0;
  for (double x : xs) {
    if (x < 0.0)
      return Error::invalid_argument(
          "anderson_darling_exponential: negative inter-arrival time");
    sum += x;
  }
  if (!(sum > 0.0))
    return Error::numeric("anderson_darling_exponential: all samples zero");
  const double lambda = static_cast<double>(n) / sum;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  // A² = -n - (1/n) Σ_{i=1..n} (2i-1) [ln F(x_(i)) + ln(1 - F(x_(n+1-i)))].
  // Guard the logs: F can hit 0/1 at the extremes with tied or huge samples.
  constexpr double kTiny = 1e-300;
  const double nn = static_cast<double>(n);
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const double f_lo = 1.0 - std::exp(-lambda * sorted[i - 1]);        // F(x_(i))
    const double f_hi_c = std::exp(-lambda * sorted[n - i]);            // 1-F(x_(n+1-i))
    acc += (2.0 * static_cast<double>(i) - 1.0) *
           (std::log(std::max(f_lo, kTiny)) + std::log(std::max(f_hi_c, kTiny)));
  }

  AndersonDarlingResult r;
  r.n = n;
  r.lambda_hat = lambda;
  r.a_squared = -nn - acc / nn;
  r.modified = r.a_squared * (1.0 + 0.6 / nn);
  return r;
}

}  // namespace fullweb::stats
