#include "stats/prefix_moments.h"

#include "stats/descriptive.h"

namespace fullweb::stats {

PrefixMoments::PrefixMoments(std::span<const double> xs, Weighted weighted) {
  n_ = xs.size();
  cum_.assign(n_ + 1, 0.0);
  cum2_.assign(n_ + 1, 0.0);
  if (n_ == 0) return;
  anchor_ = compensated_mean(xs);

  // Each prefix array stores the correctly-rounded running Neumaier sum at
  // every index; the independent accumulator chains (v, v^2, and the
  // optional weighted ones) interleave, so the serial dependency of one
  // chain overlaps the others' arithmetic.
  NeumaierSum s, s2;
  if (weighted == Weighted::kNone) {
    for (std::size_t t = 0; t < n_; ++t) {
      const double v = xs[t] - anchor_;
      s.add(v);
      s2.add(v * v);
      cum_[t + 1] = s.value();
      cum2_[t + 1] = s2.value();
    }
    return;
  }

  const bool quad = weighted == Weighted::kQuadratic;
  wcum_.assign(n_ + 1, 0.0);
  if (quad) w2cum_.assign(n_ + 1, 0.0);
  NeumaierSum sw, sw2;
  for (std::size_t t = 0; t < n_; ++t) {
    const double v = xs[t] - anchor_;
    const double ft = static_cast<double>(t);
    s.add(v);
    s2.add(v * v);
    sw.add(ft * v);
    cum_[t + 1] = s.value();
    cum2_[t + 1] = s2.value();
    wcum_[t + 1] = sw.value();
    if (quad) {
      sw2.add(ft * ft * v);
      w2cum_[t + 1] = sw2.value();
    }
  }
}

double PrefixMoments::aggregated_variance(std::size_t m) const noexcept {
  if (m == 0) return 0.0;
  const std::size_t blocks = n_ / m;
  if (blocks == 0) return 0.0;
  const double inv_m = 1.0 / static_cast<double>(m);

  // Centered block means d_k = (C[(k+1)m] - C[km]) / m; their population
  // variance equals the aggregated series' variance (the anchor shift
  // cancels). Two lanes of plain accumulation on the already-centered
  // values — magnitudes are O(sigma), no compensation needed.
  const double* c = cum_.data();
  double s0 = 0.0, s1 = 0.0, q0 = 0.0, q1 = 0.0;
  std::size_t k = 0;
  for (; k + 2 <= blocks; k += 2) {
    const double d0 = (c[(k + 1) * m] - c[k * m]) * inv_m;
    const double d1 = (c[(k + 2) * m] - c[(k + 1) * m]) * inv_m;
    s0 += d0;
    s1 += d1;
    q0 += d0 * d0;
    q1 += d1 * d1;
  }
  if (k < blocks) {
    const double d = (c[(k + 1) * m] - c[k * m]) * inv_m;
    s0 += d;
    q0 += d * d;
  }
  const double nb = static_cast<double>(blocks);
  const double mean_d = (s0 + s1) / nb;
  const double var = (q0 + q1) / nb - mean_d * mean_d;
  return var > 0.0 ? var : 0.0;
}

MomentSummary MomentSummary::of(std::span<const double> xs) {
  MomentSummary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  NeumaierSum mean_sum;
  for (double x : xs) mean_sum.add(x);
  s.mean = mean_sum.value() / static_cast<double>(xs.size());
  NeumaierSum dev2;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    const double d = x - s.mean;
    dev2.add(d * d);
    if (x < s.min) s.min = x;
    if (x > s.max) s.max = x;
  }
  const double m2 = dev2.value();
  s.m2 = m2 > 0.0 ? m2 : 0.0;
  return s;
}

void MomentSummary::merge(const MomentSummary& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // Chan/Golub/LeVeque pairwise combination: exact on count, near-exact on
  // mean/m2 (the delta term captures the between-part variance).
  const double na = static_cast<double>(count);
  const double nb = static_cast<double>(other.count);
  const double n = na + nb;
  const double delta = other.mean - mean;
  mean += delta * (nb / n);
  m2 += other.m2 + delta * delta * (na * nb / n);
  if (m2 < 0.0) m2 = 0.0;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
}

}  // namespace fullweb::stats
