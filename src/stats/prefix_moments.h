// Compensated prefix moments: the shared compute layer behind the
// block/aggregation-based statistics (variance-time, R/S, KPSS, DFA,
// aggregated_variances).
//
// One O(n) pass builds Neumaier-compensated prefix sums of the
// anchor-centered series v_t = x_t - anchor (anchor = compensated mean) and
// of v_t^2; every block mean, block variance, partial sum and
// cumulative-deviation walk afterwards is an O(1) lookup. Centering first
// keeps block variances stable when the mean dominates the fluctuations
// (per-second counts with a large offset), which is exactly where naive
// one-pass prefix variance formulas collapse. Optional weighted prefixes
// (sum t*v_t, sum t^2*v_t) serve DFA's per-box polynomial fits.
//
// Consumers treat a PrefixMoments as an immutable read-only view builder:
// it does NOT copy or alias the input after construction, all state lives
// in owned vectors, and concurrent reads are safe (no mutation).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace fullweb::stats {

/// Mergeable first/second-moment state for shard-and-merge analyses: two
/// summaries built over disjoint sample sets combine (Chan et al.'s
/// pairwise update) into exactly the summary of their union — count, min
/// and max combine exactly; mean and the centered sum of squares combine
/// to within rounding, independent of merge order up to ulps. This is the
/// per-shard state a fleet aggregation carries instead of raw series.
struct MomentSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the mean
  double min = 0.0; ///< meaningful only when count > 0
  double max = 0.0;

  /// One-pass compensated summary of a sample span (tracks min/max).
  [[nodiscard]] static MomentSummary of(std::span<const double> xs);

  /// Fold another summary (over samples disjoint from ours) into this one.
  void merge(const MomentSummary& other) noexcept;

  /// Population variance (m2 / count); 0 when empty.
  [[nodiscard]] double variance() const noexcept {
    return count == 0 ? 0.0 : (m2 > 0.0 ? m2 / static_cast<double>(count) : 0.0);
  }
};

class PrefixMoments {
 public:
  /// Highest-order index-weighted prefix to materialize alongside the plain
  /// moments: kNone for block mean/variance queries only, kLinear adds
  /// sum t*v_t (linear detrending), kQuadratic adds sum t^2*v_t.
  enum class Weighted { kNone, kLinear, kQuadratic };

  PrefixMoments() = default;
  explicit PrefixMoments(std::span<const double> xs,
                         Weighted weighted = Weighted::kNone);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Compensated mean of the whole series (0 when empty).
  [[nodiscard]] double anchor() const noexcept { return anchor_; }

  /// Sum of x_t over [i, j). Requires i <= j <= size().
  [[nodiscard]] double sum(std::size_t i, std::size_t j) const noexcept {
    assert(i <= j && j <= n_);
    return (cum_[j] - cum_[i]) +
           static_cast<double>(j - i) * anchor_;
  }
  /// Sum of the centered values v_t = x_t - anchor over [i, j).
  [[nodiscard]] double centered_sum(std::size_t i, std::size_t j) const noexcept {
    assert(i <= j && j <= n_);
    return cum_[j] - cum_[i];
  }
  /// Mean over [i, j). Requires i < j.
  [[nodiscard]] double block_mean(std::size_t i, std::size_t j) const noexcept {
    assert(i < j && j <= n_);
    return (cum_[j] - cum_[i]) / static_cast<double>(j - i) + anchor_;
  }
  /// Sum of squared deviations from the block's own mean over [i, j),
  /// clamped to >= 0 (cancellation can otherwise leave a tiny negative).
  [[nodiscard]] double block_sum_sq_dev(std::size_t i,
                                        std::size_t j) const noexcept {
    assert(i <= j && j <= n_);
    if (j == i) return 0.0;
    const double s = cum_[j] - cum_[i];
    const double s2 = cum2_[j] - cum2_[i];
    const double ssd = s2 - s * s / static_cast<double>(j - i);
    return ssd > 0.0 ? ssd : 0.0;
  }
  /// Population variance over [i, j) (divides by the block length).
  [[nodiscard]] double block_variance(std::size_t i,
                                      std::size_t j) const noexcept {
    if (j == i) return 0.0;
    return block_sum_sq_dev(i, j) / static_cast<double>(j - i);
  }

  /// Centered prefix sum C_k = sum_{t < k} v_t; C_0 = 0, C_n ~= 0. Equal to
  /// the KPSS partial sum S_k of the demeaned series and to the DFA profile
  /// (profile[t] = centered_prefix(t + 1)).
  [[nodiscard]] double centered_prefix(std::size_t k) const noexcept {
    assert(k <= n_);
    return cum_[k];
  }
  /// The whole centered cumulative-sum array, length size() + 1 ([0] = 0):
  /// feeds minmax_prefix_walk and serves as a zero-copy DFA profile.
  [[nodiscard]] std::span<const double> centered_cumsum() const noexcept {
    return cum_;
  }

  /// Sum of t * v_t over [i, j) (global index t). Requires kLinear+.
  [[nodiscard]] double weighted_centered_sum(std::size_t i,
                                             std::size_t j) const noexcept {
    assert(i <= j && j <= n_ && !wcum_.empty());
    return wcum_[j] - wcum_[i];
  }
  /// Sum of t^2 * v_t over [i, j). Requires kQuadratic.
  [[nodiscard]] double weighted2_centered_sum(std::size_t i,
                                              std::size_t j) const noexcept {
    assert(i <= j && j <= n_ && !w2cum_.empty());
    return w2cum_[j] - w2cum_[i];
  }

  /// Population variance of the m-aggregated series (block means of
  /// consecutive size-m blocks, trailing partial block dropped) — the
  /// variance-time plot's per-level ingredient, O(n / m) per level.
  [[nodiscard]] double aggregated_variance(std::size_t m) const noexcept;

  /// The whole series collapsed to mergeable moment state (count, mean,
  /// m2) in O(1) from the prefix arrays. Min/max are not tracked by the
  /// prefix pass and are left at the summary's whole-series mean (a value
  /// guaranteed inside the sample range) — callers needing real extremes
  /// fill them from the data (MomentSummary::of does).
  [[nodiscard]] MomentSummary summary() const noexcept {
    MomentSummary s;
    s.count = n_;
    if (n_ == 0) return s;
    s.mean = block_mean(0, n_);
    s.m2 = block_sum_sq_dev(0, n_);
    s.min = s.mean;
    s.max = s.mean;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double anchor_ = 0.0;
  std::vector<double> cum_;    ///< prefix sums of v_t, length n + 1
  std::vector<double> cum2_;   ///< prefix sums of v_t^2, length n + 1
  std::vector<double> wcum_;   ///< prefix sums of t * v_t (optional)
  std::vector<double> w2cum_;  ///< prefix sums of t^2 * v_t (optional)
};

}  // namespace fullweb::stats
