// Probability distributions used by the workload model and the statistical
// tests: Pareto (the heavy-tailed reference model of §3.2), lognormal (the
// competing model in Downey's curvature test), exponential (Poisson
// inter-arrivals), Weibull, and Poisson counts.
//
// Each continuous distribution offers pdf/cdf/ccdf/quantile/sample plus a
// maximum-likelihood fit from data. Sampling takes an explicit support::Rng
// for reproducibility.
#pragma once

#include <span>

#include "support/result.h"
#include "support/rng.h"

namespace fullweb::stats {

/// Standard normal CDF Phi(x) (via std::erfc).
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation, |err|<1e-9).
[[nodiscard]] double normal_quantile(double p);

/// Classical Pareto with shape alpha > 0 and location (minimum) k > 0:
///   F(x) = 1 - (k/x)^alpha  for x >= k                     (paper eq. 4)
/// Mean is finite iff alpha > 1; variance finite iff alpha > 2.
class Pareto {
 public:
  Pareto(double alpha, double k);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double k() const noexcept { return k_; }

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double ccdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(support::Rng& rng) const noexcept;

  [[nodiscard]] double mean() const noexcept;      ///< +inf if alpha <= 1
  [[nodiscard]] double variance() const noexcept;  ///< +inf if alpha <= 2

  /// MLE of alpha for a fixed location k: alpha = n / sum(log(x_i / k)),
  /// using only samples >= k. Errors if fewer than 2 usable samples.
  static support::Result<Pareto> fit_mle(std::span<const double> xs, double k);

 private:
  double alpha_;
  double k_;
};

/// Lognormal: log X ~ N(mu, sigma^2).
class Lognormal {
 public:
  Lognormal(double mu, double sigma);

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double ccdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(support::Rng& rng) const noexcept;

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;

  /// MLE: mu = mean(log x), sigma = population sd(log x); requires all
  /// samples > 0 and n >= 2.
  static support::Result<Lognormal> fit_mle(std::span<const double> xs);

 private:
  double mu_;
  double sigma_;
};

/// Exponential with rate lambda: F(x) = 1 - exp(-lambda x).
class Exponential {
 public:
  explicit Exponential(double lambda);

  [[nodiscard]] double lambda() const noexcept { return lambda_; }

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double ccdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(support::Rng& rng) const noexcept;

  [[nodiscard]] double mean() const noexcept { return 1.0 / lambda_; }

  /// MLE: lambda = 1 / sample mean; requires n >= 1 and mean > 0.
  static support::Result<Exponential> fit_mle(std::span<const double> xs);

 private:
  double lambda_;
};

/// Weibull with shape k and scale lambda: F(x) = 1 - exp(-(x/lambda)^k).
/// Heavy-ish (subexponential) for k < 1; used as an alternative body model in
/// the synthetic generator.
class Weibull {
 public:
  Weibull(double shape, double scale);

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double ccdf(double x) const noexcept;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(support::Rng& rng) const noexcept;

 private:
  double shape_;
  double scale_;
};

/// Poisson(mean) sample. Knuth's product method for small means, normal
/// approximation with continuity correction (clamped at 0) for mean > 30 —
/// accurate enough for per-second arrival counts and much faster.
[[nodiscard]] long long poisson_sample(double mean, support::Rng& rng) noexcept;

}  // namespace fullweb::stats
