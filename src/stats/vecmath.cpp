#include "stats/vecmath.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace fullweb::stats {

namespace {

// Rational minimax coefficients after Cephes (Moshier), double precision.

// exp: e^r = 1 + 2 r P(r^2) / (Q(r^2) - r P(r^2)) on |r| <= ln2/2.
constexpr double kExpP0 = 1.26177193074810590878e-4;
constexpr double kExpP1 = 3.02994407707441961300e-2;
constexpr double kExpP2 = 9.99999999999999999910e-1;
constexpr double kExpQ0 = 3.00198505138664455042e-6;
constexpr double kExpQ1 = 2.52448340349684104192e-3;
constexpr double kExpQ2 = 2.27265548208155028766e-1;
constexpr double kExpQ3 = 2.00000000000000000005e0;
constexpr double kLog2E = 1.4426950408889634073599;
constexpr double kLn2Hi = 6.93145751953125e-1;
constexpr double kLn2Lo = 1.42860682030941723212e-6;
constexpr double kExpOverflow = 709.782712893383996843;
constexpr double kExpUnderflow = -708.396418532264106224;

// log: log(1+x) = x - x^2/2 + x^3 P(x)/Q(x) on [sqrt(1/2)-1, sqrt(2)-1].
constexpr double kLogP0 = 1.01875663804580931796e-4;
constexpr double kLogP1 = 4.97494994976747001425e-1;
constexpr double kLogP2 = 4.70579119878881725854e0;
constexpr double kLogP3 = 1.44989225341610930846e1;
constexpr double kLogP4 = 1.79368678507819816313e1;
constexpr double kLogP5 = 7.70838733755885391666e0;
constexpr double kLogQ0 = 1.12873587189167450590e1;
constexpr double kLogQ1 = 4.52279145837532221105e1;
constexpr double kLogQ2 = 8.29875266912776603211e1;
constexpr double kLogQ3 = 7.11544750618563894466e1;
constexpr double kLogQ4 = 2.31251620126765340583e1;
constexpr double kLogC1 = 0.693359375;                    // ln2 hi
constexpr double kLogC2 = -2.121944400546905827679e-4;    // ln2 lo
constexpr double kSqrtHalf = 0.70710678118654752440;

/// Core e^x for finite x already clamped into the non-saturating range.
inline double exp_core(double x) noexcept {
  // r = x - n ln2 with n = floor(x log2(e) + 1/2), |r| <= ln2/2.
  const double t = kLog2E * x + 0.5;
  auto n = static_cast<int>(t);          // truncation toward zero...
  n -= static_cast<int>(t < static_cast<double>(n));  // ...fixed up to floor
  const double fn = static_cast<double>(n);
  double r = x - fn * kLn2Hi;
  r -= fn * kLn2Lo;

  const double rr = r * r;
  const double px = r * ((kExpP0 * rr + kExpP1) * rr + kExpP2);
  const double qx = ((kExpQ0 * rr + kExpQ1) * rr + kExpQ2) * rr + kExpQ3;
  const double e = 1.0 + 2.0 * px / (qx - px);

  // 2^n in two factors so n = +-1024 (one past the normal exponent range
  // after rounding) stays exact without an inf/denormal intermediate.
  const int n1 = n / 2;
  const int n2 = n - n1;
  const double s1 =
      std::bit_cast<double>(static_cast<std::uint64_t>(1023 + n1) << 52);
  const double s2 =
      std::bit_cast<double>(static_cast<std::uint64_t>(1023 + n2) << 52);
  return e * s1 * s2;
}

/// Core log(x) for positive normal finite x.
inline double log_core(double x) noexcept {
  // frexp via bits: x = m * 2^e with m in [0.5, 1).
  const auto u = std::bit_cast<std::uint64_t>(x);
  int e = static_cast<int>((u >> 52) & 0x7ffU) - 1022;
  double m = std::bit_cast<double>((u & 0x000fffffffffffffULL) |
                                   0x3fe0000000000000ULL);
  const bool low = m < kSqrtHalf;
  e -= static_cast<int>(low);
  m = low ? 2.0 * m - 1.0 : m - 1.0;

  const double z = m * m;
  const double p =
      ((((kLogP0 * m + kLogP1) * m + kLogP2) * m + kLogP3) * m + kLogP4) * m +
      kLogP5;
  const double q =
      ((((m + kLogQ0) * m + kLogQ1) * m + kLogQ2) * m + kLogQ3) * m + kLogQ4;
  const double fe = static_cast<double>(e);
  double y = m * (z * p / q);
  y += fe * kLogC2;
  y -= 0.5 * z;
  return m + y + fe * kLogC1;
}

inline bool log_fast_path(double x) noexcept {
  // Positive, normal, finite: exponent field in [1, 2046) and sign clear.
  const auto u = std::bit_cast<std::uint64_t>(x);
  const auto exp_field = (u >> 52) & 0xfffU;  // sign folded into bit 11
  return exp_field - 1 < 2045U;
}

}  // namespace

double vm_exp(double x) noexcept {
  if (x != x) return x;                       // NaN
  if (x > kExpOverflow) return HUGE_VAL;
  if (x < kExpUnderflow) return 0.0;
  return exp_core(x);
}

double vm_log(double x) noexcept {
  if (!log_fast_path(x)) return std::log(x);  // <= 0, denormal, inf, NaN
  return log_core(x);
}

void exp_batch(std::span<const double> xs, std::span<double> out) noexcept {
  assert(out.size() == xs.size());
  // A cheap vectorized scan decides between the branch-free core loop (the
  // common case: every input in the non-saturating range, which is what the
  // hot callers feed) and the scalar loop that handles saturation and NaN.
  // The scan runs before any write so in-place calls stay correct, and the
  // fast loop computes exactly what vm_exp computes for in-range inputs.
  const std::size_t n = xs.size();
  unsigned special = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    // !(x >= lo) is true for both underflow and NaN.
    special |= static_cast<unsigned>(!(x >= kExpUnderflow)) |
               static_cast<unsigned>(x > kExpOverflow);
  }
  if (!special) {
    for (std::size_t i = 0; i < n; ++i) out[i] = exp_core(xs[i]);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = vm_exp(xs[i]);
  }
}

void log_batch(std::span<const double> xs, std::span<double> out) noexcept {
  assert(out.size() == xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = vm_log(xs[i]);
}

void log10_batch(std::span<const double> xs, std::span<double> out) noexcept {
  assert(out.size() == xs.size());
  constexpr double kLog10E = 0.43429448190325182765;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = vm_log(xs[i]) * kLog10E;
}

}  // namespace fullweb::stats
