#include "stats/binomial.h"

#include <cmath>

#include "stats/special.h"

namespace fullweb::stats {

double binomial_pmf(std::size_t n, double p, std::size_t k) noexcept {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k);
  const double log_choose =
      log_gamma(nn + 1.0) - log_gamma(kk + 1.0) - log_gamma(nn - kk + 1.0);
  return std::exp(log_choose + kk * std::log(p) + (nn - kk) * std::log1p(-p));
}

double binomial_cdf(std::size_t n, double p, std::size_t k) noexcept {
  if (k >= n) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i <= k; ++i) acc += binomial_pmf(n, p, i);
  return acc < 1.0 ? acc : 1.0;
}

BinomialCountTest binomial_count_test(std::size_t total, std::size_t passed,
                                      double per_interval_pass_prob,
                                      double level) noexcept {
  BinomialCountTest t;
  t.total = total;
  t.passed = passed;
  if (total == 0) return t;
  t.point_probability = binomial_pmf(total, per_interval_pass_prob, passed);
  t.rejected = t.point_probability < level;
  return t;
}

SignTest sign_test(std::size_t total, std::size_t positive, double level) noexcept {
  SignTest t;
  t.total = total;
  t.positive = positive;
  t.negative = total - positive;
  if (total == 0) return t;
  t.significant_positive = binomial_pmf(total, 0.5, t.positive) < level &&
                           t.positive > t.negative;
  t.significant_negative = binomial_pmf(total, 0.5, t.negative) < level &&
                           t.negative > t.positive;
  return t;
}

}  // namespace fullweb::stats
