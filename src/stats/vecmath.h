// Deterministic batch exp/log kernels for the spectral hot loops.
//
// The Whittle objective spends nearly all of its time in exp/log over long
// arrays; libm calls there are both the scalar bottleneck and a portability
// hazard for the golden bit-pattern gate (different libms round the last
// bit differently). These kernels use fixed Cephes-style rational
// approximations (~1-2 ulp) with branch-free range reduction, so results
// are bit-identical across platforms and the loops pipeline/vectorize.
// Scalar forms are exposed for tests and one-off use; the *_batch forms
// accept out.size() == xs.size() and allow in-place operation (out == xs).
//
// Domain notes: vm_exp saturates to 0 / +inf outside [-708.39, 709.78] and
// propagates NaN; vm_log falls back to std::log for non-positive, denormal
// or non-finite inputs (the hot paths only feed it positive normals).
#pragma once

#include <cstddef>
#include <span>

namespace fullweb::stats {

[[nodiscard]] double vm_exp(double x) noexcept;
[[nodiscard]] double vm_log(double x) noexcept;

void exp_batch(std::span<const double> xs, std::span<double> out) noexcept;
void log_batch(std::span<const double> xs, std::span<double> out) noexcept;
/// log10 via vm_log * log10(e); plot-assembly accuracy (~2 ulp).
void log10_batch(std::span<const double> xs, std::span<double> out) noexcept;

}  // namespace fullweb::stats
