#include "stats/distributions.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "stats/special.h"

namespace fullweb::stats {

using support::Error;
using support::Result;

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");

  // Acklam's piecewise rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;

  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

// ---------------------------------------------------------------- Pareto

Pareto::Pareto(double alpha, double k) : alpha_(alpha), k_(k) {
  if (!(alpha > 0.0) || !(k > 0.0))
    throw std::invalid_argument("Pareto: alpha and k must be positive");
}

double Pareto::pdf(double x) const noexcept {
  if (x < k_) return 0.0;
  return alpha_ * std::pow(k_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const noexcept {
  if (x < k_) return 0.0;
  return 1.0 - std::pow(k_ / x, alpha_);
}

double Pareto::ccdf(double x) const noexcept {
  if (x < k_) return 1.0;
  return std::pow(k_ / x, alpha_);
}

double Pareto::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0))
    throw std::invalid_argument("Pareto::quantile: p must be in [0,1)");
  return k_ / std::pow(1.0 - p, 1.0 / alpha_);
}

double Pareto::sample(support::Rng& rng) const noexcept {
  return k_ / std::pow(rng.uniform_pos(), 1.0 / alpha_);
}

double Pareto::mean() const noexcept {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * k_ / (alpha_ - 1.0);
}

double Pareto::variance() const noexcept {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double am1 = alpha_ - 1.0;
  return k_ * k_ * alpha_ / (am1 * am1 * (alpha_ - 2.0));
}

Result<Pareto> Pareto::fit_mle(std::span<const double> xs, double k) {
  if (!(k > 0.0)) return Error::invalid_argument("Pareto::fit_mle: k must be > 0");
  double sum_log = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x >= k) {
      sum_log += std::log(x / k);
      ++n;
    }
  }
  if (n < 2)
    return Error::insufficient_data("Pareto::fit_mle: fewer than 2 samples >= k");
  if (sum_log <= 0.0)
    return Error::numeric("Pareto::fit_mle: all samples equal to k");
  return Pareto(static_cast<double>(n) / sum_log, k);
}

// ------------------------------------------------------------- Lognormal

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0))
    throw std::invalid_argument("Lognormal: sigma must be positive");
}

double Lognormal::pdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (x * sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double Lognormal::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double Lognormal::ccdf(double x) const noexcept { return 1.0 - cdf(x); }

double Lognormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double Lognormal::sample(support::Rng& rng) const noexcept {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double Lognormal::mean() const noexcept {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double Lognormal::variance() const noexcept {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

Result<Lognormal> Lognormal::fit_mle(std::span<const double> xs) {
  if (xs.size() < 2)
    return Error::insufficient_data("Lognormal::fit_mle: need n >= 2");
  double sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0)
      return Error::invalid_argument("Lognormal::fit_mle: non-positive sample");
    sum += std::log(x);
  }
  const double mu = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) {
    const double d = std::log(x) - mu;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / static_cast<double>(xs.size()));
  if (!(sigma > 0.0))
    return Error::numeric("Lognormal::fit_mle: zero variance in log-space");
  return Lognormal(mu, sigma);
}

// ----------------------------------------------------------- Exponential

Exponential::Exponential(double lambda) : lambda_(lambda) {
  if (!(lambda > 0.0))
    throw std::invalid_argument("Exponential: lambda must be positive");
}

double Exponential::pdf(double x) const noexcept {
  return x < 0.0 ? 0.0 : lambda_ * std::exp(-lambda_ * x);
}

double Exponential::cdf(double x) const noexcept {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-lambda_ * x);
}

double Exponential::ccdf(double x) const noexcept {
  return x < 0.0 ? 1.0 : std::exp(-lambda_ * x);
}

double Exponential::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0))
    throw std::invalid_argument("Exponential::quantile: p must be in [0,1)");
  return -std::log(1.0 - p) / lambda_;
}

double Exponential::sample(support::Rng& rng) const noexcept {
  return -std::log(rng.uniform_pos()) / lambda_;
}

Result<Exponential> Exponential::fit_mle(std::span<const double> xs) {
  if (xs.empty())
    return Error::insufficient_data("Exponential::fit_mle: empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double m = sum / static_cast<double>(xs.size());
  if (!(m > 0.0))
    return Error::numeric("Exponential::fit_mle: non-positive mean");
  return Exponential(1.0 / m);
}

// --------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0))
    throw std::invalid_argument("Weibull: shape and scale must be positive");
}

double Weibull::pdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const noexcept {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::ccdf(double x) const noexcept {
  return x < 0.0 ? 1.0 : std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0))
    throw std::invalid_argument("Weibull::quantile: p must be in [0,1)");
  return scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

double Weibull::sample(support::Rng& rng) const noexcept {
  return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
}

// ---------------------------------------------------------------- Poisson

namespace {

/// Hörmann's PTRS transformed-rejection Poisson sampler; exact for mean >= 10.
long long poisson_ptrs(double mean, support::Rng& rng) noexcept {
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_mean = std::log(mean);

  for (;;) {
    double u = rng.uniform() - 0.5;
    double v = rng.uniform();
    const double us = 0.5 - std::fabs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (kf < 0.0) continue;
    const auto k = static_cast<long long>(kf);
    if (us >= 0.07 && v <= v_r) return k;
    if (us < 0.013 && v > us) continue;
    const double lhs = std::log(v * inv_alpha / (a / (us * us) + b));
    const double rhs = -mean + kf * log_mean - log_gamma(kf + 1.0);
    if (lhs <= rhs) return k;
  }
}

}  // namespace

long long poisson_sample(double mean, support::Rng& rng) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 10.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    long long k = 0;
    double prod = rng.uniform_pos();
    while (prod > limit) {
      ++k;
      prod *= rng.uniform_pos();
    }
    return k;
  }
  return poisson_ptrs(mean, rng);
}

}  // namespace fullweb::stats
