// Kwiatkowski-Phillips-Schmidt-Shin (KPSS) stationarity test.
//
// The paper (§4.1) tests the null hypothesis that the request/session
// per-second series is stationary against the unit-root alternative; all
// four servers reject stationarity on the raw series and accept it after
// trend + periodicity removal. Reference: Kwiatkowski, Phillips, Schmidt,
// Shin, "Testing the null hypothesis of stationarity against the
// alternative of a unit root", J. Econometrics 54 (1992).
#pragma once

#include <cstddef>
#include <span>

#include "support/result.h"

namespace fullweb::stats {

enum class KpssNull {
  kLevel,  ///< null: stationary around a constant level (eta_mu)
  kTrend,  ///< null: stationary around a deterministic linear trend (eta_tau)
};

struct KpssResult {
  double statistic = 0.0;     ///< eta = n^-2 sum S_t^2 / s^2(l)
  std::size_t lag = 0;        ///< Newey-West truncation lag actually used
  double p_value = 0.0;       ///< interpolated from the published table;
                              ///< clamped to [0.01, 0.10] outside its range
  double critical_5pct = 0.0; ///< 5% critical value for the chosen null
  KpssNull null_hypothesis = KpssNull::kLevel;

  /// True if stationarity is NOT rejected at the 5% level.
  [[nodiscard]] bool stationary_at_5pct() const noexcept {
    return statistic < critical_5pct;
  }
};

/// Run the KPSS test. `lag` < 0 selects the standard "long" bandwidth
/// l = floor(12 (n/100)^{1/4}); pass an explicit non-negative value to
/// override. Requires n >= 10.
[[nodiscard]] support::Result<KpssResult> kpss_test(
    std::span<const double> xs, KpssNull null_hypothesis = KpssNull::kLevel,
    long lag = -1);

}  // namespace fullweb::stats
