// Special functions needed by the wavelet (Abry-Veitch) estimator's bias and
// variance corrections: digamma psi(x) and trigamma psi'(x).
#pragma once

namespace fullweb::stats {

/// Digamma psi(x) for x > 0: recurrence to x >= 6 then asymptotic series.
/// Absolute error < 1e-10 over the range used (x >= 0.5).
[[nodiscard]] double digamma(double x);

/// Trigamma psi'(x) for x > 0 (same recurrence + asymptotic approach).
[[nodiscard]] double trigamma(double x);

}  // namespace fullweb::stats
