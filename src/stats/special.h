// Special functions needed by the wavelet (Abry-Veitch) estimator's bias and
// variance corrections — digamma psi(x) and trigamma psi'(x) — plus a
// thread-safe log-gamma for the concurrent analysis pipeline.
#pragma once

#include <cmath>

namespace fullweb::stats {

/// Digamma psi(x) for x > 0: recurrence to x >= 6 then asymptotic series.
/// Absolute error < 1e-10 over the range used (x >= 0.5).
[[nodiscard]] double digamma(double x);

/// Trigamma psi'(x) for x > 0 (same recurrence + asymptotic approach).
[[nodiscard]] double trigamma(double x);

/// log Γ(x), safe to call from concurrent tasks: glibc's lgamma (and
/// std::lgamma) writes the process-global `signgam`, which is a data race
/// even though the return value is pure. lgamma_r keeps the sign local.
[[nodiscard]] inline double log_gamma(double x) noexcept {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace fullweb::stats
