#include "stats/acf.h"

#include <cassert>
#include <cmath>
#include <complex>

#include "stats/descriptive.h"
#include "stats/fft.h"
#include "support/workspace.h"

namespace fullweb::stats {

std::vector<double> acf(std::span<const double> xs, std::size_t max_lag) {
  const std::size_t n = xs.size();
  assert(n >= 1);
  if (max_lag >= n) max_lag = n - 1;

  const double m = mean(xs);

  // Autocovariance via FFT: pad to >= 2n to avoid circular wrap-around.
  // The padded length is a power of two, so the forward transform takes the
  // packed real-input path; both buffers are per-thread scratch, so repeated
  // same-length calls (estimator sweeps, bootstrap) do not reallocate.
  const std::size_t padded = next_pow2(2 * n);
  auto& arena = support::Workspace::for_thread();
  auto& staged = arena.real(support::ws::kFftStage);
  staged.assign(padded, 0.0);
  for (std::size_t i = 0; i < n; ++i) staged[i] = xs[i] - m;
  auto& buf = arena.cplx(support::ws::kSpectrum);
  fft_real(staged, buf);
  for (auto& v : buf) v = {std::norm(v), 0.0};
  ifft(buf);

  std::vector<double> r(max_lag + 1, 0.0);
  const double c0 = buf[0].real() / static_cast<double>(n);
  r[0] = 1.0;
  if (c0 <= 0.0 || !std::isfinite(c0)) return r;  // constant series
  for (std::size_t k = 1; k <= max_lag; ++k) {
    r[k] = (buf[k].real() / static_cast<double>(n)) / c0;
  }
  return r;
}

double autocorrelation_at(std::span<const double> xs, std::size_t lag) noexcept {
  const std::size_t n = xs.size();
  if (lag >= n || n < 2) return 0.0;
  const double m = mean(xs);
  double c0 = 0.0;
  double ck = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double d = xs[t] - m;
    c0 += d * d;
  }
  for (std::size_t t = 0; t + lag < n; ++t) {
    ck += (xs[t] - m) * (xs[t + lag] - m);
  }
  if (c0 <= 0.0) return 0.0;
  return ck / c0;
}

double acf_abs_sum(std::span<const double> xs, std::size_t max_lag) {
  const auto r = acf(xs, max_lag);
  double sum = 0.0;
  for (std::size_t k = 1; k < r.size(); ++k) sum += std::fabs(r[k]);
  return sum;
}

}  // namespace fullweb::stats
