// Ordinary and weighted least squares for simple linear models y = a + b x.
//
// Used throughout the reproduction: LLCD tail-slope fits (§3.2), the
// variance-time and R/S Hurst estimators, the low-frequency periodogram
// estimator, the Abry-Veitch weighted log-scale regression, and least-squares
// trend removal.
#pragma once

#include <cstddef>
#include <span>

namespace fullweb::stats {

/// Fit of y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double stderr_slope = 0.0;      ///< standard error of the slope estimate
  double stderr_intercept = 0.0;  ///< standard error of the intercept
  double r_squared = 0.0;         ///< coefficient of determination
  std::size_t n = 0;

  [[nodiscard]] double predict(double x) const noexcept {
    return intercept + slope * x;
  }
};

/// Ordinary least squares. Precondition: x.size() == y.size() >= 2 and
/// x not all equal (otherwise returns a degenerate fit with slope 0, R² 0).
[[nodiscard]] LinearFit ols(std::span<const double> x, std::span<const double> y);

/// Weighted least squares with per-point weights w_i (inverse variances).
/// stderr_slope is computed from the weight matrix (Gauss-Markov), which is
/// what the Abry-Veitch confidence interval requires.
[[nodiscard]] LinearFit wls(std::span<const double> x, std::span<const double> y,
                            std::span<const double> w);

/// Quadratic fit y = c0 + c1 x + c2 x^2 (used by the curvature test, which
/// measures the quadratic coefficient of the log-log CCDF tail).
struct QuadraticFit {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
};
[[nodiscard]] QuadraticFit quadratic_fit(std::span<const double> x,
                                         std::span<const double> y);

}  // namespace fullweb::stats
