#include "stats/regression.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace fullweb::stats {

LinearFit ols(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  LinearFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;

  const auto n = static_cast<double>(fit.n);
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;  // degenerate: all x equal

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  // Residual sum of squares and standard errors.
  double rss = 0.0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double r = y[i] - fit.predict(x[i]);
    rss += r * r;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - rss / syy : 1.0;
  if (fit.n > 2) {
    const double sigma2 = rss / (n - 2.0);
    fit.stderr_slope = std::sqrt(sigma2 / sxx);
    fit.stderr_intercept = std::sqrt(sigma2 * (1.0 / n + mx * mx / sxx));
  }
  return fit;
}

LinearFit wls(std::span<const double> x, std::span<const double> y,
              std::span<const double> w) {
  assert(x.size() == y.size() && x.size() == w.size());
  LinearFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;

  double sw = 0, swx = 0, swy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    sw += w[i];
    swx += w[i] * x[i];
    swy += w[i] * y[i];
  }
  if (sw <= 0.0) return fit;
  const double mx = swx / sw;
  const double my = swy / sw;

  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dx = x[i] - mx;
    sxx += w[i] * dx * dx;
    sxy += w[i] * dx * (y[i] - my);
  }
  if (sxx <= 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  // With w_i = 1/Var(y_i), Var(slope) = 1/sxx and
  // Var(intercept) = 1/sw + mx^2/sxx (Gauss-Markov for known variances).
  fit.stderr_slope = std::sqrt(1.0 / sxx);
  fit.stderr_intercept = std::sqrt(1.0 / sw + mx * mx / sxx);

  double wtss = 0, wrss = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dy = y[i] - my;
    const double r = y[i] - fit.predict(x[i]);
    wtss += w[i] * dy * dy;
    wrss += w[i] * r * r;
  }
  fit.r_squared = wtss > 0.0 ? 1.0 - wrss / wtss : 1.0;
  return fit;
}

QuadraticFit quadratic_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  QuadraticFit fit;
  fit.n = x.size();
  if (fit.n < 3) return fit;

  // Solve the 3x3 normal equations (X^T X) c = X^T y by Gaussian elimination
  // with partial pivoting; centering x first improves conditioning.
  const auto n = static_cast<double>(fit.n);
  double mx = 0;
  for (double v : x) mx += v;
  mx /= n;

  double s[5] = {n, 0, 0, 0, 0};  // sums of (x - mx)^k
  double t[3] = {0, 0, 0};        // sums of y * (x - mx)^k
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double d = x[i] - mx;
    const double d2 = d * d;
    s[1] += d;
    s[2] += d2;
    s[3] += d2 * d;
    s[4] += d2 * d2;
    t[0] += y[i];
    t[1] += y[i] * d;
    t[2] += y[i] * d2;
  }

  double a[3][4] = {{s[0], s[1], s[2], t[0]},
                    {s[1], s[2], s[3], t[1]},
                    {s[2], s[3], s[4], t[2]}};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    if (std::fabs(a[pivot][col]) < 1e-300) return fit;  // singular
    for (int c = 0; c < 4; ++c) std::swap(a[col][c], a[pivot][c]);
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / a[col][col];
      for (int c = col; c < 4; ++c) a[r][c] -= factor * a[col][c];
    }
  }
  const double b0 = a[0][3] / a[0][0];
  const double b1 = a[1][3] / a[1][1];
  const double b2 = a[2][3] / a[2][2];

  // Un-center: y = b0 + b1 (x - mx) + b2 (x - mx)^2.
  fit.c2 = b2;
  fit.c1 = b1 - 2.0 * b2 * mx;
  fit.c0 = b0 - b1 * mx + b2 * mx * mx;

  double my = t[0] / n;
  double tss = 0, rss = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double pred = fit.c0 + fit.c1 * x[i] + fit.c2 * x[i] * x[i];
    tss += (y[i] - my) * (y[i] - my);
    rss += (y[i] - pred) * (y[i] - pred);
  }
  fit.r_squared = tss > 0.0 ? 1.0 - rss / tss : 1.0;
  return fit;
}

}  // namespace fullweb::stats
