// Periodogram estimation of the spectral density.
//
// Two uses in the paper: (1) locating the dominant periodicity of the
// request/session series (the 24-hour diurnal cycle) before seasonal
// removal, and (2) the Periodogram Hurst estimator, which regresses
// log I(λ) on log λ over the lowest frequencies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fullweb::support {
class Executor;
}

namespace fullweb::stats {

/// Periodogram ordinates of a real series:
///   I(λ_j) = (1 / (2π n)) |Σ_t x_t e^{-i t λ_j}|²,  λ_j = 2π j / n,
/// for j = 1 .. floor((n-1)/2) (the zero frequency / sample mean is
/// excluded). `frequency[j-1]` holds λ_j in radians.
struct Periodogram {
  std::vector<double> frequency;  ///< angular frequencies λ_j in (0, π]
  std::vector<double> power;      ///< I(λ_j)
};

/// A non-null `executor` parallelizes the underlying FFT stages and the
/// ordinate fill (null = serial, the FFT-leaf convention — see stats/fft.h).
/// The ordinates are bit-identical at any thread count.
[[nodiscard]] Periodogram periodogram(std::span<const double> xs,
                                      support::Executor* executor = nullptr);

/// Period (in samples) of the largest ordinate whose implied period lies
/// within [min_period, max_period]; the bounds keep trivial short-lag noise
/// and the full window length from being selected. Returns 0 when no
/// ordinate falls in range.
[[nodiscard]] double dominant_period(const Periodogram& pg, double min_period,
                                     double max_period);

}  // namespace fullweb::stats
