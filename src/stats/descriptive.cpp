#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fullweb::stats {

double mean(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double compensated_sum(std::span<const double> xs) noexcept {
  NeumaierSum acc;
  for (double x : xs) acc.add(x);
  return acc.value();
}

double compensated_mean(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return compensated_sum(xs) / static_cast<double>(xs.size());
}

namespace {

/// Four-lane sum of one contiguous block. Lanes are interleaved mod 4 and
/// reduced in a fixed tree, so the result is deterministic; blocks shorter
/// than 4 reduce left-to-right, identical to a naive loop.
inline double block_sum4(const double* p, std::size_t m) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    s0 += p[i];
    s1 += p[i + 1];
    s2 += p[i + 2];
    s3 += p[i + 3];
  }
  for (; i < m; ++i) s0 += p[i];
  return (s0 + s2) + (s1 + s3);
}

/// Four-lane sum of squared deviations from `c` over one block.
inline double block_ssd4(const double* p, std::size_t m, double c) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double d0 = p[i] - c;
    const double d1 = p[i + 1] - c;
    const double d2 = p[i + 2] - c;
    const double d3 = p[i + 3] - c;
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < m; ++i) {
    const double d = p[i] - c;
    s0 += d * d;
  }
  return (s0 + s2) + (s1 + s3);
}

}  // namespace

void block_means(std::span<const double> xs, std::size_t m,
                 std::span<double> out) noexcept {
  assert(m >= 1 && xs.size() >= out.size() * m);
  const double inv = 1.0 / static_cast<double>(m);
  const double* p = xs.data();
  for (std::size_t k = 0; k < out.size(); ++k, p += m)
    out[k] = block_sum4(p, m) * inv;
}

void block_variances(std::span<const double> xs, std::size_t m,
                     std::span<double> out) noexcept {
  assert(m >= 1 && xs.size() >= out.size() * m);
  const double inv = 1.0 / static_cast<double>(m);
  const double* p = xs.data();
  for (std::size_t k = 0; k < out.size(); ++k, p += m) {
    const double c = block_sum4(p, m) * inv;
    const double ssd = block_ssd4(p, m, c);
    out[k] = ssd >= 0.0 ? ssd * inv : 0.0;
  }
}

void minmax_prefix_walk(std::span<const double> cum, double base, double step,
                        double& min_out, double& max_out) noexcept {
  double mn0 = 0.0, mn1 = 0.0, mx0 = 0.0, mx1 = 0.0;
  const double* p = cum.data();
  const std::size_t n = cum.size();
  std::size_t k = 0;
  double fk = 1.0;  // (k + 1) as a double, advanced with the loop
  for (; k + 2 <= n; k += 2, fk += 2.0) {
    const double w0 = p[k] - base - fk * step;
    const double w1 = p[k + 1] - base - (fk + 1.0) * step;
    mn0 = std::min(mn0, w0);
    mn1 = std::min(mn1, w1);
    mx0 = std::max(mx0, w0);
    mx1 = std::max(mx1, w1);
  }
  if (k < n) {
    const double w = p[k] - base - fk * step;
    mn0 = std::min(mn0, w);
    mx0 = std::max(mx0, w);
  }
  min_out = std::min(mn0, mn1);
  max_out = std::max(mx0, mx1);
}

namespace {
double sum_sq_dev(std::span<const double> xs) noexcept {
  // Two-pass algorithm for numerical stability on long, nearly-constant
  // series (per-second counts can have millions of samples).
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss;
}
}  // namespace

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return sum_sq_dev(xs) / static_cast<double>(xs.size() - 1);
}

double variance_population(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return sum_sq_dev(xs) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double min_value(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  return s;
}

std::vector<double> Ecdf::ccdf() const {
  std::vector<double> out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) out[i] = 1.0 - f[i];
  return out;
}

Ecdf ecdf(std::span<const double> xs) {
  Ecdf e;
  if (xs.empty()) return e;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse ties: record the cumulative count at the *last* occurrence.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    e.x.push_back(sorted[i]);
    e.f.push_back(static_cast<double>(i + 1) / n);
  }
  return e;
}

}  // namespace fullweb::stats
