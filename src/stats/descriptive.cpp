#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fullweb::stats {

double mean(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

namespace {
double sum_sq_dev(std::span<const double> xs) noexcept {
  // Two-pass algorithm for numerical stability on long, nearly-constant
  // series (per-second counts can have millions of samples).
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss;
}
}  // namespace

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return sum_sq_dev(xs) / static_cast<double>(xs.size() - 1);
}

double variance_population(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return sum_sq_dev(xs) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double min_value(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  return s;
}

std::vector<double> Ecdf::ccdf() const {
  std::vector<double> out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) out[i] = 1.0 - f[i];
  return out;
}

Ecdf ecdf(std::span<const double> xs) {
  Ecdf e;
  if (xs.empty()) return e;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse ties: record the cumulative count at the *last* occurrence.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    e.x.push_back(sorted[i]);
    e.f.push_back(static_cast<double>(i + 1) / n);
  }
  return e;
}

}  // namespace fullweb::stats
