// Binomial probabilities and the paper's binomial meta-tests.
//
// The Poisson-arrival methodology (§4.2, after Paxson & Floyd) runs a
// per-interval test (lag-1 independence or A² exponentiality) on each of the
// sub-intervals of a 4-hour window, then aggregates the per-interval
// verdicts with binomial probability arguments:
//   - S = # intervals passing an individual 95% test; S ~ B(m, 0.95) under
//     H0, and H0 is rejected when P(S = s_observed) < 0.05.
//   - sign tests on the lag-1 autocorrelations: under independence each rho
//     is positive with probability 1/2, so the count of positive (negative)
//     rhos is B(m, 0.5); significance when the point probability < 0.025.
//     (The paper's text says B(4, 0.95) for the sign counts — a typo, since
//     it first states the 1/2-1/2 argument; we implement p = 0.5.)
#pragma once

#include <cstddef>

namespace fullweb::stats {

/// Exact binomial point probability P[X = k], X ~ B(n, p). Computed in
/// log-space (lgamma) so large n is safe.
[[nodiscard]] double binomial_pmf(std::size_t n, double p, std::size_t k) noexcept;

/// P[X <= k].
[[nodiscard]] double binomial_cdf(std::size_t n, double p, std::size_t k) noexcept;

/// The paper's aggregation rule for per-interval pass counts:
/// reject the null when P[S = passed] < level with S ~ B(total, 0.95).
struct BinomialCountTest {
  std::size_t total = 0;
  std::size_t passed = 0;
  double point_probability = 1.0;  ///< P[S = passed]
  bool rejected = false;           ///< point_probability < level
};
[[nodiscard]] BinomialCountTest binomial_count_test(std::size_t total,
                                                    std::size_t passed,
                                                    double per_interval_pass_prob = 0.95,
                                                    double level = 0.05) noexcept;

/// Sign test on lag-1 autocorrelations: significant positive (negative)
/// correlation when the count of positive (negative) signs has point
/// probability < level under B(total, 0.5).
struct SignTest {
  std::size_t total = 0;
  std::size_t positive = 0;
  std::size_t negative = 0;
  bool significant_positive = false;
  bool significant_negative = false;
};
[[nodiscard]] SignTest sign_test(std::size_t total, std::size_t positive,
                                 double level = 0.025) noexcept;

}  // namespace fullweb::stats
