#include "stats/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fullweb::stats {

namespace {

using cd = std::complex<double>;

/// Iterative in-place radix-2 Cooley-Tukey. Precondition: n is a power of 2.
void fft_pow2(std::vector<cd>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cd wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cd w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cd u = a[i + k];
        const cd v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs.
void fft_bluestein(std::vector<cd>& a, bool inverse) {
  const std::size_t n = a.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp factors w[k] = exp(sign * i * pi * k^2 / n). The k^2 mod 2n trick
  // keeps the argument small so cos/sin stay accurate for large k.
  std::vector<cd> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = static_cast<std::size_t>(
        (static_cast<unsigned long long>(k) * k) % (2ULL * n));
    const double angle = sign * std::numbers::pi * static_cast<double>(k2) /
                         static_cast<double>(n);
    w[k] = cd(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<cd> fa(m), fb(m);
  for (std::size_t k = 0; k < n; ++k) fa[k] = a[k] * w[k];
  fb[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) fb[k] = fb[m - k] = std::conj(w[k]);

  fft_pow2(fa, false);
  fft_pow2(fb, false);
  for (std::size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  fft_pow2(fa, true);
  const double inv_m = 1.0 / static_cast<double>(m);

  for (std::size_t k = 0; k < n; ++k) a[k] = fa[k] * inv_m * w[k];
}

}  // namespace

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) noexcept { return n >= 1 && (n & (n - 1)) == 0; }

void fft(std::vector<cd>& data) {
  if (data.size() <= 1) return;
  if (is_pow2(data.size())) fft_pow2(data, false);
  else fft_bluestein(data, false);
}

void ifft(std::vector<cd>& data) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (is_pow2(n)) fft_pow2(data, true);
  else fft_bluestein(data, true);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (auto& v : data) v *= inv_n;
}

std::vector<cd> fft_real(std::span<const double> xs) {
  std::vector<cd> data(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) data[i] = cd(xs[i], 0.0);
  fft(data);
  return data;
}

}  // namespace fullweb::stats
