#include "stats/fft.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "support/executor.h"
#include "support/lru_cache.h"
#include "support/workspace.h"

namespace fullweb::stats {

namespace {

using cd = std::complex<double>;

/// Cached plans. Capacity bounds resident table memory (a length-2^20 plan
/// holds ~20 MiB of tables); the analysis pipeline cycles through a handful
/// of lengths, so 8 slots keep every hot length resident.
support::LruCache<std::size_t, FftPlan>& plan_cache() {
  static support::LruCache<std::size_t, FftPlan> cache(8);
  return cache;
}

/// Twiddles exp(-2*pi*i*k/n), k < n/2, used to unpack the half-length
/// complex transform of a packed real signal of power-of-two length n.
/// Cached separately from the plans: only lengths that actually take the
/// real-input path pay for a table.
support::LruCache<std::size_t, std::vector<cd>>& real_unpack_cache() {
  static support::LruCache<std::size_t, std::vector<cd>> cache(8);
  return cache;
}

std::shared_ptr<const std::vector<cd>> real_unpack_twiddles(std::size_t n) {
  return real_unpack_cache().get_or_create(n, [n] {
    auto table = std::make_shared<std::vector<cd>>(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n);
      (*table)[k] = cd(std::cos(angle), std::sin(angle));
    }
    return table;
  });
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n <= 1) return;

  if (is_pow2(n)) {
    // Bit-reversal permutation table: brev(i) derived from brev(i >> 1).
    assert(n <= (std::size_t{1} << 32));
    bitrev_.resize(n);
    bitrev_[0] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      bitrev_[i] = (bitrev_[i >> 1] >> 1) |
                   ((i & 1U) != 0 ? static_cast<std::uint32_t>(n >> 1) : 0U);
    }

    // Per-stage twiddles, each from its own cos/sin call: no error
    // accumulation across a stage, unlike the w *= wlen recurrence.
    twiddle_.resize(n - 1);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len >> 1;
      cd* stage = twiddle_.data() + (half - 1);
      for (std::size_t k = 0; k < half; ++k) {
        const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(len);
        stage[k] = cd(std::cos(angle), std::sin(angle));
      }
    }
    return;
  }

  // Bluestein tables. Chirp w[k] = exp(-i*pi*k^2/n); the k^2 mod 2n trick
  // keeps the argument small so cos/sin stay accurate for large k. (The
  // inverse direction conjugates the chirp on use.)
  chirp_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto k2 = static_cast<std::size_t>(
        (static_cast<unsigned long long>(k) * k) % (2ULL * n));
    const double angle = -std::numbers::pi * static_cast<double>(k2) /
                         static_cast<double>(n);
    chirp_[k] = cd(std::cos(angle), std::sin(angle));
  }

  // n complex values fit in memory, so 2n - 1 cannot overflow size_t and a
  // power of two >= 2n - 1 is representable.
  m_ = next_pow2(2 * n - 1);
  sub_ = get(m_);

  // Pre-transformed spectrum of the padded (conjugate-)chirp, per direction.
  std::vector<cd> fb(m_, cd(0.0, 0.0));
  fb[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n; ++k) fb[k] = fb[m_ - k] = std::conj(chirp_[k]);
  chirp_spectrum_fwd_ = fb;
  sub_->forward(chirp_spectrum_fwd_);

  std::fill(fb.begin(), fb.end(), cd(0.0, 0.0));
  fb[0] = chirp_[0];
  for (std::size_t k = 1; k < n; ++k) fb[k] = fb[m_ - k] = chirp_[k];
  chirp_spectrum_inv_ = std::move(fb);
  sub_->forward(chirp_spectrum_inv_);
}

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n) {
  return plan_cache().get_or_create(
      n, [n] { return std::shared_ptr<const FftPlan>(new FftPlan(n)); });
}

namespace {

/// Butterflies (or pointwise products) per task: big enough that task
/// overhead is noise, small enough that every stage of a week-scale
/// transform splits across the pool.
constexpr std::size_t kFftChunk = 16384;

/// Run body(lo, hi) over [0, count), chunked across `executor` when it is a
/// real pool and the range is worth splitting; serial otherwise. Bodies
/// write disjoint elements per index, so chunking never changes results.
template <typename Body>
void chunked(support::Executor* executor, std::size_t count, Body&& body) {
  if (executor == nullptr || executor->serial() || count < 2 * kFftChunk) {
    body(std::size_t{0}, count);
    return;
  }
  const std::size_t chunks = (count + kFftChunk - 1) / kFftChunk;
  executor->parallel_for(
      0, chunks,
      [&](std::size_t c) {
        body(c * kFftChunk, std::min(count, (c + 1) * kFftChunk));
      },
      /*grain=*/1);
}

}  // namespace

void FftPlan::transform_pow2(cd* a, bool inverse,
                             support::Executor* executor) const {
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }

  const std::size_t butterflies = n >> 1;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const cd* stage = twiddle_.data() + (half - 1);
    // One contiguous run of butterflies [k0, k1) inside the block at `lo`.
    auto run = [&](cd* lo, std::size_t k0, std::size_t k1) {
      cd* hi = lo + half;
      if (!inverse) {
        for (std::size_t k = k0; k < k1; ++k) {
          const cd u = lo[k];
          const cd v = hi[k] * stage[k];
          lo[k] = u + v;
          hi[k] = u - v;
        }
      } else {
        for (std::size_t k = k0; k < k1; ++k) {
          const cd u = lo[k];
          const cd v = hi[k] * std::conj(stage[k]);
          lo[k] = u + v;
          hi[k] = u - v;
        }
      }
    };
    // Flatten the stage's butterflies block-major and chunk them: every
    // butterfly owns its {lo[k], hi[k]} pair, so chunks never share writes
    // and the stage is bit-identical to the serial double loop.
    chunked(executor, butterflies, [&](std::size_t b, std::size_t end) {
      while (b < end) {
        const std::size_t block = b / half;
        const std::size_t k0 = b - block * half;
        const std::size_t k1 = std::min(half, k0 + (end - b));
        run(a + block * len, k0, k1);
        b += k1 - k0;
      }
    });
  }
}

void FftPlan::transform_bluestein(std::vector<cd>& a, bool inverse,
                                  support::Executor* executor) const {
  const std::size_t n = n_;
  const bool parallel = executor != nullptr && !executor->serial();
  // The serial path keeps the allocation-free per-thread arena. The
  // parallel path owns its scratch: the calling thread helps the pool
  // inside parallel_for and could steal another transform that reuses its
  // arena slot mid-flight.
  std::vector<cd> local;
  std::vector<cd>& fa =
      parallel ? local
               : support::Workspace::for_thread().cplx(support::ws::kBluestein);
  fa.assign(m_, cd(0.0, 0.0));
  chunked(executor, n, [&](std::size_t lo, std::size_t hi) {
    if (!inverse) {
      for (std::size_t k = lo; k < hi; ++k) fa[k] = a[k] * chirp_[k];
    } else {
      for (std::size_t k = lo; k < hi; ++k) fa[k] = a[k] * std::conj(chirp_[k]);
    }
  });

  sub_->transform_pow2(fa.data(), false, executor);
  const auto& fbs = inverse ? chirp_spectrum_inv_ : chirp_spectrum_fwd_;
  chunked(executor, m_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fa[i] *= fbs[i];
  });
  sub_->transform_pow2(fa.data(), true, executor);

  const double inv_m = 1.0 / static_cast<double>(m_);
  chunked(executor, n, [&](std::size_t lo, std::size_t hi) {
    if (!inverse) {
      for (std::size_t k = lo; k < hi; ++k) a[k] = fa[k] * inv_m * chirp_[k];
    } else {
      for (std::size_t k = lo; k < hi; ++k)
        a[k] = fa[k] * inv_m * std::conj(chirp_[k]);
    }
  });
}

void FftPlan::forward(std::vector<cd>& data,
                      support::Executor* executor) const {
  assert(data.size() == n_);
  if (n_ <= 1) return;
  if (!bitrev_.empty()) transform_pow2(data.data(), false, executor);
  else transform_bluestein(data, false, executor);
}

void FftPlan::backward(std::vector<cd>& data,
                       support::Executor* executor) const {
  assert(data.size() == n_);
  if (n_ <= 1) return;
  if (!bitrev_.empty()) transform_pow2(data.data(), true, executor);
  else transform_bluestein(data, true, executor);
}

std::size_t next_pow2(std::size_t n) noexcept {
  constexpr std::size_t kMaxPow2 = (SIZE_MAX >> 1) + 1;
  if (n > kMaxPow2) return 0;  // would overflow: no power of two >= n exists
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) noexcept { return n >= 1 && (n & (n - 1)) == 0; }

void fft(std::vector<cd>& data) {
  if (data.size() <= 1) return;
  FftPlan::get(data.size())->forward(data);
}

void ifft(std::vector<cd>& data) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  FftPlan::get(n)->backward(data);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (auto& v : data) v *= inv_n;
}

void fft_real(std::span<const double> xs, std::vector<cd>& out,
              support::Executor* executor) {
  const std::size_t n = xs.size();
  out.resize(n);
  if (n == 0) return;
  if (n == 1) {
    out[0] = cd(xs[0], 0.0);
    return;
  }
  if (!is_pow2(n)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = cd(xs[i], 0.0);
    FftPlan::get(n)->forward(out, executor);
    return;
  }

  // Pack-two-halves real transform: z[k] = x[2k] + i*x[2k+1], one complex
  // FFT of length n/2, then split into the even/odd-sample spectra E and O
  // and recombine X[k] = E[k] + W^k O[k] with W = exp(-2*pi*i/n).
  const bool parallel = executor != nullptr && !executor->serial();
  const std::size_t h = n / 2;
  const auto plan = FftPlan::get(h);
  const auto unpack = real_unpack_twiddles(n);
  // Local scratch on the parallel path, for the same arena-stealing reason
  // as transform_bluestein.
  std::vector<cd> local;
  std::vector<cd>& z =
      parallel ? local
               : support::Workspace::for_thread().cplx(support::ws::kRealFftHalf);
  z.resize(h);
  for (std::size_t k = 0; k < h; ++k) z[k] = cd(xs[2 * k], xs[2 * k + 1]);
  plan->forward(z, executor);

  const cd* w = unpack->data();
  out[0] = cd(z[0].real() + z[0].imag(), 0.0);
  out[h] = cd(z[0].real() - z[0].imag(), 0.0);
  // Each k writes only {out[k], out[n-k]}, disjoint across k: chunkable.
  chunked(executor, h - 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo + 1; k < hi + 1; ++k) {
      const cd zk = z[k];
      const cd zc = std::conj(z[h - k]);
      const cd e = 0.5 * (zk + zc);
      const cd o = cd(0.0, -0.5) * (zk - zc);  // (zk - zc) / (2i)
      const cd x = e + w[k] * o;
      out[k] = x;
      out[n - k] = std::conj(x);
    }
  });
}

std::vector<cd> fft_real(std::span<const double> xs) {
  std::vector<cd> out;
  fft_real(xs, out);
  return out;
}

}  // namespace fullweb::stats
