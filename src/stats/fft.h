// Fast Fourier transform: iterative radix-2 Cooley-Tukey for power-of-two
// lengths plus Bluestein's chirp-z algorithm for arbitrary lengths.
//
// Used by the periodogram (week-length per-second series, n = 604,800 — not a
// power of two), FFT-based autocorrelation, and the Davies-Harte fractional
// Gaussian noise generator.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace fullweb::stats {

/// In-place forward FFT. Any length (radix-2 fast path, Bluestein otherwise).
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/n normalization).
void ifft(std::vector<std::complex<double>>& data);

/// Forward FFT of a real sequence; returns the full complex spectrum of the
/// same length (conjugate-symmetric).
[[nodiscard]] std::vector<std::complex<double>> fft_real(std::span<const double> xs);

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// True if n is a power of two (n >= 1).
[[nodiscard]] bool is_pow2(std::size_t n) noexcept;

}  // namespace fullweb::stats
