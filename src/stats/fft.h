// Fast Fourier transform: iterative radix-2 Cooley-Tukey for power-of-two
// lengths plus Bluestein's chirp-z algorithm for arbitrary lengths.
//
// Used by the periodogram (week-length per-second series, n = 604,800 — not a
// power of two), FFT-based autocorrelation, and the Davies-Harte fractional
// Gaussian noise generator.
//
// Transforms are driven by cached FftPlans: bit-reversal and per-stage
// twiddle tables for the radix-2 path, and for Bluestein lengths the chirp
// table plus the pre-transformed chirp spectrum per direction. Plans live in
// a process-wide mutex-guarded LRU (support::LruCache), so repeated
// same-length transforms — ACF sweeps, periodogram batches, bootstrap
// replicates, fGn Monte-Carlo draws — pay the setup cost once.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace fullweb::support {
class Executor;
}

namespace fullweb::stats {

/// Precomputed tables for length-n DFTs. Immutable after construction and
/// shared across threads; obtain instances through get() only.
///
/// Executor parameter: unlike the rest of the library, a null executor here
/// means SERIAL (not "the global pool") — the FFT is a leaf kernel and most
/// call sites want the allocation-free thread-local-workspace path. Passing
/// an executor opts the transform into chunking each butterfly stage (and
/// the Bluestein pointwise products) across the pool; every butterfly
/// writes only its own pair of slots in the serial accumulation order, so
/// the spectrum is bit-identical at any thread count. The parallel path
/// uses locally-owned scratch instead of Workspace slots, because a thread
/// that helps the pool mid-transform may steal another FFT task that would
/// reuse its arena.
class FftPlan {
 public:
  /// The (cached) plan for length-n transforms.
  [[nodiscard]] static std::shared_ptr<const FftPlan> get(std::size_t n);

  [[nodiscard]] std::size_t length() const noexcept { return n_; }

  /// In-place unnormalized forward DFT of exactly length() points.
  void forward(std::vector<std::complex<double>>& data,
               support::Executor* executor = nullptr) const;

  /// In-place unnormalized inverse DFT (callers scale by 1/n; ifft() does).
  void backward(std::vector<std::complex<double>>& data,
                support::Executor* executor = nullptr) const;

 private:
  explicit FftPlan(std::size_t n);

  void transform_pow2(std::complex<double>* a, bool inverse,
                      support::Executor* executor) const;
  void transform_bluestein(std::vector<std::complex<double>>& a, bool inverse,
                           support::Executor* executor) const;

  std::size_t n_ = 0;

  // Radix-2 tables (power-of-two lengths). twiddle_ is the per-stage table
  // laid out flat: stage `len` holds exp(-2*pi*i*k/len), k < len/2, at
  // offset len/2 - 1 (n - 1 entries total). Twiddles are computed with
  // direct cos/sin per entry — unlike the w *= wlen recurrence this does
  // not accumulate rounding error across a stage.
  std::vector<std::uint32_t> bitrev_;
  std::vector<std::complex<double>> twiddle_;

  // Bluestein tables (other lengths): chirp w[k] = exp(-i*pi*k^2/n) (the
  // inverse direction conjugates on use), and the forward length-m_ spectrum
  // of the padded conjugate-chirp sequence for each direction.
  std::size_t m_ = 0;                      ///< convolution length, power of two
  std::shared_ptr<const FftPlan> sub_;     ///< length-m_ radix-2 plan
  std::vector<std::complex<double>> chirp_;
  std::vector<std::complex<double>> chirp_spectrum_fwd_;
  std::vector<std::complex<double>> chirp_spectrum_inv_;
};

/// In-place forward FFT. Any length (radix-2 fast path, Bluestein otherwise).
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/n normalization).
void ifft(std::vector<std::complex<double>>& data);

/// Forward FFT of a real sequence; returns the full complex spectrum of the
/// same length (conjugate-symmetric).
[[nodiscard]] std::vector<std::complex<double>> fft_real(std::span<const double> xs);

/// As above, but writes the spectrum into `out` (resized to xs.size()).
/// Power-of-two lengths use the packed real-to-complex path: one complex FFT
/// of length n/2 instead of length n (~2x fewer flops). `out` may be a
/// reused scratch buffer; it must not alias the Workspace slots the FFT uses
/// internally (ws::kRealFftHalf, ws::kBluestein).
/// A non-null `executor` parallelizes the transform stages (null = serial;
/// see the FftPlan note — results are bit-identical either way).
void fft_real(std::span<const double> xs,
              std::vector<std::complex<double>>& out,
              support::Executor* executor = nullptr);

/// Smallest power of two >= n, or 0 when none is representable in size_t
/// (n > 2^63 on 64-bit). Callers transform buffers that exist in memory, so
/// in practice 0 signals arithmetic misuse, not a plannable transform.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// True if n is a power of two (n >= 1).
[[nodiscard]] bool is_pow2(std::size_t n) noexcept;

}  // namespace fullweb::stats
