// Descriptive statistics and empirical distribution utilities.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fullweb::stats {

/// Arithmetic mean. Precondition: !xs.empty().
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (divides by n-1). Returns 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Population variance (divides by n). Returns 0 for n < 1.
[[nodiscard]] double variance_population(std::span<const double> xs) noexcept;

[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

[[nodiscard]] double min_value(std::span<const double> xs) noexcept;
[[nodiscard]] double max_value(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile (type 7, the R default). q in [0, 1].
/// Precondition: !xs.empty(). Input need not be sorted.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile on data the caller has already sorted ascending (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

/// Five-number summary plus mean/sd, used in workload reports.
struct Summary {
  std::size_t n = 0;
  double mean = 0, stddev = 0;
  double min = 0, q25 = 0, median = 0, q75 = 0, max = 0;
};
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Empirical CDF evaluated at each distinct sample point.
/// Returns sorted x values and F(x) = (# samples <= x) / n.
struct Ecdf {
  std::vector<double> x;   ///< distinct sorted sample values
  std::vector<double> f;   ///< F(x[i]), strictly increasing, last = 1
  /// Complementary CDF P[X > x[i]] = 1 - f[i]; the last entry is 0 and is
  /// typically dropped before log-log plotting.
  [[nodiscard]] std::vector<double> ccdf() const;
};
[[nodiscard]] Ecdf ecdf(std::span<const double> xs);

}  // namespace fullweb::stats
