// Descriptive statistics and empirical distribution utilities.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace fullweb::stats {

/// Arithmetic mean. Precondition: !xs.empty().
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Neumaier-compensated running sum: exact to ~1 ulp of the true sum even
/// when terms cancel or a large offset dominates (Kahan's variant that also
/// handles |term| > |sum|). The building block of stats::PrefixMoments and
/// the compensated demean paths in kpss_test / rs_plot.
struct NeumaierSum {
  double sum = 0.0;
  double comp = 0.0;

  void add(double x) noexcept {
    const double t = sum + x;
    // Branchless form of "whichever operand was larger lost the low bits".
    const double big = std::abs(sum) >= std::abs(x) ? sum : x;
    const double small = std::abs(sum) >= std::abs(x) ? x : sum;
    comp += (big - t) + small;
    sum = t;
  }
  [[nodiscard]] double value() const noexcept { return sum + comp; }
};

/// Compensated sum / mean of a span (Neumaier). mean requires !xs.empty().
[[nodiscard]] double compensated_sum(std::span<const double> xs) noexcept;
[[nodiscard]] double compensated_mean(std::span<const double> xs) noexcept;

/// Per-block means of consecutive, non-overlapping blocks of size m:
/// out[k] = mean(xs[k*m .. (k+1)*m)). Requires xs.size() >= out.size() * m
/// and m >= 1. Four-lane accumulation: the inner loop is branch-free and
/// contiguous so it vectorizes; blocks shorter than one lane group reduce
/// serially (left-to-right), matching the naive order exactly for m < 4.
void block_means(std::span<const double> xs, std::size_t m,
                 std::span<double> out) noexcept;

/// Per-block population variances of consecutive blocks of size m, two-pass
/// (each block centered by its own mean). Same preconditions as block_means.
void block_variances(std::span<const double> xs, std::size_t m,
                     std::span<double> out) noexcept;

/// Min/max of the drifted prefix walk w_k = cum[k] - base - (k+1) * step for
/// k = 0..cum.size()-1, over {0} ∪ {w_k} (the R/S adjusted-range convention:
/// the walk starts at 0 before the first term). Branch-free lanes.
void minmax_prefix_walk(std::span<const double> cum, double base, double step,
                        double& min_out, double& max_out) noexcept;

/// Unbiased sample variance (divides by n-1). Returns 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Population variance (divides by n). Returns 0 for n < 1.
[[nodiscard]] double variance_population(std::span<const double> xs) noexcept;

[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

[[nodiscard]] double min_value(std::span<const double> xs) noexcept;
[[nodiscard]] double max_value(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile (type 7, the R default). q in [0, 1].
/// Precondition: !xs.empty(). Input need not be sorted.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile on data the caller has already sorted ascending (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

/// Five-number summary plus mean/sd, used in workload reports.
struct Summary {
  std::size_t n = 0;
  double mean = 0, stddev = 0;
  double min = 0, q25 = 0, median = 0, q75 = 0, max = 0;
};
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Empirical CDF evaluated at each distinct sample point.
/// Returns sorted x values and F(x) = (# samples <= x) / n.
struct Ecdf {
  std::vector<double> x;   ///< distinct sorted sample values
  std::vector<double> f;   ///< F(x[i]), strictly increasing, last = 1
  /// Complementary CDF P[X > x[i]] = 1 - f[i]; the last entry is 0 and is
  /// typically dropped before log-log plotting.
  [[nodiscard]] std::vector<double> ccdf() const;
};
[[nodiscard]] Ecdf ecdf(std::span<const double> xs);

}  // namespace fullweb::stats
