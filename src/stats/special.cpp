#include "stats/special.h"

#include <cmath>
#include <stdexcept>

namespace fullweb::stats {

double digamma(double x) {
  if (!(x > 0.0)) throw std::invalid_argument("digamma: x must be > 0");
  double result = 0.0;
  // psi(x) = psi(x+1) - 1/x until the asymptotic region (error < 1e-12
  // beyond x = 12 with the series below).
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: psi(x) ~ ln x - 1/(2x) - sum B_2k / (2k x^{2k}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0)));
  return result;
}

double trigamma(double x) {
  if (!(x > 0.0)) throw std::invalid_argument("trigamma: x must be > 0");
  double result = 0.0;
  // psi'(x) = psi'(x+1) + 1/x^2.
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // psi'(x) ~ 1/x + 1/(2x^2) + sum B_2k / x^{2k+1}.
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0))));
  return result;
}

}  // namespace fullweb::stats
