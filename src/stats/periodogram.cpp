#include "stats/periodogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <numbers>

#include "stats/descriptive.h"
#include "stats/fft.h"
#include "support/executor.h"
#include "support/workspace.h"

namespace fullweb::stats {

Periodogram periodogram(std::span<const double> xs,
                        support::Executor* executor) {
  Periodogram pg;
  const std::size_t n = xs.size();
  if (n < 2) return pg;

  // Remove the mean so the j = 0 ordinate does not leak into neighbours.
  // Power-of-two lengths (the whittle/Hurst sweeps truncate to one) take the
  // packed real path. Serially, staging + spectrum live in per-thread
  // scratch; when an executor drives the FFT, local buffers replace the
  // Workspace slots — a thread helping the pool mid-transform may steal
  // another periodogram task that would reuse its arena.
  const bool parallel = executor != nullptr && !executor->serial();
  const double m = mean(xs);
  auto& arena = support::Workspace::for_thread();
  std::vector<double> staged_local;
  std::vector<std::complex<double>> buf_local;
  auto& staged = parallel ? staged_local : arena.real(support::ws::kFftStage);
  staged.resize(n);
  for (std::size_t i = 0; i < n; ++i) staged[i] = xs[i] - m;
  auto& buf = parallel ? buf_local : arena.cplx(support::ws::kSpectrum);
  fft_real(staged, buf, executor);

  const std::size_t half = (n - 1) / 2;
  pg.frequency.resize(half);
  pg.power.resize(half);
  const double norm = 1.0 / (2.0 * std::numbers::pi * static_cast<double>(n));
  auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t j = i + 1;
      pg.frequency[i] = 2.0 * std::numbers::pi * static_cast<double>(j) /
                        static_cast<double>(n);
      pg.power[i] = std::norm(buf[j]) * norm;
    }
  };
  constexpr std::size_t kFillChunk = 16384;
  if (!parallel || half < 2 * kFillChunk) {
    fill(0, half);
  } else {
    const std::size_t chunks = (half + kFillChunk - 1) / kFillChunk;
    executor->parallel_for(
        0, chunks,
        [&](std::size_t c) {
          fill(c * kFillChunk, std::min(half, (c + 1) * kFillChunk));
        },
        /*grain=*/1);
  }
  return pg;
}

double dominant_period(const Periodogram& pg, double min_period,
                       double max_period) {
  assert(min_period > 0 && max_period >= min_period);
  double best_power = -1.0;
  double best_period = 0.0;
  for (std::size_t i = 0; i < pg.frequency.size(); ++i) {
    const double period = 2.0 * std::numbers::pi / pg.frequency[i];
    if (period < min_period || period > max_period) continue;
    if (pg.power[i] > best_power) {
      best_power = pg.power[i];
      best_period = period;
    }
  }
  return best_period;
}

}  // namespace fullweb::stats
