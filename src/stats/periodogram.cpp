#include "stats/periodogram.h"

#include <cassert>
#include <cmath>
#include <complex>
#include <numbers>

#include "stats/descriptive.h"
#include "stats/fft.h"
#include "support/workspace.h"

namespace fullweb::stats {

Periodogram periodogram(std::span<const double> xs) {
  Periodogram pg;
  const std::size_t n = xs.size();
  if (n < 2) return pg;

  // Remove the mean so the j = 0 ordinate does not leak into neighbours.
  // Staging + spectrum live in per-thread scratch; power-of-two lengths
  // (the whittle/Hurst sweeps truncate to one) take the packed real path.
  const double m = mean(xs);
  auto& arena = support::Workspace::for_thread();
  auto& staged = arena.real(support::ws::kFftStage);
  staged.resize(n);
  for (std::size_t i = 0; i < n; ++i) staged[i] = xs[i] - m;
  auto& buf = arena.cplx(support::ws::kSpectrum);
  fft_real(staged, buf);

  const std::size_t half = (n - 1) / 2;
  pg.frequency.reserve(half);
  pg.power.reserve(half);
  const double norm = 1.0 / (2.0 * std::numbers::pi * static_cast<double>(n));
  for (std::size_t j = 1; j <= half; ++j) {
    pg.frequency.push_back(2.0 * std::numbers::pi * static_cast<double>(j) /
                           static_cast<double>(n));
    pg.power.push_back(std::norm(buf[j]) * norm);
  }
  return pg;
}

double dominant_period(const Periodogram& pg, double min_period,
                       double max_period) {
  assert(min_period > 0 && max_period >= min_period);
  double best_power = -1.0;
  double best_period = 0.0;
  for (std::size_t i = 0; i < pg.frequency.size(); ++i) {
    const double period = 2.0 * std::numbers::pi / pg.frequency[i];
    if (period < min_period || period > max_period) continue;
    if (pg.power[i] > best_power) {
      best_power = pg.power[i];
      best_period = period;
    }
  }
  return best_period;
}

}  // namespace fullweb::stats
