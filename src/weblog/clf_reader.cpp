#include "weblog/clf_reader.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <utility>
#include <vector>

#include "support/executor.h"
#include "support/strings.h"

namespace fullweb::weblog {

using support::Error;
using support::Result;

namespace {

/// Result of parsing one newline-delimited block.
struct ParsedChunk {
  std::vector<LogEntry> entries;
  std::size_t lines = 0;
  std::array<std::size_t, kClfParseReasonCount> malformed{};
};

/// Parse every line of `text` (blank lines are skipped silently, matching
/// parse_clf_stream). Runs on a worker thread; touches nothing shared.
ParsedChunk parse_chunk(const std::string& text) {
  ParsedChunk out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line =
        support::trim(std::string_view(text).substr(pos, nl - pos));
    pos = nl + 1;
    if (line.empty()) continue;
    ++out.lines;
    ClfParseReason reason = ClfParseReason::kNone;
    auto e = parse_clf_line(line, &reason);
    if (e.ok()) {
      out.entries.push_back(std::move(e).value());
    } else {
      ++out.malformed[static_cast<std::size_t>(reason)];
    }
  }
  return out;
}

}  // namespace

std::string IngestStats::summary() const {
  if (open_failed) return path + ": OPEN FAILED";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "bytes=%llu lines=%zu parsed=%zu malformed=%zu chunks=%zu "
                "wall=%.3fs",
                static_cast<unsigned long long>(bytes), lines, parsed,
                malformed, chunks, wall_seconds);
  std::string out = path.empty() ? std::string(buf) : path + ": " + buf;
  for (std::size_t i = 1; i < kClfParseReasonCount; ++i) {
    if (malformed_by_reason[i] == 0) continue;
    out += " ";
    out += to_string(static_cast<ClfParseReason>(i));
    out += "=" + std::to_string(malformed_by_reason[i]);
  }
  return out;
}

Result<IngestStats> read_clf_file(
    const std::string& path, const ClfReaderOptions& options,
    const std::function<void(LogEntry&&)>& on_entry) {
  const auto start = std::chrono::steady_clock::now();
  IngestStats stats;
  stats.path = path;

  std::ifstream is(path, std::ios::binary);
  if (!is) {
    stats.open_failed = true;
    return Error{"cannot open " + path, "io"};
  }

  support::Executor& ex = support::Executor::resolve(options.executor);
  const std::size_t chunk_bytes = std::max<std::size_t>(options.chunk_bytes, 4096);
  const std::size_t inflight =
      options.max_inflight_chunks != 0
          ? options.max_inflight_chunks
          : std::max<std::size_t>(2 * ex.threads(), 2);

  // Futures are drained strictly FIFO, so entries reach `on_entry` in file
  // order no matter which worker parsed which block.
  std::deque<support::Future<ParsedChunk>> pending;
  // Unwind safety: if `on_entry` (or a parse task) throws mid-drain, the
  // remaining futures must not be abandoned with tasks still queued on the
  // Executor — wait for each and discard its result (and any stored
  // exception), so the pool is quiescent again when the exception leaves
  // this frame.
  struct PendingDrainGuard {
    std::deque<support::Future<ParsedChunk>>& pending;
    ~PendingDrainGuard() {
      for (auto& f : pending) {
        try {
          (void)f.get();
        } catch (...) {  // already unwinding; swallow secondary failures
        }
      }
      pending.clear();
    }
  } drain_guard{pending};
  auto drain_one = [&] {
    ParsedChunk chunk = pending.front().get();
    pending.pop_front();
    stats.lines += chunk.lines;
    stats.parsed += chunk.entries.size();
    for (std::size_t i = 0; i < kClfParseReasonCount; ++i) {
      stats.malformed_by_reason[i] += chunk.malformed[i];
      stats.malformed += chunk.malformed[i];
    }
    for (auto& e : chunk.entries) on_entry(std::move(e));
  };
  auto submit = [&](std::string&& text) {
    ++stats.chunks;
    pending.push_back(
        ex.async([text = std::move(text)] { return parse_chunk(text); }));
    if (pending.size() >= inflight) drain_one();
  };

  std::string carry;  // partial trailing line of the previous block
  std::string block;
  while (is) {
    block.assign(chunk_bytes, '\0');
    is.read(block.data(), static_cast<std::streamsize>(chunk_bytes));
    block.resize(static_cast<std::size_t>(is.gcount()));
    if (block.empty()) break;
    stats.bytes += block.size();

    std::string text = std::move(carry);
    text += block;
    const auto nl = text.rfind('\n');
    if (nl == std::string::npos) {
      // No newline yet — keep accumulating (degenerate giant-line case).
      carry = std::move(text);
      continue;
    }
    carry = text.substr(nl + 1);
    text.resize(nl + 1);
    submit(std::move(text));
  }
  if (!carry.empty()) submit(std::move(carry));  // final unterminated line
  while (!pending.empty()) drain_one();

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace fullweb::weblog
