#include "weblog/clf_reader.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "support/executor.h"
#include "support/strings.h"
#include "weblog/clf_scan.h"

namespace fullweb::weblog {

using support::Error;
using support::Result;

namespace {

/// Result of parsing one newline-delimited block. The records view `*text`
/// (and, for escaped request fields, `owned`); both are kept alive until
/// the chunk is drained. `text` is a shared_ptr only because the Executor's
/// type-erased task queue requires copyable callables — the block is never
/// actually shared or copied.
struct ParsedChunk {
  std::shared_ptr<const std::string> text;
  std::deque<std::string> owned;
  std::vector<ClfRecord> records;
  std::size_t lines = 0;
  std::array<std::size_t, kClfParseReasonCount> malformed{};
};

/// Parse every line of `*text` (blank lines are skipped silently, matching
/// parse_clf_stream). Runs on a worker thread; touches nothing shared. The
/// parser — and with it the same-second timestamp memo — is chunk-local,
/// so parallel workers share no state.
ParsedChunk parse_chunk(std::shared_ptr<const std::string> text) {
  ParsedChunk out;
  ClfLineParser parser;
  out.records.reserve(text->size() / 48 + 1);
  const char* p = text->data();
  const char* const end = p + text->size();
  while (p < end) {
    const char* nl = scan::find_byte_long(p, end, '\n');
    std::string_view line(p, static_cast<std::size_t>(nl - p));
    p = nl + 1;
    line = support::trim(line);
    if (line.empty()) continue;
    ++out.lines;
    ClfParseReason reason = ClfParseReason::kNone;
    ClfRecord record;
    if (parser.parse(line, record, &reason)) {
      out.records.push_back(record);
    } else {
      ++out.malformed[static_cast<std::size_t>(reason)];
    }
  }
  out.owned = parser.take_owned();
  out.text = std::move(text);
  return out;
}

}  // namespace

std::string IngestStats::summary() const {
  if (open_failed) return path + ": OPEN FAILED";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "bytes=%llu lines=%zu parsed=%zu malformed=%zu chunks=%zu "
                "wall=%.3fs",
                static_cast<unsigned long long>(bytes), lines, parsed,
                malformed, chunks, wall_seconds);
  std::string out = path.empty() ? std::string(buf) : path + ": " + buf;
  for (std::size_t i = 1; i < kClfParseReasonCount; ++i) {
    if (malformed_by_reason[i] == 0) continue;
    out += " ";
    out += to_string(static_cast<ClfParseReason>(i));
    out += "=" + std::to_string(malformed_by_reason[i]);
  }
  return out;
}

Result<IngestStats> read_clf_records(
    const std::string& path, const ClfReaderOptions& options,
    const std::function<void(const ClfRecord&)>& on_record) {
  const auto start = std::chrono::steady_clock::now();
  IngestStats stats;
  stats.path = path;

  std::ifstream is(path, std::ios::binary);
  if (!is) {
    stats.open_failed = true;
    return Error{"cannot open " + path, "io"};
  }

  support::Executor& ex = support::Executor::resolve(options.executor);
  const std::size_t chunk_bytes = std::max<std::size_t>(options.chunk_bytes, 4096);
  const std::size_t inflight =
      options.max_inflight_chunks != 0
          ? options.max_inflight_chunks
          : std::max<std::size_t>(2 * ex.threads(), 2);

  // Futures are drained strictly FIFO, so records reach `on_record` in file
  // order no matter which worker parsed which block.
  std::deque<support::Future<ParsedChunk>> pending;
  // Unwind safety: if `on_record` (or a parse task) throws mid-drain, the
  // remaining futures must not be abandoned with tasks still queued on the
  // Executor — wait for each and discard its result (and any stored
  // exception), so the pool is quiescent again when the exception leaves
  // this frame.
  struct PendingDrainGuard {
    std::deque<support::Future<ParsedChunk>>& pending;
    ~PendingDrainGuard() {
      for (auto& f : pending) {
        try {
          (void)f.get();
        } catch (...) {  // already unwinding; swallow secondary failures
        }
      }
      pending.clear();
    }
  } drain_guard{pending};
  auto drain_one = [&] {
    ParsedChunk chunk = pending.front().get();
    pending.pop_front();
    stats.lines += chunk.lines;
    stats.parsed += chunk.records.size();
    for (std::size_t i = 0; i < kClfParseReasonCount; ++i) {
      stats.malformed_by_reason[i] += chunk.malformed[i];
      stats.malformed += chunk.malformed[i];
    }
    for (const auto& r : chunk.records) on_record(r);
  };
  auto submit = [&](std::shared_ptr<std::string>&& text) {
    ++stats.chunks;
    pending.push_back(ex.async(
        [text = std::shared_ptr<const std::string>(std::move(text))] {
          return parse_chunk(text);
        }));
    if (pending.size() >= inflight) drain_one();
  };

  std::string carry;  // partial trailing line of the previous block
  while (is) {
    // Read the next block directly behind the carried partial line, so the
    // only per-block copy is the carry itself (at most one line).
    auto text = std::make_shared<std::string>();
    text->resize(carry.size() + chunk_bytes);
    std::memcpy(text->data(), carry.data(), carry.size());
    is.read(text->data() + carry.size(),
            static_cast<std::streamsize>(chunk_bytes));
    const auto got = static_cast<std::size_t>(is.gcount());
    if (got == 0) break;
    text->resize(carry.size() + got);
    stats.bytes += got;

    const auto nl = text->rfind('\n');
    if (nl == std::string::npos) {
      // No newline yet — keep accumulating (degenerate giant-line case).
      carry = std::move(*text);
      continue;
    }
    carry.assign(*text, nl + 1, std::string::npos);
    text->resize(nl + 1);
    submit(std::move(text));
  }
  if (!carry.empty())  // final unterminated line
    submit(std::make_shared<std::string>(std::move(carry)));
  while (!pending.empty()) drain_one();

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

Result<IngestStats> read_clf_file(
    const std::string& path, const ClfReaderOptions& options,
    const std::function<void(LogEntry&&)>& on_entry) {
  return read_clf_records(path, options, [&](const ClfRecord& record) {
    on_entry(ClfLineParser::materialize(record));
  });
}

}  // namespace fullweb::weblog
