// Multi-log merging — the first step of the paper's Figure 1 pipeline.
//
// WVU and CSEE ran redundant Web servers; their access and error logs are
// merged into one chronological stream before sessionization (a client's
// requests may alternate between replicas, so per-log sessionization would
// split sessions). The merge is stable on ties so replica ordering is
// deterministic.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/result.h"
#include "weblog/entry.h"

namespace fullweb::weblog {

/// Merge several parsed logs into one time-ordered entry stream.
[[nodiscard]] std::vector<LogEntry> merge_entries(
    std::vector<std::vector<LogEntry>> logs);

struct MergeFileReport {
  std::string path;
  std::size_t parsed = 0;
  std::size_t malformed = 0;
  /// The file could not be opened at all. Distinguishes "unreadable" from
  /// "readable but empty/fully malformed" — a silent parsed=0/malformed=0
  /// row used to be the only trace of a bad path.
  bool open_failed = false;
  std::string error;  ///< open-failure detail, empty otherwise
};

struct MergeResult {
  std::vector<LogEntry> entries;         ///< time-ordered union
  std::vector<MergeFileReport> files;    ///< per-file parse accounting
};

/// Parse and merge several CLF files. Errors when no file yields any entry
/// (all unreadable or fully malformed); individual unreadable files are
/// recorded with open_failed set rather than failing the whole merge.
[[nodiscard]] support::Result<MergeResult> merge_clf_files(
    std::span<const std::string> paths);

}  // namespace fullweb::weblog
