// Vectorized byte-scanning primitives for the CLF ingest hot path.
//
// Two tiers, one contract: every function returns byte-identical results to
// its *_scalar reference (pinned by test_weblog_parser_identity), so the
// parser built on top is bit-identical no matter which tier ran.
//
//  * SWAR (here, header-inline): 8-byte word scans in portable C++ — these
//    back the short in-line token scans of ClfLineParser, where call
//    overhead would eat a wide vector's advantage.
//  * AVX2 (clf_scan.cpp, opted into cmake/hot_simd.cmake's per-file gate):
//    32-byte block scans for the long streams — newline splitting of MB
//    chunks and request-field scans. Integer compares only, so the
//    bit-identity contract is trivial (no FP rounding is involved at all);
//    on hosts without AVX2 the .cpp falls back to the SWAR tier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fullweb::weblog::scan {

namespace detail {

inline constexpr std::uint64_t kLowBits = 0x0101010101010101ULL;
inline constexpr std::uint64_t kHighBits = 0x8080808080808080ULL;

inline std::uint64_t load8(const char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Per-byte "is zero" mask: high bit of every zero byte of `v` is set (the
/// classic haszero trick); nonzero bytes contribute no false positives when
/// the result is consumed via countr_zero of the lowest set high bit.
inline std::uint64_t zero_bytes(std::uint64_t v) noexcept {
  return (v - kLowBits) & ~v & kHighBits;
}

inline std::uint64_t broadcast(char c) noexcept {
  return kLowBits * static_cast<unsigned char>(c);
}

/// Index of the lowest byte whose high bit is set in a zero_bytes() mask.
inline int first_marked_byte(std::uint64_t mask) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(mask) >> 3;
#else
  int i = 0;
  while ((mask & 0x80U) == 0) {
    mask >>= 8;
    ++i;
  }
  return i;
#endif
}

}  // namespace detail

/// First occurrence of `c` in [p, end); returns `end` when absent.
/// SWAR tier — use find_byte_long for multi-hundred-byte streams.
inline const char* find_byte(const char* p, const char* end, char c) noexcept {
  const std::uint64_t pat = detail::broadcast(c);
  while (end - p >= 8) {
    const std::uint64_t hit = detail::zero_bytes(detail::load8(p) ^ pat);
    if (hit != 0) return p + detail::first_marked_byte(hit);
    p += 8;
  }
  while (p < end && *p != c) ++p;
  return p;
}

/// First occurrence of `a` or `b` in [p, end); returns `end` when absent.
inline const char* find_either(const char* p, const char* end, char a,
                               char b) noexcept {
  const std::uint64_t pa = detail::broadcast(a);
  const std::uint64_t pb = detail::broadcast(b);
  while (end - p >= 8) {
    const std::uint64_t v = detail::load8(p);
    const std::uint64_t hit =
        detail::zero_bytes(v ^ pa) | detail::zero_bytes(v ^ pb);
    if (hit != 0) return p + detail::first_marked_byte(hit);
    p += 8;
  }
  while (p < end && *p != a && *p != b) ++p;
  return p;
}

/// True when every byte of [p, p+n) is an ASCII digit '0'..'9'.
///
/// SWAR: per-word, `v - 0x30..` sets a byte's high bit when the byte is
/// below '0' (borrows can only corrupt neighbours of an already-failing
/// byte, so the reject verdict stands), and `v + 0x46..` sets it when the
/// byte is above '9' (0x46 = 0x7f - '9'; the carry-out case requires a
/// byte >= 0xba, which already failed the subtraction test). When every
/// byte is a digit neither operation crosses a byte boundary, so the
/// accept verdict is exact.
inline bool all_digits(const char* p, std::size_t n) noexcept {
  constexpr std::uint64_t kSub = detail::kLowBits * 0x30U;  // '0' per byte
  constexpr std::uint64_t kAdd = detail::kLowBits * 0x46U;  // 0x7f - '9'
  while (n >= 8) {
    const std::uint64_t v = detail::load8(p);
    if ((((v - kSub) | (v + kAdd)) & detail::kHighBits) != 0) return false;
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    if (static_cast<unsigned char>(*p - '0') > 9) return false;
  }
  return true;
}

/// Long-stream find: AVX2 32-byte blocks when clf_scan.cpp was built under
/// the hot_simd gate, otherwise the SWAR tier. Same result, always.
[[nodiscard]] const char* find_byte_long(const char* p, const char* end,
                                         char c) noexcept;

// Byte-at-a-time references for the scalar-vs-SIMD bit-identity suite.
[[nodiscard]] const char* find_byte_scalar(const char* p, const char* end,
                                           char c) noexcept;
[[nodiscard]] const char* find_either_scalar(const char* p, const char* end,
                                             char a, char b) noexcept;
[[nodiscard]] bool all_digits_scalar(const char* p, std::size_t n) noexcept;

/// True when clf_scan.cpp was compiled with the AVX2 tier (i.e. the
/// hot_simd gate fired); lets tests report which tiers they covered.
[[nodiscard]] bool compiled_with_avx2() noexcept;

}  // namespace fullweb::weblog::scan
