// Incremental sessionization with memory bounded by *open* sessions.
//
// The batch sessionizer sorts an index over every request — O(total
// requests) memory — which caps ingest at whatever fits in RAM. For a
// time-ordered request stream the session decision is local: a client's
// open session either absorbs the next request (gap <= threshold) or is
// closed forever, because once `now - end > threshold` no later request can
// extend it. This class exploits that:
//
//  * Open sessions live in a hash map keyed by client id, and additionally
//    on an intrusive list ordered by last-activity time. Because input
//    times are non-decreasing, touching a session moves it to the back and
//    the list STAYS sorted — eviction is "pop expired sessions off the
//    front", O(1) amortized per request.
//  * Peak memory is O(peak concurrently-open sessions), not O(total
//    requests): an infinite-source arrival stream (Faÿ–Roueff–Soulier) can
//    be sessionized in constant space per active user.
//  * finish() closes the remainder and returns the table in the canonical
//    `session_order`, bit-identical to `sessionize()` on the same
//    (time-sorted) input.
//
// Contract: feed requests in non-decreasing time order. Out-of-order input
// is detected and flagged (`saw_unsorted()`); results are then unreliable
// and the caller must fall back to the batch path (Dataset does).
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "weblog/sessionizer.h"

namespace fullweb::weblog {

class StreamingSessionizer {
 public:
  explicit StreamingSessionizer(SessionizerOptions options = {})
      : options_(options) {}

  /// Feed the next request; times must be non-decreasing across calls.
  void add(const Request& r);

  /// Close every still-open session and return the accumulated table in
  /// canonical `session_order` (sessions already drained with take_closed()
  /// are not included). The sessionizer is reset and may be reused.
  [[nodiscard]] std::vector<Session> finish();

  /// Move out sessions that are already final (their client has been idle
  /// past the threshold). Lets a true streaming consumer drain output
  /// without accumulating the whole table; the order is eviction order
  /// (non-decreasing end time), NOT the canonical table order.
  [[nodiscard]] std::vector<Session> take_closed();

  [[nodiscard]] std::size_t open_sessions() const noexcept {
    return by_end_.size();
  }
  [[nodiscard]] std::size_t peak_open_sessions() const noexcept {
    return peak_open_;
  }
  /// Restart the high-water mark, so peak_open_sessions() afterwards
  /// reports the maximum open-session count observed at events fed after
  /// this call (0 when none are fed). Sessions carried over from before the
  /// restart count as soon as a subsequent event shows them still open;
  /// sessions that lazy eviction has not yet retired but whose threshold
  /// already elapsed never inflate the new window's peak. Lets multi-file
  /// ingests report per-file peaks.
  void reset_peak() noexcept { peak_open_ = 0; }
  /// True once any request arrived with a timestamp below its predecessor.
  [[nodiscard]] bool saw_unsorted() const noexcept { return saw_unsorted_; }

 private:
  void evict_idle_before(double now);

  SessionizerOptions options_;
  std::list<Session> by_end_;  ///< open sessions, ascending last-activity
  std::unordered_map<std::uint32_t, std::list<Session>::iterator> open_;
  std::vector<Session> closed_;
  double last_time_ = -1.0;
  bool any_ = false;
  bool saw_unsorted_ = false;
  std::size_t peak_open_ = 0;
};

}  // namespace fullweb::weblog
