#include "weblog/clf.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>

#include "support/strings.h"

namespace fullweb::weblog {

using support::Error;
using support::Result;

namespace {

constexpr std::array<const char*, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
long long days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const long long era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153U * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;                     // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<long long>(doe) - 719468;
}

/// Inverse of days_from_civil.
void civil_from_days(long long z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long long yy = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

int month_from_abbrev(std::string_view s) noexcept {
  for (std::size_t i = 0; i < kMonths.size(); ++i)
    if (s == kMonths[i]) return static_cast<int>(i) + 1;
  return 0;
}

}  // namespace

std::string format_clf_timestamp(double epoch_seconds) {
  const auto total = static_cast<long long>(std::floor(epoch_seconds));
  long long days = total / 86400;
  long long sod = total % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  int y, m, d;
  civil_from_days(days, y, m, d);
  char buf[40];
  std::snprintf(buf, sizeof buf, "[%02d/%s/%04d:%02lld:%02lld:%02lld +0000]", d,
                kMonths[static_cast<std::size_t>(m - 1)], y, sod / 3600,
                (sod / 60) % 60, sod % 60);
  return buf;
}

Result<double> parse_clf_timestamp(std::string_view text) {
  // "[dd/Mon/yyyy:HH:MM:SS +zzzz]" — brackets optional here.
  if (!text.empty() && text.front() == '[') text.remove_prefix(1);
  if (!text.empty() && text.back() == ']') text.remove_suffix(1);
  // dd/Mon/yyyy:HH:MM:SS +zzzz
  if (text.size() < 20) return Error::parse("timestamp too short");

  const auto day = support::parse_int(text.substr(0, 2));
  const int mon = month_from_abbrev(text.substr(3, 3));
  const auto year = support::parse_int(text.substr(7, 4));
  const auto hh = support::parse_int(text.substr(12, 2));
  const auto mm = support::parse_int(text.substr(15, 2));
  const auto ss = support::parse_int(text.substr(18, 2));
  if (!day || mon == 0 || !year || !hh || !mm || !ss ||
      text[2] != '/' || text[6] != '/' || text[11] != ':' || text[14] != ':' ||
      text[17] != ':')
    return Error::parse("malformed timestamp: " + std::string(text));

  long long offset_seconds = 0;
  if (text.size() >= 26 && (text[21] == '+' || text[21] == '-')) {
    const auto oh = support::parse_int(text.substr(22, 2));
    const auto om = support::parse_int(text.substr(24, 2));
    if (!oh || !om) return Error::parse("malformed timezone offset");
    offset_seconds = (*oh * 3600 + *om * 60) * (text[21] == '+' ? 1 : -1);
  }

  const long long days = days_from_civil(static_cast<int>(*year), mon,
                                         static_cast<int>(*day));
  const long long local = days * 86400 + *hh * 3600 + *mm * 60 + *ss;
  return static_cast<double>(local - offset_seconds);
}

Result<LogEntry> parse_clf_line(std::string_view line) {
  LogEntry e;
  line = support::trim(line);
  if (line.empty()) return Error::parse("empty line");

  // host
  auto sp = line.find(' ');
  if (sp == std::string_view::npos) return Error::parse("missing fields");
  e.client = std::string(line.substr(0, sp));
  line.remove_prefix(sp + 1);

  // ident authuser — skip two space-separated tokens (authuser may contain
  // no spaces in CLF).
  for (int skip = 0; skip < 2; ++skip) {
    sp = line.find(' ');
    if (sp == std::string_view::npos) return Error::parse("missing fields");
    line.remove_prefix(sp + 1);
  }

  // [timestamp]
  if (line.empty() || line.front() != '[') return Error::parse("missing timestamp");
  const auto rb = line.find(']');
  if (rb == std::string_view::npos) return Error::parse("unterminated timestamp");
  auto ts = parse_clf_timestamp(line.substr(0, rb + 1));
  if (!ts) return ts.error();
  e.timestamp = ts.value();
  line.remove_prefix(rb + 1);
  line = support::trim(line);

  // "request"
  if (line.empty() || line.front() != '"') return Error::parse("missing request");
  const auto rq = line.find('"', 1);
  if (rq == std::string_view::npos) return Error::parse("unterminated request");
  const std::string_view request = line.substr(1, rq - 1);
  line.remove_prefix(rq + 1);
  line = support::trim(line);

  if (request != "-") {
    const auto parts = support::split(request, ' ');
    if (!parts.empty()) e.method = std::string(parts[0]);
    if (parts.size() >= 2) e.path = std::string(parts[1]);
    if (parts.size() >= 3) e.protocol = std::string(parts[2]);
  }

  // status bytes [trailing Combined fields ignored]
  sp = line.find(' ');
  const std::string_view status_tok =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  const auto status = support::parse_int(status_tok);
  if (!status) return Error::parse("bad status: " + std::string(status_tok));
  e.status = static_cast<int>(*status);
  if (sp == std::string_view::npos) return Error::parse("missing bytes field");
  line.remove_prefix(sp + 1);
  line = support::trim(line);

  sp = line.find(' ');
  const std::string_view bytes_tok =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  if (bytes_tok == "-") {
    e.bytes = 0;
  } else {
    const auto bytes = support::parse_int(bytes_tok);
    if (!bytes || *bytes < 0)
      return Error::parse("bad bytes: " + std::string(bytes_tok));
    e.bytes = static_cast<std::uint64_t>(*bytes);
  }
  return e;
}

std::string to_clf_line(const LogEntry& entry) {
  std::string request;
  if (entry.method.empty()) {
    request = "-";
  } else {
    request = entry.method + " " + entry.path +
              (entry.protocol.empty() ? "" : " " + entry.protocol);
  }
  return entry.client + " - - " + format_clf_timestamp(entry.timestamp) + " \"" +
         request + "\" " + std::to_string(entry.status) + " " +
         std::to_string(entry.bytes);
}

std::size_t parse_clf_stream(std::istream& is,
                             const std::function<void(LogEntry&&)>& on_entry) {
  std::size_t malformed = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (support::trim(line).empty()) continue;
    auto e = parse_clf_line(line);
    if (e.ok()) on_entry(std::move(e).value());
    else ++malformed;
  }
  return malformed;
}

}  // namespace fullweb::weblog
