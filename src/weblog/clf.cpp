#include "weblog/clf.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <istream>

#include "support/strings.h"
#include "weblog/clf_scan.h"

namespace fullweb::weblog {

using support::Error;
using support::Result;

namespace {

constexpr std::array<const char*, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
long long days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const long long era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153U * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;                     // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<long long>(doe) - 719468;
}

/// Inverse of days_from_civil.
void civil_from_days(long long z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long long yy = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

int month_from_abbrev(std::string_view s) noexcept {
  for (std::size_t i = 0; i < kMonths.size(); ++i)
    if (s == kMonths[i]) return static_cast<int>(i) + 1;
  return 0;
}

/// month_from_abbrev over the packed 3 bytes — a jump table instead of 12
/// string compares, for the fixed-layout timestamp decoder.
int month_from_packed(const char* p) noexcept {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]));
  switch (key) {
    case ('J' << 16) | ('a' << 8) | 'n': return 1;
    case ('F' << 16) | ('e' << 8) | 'b': return 2;
    case ('M' << 16) | ('a' << 8) | 'r': return 3;
    case ('A' << 16) | ('p' << 8) | 'r': return 4;
    case ('M' << 16) | ('a' << 8) | 'y': return 5;
    case ('J' << 16) | ('u' << 8) | 'n': return 6;
    case ('J' << 16) | ('u' << 8) | 'l': return 7;
    case ('A' << 16) | ('u' << 8) | 'g': return 8;
    case ('S' << 16) | ('e' << 8) | 'p': return 9;
    case ('O' << 16) | ('c' << 8) | 't': return 10;
    case ('N' << 16) | ('o' << 8) | 'v': return 11;
    case ('D' << 16) | ('e' << 8) | 'c': return 12;
    default: return 0;
  }
}

bool is_leap(long long y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int days_in_month(long long y, int m) noexcept {
  constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[static_cast<std::size_t>(m - 1)];
}

/// support::trim's whitespace class (std::isspace, C locale).
inline bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

/// Decode the two-digit pair at `p` into `v`; false unless both are digits.
inline bool digit2(const char* p, unsigned& v) noexcept {
  const unsigned a = static_cast<unsigned char>(p[0]) - '0';
  const unsigned b = static_cast<unsigned char>(p[1]) - '0';
  v = a * 10 + b;
  return a <= 9 && b <= 9;
}

/// Find the index of the closing quote of the request field, honoring
/// backslash escapes (\" does not terminate, \\ does not escape the
/// following quote). `text` starts just past the opening quote.
std::string_view::size_type find_closing_quote(std::string_view text) noexcept {
  bool escaped = false;
  for (std::string_view::size_type i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      return i;
    }
  }
  return std::string_view::npos;
}

/// Undo to_clf_line's escaping: \" -> " and \\ -> \. Any other backslash
/// pair is preserved verbatim (Apache also emits \t, \xhh, ... — the
/// analyses treat paths as opaque, so those stay as logged).
std::string unescape_request(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::string_view::size_type i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size() &&
        (raw[i + 1] == '"' || raw[i + 1] == '\\')) {
      out.push_back(raw[i + 1]);
      ++i;
    } else {
      out.push_back(raw[i]);
    }
  }
  return out;
}

std::string escape_request(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The satellite status rule shared by both parsers: a 3-digit HTTP code in
/// [100, 599]. `status_tok` is the raw token; parse_int trims it, so the
/// digit-count check runs on the trimmed view too.
bool valid_status_token(std::string_view status_tok, int& out) noexcept {
  const auto v = support::parse_int(status_tok);
  if (!v || *v < 100 || *v > 599) return false;
  if (support::trim(status_tok).size() != 3) return false;
  out = static_cast<int>(*v);
  return true;
}

Error fail(ClfParseReason* reason, ClfParseReason r, std::string msg) {
  if (reason != nullptr) *reason = r;
  return Error::parse(std::move(msg));
}

inline std::string_view make_view(const char* b, const char* e) noexcept {
  return {b, static_cast<std::size_t>(e - b)};
}

}  // namespace

std::string_view to_string(ClfParseReason reason) noexcept {
  switch (reason) {
    case ClfParseReason::kNone: return "ok";
    case ClfParseReason::kMissingFields: return "missing_fields";
    case ClfParseReason::kBadTimestamp: return "bad_timestamp";
    case ClfParseReason::kBadRequest: return "bad_request";
    case ClfParseReason::kBadStatus: return "bad_status";
    case ClfParseReason::kBadBytes: return "bad_bytes";
  }
  return "?";
}

std::string format_clf_timestamp(double epoch_seconds) {
  const auto total = static_cast<long long>(std::floor(epoch_seconds));
  long long days = total / 86400;
  long long sod = total % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  int y, m, d;
  civil_from_days(days, y, m, d);
  char buf[40];
  std::snprintf(buf, sizeof buf, "[%02d/%s/%04d:%02lld:%02lld:%02lld +0000]", d,
                kMonths[static_cast<std::size_t>(m - 1)], y, sod / 3600,
                (sod / 60) % 60, sod % 60);
  return buf;
}

Result<double> parse_clf_timestamp(std::string_view text) {
  // "[dd/Mon/yyyy:HH:MM:SS +zzzz]" — brackets optional here.
  if (!text.empty() && text.front() == '[') text.remove_prefix(1);
  if (!text.empty() && text.back() == ']') text.remove_suffix(1);
  // dd/Mon/yyyy:HH:MM:SS +zzzz
  if (text.size() < 20) return Error::parse("timestamp too short");

  const auto day = support::parse_int(text.substr(0, 2));
  const int mon = month_from_abbrev(text.substr(3, 3));
  const auto year = support::parse_int(text.substr(7, 4));
  const auto hh = support::parse_int(text.substr(12, 2));
  const auto mm = support::parse_int(text.substr(15, 2));
  const auto ss = support::parse_int(text.substr(18, 2));
  if (!day || mon == 0 || !year || !hh || !mm || !ss ||
      text[2] != '/' || text[6] != '/' || text[11] != ':' || text[14] != ':' ||
      text[17] != ':')
    return Error::parse("malformed timestamp: " + std::string(text));

  // Range validation: out-of-range fields must be rejected, not silently
  // wrapped into a wrong epoch by the civil-date arithmetic below. Second
  // 60 is tolerated (leap seconds appear in real logs) and maps onto the
  // next minute.
  if (*day < 1 || *day > days_in_month(*year, mon) || *hh > 23 || *mm > 59 ||
      *ss > 60)
    return Error::parse("timestamp field out of range: " + std::string(text));

  // The timezone offset may be absent (exactly 20 chars), but a partial one
  // ("+05"), a wrong separator at index 20, or trailing junk past a full
  // offset must all be rejected — silently reading such a stamp as UTC
  // shifts the entry by hours.
  long long offset_seconds = 0;
  if (text.size() > 20) {
    if (text.size() != 26)
      return Error::parse("truncated timezone offset: " + std::string(text));
    if (text[20] != ' ' || (text[21] != '+' && text[21] != '-') ||
        !scan::all_digits(text.data() + 22, 4))
      return Error::parse("malformed timezone offset: " + std::string(text));
    const long long oh = (text[22] - '0') * 10 + (text[23] - '0');
    const long long om = (text[24] - '0') * 10 + (text[25] - '0');
    // Real UTC offsets stay within +-14:00; anything larger is log
    // corruption, not a timezone.
    if (oh > 14 || om > 59)
      return Error::parse("timezone offset out of range: " + std::string(text));
    offset_seconds = (oh * 3600 + om * 60) * (text[21] == '+' ? 1 : -1);
  }

  const long long days = days_from_civil(static_cast<int>(*year), mon,
                                         static_cast<int>(*day));
  const long long local = days * 86400 + *hh * 3600 + *mm * 60 + *ss;
  return static_cast<double>(local - offset_seconds);
}

bool ClfLineParser::fail(ClfParseReason* reason, ClfParseReason r,
                         std::string msg) {
  if (reason != nullptr) *reason = r;
  error_ = std::move(msg);
  return false;
}

/// Fixed-layout decode of the 26-char bracket content
/// "dd/Mon/yyyy:HH:MM:SS +zzzz". Accepts a strict subset of
/// parse_clf_timestamp with identical values; ANY deviation (padding,
/// unusual spacing, out-of-range field) returns false and the caller falls
/// back to the flexible parser, which is authoritative.
bool ClfLineParser::decode_timestamp_fast(const char* p, std::size_t len,
                                          double& out) noexcept {
  if (len != 26) return false;
  if (p[2] != '/' || p[6] != '/' || p[11] != ':' || p[14] != ':' ||
      p[17] != ':' || p[20] != ' ')
    return false;
  const char sign = p[21];
  if (sign != '+' && sign != '-') return false;
  unsigned day, y_hi, y_lo, hh, mi, ss, oh, om;
  if (!digit2(p, day) || !digit2(p + 7, y_hi) || !digit2(p + 9, y_lo) ||
      !digit2(p + 12, hh) || !digit2(p + 15, mi) || !digit2(p + 18, ss) ||
      !digit2(p + 22, oh) || !digit2(p + 24, om))
    return false;
  const int mon = month_from_packed(p + 3);
  if (mon == 0) return false;
  const int year = static_cast<int>(y_hi * 100 + y_lo);
  if (day < 1 || static_cast<int>(day) > days_in_month(year, mon) ||
      hh > 23 || mi > 59 || ss > 60 || oh > 14 || om > 59)
    return false;
  const long long days = days_from_civil(year, mon, static_cast<int>(day));
  const long long local =
      days * 86400 + hh * 3600LL + mi * 60LL + ss;
  const long long offset = (oh * 3600LL + om * 60LL) * (sign == '+' ? 1 : -1);
  out = static_cast<double>(local - offset);
  return true;
}

bool ClfLineParser::parse(std::string_view line, ClfRecord& out,
                          ClfParseReason* reason) {
  if (reason != nullptr) *reason = ClfParseReason::kNone;
  out = ClfRecord{};
  const char* b = line.data();
  const char* e = b + line.size();
  while (b < e && is_space(*b)) ++b;
  while (e > b && is_space(e[-1])) --e;
  if (b == e)
    return fail(reason, ClfParseReason::kMissingFields, "empty line");

  // host
  const char* sp = scan::find_byte(b, e, ' ');
  if (sp == e)
    return fail(reason, ClfParseReason::kMissingFields, "missing fields");
  out.client = make_view(b, sp);
  b = sp + 1;

  // ident authuser — skip two space-separated tokens (authuser may contain
  // no spaces in CLF).
  for (int skip = 0; skip < 2; ++skip) {
    sp = scan::find_byte(b, e, ' ');
    if (sp == e)
      return fail(reason, ClfParseReason::kMissingFields, "missing fields");
    b = sp + 1;
  }

  // [timestamp] — memo first: when the 26 bracket bytes equal the last
  // successfully decoded stamp (same second, same timezone), the epoch is
  // the cached one and — since a memoized stamp contains no ']' — the
  // bracket provably closes at offset 27, so the find can be skipped too.
  if (b == e || *b != '[')
    return fail(reason, ClfParseReason::kBadTimestamp, "missing timestamp");
  double ts_value;
  if (memo_valid_ && e - b >= 28 && b[27] == ']' &&
      std::memcmp(b + 1, memo_key_, 26) == 0) {
    ts_value = memo_epoch_;
    b += 28;
  } else {
    const char* rb = scan::find_byte(b + 1, e, ']');
    if (rb == e)
      return fail(reason, ClfParseReason::kBadTimestamp,
                  "unterminated timestamp");
    const auto content_len = static_cast<std::size_t>(rb - b) - 1;
    if (!decode_timestamp_fast(b + 1, content_len, ts_value)) {
      auto ts = parse_clf_timestamp(make_view(b, rb + 1));
      if (!ts) {
        if (reason != nullptr) *reason = ClfParseReason::kBadTimestamp;
        error_ = ts.error().message;
        return false;
      }
      ts_value = ts.value();
    }
    if (content_len == 26) {
      std::memcpy(memo_key_, b + 1, 26);
      memo_epoch_ = ts_value;
      memo_valid_ = true;
    }
    b = rb + 1;
  }
  out.timestamp = ts_value;
  while (b < e && is_space(*b)) ++b;

  // "request" — \" inside the field does not terminate it.
  if (b == e || *b != '"')
    return fail(reason, ClfParseReason::kBadRequest, "missing request");
  const char* rs = b + 1;
  const char* scanp = rs;
  const char* cq = nullptr;
  bool had_backslash = false;
  while (true) {
    const char* hit = scan::find_either(scanp, e, '"', '\\');
    if (hit == e)
      return fail(reason, ClfParseReason::kBadRequest, "unterminated request");
    if (*hit == '"') {
      cq = hit;
      break;
    }
    had_backslash = true;  // a backslash strictly before the closing quote
    scanp = hit + 2;       // skip the escaped character
    if (scanp > e)
      return fail(reason, ClfParseReason::kBadRequest, "unterminated request");
  }
  const std::string_view raw_request = make_view(rs, cq);
  b = cq + 1;
  while (b < e && is_space(*b)) ++b;

  if (raw_request != "-") {
    std::string_view request = raw_request;
    if (had_backslash) {
      owned_.push_back(unescape_request(raw_request));
      request = owned_.back();
    }
    // split(request, ' ') keeps empty fields; only parts [0..2] are used.
    const char* q = request.data();
    const char* qe = q + request.size();
    const char* s1 = scan::find_byte(q, qe, ' ');
    out.method = make_view(q, s1);
    if (s1 != qe) {
      const char* s2 = scan::find_byte(s1 + 1, qe, ' ');
      out.path = make_view(s1 + 1, s2);
      if (s2 != qe) {
        const char* s3 = scan::find_byte(s2 + 1, qe, ' ');
        out.protocol = make_view(s2 + 1, s3);
      }
    }
  }

  // status bytes [trailing Combined fields ignored]
  sp = scan::find_byte(b, e, ' ');
  const std::string_view status_tok = make_view(b, sp);
  unsigned s_val = 0;
  bool plain3 = status_tok.size() == 3;
  if (plain3) {
    const unsigned d0 = static_cast<unsigned char>(status_tok[0]) - '0';
    const unsigned d1 = static_cast<unsigned char>(status_tok[1]) - '0';
    const unsigned d2 = static_cast<unsigned char>(status_tok[2]) - '0';
    plain3 = d0 <= 9 && d1 <= 9 && d2 <= 9;
    s_val = d0 * 100 + d1 * 10 + d2;
  }
  if (plain3) {
    if (s_val < 100 || s_val > 599)
      return fail(reason, ClfParseReason::kBadStatus,
                  "bad status: " + std::string(status_tok));
    out.status = static_cast<int>(s_val);
  } else {
    // Whitespace-padded or otherwise unusual token: apply the exact
    // reference rule (trim via parse_int, 3 digits, 100..599).
    int status = 0;
    if (!valid_status_token(status_tok, status))
      return fail(reason, ClfParseReason::kBadStatus,
                  "bad status: " + std::string(status_tok));
    out.status = status;
  }
  if (sp == e)
    return fail(reason, ClfParseReason::kBadBytes, "missing bytes field");
  b = sp + 1;
  while (b < e && is_space(*b)) ++b;

  sp = scan::find_byte(b, e, ' ');
  const std::string_view bytes_tok = make_view(b, sp);
  if (bytes_tok == "-") {
    out.bytes = 0;
  } else if (!bytes_tok.empty() && bytes_tok.size() <= 18 &&
             scan::all_digits(bytes_tok.data(), bytes_tok.size())) {
    // <= 18 digits always fits in long long, matching parse_int's overflow
    // behavior; longer (or padded) tokens take the reference route below.
    std::uint64_t v = 0;
    for (const char c : bytes_tok) v = v * 10 + static_cast<unsigned>(c - '0');
    out.bytes = v;
  } else {
    const auto bytes = support::parse_int(bytes_tok);
    if (!bytes || *bytes < 0)
      return fail(reason, ClfParseReason::kBadBytes,
                  "bad bytes: " + std::string(bytes_tok));
    out.bytes = static_cast<std::uint64_t>(*bytes);
  }
  return true;
}

LogEntry ClfLineParser::materialize(const ClfRecord& record) {
  LogEntry e;
  e.timestamp = record.timestamp;
  e.client = std::string(record.client);
  e.method = std::string(record.method);
  e.path = std::string(record.path);
  e.protocol = std::string(record.protocol);
  e.status = record.status;
  e.bytes = record.bytes;
  return e;
}

Result<LogEntry> parse_clf_line(std::string_view line) {
  return parse_clf_line(line, nullptr);
}

Result<LogEntry> parse_clf_line(std::string_view line, ClfParseReason* reason) {
  thread_local ClfLineParser parser;
  parser.clear_owned();
  ClfRecord record;
  if (!parser.parse(line, record, reason))
    return Error::parse(parser.last_error());
  return ClfLineParser::materialize(record);
}

Result<LogEntry> parse_clf_line_reference(std::string_view line,
                                          ClfParseReason* reason) {
  if (reason != nullptr) *reason = ClfParseReason::kNone;
  LogEntry e;
  line = support::trim(line);
  if (line.empty())
    return fail(reason, ClfParseReason::kMissingFields, "empty line");

  // host
  auto sp = line.find(' ');
  if (sp == std::string_view::npos)
    return fail(reason, ClfParseReason::kMissingFields, "missing fields");
  e.client = std::string(line.substr(0, sp));
  line.remove_prefix(sp + 1);

  // ident authuser — skip two space-separated tokens (authuser may contain
  // no spaces in CLF).
  for (int skip = 0; skip < 2; ++skip) {
    sp = line.find(' ');
    if (sp == std::string_view::npos)
      return fail(reason, ClfParseReason::kMissingFields, "missing fields");
    line.remove_prefix(sp + 1);
  }

  // [timestamp]
  if (line.empty() || line.front() != '[')
    return fail(reason, ClfParseReason::kBadTimestamp, "missing timestamp");
  const auto rb = line.find(']');
  if (rb == std::string_view::npos)
    return fail(reason, ClfParseReason::kBadTimestamp, "unterminated timestamp");
  auto ts = parse_clf_timestamp(line.substr(0, rb + 1));
  if (!ts) {
    if (reason != nullptr) *reason = ClfParseReason::kBadTimestamp;
    return ts.error();
  }
  e.timestamp = ts.value();
  line.remove_prefix(rb + 1);
  line = support::trim(line);

  // "request" — \" inside the field does not terminate it.
  if (line.empty() || line.front() != '"')
    return fail(reason, ClfParseReason::kBadRequest, "missing request");
  const auto rq = find_closing_quote(line.substr(1));
  if (rq == std::string_view::npos)
    return fail(reason, ClfParseReason::kBadRequest, "unterminated request");
  const std::string_view raw_request = line.substr(1, rq);
  line.remove_prefix(rq + 2);
  line = support::trim(line);

  if (raw_request != "-") {
    const std::string request =
        raw_request.find('\\') == std::string_view::npos
            ? std::string(raw_request)
            : unescape_request(raw_request);
    const auto parts = support::split(request, ' ');
    if (!parts.empty()) e.method = std::string(parts[0]);
    if (parts.size() >= 2) e.path = std::string(parts[1]);
    if (parts.size() >= 3) e.protocol = std::string(parts[2]);
  }

  // status bytes [trailing Combined fields ignored]
  sp = line.find(' ');
  const std::string_view status_tok =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  int status = 0;
  if (!valid_status_token(status_tok, status))
    return fail(reason, ClfParseReason::kBadStatus,
                "bad status: " + std::string(status_tok));
  e.status = status;
  if (sp == std::string_view::npos)
    return fail(reason, ClfParseReason::kBadBytes, "missing bytes field");
  line.remove_prefix(sp + 1);
  line = support::trim(line);

  sp = line.find(' ');
  const std::string_view bytes_tok =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  if (bytes_tok == "-") {
    e.bytes = 0;
  } else {
    const auto bytes = support::parse_int(bytes_tok);
    if (!bytes || *bytes < 0)
      return fail(reason, ClfParseReason::kBadBytes,
                  "bad bytes: " + std::string(bytes_tok));
    e.bytes = static_cast<std::uint64_t>(*bytes);
  }
  return e;
}

std::string to_clf_line(const LogEntry& entry) {
  std::string request;
  if (entry.method.empty()) {
    request = "-";
  } else {
    request = entry.method + " " + entry.path +
              (entry.protocol.empty() ? "" : " " + entry.protocol);
    if (request.find('"') != std::string::npos ||
        request.find('\\') != std::string::npos)
      request = escape_request(request);
  }
  // The host field is space-delimited, so whitespace inside the client
  // would shift every later field on re-parse; '_' keeps the token count.
  std::string client = entry.client;
  for (char& c : client)
    if (is_space(c)) c = '_';
  return client + " - - " + format_clf_timestamp(entry.timestamp) + " \"" +
         request + "\" " + std::to_string(entry.status) + " " +
         std::to_string(entry.bytes);
}

std::size_t parse_clf_stream(std::istream& is,
                             const std::function<void(LogEntry&&)>& on_entry) {
  std::size_t malformed = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (support::trim(line).empty()) continue;
    auto e = parse_clf_line(line);
    if (e.ok()) on_entry(std::move(e).value());
    else ++malformed;
  }
  return malformed;
}

}  // namespace fullweb::weblog
