#include "weblog/clf.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>

#include "support/strings.h"

namespace fullweb::weblog {

using support::Error;
using support::Result;

namespace {

constexpr std::array<const char*, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
long long days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const long long era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153U * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;                     // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<long long>(doe) - 719468;
}

/// Inverse of days_from_civil.
void civil_from_days(long long z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long long yy = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

int month_from_abbrev(std::string_view s) noexcept {
  for (std::size_t i = 0; i < kMonths.size(); ++i)
    if (s == kMonths[i]) return static_cast<int>(i) + 1;
  return 0;
}

bool is_leap(long long y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int days_in_month(long long y, int m) noexcept {
  constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[static_cast<std::size_t>(m - 1)];
}

/// Find the index of the closing quote of the request field, honoring
/// backslash escapes (\" does not terminate, \\ does not escape the
/// following quote). `text` starts just past the opening quote.
std::string_view::size_type find_closing_quote(std::string_view text) noexcept {
  bool escaped = false;
  for (std::string_view::size_type i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      return i;
    }
  }
  return std::string_view::npos;
}

/// Undo to_clf_line's escaping: \" -> " and \\ -> \. Any other backslash
/// pair is preserved verbatim (Apache also emits \t, \xhh, ... — the
/// analyses treat paths as opaque, so those stay as logged).
std::string unescape_request(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::string_view::size_type i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size() &&
        (raw[i + 1] == '"' || raw[i + 1] == '\\')) {
      out.push_back(raw[i + 1]);
      ++i;
    } else {
      out.push_back(raw[i]);
    }
  }
  return out;
}

std::string escape_request(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

Error fail(ClfParseReason* reason, ClfParseReason r, std::string msg) {
  if (reason != nullptr) *reason = r;
  return Error::parse(std::move(msg));
}

}  // namespace

std::string_view to_string(ClfParseReason reason) noexcept {
  switch (reason) {
    case ClfParseReason::kNone: return "ok";
    case ClfParseReason::kMissingFields: return "missing_fields";
    case ClfParseReason::kBadTimestamp: return "bad_timestamp";
    case ClfParseReason::kBadRequest: return "bad_request";
    case ClfParseReason::kBadStatus: return "bad_status";
    case ClfParseReason::kBadBytes: return "bad_bytes";
  }
  return "?";
}

std::string format_clf_timestamp(double epoch_seconds) {
  const auto total = static_cast<long long>(std::floor(epoch_seconds));
  long long days = total / 86400;
  long long sod = total % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  int y, m, d;
  civil_from_days(days, y, m, d);
  char buf[40];
  std::snprintf(buf, sizeof buf, "[%02d/%s/%04d:%02lld:%02lld:%02lld +0000]", d,
                kMonths[static_cast<std::size_t>(m - 1)], y, sod / 3600,
                (sod / 60) % 60, sod % 60);
  return buf;
}

Result<double> parse_clf_timestamp(std::string_view text) {
  // "[dd/Mon/yyyy:HH:MM:SS +zzzz]" — brackets optional here.
  if (!text.empty() && text.front() == '[') text.remove_prefix(1);
  if (!text.empty() && text.back() == ']') text.remove_suffix(1);
  // dd/Mon/yyyy:HH:MM:SS +zzzz
  if (text.size() < 20) return Error::parse("timestamp too short");

  const auto day = support::parse_int(text.substr(0, 2));
  const int mon = month_from_abbrev(text.substr(3, 3));
  const auto year = support::parse_int(text.substr(7, 4));
  const auto hh = support::parse_int(text.substr(12, 2));
  const auto mm = support::parse_int(text.substr(15, 2));
  const auto ss = support::parse_int(text.substr(18, 2));
  if (!day || mon == 0 || !year || !hh || !mm || !ss ||
      text[2] != '/' || text[6] != '/' || text[11] != ':' || text[14] != ':' ||
      text[17] != ':')
    return Error::parse("malformed timestamp: " + std::string(text));

  // Range validation: out-of-range fields must be rejected, not silently
  // wrapped into a wrong epoch by the civil-date arithmetic below. Second
  // 60 is tolerated (leap seconds appear in real logs) and maps onto the
  // next minute.
  if (*day < 1 || *day > days_in_month(*year, mon) || *hh > 23 || *mm > 59 ||
      *ss > 60)
    return Error::parse("timestamp field out of range: " + std::string(text));

  long long offset_seconds = 0;
  if (text.size() >= 26 && (text[21] == '+' || text[21] == '-')) {
    const auto oh = support::parse_int(text.substr(22, 2));
    const auto om = support::parse_int(text.substr(24, 2));
    if (!oh || !om) return Error::parse("malformed timezone offset");
    // Real UTC offsets stay within +-14:00; anything larger is log
    // corruption, not a timezone.
    if (*oh < 0 || *oh > 14 || *om < 0 || *om > 59)
      return Error::parse("timezone offset out of range: " + std::string(text));
    offset_seconds = (*oh * 3600 + *om * 60) * (text[21] == '+' ? 1 : -1);
  }

  const long long days = days_from_civil(static_cast<int>(*year), mon,
                                         static_cast<int>(*day));
  const long long local = days * 86400 + *hh * 3600 + *mm * 60 + *ss;
  return static_cast<double>(local - offset_seconds);
}

Result<LogEntry> parse_clf_line(std::string_view line) {
  return parse_clf_line(line, nullptr);
}

Result<LogEntry> parse_clf_line(std::string_view line, ClfParseReason* reason) {
  if (reason != nullptr) *reason = ClfParseReason::kNone;
  LogEntry e;
  line = support::trim(line);
  if (line.empty())
    return fail(reason, ClfParseReason::kMissingFields, "empty line");

  // host
  auto sp = line.find(' ');
  if (sp == std::string_view::npos)
    return fail(reason, ClfParseReason::kMissingFields, "missing fields");
  e.client = std::string(line.substr(0, sp));
  line.remove_prefix(sp + 1);

  // ident authuser — skip two space-separated tokens (authuser may contain
  // no spaces in CLF).
  for (int skip = 0; skip < 2; ++skip) {
    sp = line.find(' ');
    if (sp == std::string_view::npos)
      return fail(reason, ClfParseReason::kMissingFields, "missing fields");
    line.remove_prefix(sp + 1);
  }

  // [timestamp]
  if (line.empty() || line.front() != '[')
    return fail(reason, ClfParseReason::kBadTimestamp, "missing timestamp");
  const auto rb = line.find(']');
  if (rb == std::string_view::npos)
    return fail(reason, ClfParseReason::kBadTimestamp, "unterminated timestamp");
  auto ts = parse_clf_timestamp(line.substr(0, rb + 1));
  if (!ts) {
    if (reason != nullptr) *reason = ClfParseReason::kBadTimestamp;
    return ts.error();
  }
  e.timestamp = ts.value();
  line.remove_prefix(rb + 1);
  line = support::trim(line);

  // "request" — \" inside the field does not terminate it.
  if (line.empty() || line.front() != '"')
    return fail(reason, ClfParseReason::kBadRequest, "missing request");
  const auto rq = find_closing_quote(line.substr(1));
  if (rq == std::string_view::npos)
    return fail(reason, ClfParseReason::kBadRequest, "unterminated request");
  const std::string_view raw_request = line.substr(1, rq);
  line.remove_prefix(rq + 2);
  line = support::trim(line);

  if (raw_request != "-") {
    const std::string request =
        raw_request.find('\\') == std::string_view::npos
            ? std::string(raw_request)
            : unescape_request(raw_request);
    const auto parts = support::split(request, ' ');
    if (!parts.empty()) e.method = std::string(parts[0]);
    if (parts.size() >= 2) e.path = std::string(parts[1]);
    if (parts.size() >= 3) e.protocol = std::string(parts[2]);
  }

  // status bytes [trailing Combined fields ignored]
  sp = line.find(' ');
  const std::string_view status_tok =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  const auto status = support::parse_int(status_tok);
  if (!status)
    return fail(reason, ClfParseReason::kBadStatus,
                "bad status: " + std::string(status_tok));
  e.status = static_cast<int>(*status);
  if (sp == std::string_view::npos)
    return fail(reason, ClfParseReason::kBadBytes, "missing bytes field");
  line.remove_prefix(sp + 1);
  line = support::trim(line);

  sp = line.find(' ');
  const std::string_view bytes_tok =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  if (bytes_tok == "-") {
    e.bytes = 0;
  } else {
    const auto bytes = support::parse_int(bytes_tok);
    if (!bytes || *bytes < 0)
      return fail(reason, ClfParseReason::kBadBytes,
                  "bad bytes: " + std::string(bytes_tok));
    e.bytes = static_cast<std::uint64_t>(*bytes);
  }
  return e;
}

std::string to_clf_line(const LogEntry& entry) {
  std::string request;
  if (entry.method.empty()) {
    request = "-";
  } else {
    request = entry.method + " " + entry.path +
              (entry.protocol.empty() ? "" : " " + entry.protocol);
    if (request.find('"') != std::string::npos ||
        request.find('\\') != std::string::npos)
      request = escape_request(request);
  }
  return entry.client + " - - " + format_clf_timestamp(entry.timestamp) + " \"" +
         request + "\" " + std::to_string(entry.status) + " " +
         std::to_string(entry.bytes);
}

std::size_t parse_clf_stream(std::istream& is,
                             const std::function<void(LogEntry&&)>& on_entry) {
  std::size_t malformed = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (support::trim(line).empty()) continue;
    auto e = parse_clf_line(line);
    if (e.ok()) on_entry(std::move(e).value());
    else ++malformed;
  }
  return malformed;
}

}  // namespace fullweb::weblog
