// Common Log Format (CLF) / Combined Log Format parsing and emission.
//
// CLF:      host ident authuser [dd/Mon/yyyy:HH:MM:SS +zzzz] "request" status bytes
// Combined: CLF + " \"referer\" \"user-agent\""
// All four servers in the paper logged (a superset of) CLF; the synthetic
// generator emits CLF so the entire pipeline — text log in, statistics out —
// is exercised end to end.
//
// Two parsers, one behavior (DESIGN.md §5.12):
//
//  * `ClfLineParser` — the production path. Zero-copy: fields come back as
//    `string_view`s into the caller's line (or, for the rare request field
//    with backslash escapes, into a parser-owned arena), with SWAR/AVX2
//    token scanning, a fixed-layout timestamp decoder, and a same-second
//    timestamp memo. `parse_clf_line` wraps it and materializes an owning
//    LogEntry.
//  * `parse_clf_line_reference` — the straightforward std::string parser,
//    kept as the executable specification. test_weblog_parser_identity runs
//    the full corpus (including hostile/fuzz inputs) through both and
//    requires identical accept/reject verdicts, reasons, and field values.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "support/result.h"
#include "weblog/entry.h"

namespace fullweb::weblog {

/// Why a line was rejected — the machine-readable side of a parse Error,
/// used by the ingest layer's per-file malformed-by-reason accounting.
enum class ClfParseReason {
  kNone = 0,        ///< parsed successfully
  kMissingFields,   ///< too few space-separated fields / empty line
  kBadTimestamp,    ///< missing, unterminated, malformed, or out-of-range
  kBadRequest,      ///< missing or unterminated quoted request field
  kBadStatus,       ///< status not a 3-digit HTTP code in [100, 599]
  kBadBytes,        ///< missing or negative byte count
};
inline constexpr std::size_t kClfParseReasonCount = 6;
[[nodiscard]] std::string_view to_string(ClfParseReason reason) noexcept;

/// One parsed line, zero-copy: the views alias the input line — or, when
/// the request field contained backslash escapes, an arena owned by the
/// ClfLineParser that produced the record. Either way the record is valid
/// only as long as both the line's buffer and the parser's arena live.
struct ClfRecord {
  double timestamp = 0.0;
  std::string_view client;
  std::string_view method;
  std::string_view path;
  std::string_view protocol;
  int status = 0;
  std::uint64_t bytes = 0;
};

/// Reusable zero-allocation line parser (the hot ingest path).
///
/// Not thread-safe: each parse thread (or parse chunk) owns one. State
/// carried across parse() calls is (a) the unescaped-request arena backing
/// ClfRecord views — see clear_owned()/take_owned() — and (b) the
/// same-second timestamp memo: consecutive log lines overwhelmingly share a
/// second, so the last successfully decoded raw timestamp (all 26 bracket
/// bytes, timezone included — distinct offsets are distinct keys) is cached
/// against its epoch value and re-decoding is a 26-byte compare.
class ClfLineParser {
 public:
  /// Parse one (already newline-free) line into `out`. Returns false on a
  /// malformed line with `reason` (if non-null) set to the rejection class
  /// and last_error() holding the reference parser's message for it.
  /// Accepts exactly the lines parse_clf_line_reference accepts, with
  /// identical field values.
  [[nodiscard]] bool parse(std::string_view line, ClfRecord& out,
                           ClfParseReason* reason = nullptr);

  /// Message for the most recent failed parse().
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }

  /// Copy a record's views into an owning LogEntry.
  [[nodiscard]] static LogEntry materialize(const ClfRecord& record);

  /// Release / transfer the unescaped-request arena. Records produced since
  /// the last clear whose request field contained escapes point into it;
  /// take_owned() keeps those views valid (deque moves do not relocate
  /// elements), clear_owned() invalidates them.
  void clear_owned() noexcept { owned_.clear(); }
  [[nodiscard]] std::deque<std::string> take_owned() noexcept {
    return std::move(owned_);
  }

 private:
  [[nodiscard]] bool fail(ClfParseReason* reason, ClfParseReason r,
                          std::string msg);
  [[nodiscard]] bool decode_timestamp_fast(const char* p, std::size_t len,
                                           double& out) noexcept;

  std::deque<std::string> owned_;  ///< unescaped request strings (rare)
  std::string error_;
  char memo_key_[26] = {};    ///< raw bracket content of the last timestamp
  bool memo_valid_ = false;   ///< memo_key_/memo_epoch_ hold a decoded value
  double memo_epoch_ = 0.0;
};

/// Parse one log line. Tolerates Combined-format trailers (they are
/// ignored), "-" byte counts, and malformed request lines inside quotes;
/// returns a parse Error for structurally broken lines. Backslash escapes
/// inside the quoted request field are honored: \" does not terminate the
/// field, and \" / \\ are unescaped (other escape pairs are kept verbatim).
/// The status field must be a 3-digit HTTP code in [100, 599]. If `reason`
/// is non-null it is set to the rejection class (kNone on success).
[[nodiscard]] support::Result<LogEntry> parse_clf_line(std::string_view line);
[[nodiscard]] support::Result<LogEntry> parse_clf_line(std::string_view line,
                                                       ClfParseReason* reason);

/// The executable specification: a plain std::string-based parser with the
/// same accept/reject behavior as ClfLineParser, kept for the scalar-vs-SIMD
/// bit-identity suite. Not for production use (it allocates per field).
[[nodiscard]] support::Result<LogEntry> parse_clf_line_reference(
    std::string_view line, ClfParseReason* reason = nullptr);

/// Render an entry as a CLF line (no trailing newline). ident/authuser are
/// emitted as "-"; quotes and backslashes in the request are escaped, and
/// whitespace inside entry.client is replaced with '_' (a host token cannot
/// contain spaces), so the line always round-trips through parse_clf_line.
[[nodiscard]] std::string to_clf_line(const LogEntry& entry);

/// Epoch seconds -> "[dd/Mon/yyyy:HH:MM:SS +0000]" (UTC) and back.
/// Parsing validates field ranges: day within the month (leap years
/// honored), hour <= 23, minute <= 59, second <= 60 (leap second
/// tolerated), timezone offset within +-14:59. The offset may be absent
/// entirely, but a partial one ("+05") or a malformed separator before it
/// is rejected as malformed rather than silently ignored.
[[nodiscard]] std::string format_clf_timestamp(double epoch_seconds);
[[nodiscard]] support::Result<double> parse_clf_timestamp(std::string_view text);

/// Streaming parser: reads every line of `is`, invoking `on_entry` per
/// parsed record. Returns the number of malformed lines skipped.
std::size_t parse_clf_stream(std::istream& is,
                             const std::function<void(LogEntry&&)>& on_entry);

}  // namespace fullweb::weblog
