// Common Log Format (CLF) / Combined Log Format parsing and emission.
//
// CLF:      host ident authuser [dd/Mon/yyyy:HH:MM:SS +zzzz] "request" status bytes
// Combined: CLF + " \"referer\" \"user-agent\""
// All four servers in the paper logged (a superset of) CLF; the synthetic
// generator emits CLF so the entire pipeline — text log in, statistics out —
// is exercised end to end.
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "support/result.h"
#include "weblog/entry.h"

namespace fullweb::weblog {

/// Why a line was rejected — the machine-readable side of a parse Error,
/// used by the ingest layer's per-file malformed-by-reason accounting.
enum class ClfParseReason {
  kNone = 0,        ///< parsed successfully
  kMissingFields,   ///< too few space-separated fields / empty line
  kBadTimestamp,    ///< missing, unterminated, malformed, or out-of-range
  kBadRequest,      ///< missing or unterminated quoted request field
  kBadStatus,       ///< non-numeric status token
  kBadBytes,        ///< missing or negative byte count
};
inline constexpr std::size_t kClfParseReasonCount = 6;
[[nodiscard]] std::string_view to_string(ClfParseReason reason) noexcept;

/// Parse one log line. Tolerates Combined-format trailers (they are
/// ignored), "-" byte counts, and malformed request lines inside quotes;
/// returns a parse Error for structurally broken lines. Backslash escapes
/// inside the quoted request field are honored: \" does not terminate the
/// field, and \" / \\ are unescaped (other escape pairs are kept verbatim).
/// If `reason` is non-null it is set to the rejection class (kNone on
/// success).
[[nodiscard]] support::Result<LogEntry> parse_clf_line(std::string_view line);
[[nodiscard]] support::Result<LogEntry> parse_clf_line(std::string_view line,
                                                       ClfParseReason* reason);

/// Render an entry as a CLF line (no trailing newline). ident/authuser are
/// emitted as "-"; quotes and backslashes in the request are escaped so the
/// line round-trips through parse_clf_line.
[[nodiscard]] std::string to_clf_line(const LogEntry& entry);

/// Epoch seconds -> "[dd/Mon/yyyy:HH:MM:SS +0000]" (UTC) and back.
/// Parsing validates field ranges: day within the month (leap years
/// honored), hour <= 23, minute <= 59, second <= 60 (leap second
/// tolerated), timezone offset within +-14:59.
[[nodiscard]] std::string format_clf_timestamp(double epoch_seconds);
[[nodiscard]] support::Result<double> parse_clf_timestamp(std::string_view text);

/// Streaming parser: reads every line of `is`, invoking `on_entry` per
/// parsed record. Returns the number of malformed lines skipped.
std::size_t parse_clf_stream(std::istream& is,
                             const std::function<void(LogEntry&&)>& on_entry);

}  // namespace fullweb::weblog
