// Common Log Format (CLF) / Combined Log Format parsing and emission.
//
// CLF:      host ident authuser [dd/Mon/yyyy:HH:MM:SS +zzzz] "request" status bytes
// Combined: CLF + " \"referer\" \"user-agent\""
// All four servers in the paper logged (a superset of) CLF; the synthetic
// generator emits CLF so the entire pipeline — text log in, statistics out —
// is exercised end to end.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "support/result.h"
#include "weblog/entry.h"

namespace fullweb::weblog {

/// Parse one log line. Tolerates Combined-format trailers (they are
/// ignored), "-" byte counts, and malformed request lines inside quotes;
/// returns a parse Error for structurally broken lines.
[[nodiscard]] support::Result<LogEntry> parse_clf_line(std::string_view line);

/// Render an entry as a CLF line (no trailing newline). ident/authuser are
/// emitted as "-".
[[nodiscard]] std::string to_clf_line(const LogEntry& entry);

/// Epoch seconds -> "[dd/Mon/yyyy:HH:MM:SS +0000]" (UTC) and back.
[[nodiscard]] std::string format_clf_timestamp(double epoch_seconds);
[[nodiscard]] support::Result<double> parse_clf_timestamp(std::string_view text);

/// Streaming parser: reads every line of `is`, invoking `on_entry` per
/// parsed record. Returns the number of malformed lines skipped.
std::size_t parse_clf_stream(std::istream& is,
                             const std::function<void(LogEntry&&)>& on_entry);

}  // namespace fullweb::weblog
