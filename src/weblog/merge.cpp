#include "weblog/merge.h"

#include <algorithm>
#include <fstream>

#include "weblog/clf.h"

namespace fullweb::weblog {

using support::Error;
using support::Result;

std::vector<LogEntry> merge_entries(std::vector<std::vector<LogEntry>> logs) {
  std::vector<LogEntry> out;
  std::size_t total = 0;
  for (const auto& log : logs) total += log.size();
  out.reserve(total);
  for (auto& log : logs) {
    out.insert(out.end(), std::make_move_iterator(log.begin()),
               std::make_move_iterator(log.end()));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LogEntry& a, const LogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

Result<MergeResult> merge_clf_files(std::span<const std::string> paths) {
  MergeResult result;
  std::vector<std::vector<LogEntry>> logs;
  for (const auto& path : paths) {
    MergeFileReport report;
    report.path = path;
    std::ifstream is(path);
    if (is) {
      std::vector<LogEntry> entries;
      report.malformed = parse_clf_stream(
          is, [&](LogEntry&& e) { entries.push_back(std::move(e)); });
      report.parsed = entries.size();
      logs.push_back(std::move(entries));
    } else {
      report.open_failed = true;
      report.error = "cannot open " + path;
    }
    result.files.push_back(std::move(report));
  }
  result.entries = merge_entries(std::move(logs));
  if (result.entries.empty())
    return Error::insufficient_data("merge_clf_files: no parsable entries");
  return result;
}

}  // namespace fullweb::weblog
