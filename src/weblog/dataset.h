// Dataset: the in-memory analogue of the paper's per-server database tables.
//
// Holds the time-sorted request records and the session table derived from
// them, provides the per-second counting series, the 42 x 4-hour interval
// partition of the observation week with Low/Med/High selection (§2), and
// the intra-session sample vectors consumed by the tail analyses (§5.2).
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/result.h"
#include "weblog/clf_reader.h"
#include "weblog/entry.h"
#include "weblog/sessionizer.h"

namespace fullweb::weblog {

/// Options for the streaming ingest path (Dataset::from_clf_stream).
struct StreamIngestOptions {
  SessionizerOptions sessionizer;
  ClfReaderOptions reader;
};

/// What the streaming ingest observed, beyond the Dataset itself.
struct StreamIngestReport {
  std::vector<IngestStats> files;     ///< one per input path, in order
                                      ///< (each carries its per-file peak)
  std::size_t peak_open_sessions = 0; ///< stream-wide sessionizer high-water
                                      ///< mark (max over per-file peaks)
  /// Records dropped for a non-finite timestamp (NaN/inf would corrupt the
  /// time sort and the [t0, t1) range); 0 on parser-produced streams.
  std::size_t invalid_time = 0;
  /// True when the concatenated entry stream was non-decreasing in time and
  /// the bounded-memory incremental sessionizer was used; false means the
  /// input was out of order and sessionization fell back to the batch path
  /// (results are identical either way).
  bool sessionized_incrementally = false;
};

/// One 4-hour (by default) analysis interval.
struct Interval {
  std::size_t index = 0;       ///< position within the observation window
  double t0 = 0.0;             ///< inclusive start (epoch seconds)
  double t1 = 0.0;             ///< exclusive end
  std::size_t request_count = 0;
  std::size_t session_count = 0;  ///< sessions *starting* in [t0, t1)
};

/// The paper's workload-intensity classes.
enum class Load { kLow, kMed, kHigh };
[[nodiscard]] std::string to_string(Load load);

class Dataset {
 public:
  /// Build from parsed log entries: interns client strings, sorts by time,
  /// and sessionizes with the given threshold. The observation window is
  /// [floor(min time), ceil(max time)) unless explicitly provided.
  /// Errors on an empty entry list.
  static support::Result<Dataset> from_entries(
      std::string name, std::span<const LogEntry> entries,
      const SessionizerOptions& sessionizer = {});

  /// Build directly from pre-interned requests (the synthetic path).
  static support::Result<Dataset> from_requests(
      std::string name, std::vector<Request> requests,
      const SessionizerOptions& sessionizer = {});

  /// Streaming ingest: read CLF files chunk-by-chunk (parsed in parallel on
  /// the executor in options.reader), interning clients and sessionizing
  /// incrementally, so peak transient memory is O(chunk budget + open
  /// sessions + the compact request table) — the raw text and LogEntry
  /// strings are never all resident. Produces request and session tables
  /// bit-identical to parsing the same files in order and calling
  /// from_entries(), at any thread count.
  ///
  /// Paths are processed sequentially (concatenation order); logs from
  /// redundant replicas that interleave in time still ingest correctly
  /// (the sessionizer falls back to the batch path on out-of-order input)
  /// but client-id assignment follows concatenation order, unlike
  /// merge_clf_files + from_entries which interns in merged time order.
  /// Unreadable files are recorded in the report (open_failed) rather than
  /// failing the ingest; errors only when no file yields any entry.
  static support::Result<Dataset> from_clf_stream(
      std::string name, std::span<const std::string> paths,
      const StreamIngestOptions& options = {},
      StreamIngestReport* report = nullptr);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Request>& requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] const std::vector<Session>& sessions() const noexcept {
    return sessions_;
  }
  [[nodiscard]] double t0() const noexcept { return t0_; }
  [[nodiscard]] double t1() const noexcept { return t1_; }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::size_t distinct_clients() const noexcept {
    return distinct_clients_;
  }

  /// Request / session-start timestamps (ascending).
  [[nodiscard]] std::vector<double> request_times() const;
  [[nodiscard]] std::vector<double> session_start_times() const;

  /// Per-second (or per-`bin_seconds`) counting series over [t0, t1) or a
  /// sub-window.
  [[nodiscard]] std::vector<double> requests_per_second(double bin_seconds = 1.0) const;
  [[nodiscard]] std::vector<double> sessions_per_second(double bin_seconds = 1.0) const;
  [[nodiscard]] std::vector<double> requests_per_second(double t0, double t1,
                                                        double bin_seconds) const;
  [[nodiscard]] std::vector<double> sessions_per_second(double t0, double t1,
                                                        double bin_seconds) const;

  /// Intra-session sample vectors (§5.2), over the whole window or only
  /// sessions starting within [t0, t1).
  [[nodiscard]] std::vector<double> session_lengths() const;
  [[nodiscard]] std::vector<double> session_request_counts() const;
  [[nodiscard]] std::vector<double> session_byte_counts() const;
  [[nodiscard]] std::vector<double> session_lengths(double t0, double t1) const;
  [[nodiscard]] std::vector<double> session_request_counts(double t0, double t1) const;
  [[nodiscard]] std::vector<double> session_byte_counts(double t0, double t1) const;

  /// Partition the window into consecutive intervals (default 4 h → 42 per
  /// week) with per-interval request/session counts.
  [[nodiscard]] std::vector<Interval> partition(double interval_seconds = 4.0 * 3600.0) const;

  /// Partition an explicitly-provided sub-window [t0, t1). Interval
  /// boundaries stay on the dataset's native grid (this->t0() + k *
  /// interval_seconds) and are clipped to the window, so a window that does
  /// not start or end on a boundary yields a partial first and/or last
  /// interval; `index` is the global grid index k, not the position within
  /// the window. Only requests/sessions inside [t0, t1) are counted.
  [[nodiscard]] std::vector<Interval> partition(double t0, double t1,
                                                double interval_seconds) const;

  /// The paper's typical Low (fewest requests), Med (median), High (most)
  /// interval selection over the partition. Partial first/last intervals
  /// (boundary effects) are dropped when enough intervals remain.
  [[nodiscard]] support::Result<Interval> pick(Load load,
                                               double interval_seconds = 4.0 * 3600.0) const;

  /// pick() over an explicitly-provided (possibly non-aligned) sub-window;
  /// both a partial leading and a partial trailing interval are dropped
  /// before the Low/Med/High selection, when enough intervals remain.
  [[nodiscard]] support::Result<Interval> pick(Load load, double t0, double t1,
                                               double interval_seconds) const;

  /// Binary columnar store round-trip (src/store/columnar.h has the format;
  /// these members are *defined* in fullweb_store — link it to use them).
  /// to_columnar serializes the request and session tables to `path` and
  /// returns the file size; from_columnar reloads them bit-identically,
  /// skipping CLF parsing, interning and sessionization entirely.
  [[nodiscard]] support::Result<std::uint64_t> to_columnar(
      const std::string& path) const;
  [[nodiscard]] static support::Result<Dataset> from_columnar(
      const std::string& path);

 private:
  Dataset() = default;
  void finalize(const SessionizerOptions& sessionizer);
  /// Sort requests_ by time and recompute totals/t0/t1 (no sessionization).
  void sort_requests_and_total();

  std::string name_;
  std::vector<Request> requests_;   ///< sorted by time
  std::vector<Session> sessions_;   ///< sorted by start
  double t0_ = 0.0;
  double t1_ = 0.0;
  std::uint64_t total_bytes_ = 0;
  std::size_t distinct_clients_ = 0;
};

}  // namespace fullweb::weblog
