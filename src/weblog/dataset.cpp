#include "weblog/dataset.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string_view>

#include "timeseries/series.h"
#include "weblog/streaming_sessionizer.h"

namespace fullweb::weblog {

using support::Error;
using support::Result;

std::string to_string(Load load) {
  switch (load) {
    case Load::kLow: return "Low";
    case Load::kMed: return "Med";
    case Load::kHigh: return "High";
  }
  return "?";
}

Result<Dataset> Dataset::from_entries(std::string name,
                                      std::span<const LogEntry> entries,
                                      const SessionizerOptions& sessionizer) {
  if (entries.empty()) return Error::insufficient_data("Dataset: no entries");
  Dataset ds;
  ds.name_ = std::move(name);
  ds.requests_.reserve(entries.size());

  std::unordered_map<std::string, std::uint32_t> intern;
  for (const auto& e : entries) {
    auto [it, inserted] =
        intern.emplace(e.client, static_cast<std::uint32_t>(intern.size()));
    ds.requests_.push_back(Request{e.timestamp, it->second,
                                   static_cast<std::uint16_t>(
                                       std::clamp(e.status, 0, 65535)),
                                   e.bytes});
  }
  ds.distinct_clients_ = intern.size();
  ds.finalize(sessionizer);
  return ds;
}

Result<Dataset> Dataset::from_requests(std::string name,
                                       std::vector<Request> requests,
                                       const SessionizerOptions& sessionizer) {
  if (requests.empty()) return Error::insufficient_data("Dataset: no requests");
  Dataset ds;
  ds.name_ = std::move(name);
  ds.requests_ = std::move(requests);

  std::uint32_t max_client = 0;
  for (const auto& r : ds.requests_) max_client = std::max(max_client, r.client);
  // Distinct count via a presence bitmap (client ids are dense by contract).
  std::vector<bool> seen(static_cast<std::size_t>(max_client) + 1, false);
  std::size_t distinct = 0;
  for (const auto& r : ds.requests_) {
    if (!seen[r.client]) {
      seen[r.client] = true;
      ++distinct;
    }
  }
  ds.distinct_clients_ = distinct;
  ds.finalize(sessionizer);
  return ds;
}

void Dataset::sort_requests_and_total() {
  std::sort(requests_.begin(), requests_.end(),
            [](const Request& a, const Request& b) { return a.time < b.time; });
  total_bytes_ = 0;
  for (const auto& r : requests_) total_bytes_ += r.bytes;
  t0_ = std::floor(requests_.front().time);
  t1_ = std::floor(requests_.back().time) + 1.0;
}

void Dataset::finalize(const SessionizerOptions& sessionizer) {
  sort_requests_and_total();
  sessions_ = sessionize(requests_, sessionizer);
}

namespace {

/// Heterogeneous string hashing so client interning can probe by
/// string_view without constructing a std::string per line (C++20
/// transparent lookup; the std::string key is built only on first sight of
/// a client).
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace

Result<Dataset> Dataset::from_clf_stream(std::string name,
                                         std::span<const std::string> paths,
                                         const StreamIngestOptions& options,
                                         StreamIngestReport* report) {
  Dataset ds;
  ds.name_ = std::move(name);

  std::unordered_map<std::string, std::uint32_t, TransparentStringHash,
                     std::equal_to<>>
      intern;
  StreamingSessionizer sessionizer(options.sessionizer);
  StreamIngestReport local_report;
  StreamIngestReport& rep = report != nullptr ? *report : local_report;
  rep = StreamIngestReport{};

  // Interning follows delivery order — identical to from_entries on the
  // same entry sequence — and the compact Request is all we keep; the
  // zero-copy ClfRecord (whose views die with its parse chunk) is never
  // materialized into a LogEntry on this path.
  bool sorted = true;
  double prev_time = 0.0;
  auto on_record = [&](const ClfRecord& rec) {
    // A non-finite timestamp would poison everything downstream — the
    // time sort's strict weak ordering, t0/t1, the binned series — so the
    // record is dropped and counted rather than carried as a flag. The CLF
    // parser never emits one (timestamps are range-checked), but records
    // can also arrive through this path from non-parser producers.
    if (!std::isfinite(rec.timestamp)) {
      ++rep.invalid_time;
      return;
    }
    auto it = intern.find(rec.client);
    if (it == intern.end())
      it = intern
               .emplace(std::string(rec.client),
                        static_cast<std::uint32_t>(intern.size()))
               .first;
    const Request r{rec.timestamp, it->second,
                    static_cast<std::uint16_t>(std::clamp(rec.status, 0, 65535)),
                    rec.bytes};
    // Negated comparison: mirror of the StreamingSessionizer NaN guard —
    // kept even though NaN is filtered above, so the two unsorted
    // detectors can never disagree.
    if (!ds.requests_.empty() && !(r.time >= prev_time)) sorted = false;
    prev_time = r.time;
    ds.requests_.push_back(r);
    // Keep feeding even after a sort violation: peak accounting stays
    // meaningful and the flag decides whether the result is used.
    sessionizer.add(r);
  };

  std::size_t overall_peak = 0;
  for (const auto& path : paths) {
    // Per-file peak: restart the sessionizer's high-water mark so each
    // file reports the maximum open-session count reached *while it was
    // being ingested* (sessions still open from earlier files count — they
    // are open during this file too). The stream-wide peak is the max over
    // the per-file peaks, since every instant falls inside some file.
    sessionizer.reset_peak();
    auto stats = read_clf_records(path, options.reader, on_record);
    if (stats.ok()) {
      IngestStats s = std::move(stats).value();
      s.peak_open_sessions = sessionizer.peak_open_sessions();
      overall_peak = std::max(overall_peak, s.peak_open_sessions);
      rep.files.push_back(std::move(s));
    } else {
      IngestStats failed;
      failed.path = path;
      failed.open_failed = true;
      rep.files.push_back(std::move(failed));
    }
  }
  if (ds.requests_.empty())
    return Error::insufficient_data("Dataset::from_clf_stream: no entries");

  ds.distinct_clients_ = intern.size();
  rep.peak_open_sessions = overall_peak;
  rep.sessionized_incrementally = sorted && !sessionizer.saw_unsorted();

  ds.sort_requests_and_total();
  if (rep.sessionized_incrementally) {
    ds.sessions_ = sessionizer.finish();
  } else {
    // Out-of-order entry stream: incremental eviction decisions are not
    // trustworthy, so sessionize the (now sorted) table the batch way.
    ds.sessions_ = sessionize(ds.requests_, options.sessionizer);
  }
  return ds;
}

std::vector<double> Dataset::request_times() const {
  std::vector<double> t;
  t.reserve(requests_.size());
  for (const auto& r : requests_) t.push_back(r.time);
  return t;
}

std::vector<double> Dataset::session_start_times() const {
  std::vector<double> t;
  t.reserve(sessions_.size());
  for (const auto& s : sessions_) t.push_back(s.start);
  return t;
}

std::vector<double> Dataset::requests_per_second(double bin_seconds) const {
  return requests_per_second(t0_, t1_, bin_seconds);
}

std::vector<double> Dataset::sessions_per_second(double bin_seconds) const {
  return sessions_per_second(t0_, t1_, bin_seconds);
}

std::vector<double> Dataset::requests_per_second(double t0, double t1,
                                                 double bin_seconds) const {
  return timeseries::counts_per_bin(request_times(), t0, t1, bin_seconds);
}

std::vector<double> Dataset::sessions_per_second(double t0, double t1,
                                                 double bin_seconds) const {
  return timeseries::counts_per_bin(session_start_times(), t0, t1, bin_seconds);
}

namespace {

template <typename Extract>
std::vector<double> session_samples(const std::vector<Session>& sessions, double t0,
                                    double t1, Extract&& extract) {
  std::vector<double> out;
  for (const auto& s : sessions) {
    if (s.start >= t0 && s.start < t1) out.push_back(extract(s));
  }
  return out;
}

}  // namespace

std::vector<double> Dataset::session_lengths() const {
  return session_lengths(t0_, t1_);
}
std::vector<double> Dataset::session_request_counts() const {
  return session_request_counts(t0_, t1_);
}
std::vector<double> Dataset::session_byte_counts() const {
  return session_byte_counts(t0_, t1_);
}

std::vector<double> Dataset::session_lengths(double t0, double t1) const {
  return session_samples(sessions_, t0, t1,
                         [](const Session& s) { return s.length(); });
}

std::vector<double> Dataset::session_request_counts(double t0, double t1) const {
  return session_samples(sessions_, t0, t1, [](const Session& s) {
    return static_cast<double>(s.requests);
  });
}

std::vector<double> Dataset::session_byte_counts(double t0, double t1) const {
  return session_samples(sessions_, t0, t1, [](const Session& s) {
    return static_cast<double>(s.bytes);
  });
}

std::vector<Interval> Dataset::partition(double interval_seconds) const {
  return partition(t0_, t1_, interval_seconds);
}

std::vector<Interval> Dataset::partition(double t0, double t1,
                                         double interval_seconds) const {
  std::vector<Interval> out;
  if (!(interval_seconds > 0.0) || !(t1 > t0)) return out;
  // Interval boundaries live on the dataset's native grid (anchored at the
  // observation-window start), so a sub-window that starts off-grid gets a
  // clipped leading interval rather than a shifted grid.
  const double first_f = std::floor((t0 - t0_) / interval_seconds);
  const auto first = static_cast<std::ptrdiff_t>(first_f);
  const auto count = static_cast<std::size_t>(
      std::ceil((t1 - t0_) / interval_seconds) - first_f);
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double grid_lo =
        t0_ + static_cast<double>(first + static_cast<std::ptrdiff_t>(i)) *
                  interval_seconds;
    out[i].index = static_cast<std::size_t>(std::max<std::ptrdiff_t>(
        0, first + static_cast<std::ptrdiff_t>(i)));
    out[i].t0 = std::max(t0, grid_lo);
    out[i].t1 = std::min(t1, grid_lo + interval_seconds);
  }
  const auto bucket = [&](double time) {
    return std::min(
        count - 1,
        static_cast<std::size_t>(std::max<std::ptrdiff_t>(
            0, static_cast<std::ptrdiff_t>((time - t0_) / interval_seconds) -
                   first)));
  };
  for (const auto& r : requests_) {
    if (r.time < t0 || r.time >= t1) continue;
    ++out[bucket(r.time)].request_count;
  }
  for (const auto& s : sessions_) {
    if (s.start < t0 || s.start >= t1) continue;
    ++out[bucket(s.start)].session_count;
  }
  return out;
}

Result<Interval> Dataset::pick(Load load, double interval_seconds) const {
  return pick(load, t0_, t1_, interval_seconds);
}

Result<Interval> Dataset::pick(Load load, double t0, double t1,
                               double interval_seconds) const {
  auto parts = partition(t0, t1, interval_seconds);
  if (parts.size() < 3)
    return Error::insufficient_data("Dataset::pick: fewer than 3 intervals");

  // Drop the first and the last interval if partial (boundary effects),
  // when enough intervals remain. The default whole-window partition is
  // grid-anchored so only its last interval can be partial; an explicitly
  // provided non-aligned window can clip the leading interval as well.
  const double full = interval_seconds * 0.999;
  const auto partial = [&](const Interval& iv) { return iv.t1 - iv.t0 < full; };
  if (parts.size() >= 5 && partial(parts.back())) parts.pop_back();
  if (parts.size() >= 5 && partial(parts.front())) parts.erase(parts.begin());

  std::sort(parts.begin(), parts.end(), [](const Interval& a, const Interval& b) {
    return a.request_count < b.request_count;
  });
  switch (load) {
    case Load::kLow: return parts.front();
    case Load::kMed: return parts[parts.size() / 2];
    case Load::kHigh: return parts.back();
  }
  return Error::invalid_argument("Dataset::pick: bad load class");
}

}  // namespace fullweb::weblog
