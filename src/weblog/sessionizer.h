// Sessionization: grouping requests into user sessions.
//
// Following §2 of the paper, a session is a sequence of requests from the
// same client (IP address) with gaps below a threshold; the paper adopts a
// 30-minute threshold (from the sensitivity study in [12]). Session
// boundaries are delimited by inactivity longer than the threshold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fullweb::weblog {

/// A compact request record (client strings are interned by Dataset).
struct Request {
  double time = 0.0;           ///< epoch seconds
  std::uint32_t client = 0;    ///< interned client id
  std::uint16_t status = 200;  ///< HTTP status (0 = unknown)
  std::uint64_t bytes = 0;     ///< response bytes (completed or partial)
};

/// Index type used to address requests during sessionization. Deliberately
/// std::size_t (not std::uint32_t): the streaming ingest path may legally
/// feed more than 2^32 requests through one sessionization pass.
using RequestIndex = std::size_t;

struct Session {
  std::uint32_t client = 0;
  double start = 0.0;          ///< time of the first request
  double end = 0.0;            ///< time of the last request
  std::uint64_t requests = 0;  ///< session length in number of requests
  std::uint64_t bytes = 0;     ///< bytes transferred per session

  /// Session length in time units. A single-request session has length 0.
  [[nodiscard]] double length() const noexcept { return end - start; }
};

/// Canonical session-table ordering: by start time, ties broken by client
/// id (a client cannot open two sessions at the same instant, so this is a
/// total order on any real table). Both the batch and streaming
/// sessionizers sort with this comparator, which is what makes their
/// outputs bit-identical.
[[nodiscard]] inline bool session_order(const Session& a,
                                        const Session& b) noexcept {
  if (a.start != b.start) return a.start < b.start;
  return a.client < b.client;
}

struct SessionizerOptions {
  double threshold_seconds = 1800.0;  ///< 30 minutes, per the paper
};

/// Group requests into sessions. Requests need not be sorted. The result is
/// in canonical `session_order`. O(n log n).
[[nodiscard]] std::vector<Session> sessionize(std::span<const Request> requests,
                                              const SessionizerOptions& options = {});

}  // namespace fullweb::weblog
