// Sessionization: grouping requests into user sessions.
//
// Following §2 of the paper, a session is a sequence of requests from the
// same client (IP address) with gaps below a threshold; the paper adopts a
// 30-minute threshold (from the sensitivity study in [12]). Session
// boundaries are delimited by inactivity longer than the threshold.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fullweb::weblog {

/// A compact request record (client strings are interned by Dataset).
struct Request {
  double time = 0.0;           ///< epoch seconds
  std::uint32_t client = 0;    ///< interned client id
  std::uint16_t status = 200;  ///< HTTP status (0 = unknown)
  std::uint64_t bytes = 0;     ///< response bytes (completed or partial)
};

struct Session {
  std::uint32_t client = 0;
  double start = 0.0;          ///< time of the first request
  double end = 0.0;            ///< time of the last request
  std::uint64_t requests = 0;  ///< session length in number of requests
  std::uint64_t bytes = 0;     ///< bytes transferred per session

  /// Session length in time units. A single-request session has length 0.
  [[nodiscard]] double length() const noexcept { return end - start; }
};

struct SessionizerOptions {
  double threshold_seconds = 1800.0;  ///< 30 minutes, per the paper
};

/// Group requests into sessions. Requests need not be sorted. The result is
/// ordered by session start time. O(n log n).
[[nodiscard]] std::vector<Session> sessionize(std::span<const Request> requests,
                                              const SessionizerOptions& options = {});

}  // namespace fullweb::weblog
