#include "weblog/sessionizer.h"

#include <algorithm>
#include <numeric>

namespace fullweb::weblog {

std::vector<Session> sessionize(std::span<const Request> requests,
                                const SessionizerOptions& options) {
  std::vector<Session> sessions;
  if (requests.empty()) return sessions;

  // Sort an index array by (client, time) so each client's requests are
  // contiguous and chronological.
  std::vector<std::uint32_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (requests[a].client != requests[b].client)
      return requests[a].client < requests[b].client;
    return requests[a].time < requests[b].time;
  });

  Session current;
  bool open = false;
  auto close = [&] {
    if (open) sessions.push_back(current);
    open = false;
  };

  for (std::uint32_t idx : order) {
    const Request& r = requests[idx];
    const bool same_client = open && current.client == r.client;
    const bool within_gap =
        same_client && (r.time - current.end) <= options.threshold_seconds;
    if (!within_gap) {
      close();
      current = Session{r.client, r.time, r.time, 0, 0};
      open = true;
    }
    current.end = r.time;
    current.requests += 1;
    current.bytes += r.bytes;
  }
  close();

  std::sort(sessions.begin(), sessions.end(),
            [](const Session& a, const Session& b) { return a.start < b.start; });
  return sessions;
}

}  // namespace fullweb::weblog
