#include "weblog/sessionizer.h"

#include <algorithm>
#include <numeric>

namespace fullweb::weblog {

std::vector<Session> sessionize(std::span<const Request> requests,
                                const SessionizerOptions& options) {
  std::vector<Session> sessions;
  if (requests.empty()) return sessions;

  // Sort an index array by (client, time) so each client's requests are
  // contiguous and chronological. RequestIndex is std::size_t: a uint32
  // index would silently wrap past 2^32 requests.
  std::vector<RequestIndex> order(requests.size());
  std::iota(order.begin(), order.end(), RequestIndex{0});
  std::sort(order.begin(), order.end(), [&](RequestIndex a, RequestIndex b) {
    if (requests[a].client != requests[b].client)
      return requests[a].client < requests[b].client;
    return requests[a].time < requests[b].time;
  });

  Session current;
  bool open = false;
  auto close = [&] {
    if (open) sessions.push_back(current);
    open = false;
  };

  for (RequestIndex idx : order) {
    const Request& r = requests[idx];
    const bool same_client = open && current.client == r.client;
    const bool within_gap =
        same_client && (r.time - current.end) <= options.threshold_seconds;
    if (!within_gap) {
      close();
      current = Session{r.client, r.time, r.time, 0, 0};
      open = true;
    }
    current.end = r.time;
    current.requests += 1;
    current.bytes += r.bytes;
  }
  close();

  std::sort(sessions.begin(), sessions.end(), session_order);
  return sessions;
}

}  // namespace fullweb::weblog
