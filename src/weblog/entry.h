// Web-server access-log records.
//
// The analyses only consume (timestamp, client, bytes) but the parser keeps
// the request line and status so error/reliability studies (the companion
// papers [11], [12]) and filtering (e.g. excluding 4xx) remain possible.
#pragma once

#include <cstdint>
#include <string>

namespace fullweb::weblog {

struct LogEntry {
  double timestamp = 0.0;   ///< seconds since the Unix epoch (UTC)
  std::string client;       ///< IP address or sanitized unique identifier
  std::string method;       ///< GET/POST/...; empty if the request line was "-"
  std::string path;
  std::string protocol;     ///< e.g. "HTTP/1.0"; may be empty (HTTP/0.9)
  int status = 0;           ///< HTTP status code
  std::uint64_t bytes = 0;  ///< response bytes; "-" in the log becomes 0
};

}  // namespace fullweb::weblog
