// Chunked, parallel, bounded-memory CLF file reader.
//
// The original ingest path (`parse_clf_stream` over a whole ifstream)
// reads one line at a time on one thread and its callers slurp every
// parsed entry into RAM. This reader instead:
//
//  * reads fixed-size byte blocks off the file sequentially (each block is
//    read directly behind the previous block's carried partial line, so no
//    block is ever recopied),
//  * snaps each block to the last newline (the remainder is carried into
//    the next block, so no line is ever split across parse tasks),
//  * parses blocks in parallel on a `support::Executor`, each worker
//    running a zero-copy ClfLineParser whose records view the block text,
//  * and reassembles results strictly in file order, so the record stream
//    delivered to `on_record` is byte-for-byte the same at 1 or N threads.
//
// At most `max_inflight_chunks` blocks are outstanding, so peak memory is
// O(chunk_bytes * inflight) for text plus whatever the consumer retains —
// the file itself is never resident at once.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "support/result.h"
#include "weblog/clf.h"
#include "weblog/entry.h"

namespace fullweb::support {
class Executor;
}

namespace fullweb::weblog {

/// Per-file ingest accounting, printable by audits and asserted by tests.
struct IngestStats {
  std::string path;
  std::uint64_t bytes = 0;       ///< bytes read off the file
  std::size_t lines = 0;         ///< non-empty lines seen
  std::size_t parsed = 0;        ///< lines that produced a record
  std::size_t malformed = 0;     ///< lines rejected (sum of by_reason)
  std::array<std::size_t, kClfParseReasonCount> malformed_by_reason{};
  std::size_t chunks = 0;        ///< parse blocks dispatched
  double wall_seconds = 0.0;     ///< end-to-end read+parse wall time
  bool open_failed = false;      ///< the file could not be opened
  /// Filled by sessionizing consumers (Dataset::from_clf_stream); the
  /// reader itself leaves it 0. A *per-file* peak: the maximum number of
  /// concurrently open sessions reached while this file was being ingested
  /// (sessions still open from earlier files count toward it), not the
  /// stream-wide cumulative high-water mark — that lives in
  /// StreamIngestReport::peak_open_sessions.
  std::size_t peak_open_sessions = 0;

  /// One-line human-readable summary ("<path>: parsed=... malformed=...").
  [[nodiscard]] std::string summary() const;
};

struct ClfReaderOptions {
  std::size_t chunk_bytes = 1 << 20;    ///< parse-block size (min 4 KiB)
  /// Blocks allowed in flight before the reader stalls on the oldest
  /// (0 = 2x executor threads). Bounds peak text memory.
  std::size_t max_inflight_chunks = 0;
  support::Executor* executor = nullptr;  ///< null = the global pool
};

/// Read `path`, parsing chunks in parallel, and deliver every parsed record
/// IN FILE ORDER to `on_record` (called on the reader's thread only, never
/// concurrently). The record's views are valid only for the duration of the
/// callback — consumers keep what they need (Dataset::from_clf_stream keeps
/// a 24-byte Request and an interned client id). Returns the per-file
/// stats, or an Error with category "io" when the file cannot be opened
/// (stats.open_failed is mirrored by callers that aggregate files).
[[nodiscard]] support::Result<IngestStats> read_clf_records(
    const std::string& path, const ClfReaderOptions& options,
    const std::function<void(const ClfRecord&)>& on_record);

/// read_clf_records, materializing an owning LogEntry per record — for
/// consumers that keep the string fields. The hot sessionizing path uses
/// read_clf_records directly and never pays the per-line allocations.
[[nodiscard]] support::Result<IngestStats> read_clf_file(
    const std::string& path, const ClfReaderOptions& options,
    const std::function<void(LogEntry&&)>& on_entry);

}  // namespace fullweb::weblog
