// Long-stream scanning kernels. This TU is listed in fullweb_hot_simd()
// (cmake/hot_simd.cmake): when the build host both compiles and *runs* AVX2,
// it is compiled with -mavx2 and the intrinsics path below is active;
// otherwise the portable SWAR tier from clf_scan.h serves as the body.
//
// Memory-safety contract for the sanitizer gates: the vector loop only ever
// loads 32-byte blocks that lie entirely inside [p, end) — there is no
// masked or overhanging tail load — and the remainder is handled by the
// SWAR/scalar tier, so ASan sees no reads past the caller's buffer.
#include "weblog/clf_scan.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace fullweb::weblog::scan {

const char* find_byte_long(const char* p, const char* end, char c) noexcept {
#if defined(__AVX2__)
  const __m256i pat = _mm256_set1_epi8(c);
  while (end - p >= 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pat)));
    if (mask != 0) return p + __builtin_ctz(mask);
    p += 32;
  }
#endif
  return find_byte(p, end, c);
}

const char* find_byte_scalar(const char* p, const char* end, char c) noexcept {
  while (p < end && *p != c) ++p;
  return p;
}

const char* find_either_scalar(const char* p, const char* end, char a,
                               char b) noexcept {
  while (p < end && *p != a && *p != b) ++p;
  return p;
}

bool all_digits_scalar(const char* p, std::size_t n) noexcept {
  for (; n > 0; ++p, --n) {
    if (*p < '0' || *p > '9') return false;
  }
  return true;
}

bool compiled_with_avx2() noexcept {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

}  // namespace fullweb::weblog::scan
