#include "weblog/streaming_sessionizer.h"

#include <algorithm>

namespace fullweb::weblog {

void StreamingSessionizer::evict_idle_before(double now) {
  // The list is sorted by last-activity time, so every expired session sits
  // at the front. Strict '<' mirrors the batch rule: a gap EQUAL to the
  // threshold still extends the session.
  while (!by_end_.empty() &&
         now - by_end_.front().end > options_.threshold_seconds) {
    open_.erase(by_end_.front().client);
    closed_.push_back(by_end_.front());
    by_end_.pop_front();
  }
}

void StreamingSessionizer::add(const Request& r) {
  // Negated comparison so a NaN timestamp raises the unsorted flag instead
  // of slipping through (NaN < x is false for every x): a NaN would also
  // disable idle eviction below (now - end > threshold never holds), so the
  // incremental result must be marked untrustworthy, exactly like a
  // time regression.
  if (any_ && !(r.time >= last_time_)) saw_unsorted_ = true;
  any_ = true;
  last_time_ = r.time;

  evict_idle_before(r.time);

  auto it = open_.find(r.client);
  if (it != open_.end()) {
    // Still open after eviction ⇒ the gap is within the threshold: same
    // session. Move to the back; r.time >= every end in the list, so the
    // ordering invariant is preserved.
    Session& s = *it->second;
    s.end = r.time;
    s.requests += 1;
    s.bytes += r.bytes;
    by_end_.splice(by_end_.end(), by_end_, it->second);
  } else {
    by_end_.push_back(Session{r.client, r.time, r.time, 1, r.bytes});
    open_.emplace(r.client, std::prev(by_end_.end()));
  }
  // Sample the open count at every event, not just inserts (extends leave
  // the count unchanged, so this is equivalent for a fresh run): a peak
  // restarted mid-stream via reset_peak() must still count sessions carried
  // over from before the restart once an event shows them still open.
  peak_open_ = std::max(peak_open_, by_end_.size());
}

std::vector<Session> StreamingSessionizer::take_closed() {
  std::vector<Session> out;
  out.swap(closed_);
  return out;
}

std::vector<Session> StreamingSessionizer::finish() {
  for (const Session& s : by_end_) closed_.push_back(s);
  by_end_.clear();
  open_.clear();
  std::vector<Session> out;
  out.swap(closed_);
  std::sort(out.begin(), out.end(), session_order);
  last_time_ = -1.0;
  any_ = false;
  saw_unsorted_ = false;
  peak_open_ = 0;
  return out;
}

}  // namespace fullweb::weblog
