#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

#include "lrd/estimator_suite.h"
#include "support/executor.h"
#include "validation/montecarlo.h"
#include "validation/scenario.h"

namespace fullweb::validation {

namespace {

constexpr std::array<lrd::HurstMethod, 5> kMethods = {
    lrd::HurstMethod::kVarianceTime, lrd::HurstMethod::kRoverS,
    lrd::HurstMethod::kPeriodogram, lrd::HurstMethod::kWhittle,
    lrd::HurstMethod::kAbryVeitch};

/// Grid index for the documented bands: H in {0.5, 0.6, 0.7, 0.8, 0.9}.
int h_grid_index(double h) {
  const int idx = static_cast<int>(std::lround(h * 10.0)) - 5;
  return std::clamp(idx, 0, 4);
}

struct ReplicateOutcome {
  struct Estimate {
    double h = 0.0;
    std::optional<double> ci95_halfwidth;
    bool ci_covers_truth = false;
  };
  std::array<std::optional<Estimate>, kMethods.size()> by_method;
  bool draw_ok = false;
};

std::string gate_cell_name(const char* what, const std::string& estimator,
                           double h) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "hurst/%s/%s/H=%.2f", what, estimator.c_str(),
                h);
  return buf;
}

}  // namespace

BiasBand hurst_bias_band(lrd::HurstMethod method, double h) {
  // Calibrated against the full-profile run (n = 8192, 256 replicates per H;
  // see EXPERIMENTS.md "Estimator calibration"): measured mean bias at each
  // grid H, widened to absorb the estimator's known systematic drift plus a
  // safety margin of roughly twice the full-profile Monte Carlo SE. The
  // time-domain regressions carry real bias — R/S upward at H = 0.5 (its
  // classic small-sample inflation), variance-time and R/S downward at high
  // H — while the likelihood/wavelet estimators must stay within a few
  // hundredths of truth.
  const int i = h_grid_index(h);
  switch (method) {
    case lrd::HurstMethod::kVarianceTime: {
      // Measured bias: -0.004 (H=0.5) drifting to -0.052 (H=0.9).
      constexpr BiasBand bands[5] = {{-0.05, 0.04}, {-0.06, 0.03}, {-0.08, 0.02},
                                     {-0.10, 0.02}, {-0.12, 0.02}};
      return bands[i];
    }
    case lrd::HurstMethod::kRoverS: {
      // Measured bias: +0.038 (H=0.5) falling through 0 to -0.050 (H=0.9).
      constexpr BiasBand bands[5] = {{0.00, 0.12}, {-0.03, 0.09}, {-0.07, 0.06},
                                     {-0.10, 0.04}, {-0.13, 0.01}};
      return bands[i];
    }
    case lrd::HurstMethod::kPeriodogram: {
      // GPH regression over the low-frequency band: small negative drift.
      constexpr BiasBand bands[5] = {{-0.05, 0.05}, {-0.05, 0.05}, {-0.06, 0.05},
                                     {-0.06, 0.05}, {-0.07, 0.05}};
      return bands[i];
    }
    case lrd::HurstMethod::kWhittle: {
      // Exact parametric likelihood on exact fGn: essentially unbiased.
      constexpr BiasBand bands[5] = {{-0.02, 0.02}, {-0.02, 0.02}, {-0.02, 0.02},
                                     {-0.02, 0.02}, {-0.03, 0.02}};
      return bands[i];
    }
    case lrd::HurstMethod::kAbryVeitch:
    default: {
      // D4 wavelet energy regression: small bias from octave weighting.
      constexpr BiasBand bands[5] = {{-0.03, 0.03}, {-0.03, 0.03}, {-0.03, 0.03},
                                     {-0.04, 0.03}, {-0.04, 0.03}};
      return bands[i];
    }
  }
}

double hurst_coverage_band(lrd::HurstMethod method, double h) {
  if (method == lrd::HurstMethod::kWhittle) return 0.05;
  // Abry-Veitch: measured full-profile coverage 0.94/0.94/0.84/0.86/0.79 at
  // H = 0.5..0.9 — the D4 energy-regression CI ignores the estimator's
  // upward bias, which grows with H while the halfwidth stays ~0.024.
  constexpr double av_bands[5] = {0.06, 0.06, 0.13, 0.13, 0.18};
  return av_bands[h_grid_index(h)];
}

HurstScenarioResult run_hurst_scenario(const HurstScenarioConfig& config,
                                       support::Rng scenario_rng,
                                       support::Executor& executor) {
  HurstScenarioResult result;
  result.config = config;

  const std::size_t reps = config.replicates;
  lrd::HurstSuiteOptions suite_options;
  suite_options.executor = &executor;

  // One flat replicate grid (H-major) so a single fan-out load-balances
  // across the whole scenario; stream index = h_index * reps + rep keeps
  // every replicate's draw independent of scheduling.
  support::RngSplitter streams(scenario_rng, 0);
  const std::size_t total = config.h_values.size() * reps;
  const auto outcomes = monte_carlo<ReplicateOutcome>(
      total, streams, executor, [&](std::size_t index, support::Rng& rng) {
        ReplicateOutcome out;
        synth::FgnTruth truth;
        truth.n = config.n;
        truth.hurst = config.h_values[index / reps];
        auto series = synth::draw_fgn(truth, rng);
        if (!series.ok()) return out;
        out.draw_ok = true;
        const auto suite = lrd::hurst_suite(series.value(), suite_options);
        for (std::size_t m = 0; m < kMethods.size(); ++m) {
          if (const auto* est = suite.find(kMethods[m])) {
            ReplicateOutcome::Estimate e;
            e.h = est->h;
            e.ci95_halfwidth = est->ci95_halfwidth;
            e.ci_covers_truth = est->ci_covers(truth.hurst);
            out.by_method[m] = e;
          }
        }
        return out;
      });

  // Aggregate into estimator-major cells and evaluate gates.
  for (std::size_t m = 0; m < kMethods.size(); ++m) {
    const std::string estimator = lrd::to_string(kMethods[m]);
    std::size_t estimator_failures = 0;
    for (std::size_t hi = 0; hi < config.h_values.size(); ++hi) {
      const double true_h = config.h_values[hi];
      HurstCell cell;
      cell.estimator = estimator;
      cell.true_h = true_h;

      double sum = 0.0, sum_sq_err = 0.0;
      std::size_t covered = 0, with_ci = 0;
      double ci_sum = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto& rep = outcomes[hi * reps + r];
        const auto& est = rep.by_method[m];
        if (!rep.draw_ok || !est.has_value()) {
          ++cell.failures;
          continue;
        }
        ++cell.replicates;
        sum += est->h;
        sum_sq_err += (est->h - true_h) * (est->h - true_h);
        if (est->ci95_halfwidth.has_value()) {
          ++with_ci;
          ci_sum += *est->ci95_halfwidth;
          if (est->ci_covers_truth) ++covered;
        }
      }
      if (cell.replicates > 0) {
        const auto nr = static_cast<double>(cell.replicates);
        cell.mean_h = sum / nr;
        cell.bias = cell.mean_h - true_h;
        cell.rmse = std::sqrt(sum_sq_err / nr);
        const double var = std::max(
            0.0, sum_sq_err / nr - cell.bias * cell.bias);
        cell.sd = std::sqrt(var);
        if (with_ci > 0) {
          cell.coverage = static_cast<double>(covered) / static_cast<double>(with_ci);
          cell.mean_ci_halfwidth = ci_sum / static_cast<double>(with_ci);
        }
      }
      estimator_failures += cell.failures;

      // Bias gate: documented band plus 3-sigma MC slack at this replicate
      // count, so smoke and full profiles share one definition.
      const BiasBand band = hurst_bias_band(kMethods[m], true_h);
      const double slack = mean_slack(cell.sd, cell.replicates);
      result.gates.push_back(make_gate(gate_cell_name("bias", estimator, true_h),
                                       cell.bias, band.lo - slack,
                                       band.hi + slack));

      // Coverage gate for the CI-bearing methods.
      const bool ci_method = kMethods[m] == lrd::HurstMethod::kWhittle ||
                             kMethods[m] == lrd::HurstMethod::kAbryVeitch;
      if (ci_method) {
        const double band_cov = hurst_coverage_band(kMethods[m], true_h);
        const double cov_slack =
            proportion_slack(config.coverage_nominal, cell.replicates);
        result.gates.push_back(make_gate(
            gate_cell_name("coverage", estimator, true_h),
            cell.coverage.value_or(std::numeric_limits<double>::quiet_NaN()),
            config.coverage_nominal - band_cov - cov_slack,
            std::min(1.0, config.coverage_nominal + band_cov + cov_slack)));
      }
      result.cells.push_back(std::move(cell));
    }
    // Any estimator failure on clean fGn at n = 8192 is a defect, not noise.
    result.gates.push_back(make_gate("hurst/failures/" + estimator,
                                     static_cast<double>(estimator_failures),
                                     0.0, 0.0));
  }
  return result;
}

}  // namespace fullweb::validation
