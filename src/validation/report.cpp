#include "validation/report.h"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>

#include "support/json.h"

namespace fullweb::validation {

using support::JsonValue;
using support::JsonWriter;

namespace {

void write_gates(JsonWriter& w, const std::vector<GateCheck>& gates) {
  w.key("gates");
  w.begin_array();
  for (const auto& g : gates) {
    w.begin_object();
    w.field("name", g.name);
    w.field("observed", g.observed);
    w.field("lo", g.lo);
    w.field("hi", g.hi);
    w.field("pass", g.pass);
    w.end_object();
  }
  w.end_array();
}

void write_hurst(JsonWriter& w, const HurstScenarioResult& hurst) {
  w.key("hurst");
  w.begin_object();
  w.key("config");
  w.begin_object();
  w.field("n", hurst.config.n);
  w.field("replicates", hurst.config.replicates);
  w.field("coverage_nominal", hurst.config.coverage_nominal);
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const auto& c : hurst.cells) {
    w.begin_object();
    w.field("estimator", c.estimator);
    w.field("true_h", c.true_h);
    w.field("replicates", c.replicates);
    w.field("failures", c.failures);
    w.field("mean_h", c.mean_h);
    w.field("bias", c.bias);
    w.field("sd", c.sd);
    w.field("rmse", c.rmse);
    if (c.coverage.has_value()) w.field("coverage", *c.coverage);
    if (c.mean_ci_halfwidth.has_value())
      w.field("mean_ci_halfwidth", *c.mean_ci_halfwidth);
    w.end_object();
  }
  w.end_array();
  write_gates(w, hurst.gates);
  w.end_object();
}

void write_tail(JsonWriter& w, const TailScenarioResult& tail) {
  w.key("tail");
  w.begin_object();
  w.key("config");
  w.begin_object();
  w.field("n", tail.config.n);
  w.field("replicates", tail.config.replicates);
  w.field("curvature_n", tail.config.curvature_n);
  w.field("curvature_replicates", tail.config.curvature_replicates);
  w.field("curvature_mc_replicates", tail.config.curvature_mc_replicates);
  w.field("curvature_pareto_alpha", tail.config.curvature_pareto_alpha);
  w.field("curvature_lognormal_sigma", tail.config.curvature_lognormal_sigma);
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const auto& c : tail.cells) {
    w.begin_object();
    w.field("estimator", c.estimator);
    w.field("true_alpha", c.true_alpha);
    w.field("replicates", c.replicates);
    w.field("failures", c.failures);
    w.field("mean_alpha", c.mean_alpha);
    w.field("bias", c.bias);
    w.field("rel_bias", c.rel_bias);
    w.field("sd", c.sd);
    w.field("rmse", c.rmse);
    if (c.stabilized_rate.has_value())
      w.field("stabilized_rate", *c.stabilized_rate);
    w.end_object();
  }
  w.end_array();
  w.key("curvature_cells");
  w.begin_array();
  for (const auto& c : tail.curvature_cells) {
    w.begin_object();
    w.field("truth", c.truth);
    w.field("replicates", c.replicates);
    w.field("failures", c.failures);
    w.field("classified_pareto", c.classified_pareto);
    w.field("correct_rate", c.correct_rate);
    w.end_object();
  }
  w.end_array();
  write_gates(w, tail.gates);
  w.end_object();
}

void write_tests(JsonWriter& w, const TestsScenarioResult& tests) {
  w.key("tests");
  w.begin_object();
  w.key("config");
  w.begin_object();
  w.field("replicates", tests.config.replicates);
  w.field("poisson_interval_seconds", tests.config.poisson_interval_seconds);
  w.field("poisson_nominal_size", tests.config.poisson_nominal_size);
  w.field("poisson_min_power", tests.config.poisson_min_power);
  w.field("kpss_n", tests.config.kpss_null.n);
  w.field("kpss_level", tests.config.kpss_level);
  w.field("kpss_min_power", tests.config.kpss_min_power);
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const auto& c : tests.cells) {
    w.begin_object();
    w.field("test", c.test);
    w.field("hypothesis", c.hypothesis);
    w.field("replicates", c.replicates);
    w.field("failures", c.failures);
    w.field("rejections", c.rejections);
    w.field("rejection_rate", c.rejection_rate);
    w.end_object();
  }
  w.end_array();
  write_gates(w, tests.gates);
  w.end_object();
}

void write_online(JsonWriter& w, const OnlineScenarioResult& online) {
  w.key("online");
  w.begin_object();
  w.key("config");
  w.begin_object();
  w.field("sketch_n", online.config.sketch_n);
  w.field("sketch_replicates", online.config.sketch_replicates);
  w.field("tail_top_k", online.config.tail_top_k);
  w.field("tail_body_capacity", online.config.tail_body_capacity);
  w.field("tail_subsample", online.config.tail_subsample);
  w.field("hill_vs_exact_band", online.config.hill_vs_exact_band);
  w.field("llcd_vs_exact_band", online.config.llcd_vs_exact_band);
  w.field("frs_fgn_h", online.config.frs_fgn.hurst);
  w.field("frs_scales", online.config.frs_scales);
  w.field("frs_replicates", online.config.frs_replicates);
  w.field("frs_bias_band", online.config.frs_bias_band);
  w.field("stream_alpha", online.config.stream_alpha);
  w.field("stream_replicates", online.config.stream_replicates);
  w.field("stream_kpss_level", online.config.stream_kpss_level);
  w.field("stream_hill_band", online.config.stream_hill_band);
  w.end_object();
  w.key("sketch_cells");
  w.begin_array();
  for (const auto& c : online.sketch_cells) {
    w.begin_object();
    w.field("true_alpha", c.true_alpha);
    w.field("replicates", c.replicates);
    w.field("failures", c.failures);
    w.field("mean_exact_hill", c.mean_exact_hill);
    w.field("mean_sketch_hill", c.mean_sketch_hill);
    w.field("hill_mean_rel_err", c.hill_mean_rel_err);
    w.field("hill_rel_err_sd", c.hill_rel_err_sd);
    w.field("mean_exact_llcd", c.mean_exact_llcd);
    w.field("mean_sketch_llcd", c.mean_sketch_llcd);
    w.field("llcd_mean_rel_err", c.llcd_mean_rel_err);
    w.field("llcd_rel_err_sd", c.llcd_rel_err_sd);
    w.end_object();
  }
  w.end_array();
  w.key("frs_cells");
  w.begin_array();
  for (const auto& c : online.frs_cells) {
    w.begin_object();
    w.field("truth", c.truth);
    w.field("true_h", c.true_h);
    w.field("replicates", c.replicates);
    w.field("failures", c.failures);
    w.field("mean_h", c.mean_h);
    w.field("bias", c.bias);
    w.field("sd", c.sd);
    w.field("rmse", c.rmse);
    w.end_object();
  }
  w.end_array();
  w.key("stream_cells");
  w.begin_array();
  for (const auto& c : online.stream_cells) {
    w.begin_object();
    w.field("replicates", c.replicates);
    w.field("failures", c.failures);
    w.field("kpss_rejections", c.kpss_rejections);
    w.field("kpss_rejection_rate", c.kpss_rejection_rate);
    w.field("mean_hill_alpha", c.mean_hill_alpha);
    w.field("hill_rel_bias", c.hill_rel_bias);
    w.field("hill_sd", c.hill_sd);
    w.end_object();
  }
  w.end_array();
  write_gates(w, online.gates);
  w.end_object();
}

}  // namespace

std::string report_to_json(const ValidationReport& report) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "fullweb-validation-v1");
  w.field("profile", to_string(report.profile));
  w.field("seed", static_cast<std::size_t>(report.seed));
  w.field("pass", report.pass());
  w.field("failed_gates", report.failed_gates());
  w.field("total_gates", report.all_gates().size());
  write_hurst(w, report.hurst);
  write_tail(w, report.tail);
  write_tests(w, report.tests);
  write_online(w, report.online);
  w.end_object();
  return std::move(w).str();
}

support::Status write_report(const ValidationReport& report,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    return support::Error::invalid_argument("cannot open for writing: " + path);
  out << report_to_json(report);
  out.close();
  if (!out)
    return support::Error::invalid_argument("write failed: " + path);
  return {};
}

namespace {

/// Depth-first flatten of a JSON document into path -> leaf. Objects use
/// dotted keys, arrays bracketed indices; only leaves land in the map.
void flatten(const JsonValue& value, const std::string& path,
             std::map<std::string, JsonValue>& out) {
  if (const auto* obj = value.object()) {
    for (const auto& [key, child] : *obj)
      flatten(child, path.empty() ? key : path + "." + key, out);
    return;
  }
  if (const auto* arr = value.array()) {
    for (std::size_t i = 0; i < arr->size(); ++i)
      flatten((*arr)[i], path + "[" + std::to_string(i) + "]", out);
    return;
  }
  out[path] = value;
}

std::string leaf_to_string(const JsonValue& v) {
  if (auto n = v.number()) return support::json_format_double(*n);
  if (auto s = v.string()) return *s;
  if (auto b = v.boolean()) return *b ? "true" : "false";
  return "null";
}

}  // namespace

support::Result<DriftReport> check_against_baseline(
    const std::string& baseline_text, const std::string& fresh_text,
    double rel_tol, double abs_tol) {
  const auto baseline_doc = support::json_parse(baseline_text);
  if (!baseline_doc)
    return support::Error::parse("baseline report: malformed JSON");
  const auto fresh_doc = support::json_parse(fresh_text);
  if (!fresh_doc) return support::Error::parse("fresh report: malformed JSON");

  std::map<std::string, JsonValue> baseline, fresh;
  flatten(*baseline_doc, "", baseline);
  flatten(*fresh_doc, "", fresh);

  DriftReport report;
  for (const auto& [path, base_value] : baseline) {
    const auto it = fresh.find(path);
    if (it == fresh.end()) {
      ++report.missing;
      report.findings.push_back(
          {path, "missing", "baseline=" + leaf_to_string(base_value)});
      continue;
    }
    ++report.compared;
    const JsonValue& new_value = it->second;
    const std::string detail = "baseline=" + leaf_to_string(base_value) +
                               " new=" + leaf_to_string(new_value);
    const auto base_num = base_value.number();
    const auto new_num = new_value.number();
    if (base_num.has_value() != new_num.has_value() ||
        base_value.v.index() != new_value.v.index()) {
      ++report.drifted;
      report.findings.push_back({path, "type-changed", detail});
      continue;
    }
    if (base_num.has_value()) {
      const double a = *base_num, b = *new_num;
      const double tol = abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
      if (!(std::abs(a - b) <= tol)) {
        ++report.drifted;
        report.findings.push_back({path, "drifted", detail});
      }
      continue;
    }
    if (leaf_to_string(base_value) != leaf_to_string(new_value)) {
      ++report.drifted;
      report.findings.push_back({path, "drifted", detail});
    }
  }
  for (const auto& [path, new_value] : fresh) {
    if (baseline.find(path) == baseline.end())
      report.findings.push_back(
          {path, "new", "new=" + leaf_to_string(new_value)});
  }
  return report;
}

}  // namespace fullweb::validation
