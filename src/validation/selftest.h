// Orchestration of the full self-validation run: scenario configs per
// profile, deterministic RNG layout, and the top-level report object.
//
// RNG layout: one level-1 RngSplitter over the seed hands each scenario its
// own stream; scenarios re-split their stream at level 0 into replicate
// leaves. Replicate results are collected by index, so the entire report is
// a pure function of (profile, seed) — bit-identical at any thread count,
// which the selftest CLI's --check-determinism mode and the committed
// baseline drift gate both rely on.
#pragma once

#include <cstdint>

#include "validation/scenario.h"

namespace fullweb::validation {

struct SelftestOptions {
  Profile profile = Profile::kSmoke;
  /// Keep below 2^53 so the seed survives the JSON number round-trip.
  std::uint64_t seed = 0x5eedf011;
  /// Null = the global pool.
  support::Executor* executor = nullptr;
};

/// Per-profile scenario configurations (replicate counts and, for the
/// curvature discrimination, class sizes; ground-truth parameters and gate
/// bands are profile-invariant so the smoke profile checks the same
/// contracts with wider Monte Carlo slack).
[[nodiscard]] HurstScenarioConfig hurst_config(Profile profile);
[[nodiscard]] TailScenarioConfig tail_config(Profile profile);
[[nodiscard]] TestsScenarioConfig tests_config(Profile profile);
[[nodiscard]] OnlineScenarioConfig online_config(Profile profile);

struct ValidationReport {
  Profile profile = Profile::kSmoke;
  std::uint64_t seed = 0;
  HurstScenarioResult hurst;
  TailScenarioResult tail;
  TestsScenarioResult tests;
  OnlineScenarioResult online;

  /// Every gate across all scenarios, in report order.
  [[nodiscard]] std::vector<const GateCheck*> all_gates() const;
  [[nodiscard]] std::size_t failed_gates() const;
  [[nodiscard]] bool pass() const { return failed_gates() == 0; }
};

[[nodiscard]] ValidationReport run_selftest(const SelftestOptions& options);

}  // namespace fullweb::validation
