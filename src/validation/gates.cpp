#include "validation/gates.h"

#include <cmath>

namespace fullweb::validation {

GateCheck make_gate(std::string name, double observed, double lo, double hi) {
  GateCheck g;
  g.name = std::move(name);
  g.observed = observed;
  g.lo = lo;
  g.hi = hi;
  g.pass = std::isfinite(observed) && observed >= lo && observed <= hi;
  return g;
}

double proportion_slack(double p, std::size_t replicates) {
  if (replicates == 0) return 1.0;
  return 3.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(replicates));
}

double mean_slack(double sd, std::size_t replicates) {
  if (replicates == 0) return sd;
  return 3.0 * sd / std::sqrt(static_cast<double>(replicates));
}

bool all_pass(const std::vector<GateCheck>& gates) {
  for (const auto& g : gates)
    if (!g.pass) return false;
  return true;
}

}  // namespace fullweb::validation
