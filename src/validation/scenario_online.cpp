#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "online/analyzer.h"
#include "online/frs_memory.h"
#include "online/tail_sketch.h"
#include "support/executor.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "validation/montecarlo.h"
#include "validation/scenario.h"

namespace fullweb::validation {

namespace {

// ---- (a) sampled-vs-exact sketch accuracy.

struct SketchReplicateOutcome {
  bool ok = false;
  double exact_hill = 0.0;
  double sketch_hill = 0.0;
  double exact_llcd = 0.0;
  double sketch_llcd = 0.0;
};

struct RelErrAccum {
  std::size_t count = 0;
  double sum_exact = 0.0;
  double sum_sketch = 0.0;
  double sum_err = 0.0;
  double sum_err_sq = 0.0;

  void add(double exact, double sketch) {
    ++count;
    sum_exact += exact;
    sum_sketch += sketch;
    const double err = std::abs(sketch - exact) / exact;
    sum_err += err;
    sum_err_sq += err * err;
  }
  [[nodiscard]] double mean_err() const {
    return count == 0 ? 0.0 : sum_err / static_cast<double>(count);
  }
  [[nodiscard]] double err_sd() const {
    if (count == 0) return 0.0;
    const double m = mean_err();
    return std::sqrt(
        std::max(0.0, sum_err_sq / static_cast<double>(count) - m * m));
  }
};

SketchReplicateOutcome sketch_replicate(const OnlineScenarioConfig& config,
                                        double alpha, std::size_t index,
                                        support::Rng& rng) {
  SketchReplicateOutcome out;
  synth::ParetoTruth truth;
  truth.n = config.sketch_n;
  truth.alpha = alpha;
  const auto xs = synth::draw_pareto(truth, rng);

  online::TailSketch sketch(config.tail_top_k, config.tail_body_capacity);
  for (std::size_t i = 0; i < xs.size(); ++i)
    sketch.insert(xs[i], online::TailSketch::make_tag(index, i));

  const auto exact_hill = tail::hill_estimate(xs);
  const auto exact_llcd = tail::llcd_fit(xs);
  const auto top = sketch.top_values();
  const auto sketch_plot = tail::hill_plot_from_top(
      top, static_cast<std::size_t>(sketch.count()));
  const auto sample =
      sketch.sample_values(config.tail_subsample, rng);
  const auto sketch_llcd = tail::llcd_fit(sample);
  if (!exact_hill.ok() || !exact_llcd.ok() || !sketch_plot.ok() ||
      !sketch_llcd.ok())
    return out;
  const auto sketch_hill = tail::hill_estimate_from_plot(sketch_plot.value());
  if (!sketch_hill.ok()) return out;
  out.ok = true;
  out.exact_hill = exact_hill.value().alpha;
  out.sketch_hill = sketch_hill.value().alpha;
  out.exact_llcd = exact_llcd.value().alpha;
  out.sketch_llcd = sketch_llcd.value().alpha;
  return out;
}

// ---- (b) FRS memory recovery.

struct FrsReplicateOutcome {
  std::optional<double> h;
};

/// Bin sorted arrival times to the 1-second counting series over [t0, t1).
std::vector<double> bin_arrivals(const std::vector<double>& times, double t0,
                                 double t1) {
  std::vector<double> counts(static_cast<std::size_t>(t1 - t0), 0.0);
  for (double t : times) {
    const auto i = static_cast<std::size_t>(t - t0);
    if (i < counts.size()) counts[i] += 1.0;
  }
  return counts;
}

void fill_frs_cell(OnlineFrsCell& cell,
                   const std::vector<FrsReplicateOutcome>& outcomes) {
  double sum = 0.0, sum_sq_err = 0.0;
  for (const auto& rep : outcomes) {
    if (!rep.h.has_value()) {
      ++cell.failures;
      continue;
    }
    ++cell.replicates;
    sum += *rep.h;
    sum_sq_err += (*rep.h - cell.true_h) * (*rep.h - cell.true_h);
  }
  if (cell.replicates == 0) return;
  const auto n = static_cast<double>(cell.replicates);
  cell.mean_h = sum / n;
  cell.bias = cell.mean_h - cell.true_h;
  cell.rmse = std::sqrt(sum_sq_err / n);
  cell.sd = std::sqrt(std::max(0.0, sum_sq_err / n - cell.bias * cell.bias));
}

std::string sketch_gate_name(const char* what, double alpha) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "online/sketch/%s/alpha=%.2f", what, alpha);
  return buf;
}

}  // namespace

OnlineScenarioResult run_online_scenario(const OnlineScenarioConfig& config,
                                         support::Rng scenario_rng,
                                         support::Executor& executor) {
  OnlineScenarioResult result;
  result.config = config;

  // ---- (a) sketch Hill/LLCD vs the exact batch fit on the same sample.
  {
    support::RngSplitter streams(scenario_rng, 0);
    const std::size_t reps = config.sketch_replicates;
    const std::size_t total = config.sketch_alphas.size() * reps;
    const auto outcomes = monte_carlo<SketchReplicateOutcome>(
        total, streams, executor, [&](std::size_t index, support::Rng& rng) {
          return sketch_replicate(config, config.sketch_alphas[index / reps],
                                  index, rng);
        });

    for (std::size_t ai = 0; ai < config.sketch_alphas.size(); ++ai) {
      const double alpha = config.sketch_alphas[ai];
      OnlineSketchCell cell;
      cell.true_alpha = alpha;
      RelErrAccum hill, llcd;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto& rep = outcomes[ai * reps + r];
        if (!rep.ok) {
          ++cell.failures;
          continue;
        }
        ++cell.replicates;
        hill.add(rep.exact_hill, rep.sketch_hill);
        llcd.add(rep.exact_llcd, rep.sketch_llcd);
      }
      cell.mean_exact_hill =
          hill.count > 0 ? hill.sum_exact / static_cast<double>(hill.count) : 0.0;
      cell.mean_sketch_hill =
          hill.count > 0 ? hill.sum_sketch / static_cast<double>(hill.count) : 0.0;
      cell.hill_mean_rel_err = hill.mean_err();
      cell.hill_rel_err_sd = hill.err_sd();
      cell.mean_exact_llcd =
          llcd.count > 0 ? llcd.sum_exact / static_cast<double>(llcd.count) : 0.0;
      cell.mean_sketch_llcd =
          llcd.count > 0 ? llcd.sum_sketch / static_cast<double>(llcd.count) : 0.0;
      cell.llcd_mean_rel_err = llcd.mean_err();
      cell.llcd_rel_err_sd = llcd.err_sd();

      result.gates.push_back(make_gate(
          sketch_gate_name("hill_vs_exact", alpha), cell.hill_mean_rel_err,
          0.0,
          config.hill_vs_exact_band +
              mean_slack(cell.hill_rel_err_sd, cell.replicates)));
      result.gates.push_back(make_gate(
          sketch_gate_name("llcd_vs_exact", alpha), cell.llcd_mean_rel_err,
          0.0,
          config.llcd_vs_exact_band +
              mean_slack(cell.llcd_rel_err_sd, cell.replicates)));
      result.gates.push_back(
          make_gate(sketch_gate_name("failures", alpha),
                    static_cast<double>(cell.failures), 0.0, 0.0));
      result.sketch_cells.push_back(std::move(cell));
    }
  }

  // ---- (b) FRS recovery: known-H fGn counts and H = 0.5 Poisson counts.
  {
    support::RngSplitter streams(scenario_rng, 0);
    const std::size_t reps = config.frs_replicates;
    online::FrsOptions frs_opts;
    frs_opts.scales = config.frs_scales;
    const auto outcomes = monte_carlo<FrsReplicateOutcome>(
        2 * reps, streams, executor, [&](std::size_t index, support::Rng& rng) {
          FrsReplicateOutcome out;
          std::vector<double> counts;
          if (index < reps) {
            auto fgn = synth::draw_fgn(config.frs_fgn, rng);
            if (!fgn.ok()) return out;
            counts = std::move(fgn).value();
          } else {
            counts = bin_arrivals(
                synth::draw_poisson_arrivals(config.frs_poisson, rng),
                config.frs_poisson.t0, config.frs_poisson.t1);
          }
          if (const auto est = online::frs_memory_from_counts(counts, frs_opts);
              est.ok())
            out.h = est.value().h;
          return out;
        });

    for (int family = 0; family < 2; ++family) {
      OnlineFrsCell cell;
      cell.truth = family == 0 ? "fgn" : "poisson";
      cell.true_h = family == 0 ? config.frs_fgn.hurst : 0.5;
      const std::vector<FrsReplicateOutcome> slice(
          outcomes.begin() + static_cast<std::ptrdiff_t>(family * reps),
          outcomes.begin() + static_cast<std::ptrdiff_t>((family + 1) * reps));
      fill_frs_cell(cell, slice);

      char name[96];
      std::snprintf(name, sizeof name, "online/frs/bias/%s",
                    cell.truth.c_str());
      const double slack = mean_slack(cell.sd, cell.replicates);
      result.gates.push_back(make_gate(name, cell.bias,
                                       -config.frs_bias_band - slack,
                                       config.frs_bias_band + slack));
      std::snprintf(name, sizeof name, "online/frs/failures/%s",
                    cell.truth.c_str());
      result.gates.push_back(make_gate(
          name, static_cast<double>(cell.failures), 0.0, 0.0));
      result.frs_cells.push_back(std::move(cell));
    }
  }

  // ---- (c) end-to-end: OnlineAnalyzer on a stationary Pareto-byte stream.
  {
    support::RngSplitter streams(scenario_rng, 0);
    const std::size_t reps = config.stream_replicates;

    struct StreamOutcome {
      bool ok = false;
      bool kpss_rejected = false;
      double hill_alpha = 0.0;
    };
    const auto outcomes = monte_carlo<StreamOutcome>(
        reps, streams, executor, [&](std::size_t, support::Rng& rng) {
          StreamOutcome out;
          const auto times =
              synth::draw_poisson_arrivals(config.stream_arrivals, rng);
          synth::ParetoTruth bytes_truth;
          bytes_truth.n = times.size();
          bytes_truth.alpha = config.stream_alpha;
          const auto bytes = synth::draw_pareto(bytes_truth, rng);

          online::OnlineOptions o;
          o.block_bins = 256;
          const auto bins = static_cast<std::size_t>(
              config.stream_arrivals.t1 - config.stream_arrivals.t0);
          o.window_blocks = bins / o.block_bins + 2;  // window covers stream
          o.tail_top_k = config.tail_top_k;
          o.tail_body_capacity = config.tail_body_capacity;
          o.tail_subsample = config.tail_subsample;
          online::OnlineAnalyzer analyzer(o, support::Rng(rng()));
          for (std::size_t i = 0; i < times.size(); ++i)
            analyzer.add(times[i], bytes[i]);

          const online::OnlineSnapshot snap = analyzer.snapshot();
          if (!snap.kpss.value.has_value() || !snap.hill.value.has_value())
            return out;
          out.ok = true;
          out.kpss_rejected = !snap.kpss.value->stationary_at_5pct();
          out.hill_alpha = snap.hill.value->alpha;
          return out;
        });

    OnlineStreamCell cell;
    double sum = 0.0, sum_sq_err = 0.0;
    for (const auto& rep : outcomes) {
      if (!rep.ok) {
        ++cell.failures;
        continue;
      }
      ++cell.replicates;
      if (rep.kpss_rejected) ++cell.kpss_rejections;
      sum += rep.hill_alpha;
      sum_sq_err += (rep.hill_alpha - config.stream_alpha) *
                    (rep.hill_alpha - config.stream_alpha);
    }
    if (cell.replicates > 0) {
      const auto n = static_cast<double>(cell.replicates);
      cell.kpss_rejection_rate =
          static_cast<double>(cell.kpss_rejections) / n;
      cell.mean_hill_alpha = sum / n;
      cell.hill_rel_bias =
          (cell.mean_hill_alpha - config.stream_alpha) / config.stream_alpha;
      const double bias = cell.mean_hill_alpha - config.stream_alpha;
      cell.hill_sd =
          std::sqrt(std::max(0.0, sum_sq_err / n - bias * bias));
    }

    const double size_slack =
        proportion_slack(config.stream_kpss_level, cell.replicates);
    result.gates.push_back(make_gate(
        "online/stream/kpss_size", cell.kpss_rejection_rate, 0.0,
        2.0 * config.stream_kpss_level + size_slack));
    const double hill_slack =
        mean_slack(cell.hill_sd, cell.replicates) / config.stream_alpha;
    result.gates.push_back(make_gate(
        "online/stream/hill_rel_bias", cell.hill_rel_bias,
        -config.stream_hill_band - hill_slack,
        config.stream_hill_band + hill_slack));
    result.gates.push_back(make_gate("online/stream/failures",
                                     static_cast<double>(cell.failures), 0.0,
                                     0.0));
    result.stream_cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace fullweb::validation
