// Scenario specifications and results for the Monte Carlo self-validation
// harness.
//
// Three scenario families, mirroring the statistical layers the paper's
// conclusions rest on:
//   1. Hurst recovery — fGn with known H; every estimator must land inside
//      its documented bias band, and the Whittle / Abry-Veitch 95% CIs must
//      actually cover at close to nominal rate.
//   2. Tail recovery — Pareto(alpha) samples for Hill/LLCD slope recovery,
//      plus Pareto-vs-lognormal discrimination by the Downey curvature test.
//   3. Size/power — the Paxson-Floyd Poisson battery and the KPSS test must
//      keep their false-positive rate near nominal on true Poisson /
//      stationary input and reliably detect trend+diurnal contamination
//      (the paper's §4.1 detrending argument).
//
// Replicate counts come in two profiles: kSmoke (seconds, wired into tier-1
// ctest under the `statistical` label) and kFull (the >= 200-replicate run
// behind the committed calibration tables; `selftest_full` target).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lrd/hurst.h"
#include "synth/ground_truth.h"
#include "validation/gates.h"

namespace fullweb::support {
class Executor;
}

namespace fullweb::validation {

enum class Profile { kSmoke, kFull };

[[nodiscard]] std::string to_string(Profile profile);

/// Documented acceptance band for the *mean* recovery error mean(Ĥ) - H of
/// one estimator at one true H (before Monte Carlo slack is added). The
/// bands are calibrated from the full-profile run recorded in EXPERIMENTS.md
/// and encode each estimator's known finite-sample bias at n = 8192: the
/// regression-based estimators (variance-time, R/S) carry real bias —
/// R/S upward at H = 0.5, variance-time downward at high H — while
/// Whittle / Abry-Veitch must sit within a few hundredths of truth.
struct BiasBand {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] BiasBand hurst_bias_band(lrd::HurstMethod method, double h);

// ---------------------------------------------------------------------------
// Scenario 1: Hurst recovery on fGn.

struct HurstScenarioConfig {
  std::vector<double> h_values = {0.5, 0.6, 0.7, 0.8, 0.9};
  std::size_t n = 8192;           ///< series length per replicate
  std::size_t replicates = 256;   ///< per H value
  double coverage_nominal = 0.95;
};

/// Model slack on CI coverage before MC slack, per (method, true H):
/// finite-sample CIs from the observed Fisher information (Whittle) hold
/// close to nominal everywhere, while the Abry-Veitch weighted
/// log-regression CI under-covers increasingly as H -> 1 because its
/// halfwidth ignores the estimator's growing upward bias (measured coverage
/// 0.94 at H = 0.5 down to 0.79 at H = 0.9 in the full-profile run; see
/// DESIGN.md §5.9 and EXPERIMENTS.md). Only Whittle and Abry-Veitch carry a
/// coverage gate.
[[nodiscard]] double hurst_coverage_band(lrd::HurstMethod method, double h);

/// One (estimator, true H) cell of the calibration table.
struct HurstCell {
  std::string estimator;
  double true_h = 0.0;
  std::size_t replicates = 0;  ///< successful estimates
  std::size_t failures = 0;
  double mean_h = 0.0;
  double bias = 0.0;           ///< mean_h - true_h
  double sd = 0.0;             ///< across-replicate standard deviation
  double rmse = 0.0;
  /// CI methods (Whittle, Abry-Veitch) only:
  std::optional<double> coverage;           ///< fraction of CIs covering H
  std::optional<double> mean_ci_halfwidth;
};

struct HurstScenarioResult {
  HurstScenarioConfig config;
  std::vector<HurstCell> cells;     ///< estimator-major, H-minor order
  std::vector<GateCheck> gates;
};

[[nodiscard]] HurstScenarioResult run_hurst_scenario(
    const HurstScenarioConfig& config, support::Rng scenario_rng,
    support::Executor& executor);

// ---------------------------------------------------------------------------
// Scenario 2: tail-index recovery and curvature discrimination.

struct TailScenarioConfig {
  std::vector<double> alphas = {0.8, 1.2, 1.6, 2.0};
  std::size_t n = 20000;          ///< sample size per replicate
  std::size_t replicates = 200;   ///< per alpha
  /// Acceptance band on mean relative recovery error (mean(â) - a)/a.
  double hill_rel_band = 0.10;
  double llcd_rel_band = 0.15;    ///< LLCD regression is the coarser tool
  /// Hill must stabilize (not report NS) on true Pareto data at least this
  /// often.
  double min_hill_stabilized_rate = 0.90;

  // Curvature discrimination (Pareto vs lognormal classification):
  std::size_t curvature_n = 2000;
  std::size_t curvature_replicates = 96;      ///< per class
  std::size_t curvature_mc_replicates = 99;   ///< inner Monte Carlo draws
  double curvature_pareto_alpha = 1.2;
  double curvature_lognormal_mu = 0.0;
  double curvature_lognormal_sigma = 1.5;
  double min_classification_rate = 0.90;
};

struct TailCell {
  std::string estimator;          ///< "hill" | "llcd"
  double true_alpha = 0.0;
  std::size_t replicates = 0;
  std::size_t failures = 0;
  double mean_alpha = 0.0;
  double bias = 0.0;
  double rel_bias = 0.0;
  double sd = 0.0;
  double rmse = 0.0;
  std::optional<double> stabilized_rate;  ///< Hill only
};

struct CurvatureClassCell {
  std::string truth;              ///< "pareto" | "lognormal"
  std::size_t replicates = 0;
  std::size_t failures = 0;
  std::size_t classified_pareto = 0;
  double correct_rate = 0.0;
};

struct TailScenarioResult {
  TailScenarioConfig config;
  std::vector<TailCell> cells;
  std::vector<CurvatureClassCell> curvature_cells;
  std::vector<GateCheck> gates;
};

[[nodiscard]] TailScenarioResult run_tail_scenario(
    const TailScenarioConfig& config, support::Rng scenario_rng,
    support::Executor& executor);

// ---------------------------------------------------------------------------
// Scenario 3: size and power of the Poisson battery and the KPSS test.

struct TestsScenarioConfig {
  std::size_t replicates = 200;  ///< per (test, hypothesis) pair

  synth::PoissonArrivalsTruth poisson_null;        ///< homogeneous arrivals
  synth::ContaminatedArrivalsTruth poisson_alt;    ///< trend + cycle rate
  double poisson_interval_seconds = 600.0;         ///< 10-minute sub-intervals
  /// Nominal size of the combined battery verdict (documented, not derived:
  /// three meta-tests at 5%/5%/2x2.5% reject independently under the null,
  /// but the discrete binomial point-probability tests are conservative; the
  /// measured full-profile size is recorded in EXPERIMENTS.md). The gate is
  /// observed size <= 2 x nominal + MC slack.
  double poisson_nominal_size = 0.10;
  double poisson_min_power = 0.90;

  synth::StationarySeriesTruth kpss_null;
  synth::TrendDiurnalSeriesTruth kpss_alt;
  double kpss_level = 0.05;        ///< per-test level of the 5% critical value
  double kpss_min_power = 0.95;
};

struct SizePowerCell {
  std::string test;        ///< "poisson" | "kpss"
  std::string hypothesis;  ///< "null" | "contaminated"
  std::size_t replicates = 0;
  std::size_t failures = 0;   ///< battery could not run (insufficient data)
  std::size_t rejections = 0;
  double rejection_rate = 0.0;
};

struct TestsScenarioResult {
  TestsScenarioConfig config;
  std::vector<SizePowerCell> cells;
  std::vector<GateCheck> gates;
};

[[nodiscard]] TestsScenarioResult run_tests_scenario(
    const TestsScenarioConfig& config, support::Rng scenario_rng,
    support::Executor& executor);

// ---------------------------------------------------------------------------
// Scenario 4: the online estimation layer (src/online).
//
// Three families of checks:
//   a. Sketch accuracy — Hill/LLCD computed from the TailSketch's retained
//      top set and alias subsample must track the exact batch estimates on
//      the full Pareto sample (the sampled-vs-exact contract behind
//      DESIGN.md §5.13's capacity guidance).
//   b. FRS memory recovery — the streaming Faÿ–Roueff–Soulier estimator
//      must recover H on fGn counts with known H and H = 0.5 on binned
//      homogeneous Poisson arrivals (short-range null).
//   c. End-to-end stream recovery — a stationary Poisson arrival stream
//      with Pareto transfer sizes fed through OnlineAnalyzer at production
//      sketch capacities: the windowed KPSS must hold its size and the
//      sketch Hill must recover the true tail index.

struct OnlineScenarioConfig {
  // (a) sampled-vs-exact sketch accuracy.
  std::vector<double> sketch_alphas = {1.2, 1.6};
  std::size_t sketch_n = 20000;
  std::size_t sketch_replicates = 64;
  std::size_t tail_top_k = 512;         ///< production sketch capacities
  std::size_t tail_body_capacity = 1024;
  std::size_t tail_subsample = 2048;
  /// Acceptance bands on the mean relative deviation of the sketch
  /// estimate from the exact batch estimate on the same sample (documented
  /// in EXPERIMENTS.md; test_online_analyzer pins the same tolerances on a
  /// single draw).
  double hill_vs_exact_band = 0.10;
  double llcd_vs_exact_band = 0.20;

  // (b) FRS memory recovery.
  synth::FgnTruth frs_fgn;              ///< defaults: n = 8192, H = 0.7
  synth::PoissonArrivalsTruth frs_poisson;  ///< 4 h at 1/s -> 14400 bins
  std::size_t frs_scales = 6;
  std::size_t frs_replicates = 64;
  /// Var(sum over m bins) = sigma^2 m^{2H} exactly for fGn and lambda*m for
  /// Poisson, so the dyadic-scale regression is near-unbiased; the band
  /// only absorbs finite-scale curvature.
  double frs_bias_band = 0.06;

  // (c) end-to-end analyzer recovery.
  synth::PoissonArrivalsTruth stream_arrivals;
  double stream_alpha = 1.3;            ///< Pareto tail of transfer sizes
  std::size_t stream_replicates = 32;
  double stream_kpss_level = 0.05;
  /// Sketch-Hill against TRUE alpha: wider than hill_vs_exact_band because
  /// it also carries the batch Hill estimator's own finite-sample bias.
  double stream_hill_band = 0.15;
};

struct OnlineSketchCell {
  double true_alpha = 0.0;
  std::size_t replicates = 0;  ///< replicates where all four fits ran
  std::size_t failures = 0;
  double mean_exact_hill = 0.0;
  double mean_sketch_hill = 0.0;
  double hill_mean_rel_err = 0.0;  ///< mean |sketch - exact| / exact
  double hill_rel_err_sd = 0.0;
  double mean_exact_llcd = 0.0;
  double mean_sketch_llcd = 0.0;
  double llcd_mean_rel_err = 0.0;
  double llcd_rel_err_sd = 0.0;
};

struct OnlineFrsCell {
  std::string truth;           ///< "fgn" | "poisson"
  double true_h = 0.0;
  std::size_t replicates = 0;
  std::size_t failures = 0;
  double mean_h = 0.0;
  double bias = 0.0;
  double sd = 0.0;
  double rmse = 0.0;
};

struct OnlineStreamCell {
  std::size_t replicates = 0;
  std::size_t failures = 0;
  std::size_t kpss_rejections = 0;
  double kpss_rejection_rate = 0.0;
  double mean_hill_alpha = 0.0;
  double hill_rel_bias = 0.0;  ///< (mean - true) / true
  double hill_sd = 0.0;
};

struct OnlineScenarioResult {
  OnlineScenarioConfig config;
  std::vector<OnlineSketchCell> sketch_cells;
  std::vector<OnlineFrsCell> frs_cells;
  std::vector<OnlineStreamCell> stream_cells;
  std::vector<GateCheck> gates;
};

[[nodiscard]] OnlineScenarioResult run_online_scenario(
    const OnlineScenarioConfig& config, support::Rng scenario_rng,
    support::Executor& executor);

}  // namespace fullweb::validation
