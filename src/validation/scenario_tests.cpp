#include <cmath>
#include <cstdio>
#include <vector>

#include "poisson/poisson_test.h"
#include "stats/kpss.h"
#include "support/executor.h"
#include "validation/montecarlo.h"
#include "validation/scenario.h"

namespace fullweb::validation {

namespace {

struct RejectionOutcome {
  bool ran = false;
  bool rejected = false;
};

SizePowerCell summarize(const char* test, const char* hypothesis,
                        const std::vector<RejectionOutcome>& outcomes) {
  SizePowerCell cell;
  cell.test = test;
  cell.hypothesis = hypothesis;
  for (const auto& rep : outcomes) {
    if (!rep.ran) {
      ++cell.failures;
      continue;
    }
    ++cell.replicates;
    if (rep.rejected) ++cell.rejections;
  }
  cell.rejection_rate =
      cell.replicates > 0
          ? static_cast<double>(cell.rejections) / static_cast<double>(cell.replicates)
          : 0.0;
  return cell;
}

/// Quantize arrival times to the 1-second log granularity the battery is
/// designed around; the battery's own spreading undoes it (§4.2: the paper
/// shows the verdict is insensitive to the spreading choice).
std::vector<double> quantize_seconds(std::vector<double> times) {
  for (double& t : times) t = std::floor(t);
  return times;
}

}  // namespace

TestsScenarioResult run_tests_scenario(const TestsScenarioConfig& config,
                                       support::Rng scenario_rng,
                                       support::Executor& executor) {
  TestsScenarioResult result;
  result.config = config;
  const std::size_t reps = config.replicates;

  poisson::PoissonTestOptions popts;
  popts.interval_seconds = config.poisson_interval_seconds;

  // ---- Paxson-Floyd battery: size on homogeneous Poisson, power on
  // trend+cycle modulated arrivals.
  for (int hyp = 0; hyp < 2; ++hyp) {
    const bool null_case = hyp == 0;
    support::RngSplitter streams(scenario_rng, 0);
    const auto outcomes = monte_carlo<RejectionOutcome>(
        reps, streams, executor, [&](std::size_t, support::Rng& rng) {
          RejectionOutcome out;
          std::vector<double> times;
          double t0 = 0.0, t1 = 0.0;
          if (null_case) {
            times = synth::draw_poisson_arrivals(config.poisson_null, rng);
            t0 = config.poisson_null.t0;
            t1 = config.poisson_null.t1;
          } else {
            times = synth::draw_contaminated_arrivals(config.poisson_alt, rng);
            t0 = config.poisson_alt.t0;
            t1 = config.poisson_alt.t1;
          }
          times = quantize_seconds(std::move(times));
          const auto verdict =
              poisson::test_poisson_arrivals(times, t0, t1, popts, rng);
          if (!verdict.ok()) return out;
          out.ran = true;
          out.rejected = !verdict.value().poisson();
          return out;
        });
    auto cell =
        summarize("poisson", null_case ? "null" : "contaminated", outcomes);
    if (null_case) {
      const double slack =
          proportion_slack(config.poisson_nominal_size, cell.replicates);
      result.gates.push_back(make_gate("tests/poisson/size",
                                       cell.rejection_rate, 0.0,
                                       2.0 * config.poisson_nominal_size + slack));
    } else {
      const double slack =
          proportion_slack(config.poisson_min_power, cell.replicates);
      result.gates.push_back(make_gate("tests/poisson/power",
                                       cell.rejection_rate,
                                       config.poisson_min_power - slack, 1.0));
    }
    result.gates.push_back(make_gate(
        std::string("tests/poisson/failures/") + cell.hypothesis,
        static_cast<double>(cell.failures), 0.0, 0.0));
    result.cells.push_back(std::move(cell));
  }

  // ---- KPSS: size on a stationary series, power on trend+diurnal
  // contamination (the §4.1 detrending argument).
  for (int hyp = 0; hyp < 2; ++hyp) {
    const bool null_case = hyp == 0;
    support::RngSplitter streams(scenario_rng, 0);
    const auto outcomes = monte_carlo<RejectionOutcome>(
        reps, streams, executor, [&](std::size_t, support::Rng& rng) {
          RejectionOutcome out;
          const std::vector<double> xs =
              null_case
                  ? synth::draw_stationary_series(config.kpss_null, rng)
                  : synth::draw_trend_diurnal_series(config.kpss_alt, rng);
          const auto kpss = stats::kpss_test(xs, stats::KpssNull::kLevel);
          if (!kpss.ok()) return out;
          out.ran = true;
          out.rejected = !kpss.value().stationary_at_5pct();
          return out;
        });
    auto cell = summarize("kpss", null_case ? "null" : "contaminated", outcomes);
    if (null_case) {
      const double slack = proportion_slack(config.kpss_level, cell.replicates);
      result.gates.push_back(make_gate("tests/kpss/size", cell.rejection_rate,
                                       0.0, 2.0 * config.kpss_level + slack));
    } else {
      const double slack =
          proportion_slack(config.kpss_min_power, cell.replicates);
      result.gates.push_back(make_gate("tests/kpss/power", cell.rejection_rate,
                                       config.kpss_min_power - slack, 1.0));
    }
    result.gates.push_back(make_gate(
        std::string("tests/kpss/failures/") + cell.hypothesis,
        static_cast<double>(cell.failures), 0.0, 0.0));
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace fullweb::validation
