#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

#include "support/executor.h"
#include "tail/curvature.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "validation/montecarlo.h"
#include "validation/scenario.h"

namespace fullweb::validation {

namespace {

struct TailReplicateOutcome {
  std::optional<double> hill_alpha;   ///< absent = estimator error
  bool hill_stabilized = false;
  std::optional<double> llcd_alpha;
};

struct CurvatureReplicateOutcome {
  bool ok = false;
  bool classified_pareto = false;
};

struct Accum {
  std::size_t count = 0;
  double sum = 0.0;
  double sum_sq_err = 0.0;  ///< against the true alpha
};

void fill_cell(TailCell& cell, const Accum& acc, std::size_t total) {
  cell.replicates = acc.count;
  cell.failures = total - acc.count;
  if (acc.count == 0) return;
  const auto n = static_cast<double>(acc.count);
  cell.mean_alpha = acc.sum / n;
  cell.bias = cell.mean_alpha - cell.true_alpha;
  cell.rel_bias = cell.bias / cell.true_alpha;
  cell.rmse = std::sqrt(acc.sum_sq_err / n);
  cell.sd = std::sqrt(std::max(0.0, acc.sum_sq_err / n - cell.bias * cell.bias));
}

std::string gate_name(const char* what, const char* estimator, double alpha) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "tail/%s/%s/alpha=%.2f", what, estimator,
                alpha);
  return buf;
}

/// Two-sided classification: the model whose Monte Carlo p-value is larger
/// explains the observed LLCD curvature better. Ties (both tests failing or
/// equal p) count as misclassification via `ok = false`. Each test gets a
/// dedicated leaf stream because curvature_test consumes its generator
/// (level -1 per-replicate split, see tail/curvature.h).
CurvatureReplicateOutcome classify_curvature(std::span<const double> xs,
                                             std::size_t mc_replicates,
                                             support::Rng& pareto_rng,
                                             support::Rng& lognormal_rng,
                                             support::Executor& executor) {
  CurvatureReplicateOutcome out;
  tail::CurvatureOptions opts;
  opts.replicates = mc_replicates;
  opts.executor = &executor;
  opts.model = tail::TailModel::kPareto;
  const auto pareto = tail::curvature_test(xs, pareto_rng, opts);
  opts.model = tail::TailModel::kLognormal;
  const auto lognormal = tail::curvature_test(xs, lognormal_rng, opts);
  if (!pareto.ok() || !lognormal.ok()) return out;
  out.ok = true;
  out.classified_pareto =
      pareto.value().p_value >= lognormal.value().p_value;
  return out;
}

}  // namespace

TailScenarioResult run_tail_scenario(const TailScenarioConfig& config,
                                     support::Rng scenario_rng,
                                     support::Executor& executor) {
  TailScenarioResult result;
  result.config = config;

  const std::size_t reps = config.replicates;

  // ---- Slope recovery on Pareto(alpha) samples.
  {
    support::RngSplitter streams(scenario_rng, 0);
    const std::size_t total = config.alphas.size() * reps;
    const auto outcomes = monte_carlo<TailReplicateOutcome>(
        total, streams, executor, [&](std::size_t index, support::Rng& rng) {
          TailReplicateOutcome out;
          synth::ParetoTruth truth;
          truth.n = config.n;
          truth.alpha = config.alphas[index / reps];
          const auto xs = synth::draw_pareto(truth, rng);
          if (const auto hill = tail::hill_estimate(xs); hill.ok()) {
            out.hill_alpha = hill.value().alpha;
            out.hill_stabilized = hill.value().stabilized;
          }
          if (const auto llcd = tail::llcd_fit(xs); llcd.ok())
            out.llcd_alpha = llcd.value().alpha;
          return out;
        });

    for (std::size_t ai = 0; ai < config.alphas.size(); ++ai) {
      const double alpha = config.alphas[ai];
      Accum hill_acc, llcd_acc;
      std::size_t stabilized = 0;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto& rep = outcomes[ai * reps + r];
        if (rep.hill_alpha.has_value()) {
          ++hill_acc.count;
          hill_acc.sum += *rep.hill_alpha;
          hill_acc.sum_sq_err += (*rep.hill_alpha - alpha) * (*rep.hill_alpha - alpha);
          if (rep.hill_stabilized) ++stabilized;
        }
        if (rep.llcd_alpha.has_value()) {
          ++llcd_acc.count;
          llcd_acc.sum += *rep.llcd_alpha;
          llcd_acc.sum_sq_err += (*rep.llcd_alpha - alpha) * (*rep.llcd_alpha - alpha);
        }
      }

      TailCell hill_cell;
      hill_cell.estimator = "hill";
      hill_cell.true_alpha = alpha;
      fill_cell(hill_cell, hill_acc, reps);
      hill_cell.stabilized_rate =
          hill_acc.count > 0
              ? static_cast<double>(stabilized) / static_cast<double>(hill_acc.count)
              : 0.0;

      TailCell llcd_cell;
      llcd_cell.estimator = "llcd";
      llcd_cell.true_alpha = alpha;
      fill_cell(llcd_cell, llcd_acc, reps);

      const double hill_slack =
          mean_slack(hill_cell.sd, hill_cell.replicates) / alpha;
      result.gates.push_back(make_gate(gate_name("rel_bias", "hill", alpha),
                                       hill_cell.rel_bias,
                                       -config.hill_rel_band - hill_slack,
                                       config.hill_rel_band + hill_slack));
      const double llcd_slack =
          mean_slack(llcd_cell.sd, llcd_cell.replicates) / alpha;
      result.gates.push_back(make_gate(gate_name("rel_bias", "llcd", alpha),
                                       llcd_cell.rel_bias,
                                       -config.llcd_rel_band - llcd_slack,
                                       config.llcd_rel_band + llcd_slack));
      const double stab_slack = proportion_slack(
          config.min_hill_stabilized_rate, hill_cell.replicates);
      result.gates.push_back(
          make_gate(gate_name("stabilized", "hill", alpha),
                    hill_cell.stabilized_rate.value_or(0.0),
                    config.min_hill_stabilized_rate - stab_slack, 1.0));
      result.gates.push_back(make_gate(
          gate_name("failures", "hill", alpha),
          static_cast<double>(hill_cell.failures), 0.0, 0.0));
      result.gates.push_back(make_gate(
          gate_name("failures", "llcd", alpha),
          static_cast<double>(llcd_cell.failures), 0.0, 0.0));

      result.cells.push_back(std::move(hill_cell));
      result.cells.push_back(std::move(llcd_cell));
    }
  }

  // ---- Curvature discrimination: Pareto vs lognormal classification.
  {
    // Level 1: each replicate's stream hosts a level-0 splitter handing out
    // three leaves — the synthetic sample draw and one per curvature test
    // (each test consumes its leaf, splitting it into level -1
    // micro-streams per MC replicate).
    support::RngSplitter streams(scenario_rng, 1);
    const std::size_t per_class = config.curvature_replicates;
    const auto outcomes = monte_carlo<CurvatureReplicateOutcome>(
        2 * per_class, streams, executor,
        [&](std::size_t index, support::Rng& rng) {
          support::RngSplitter leaves(rng, 0);
          support::Rng draw_rng = leaves.stream(0);
          support::Rng pareto_rng = leaves.stream(1);
          support::Rng lognormal_rng = leaves.stream(2);
          const bool truth_pareto = index < per_class;
          std::vector<double> xs;
          if (truth_pareto) {
            synth::ParetoTruth truth;
            truth.n = config.curvature_n;
            truth.alpha = config.curvature_pareto_alpha;
            xs = synth::draw_pareto(truth, draw_rng);
          } else {
            synth::LognormalTruth truth;
            truth.n = config.curvature_n;
            truth.mu = config.curvature_lognormal_mu;
            truth.sigma = config.curvature_lognormal_sigma;
            xs = synth::draw_lognormal(truth, draw_rng);
          }
          return classify_curvature(xs, config.curvature_mc_replicates,
                                    pareto_rng, lognormal_rng, executor);
        });

    for (int cls = 0; cls < 2; ++cls) {
      const bool truth_pareto = cls == 0;
      CurvatureClassCell cell;
      cell.truth = truth_pareto ? "pareto" : "lognormal";
      std::size_t correct = 0;
      for (std::size_t r = 0; r < per_class; ++r) {
        const auto& rep = outcomes[static_cast<std::size_t>(cls) * per_class + r];
        if (!rep.ok) {
          ++cell.failures;
          continue;
        }
        ++cell.replicates;
        if (rep.classified_pareto) ++cell.classified_pareto;
        if (rep.classified_pareto == truth_pareto) ++correct;
      }
      cell.correct_rate =
          cell.replicates > 0
              ? static_cast<double>(correct) / static_cast<double>(cell.replicates)
              : 0.0;
      const double slack =
          proportion_slack(config.min_classification_rate, cell.replicates);
      char name[96];
      std::snprintf(name, sizeof name, "tail/classification/%s",
                    cell.truth.c_str());
      result.gates.push_back(make_gate(
          name, cell.correct_rate, config.min_classification_rate - slack, 1.0));
      std::snprintf(name, sizeof name, "tail/classification_failures/%s",
                    cell.truth.c_str());
      result.gates.push_back(make_gate(
          name, static_cast<double>(cell.failures), 0.0, 0.0));
      result.curvature_cells.push_back(std::move(cell));
    }
  }
  return result;
}

}  // namespace fullweb::validation
