#include "validation/selftest.h"

#include "support/executor.h"

namespace fullweb::validation {

std::string to_string(Profile profile) {
  return profile == Profile::kFull ? "full" : "smoke";
}

HurstScenarioConfig hurst_config(Profile profile) {
  HurstScenarioConfig config;
  // n stays at 8192 in both profiles: the bias bands are calibrated at this
  // length and finite-sample bias depends on it.
  config.replicates = profile == Profile::kFull ? 256 : 48;
  return config;
}

TailScenarioConfig tail_config(Profile profile) {
  TailScenarioConfig config;
  config.replicates = profile == Profile::kFull ? 200 : 32;
  config.curvature_replicates = profile == Profile::kFull ? 96 : 16;
  return config;
}

TestsScenarioConfig tests_config(Profile profile) {
  TestsScenarioConfig config;
  config.replicates = profile == Profile::kFull ? 200 : 32;
  return config;
}

OnlineScenarioConfig online_config(Profile profile) {
  OnlineScenarioConfig config;
  config.sketch_replicates = profile == Profile::kFull ? 64 : 16;
  config.frs_replicates = profile == Profile::kFull ? 64 : 24;
  config.stream_replicates = profile == Profile::kFull ? 32 : 8;
  return config;
}

std::vector<const GateCheck*> ValidationReport::all_gates() const {
  std::vector<const GateCheck*> gates;
  for (const auto& g : hurst.gates) gates.push_back(&g);
  for (const auto& g : tail.gates) gates.push_back(&g);
  for (const auto& g : tests.gates) gates.push_back(&g);
  for (const auto& g : online.gates) gates.push_back(&g);
  return gates;
}

std::size_t ValidationReport::failed_gates() const {
  std::size_t failed = 0;
  for (const auto* g : all_gates())
    if (!g->pass) ++failed;
  return failed;
}

ValidationReport run_selftest(const SelftestOptions& options) {
  ValidationReport report;
  report.profile = options.profile;
  report.seed = options.seed;

  support::Executor& executor = support::Executor::resolve(options.executor);

  // Level-1 splitter: each scenario's stream owns room for a full level-0
  // replicate splitter of its own, so adding replicates to one scenario can
  // never shift another scenario's draws.
  support::Rng root(options.seed);
  support::RngSplitter scenarios(root, 1);

  report.hurst = run_hurst_scenario(hurst_config(options.profile),
                                    scenarios.stream(0), executor);
  report.tail = run_tail_scenario(tail_config(options.profile),
                                  scenarios.stream(1), executor);
  report.tests = run_tests_scenario(tests_config(options.profile),
                                    scenarios.stream(2), executor);
  report.online = run_online_scenario(online_config(options.profile),
                                      scenarios.stream(3), executor);
  return report;
}

}  // namespace fullweb::validation
