// Calibration gates: named pass/fail checks over Monte Carlo summaries.
//
// A gate is an acceptance interval for one observed statistic. Intervals
// combine a *documented model band* (how far a correct implementation may
// sit from the ideal value — estimator bias, CI under-coverage on finite
// samples) with *Monte Carlo slack* (3 binomial/normal standard errors at
// the replicate count actually run), so the same gate definitions hold for
// the reduced-replicate smoke profile and the full profile without ever
// passing a broken estimator at full replication.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fullweb::validation {

struct GateCheck {
  std::string name;     ///< e.g. "hurst/bias/whittle/H=0.70"
  double observed = 0.0;
  double lo = 0.0;      ///< acceptance interval (inclusive)
  double hi = 0.0;
  bool pass = false;
};

/// Build a gate, evaluating pass = lo <= observed <= hi. NaN never passes.
[[nodiscard]] GateCheck make_gate(std::string name, double observed, double lo,
                                  double hi);

/// 3-sigma Monte Carlo slack for an observed proportion near `p` at
/// `replicates` draws: 3 * sqrt(p (1-p) / R).
[[nodiscard]] double proportion_slack(double p, std::size_t replicates);

/// 3-sigma slack for a Monte Carlo *mean* whose per-replicate standard
/// deviation was observed as `sd`: 3 * sd / sqrt(R).
[[nodiscard]] double mean_slack(double sd, std::size_t replicates);

/// All pass?
[[nodiscard]] bool all_pass(const std::vector<GateCheck>& gates);

}  // namespace fullweb::validation
