// Deterministic Monte Carlo replicate runner.
//
// Fans `replicates` independent draws out on the Executor, giving replicate
// b the b-th leaf substream of a caller-provided RngSplitter — the same
// pattern tail::bootstrap_ci uses — and collecting results into a slot
// vector indexed by replicate. Because stream(b) is a pure function of the
// splitter base and results are written by index, a run is bit-identical at
// any thread count, which is what lets the selftest gate "1 thread == 8
// threads" on the serialized report.
#pragma once

#include <cstddef>
#include <vector>

#include "support/executor.h"
#include "support/rng.h"

namespace fullweb::validation {

/// Run fn(replicate_index, rng) for each replicate and return the results
/// in replicate order. `fn` must be safe to call concurrently from executor
/// workers (it receives a private Rng and must not touch shared mutable
/// state). T must be default-constructible.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> monte_carlo(std::size_t replicates,
                                         support::RngSplitter& streams,
                                         support::Executor& executor, Fn&& fn) {
  // Streams are drawn serially up front: RngSplitter's cursor is stateful,
  // and sequential access is O(1) amortized.
  std::vector<support::Rng> replicate_rngs;
  replicate_rngs.reserve(replicates);
  for (std::size_t b = 0; b < replicates; ++b)
    replicate_rngs.push_back(streams.stream(b));

  std::vector<T> slots(replicates);
  executor.parallel_for(0, replicates, [&](std::size_t b) {
    slots[b] = fn(b, replicate_rngs[b]);
  });
  return slots;
}

}  // namespace fullweb::validation
