// JSON serialization of the validation report plus baseline drift checking.
//
// The report serializes deterministically (support::JsonWriter): a run with
// the same (profile, seed) produces byte-identical output at any thread
// count. A baseline report is committed at the repo root
// (VALIDATION_baseline.json); check_against_baseline re-parses both
// documents and compares every numeric/boolean/string leaf by path, so a
// kernel change that silently biases an estimator shows up as a named
// drifted metric even while all gates still pass. Baseline leaves missing
// from the fresh report fail the check (bench_compare's missing-key rule);
// fresh-only leaves are informational.
#pragma once

#include <string>
#include <vector>

#include "support/result.h"
#include "validation/selftest.h"

namespace fullweb::validation {

[[nodiscard]] std::string report_to_json(const ValidationReport& report);

/// Write the serialized report to `path` (overwrites).
[[nodiscard]] support::Status write_report(const ValidationReport& report,
                                           const std::string& path);

struct DriftFinding {
  std::string path;      ///< e.g. "hurst.cells[3].bias"
  std::string kind;      ///< "drifted" | "missing" | "type-changed" | "new"
  std::string detail;    ///< human-readable values
};

struct DriftReport {
  std::vector<DriftFinding> findings;
  std::size_t compared = 0;
  std::size_t drifted = 0;   ///< includes type changes
  std::size_t missing = 0;

  [[nodiscard]] bool failed() const noexcept {
    return drifted > 0 || missing > 0;
  }
};

/// Compare a fresh report document against a baseline document (both JSON
/// text). Numeric leaves match when |a - b| <= abs_tol + rel_tol * max(|a|,
/// |b|); bools and strings must match exactly. Errors when either document
/// fails to parse.
[[nodiscard]] support::Result<DriftReport> check_against_baseline(
    const std::string& baseline_text, const std::string& fresh_text,
    double rel_tol = 1e-6, double abs_tol = 1e-9);

}  // namespace fullweb::validation
