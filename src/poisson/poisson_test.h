// Poisson-arrival test battery (Paxson & Floyd 1995, as applied in §4.2).
//
// A homogeneous Poisson process has (a) independent and (b) exponentially
// distributed inter-arrival times. Because Web-server rates drift, the paper
// tests a *piecewise* Poisson model: a 4-hour window is cut into fixed-rate
// sub-intervals (1 hour or 10 minutes); each sub-interval is tested for
// lag-1-independent and exponential inter-arrivals; the per-interval
// verdicts are aggregated with binomial meta-tests.
//
// Log timestamps have 1-second granularity, so events sharing a timestamp
// are first spread across their second — uniformly at random or evenly
// (deterministically); the paper shows the conclusion is insensitive to
// this choice and we expose both (plus "none" for already-continuous data).
#pragma once

#include <span>
#include <vector>

#include "stats/binomial.h"
#include "support/result.h"
#include "support/rng.h"

namespace fullweb::poisson {

enum class SpreadMode {
  kNone,           ///< timestamps are already continuous
  kUniform,        ///< i.i.d. uniform offsets within the second, then sorted
  kDeterministic,  ///< events evenly spaced across their second
};

struct PoissonTestOptions {
  double interval_seconds = 3600.0;       ///< sub-interval length (1h / 10min)
  std::size_t min_events_per_interval = 30;
  SpreadMode spread = SpreadMode::kUniform;
  double timestamp_granularity = 1.0;     ///< log timestamp resolution (s)
  double independence_level = 0.05;       ///< meta-test levels, per the paper
  double sign_level = 0.025;
  double exponential_level = 0.05;
};

/// Per-sub-interval diagnostics.
struct IntervalDiagnostics {
  double start = 0.0;
  std::size_t events = 0;
  double rho1 = 0.0;           ///< lag-1 autocorrelation of inter-arrivals
  double rho_threshold = 0.0;  ///< 1.96 / sqrt(n)
  bool rho_pass = false;       ///< |rho1| < threshold
  double ad_modified = 0.0;    ///< A^2 (1 + 0.6/n)
  bool ad_pass = false;        ///< < 1.341
  bool usable = false;         ///< had >= min_events_per_interval events
};

struct PoissonTestResult {
  std::vector<IntervalDiagnostics> intervals;
  std::size_t usable_intervals = 0;

  stats::BinomialCountTest independence_meta;   ///< S ~ B(m, 0.95)
  stats::SignTest sign_meta;                    ///< counts of rho signs
  stats::BinomialCountTest exponential_meta;    ///< Z ~ B(m, 0.95)

  bool independent = false;    ///< meta-verdict: not rejected
  bool exponential = false;    ///< meta-verdict: not rejected
  /// The headline verdict: indistinguishable from piecewise Poisson.
  [[nodiscard]] bool poisson() const noexcept { return independent && exponential; }
};

/// Spread same-second events across their second (helper, exposed for tests).
/// Input need not be sorted; output is sorted ascending.
[[nodiscard]] std::vector<double> spread_subsecond(std::span<const double> times,
                                                   SpreadMode mode,
                                                   double granularity,
                                                   support::Rng& rng);

/// Run the battery on arrivals within [t0, t1). Errors when fewer than 2
/// sub-intervals have enough events (the paper's NASA-Pub2 case at session
/// level: "not sufficient to conduct the test").
[[nodiscard]] support::Result<PoissonTestResult> test_poisson_arrivals(
    std::span<const double> event_times, double t0, double t1,
    const PoissonTestOptions& options, support::Rng& rng);

}  // namespace fullweb::poisson
