#include "poisson/poisson_test.h"

#include <algorithm>
#include <cmath>

#include "stats/acf.h"
#include "stats/anderson_darling.h"

namespace fullweb::poisson {

using support::Error;
using support::Result;

std::vector<double> spread_subsecond(std::span<const double> times, SpreadMode mode,
                                     double granularity, support::Rng& rng) {
  std::vector<double> out(times.begin(), times.end());
  std::sort(out.begin(), out.end());
  if (mode == SpreadMode::kNone || out.empty()) return out;

  // Walk runs of equal (granularity-quantized) timestamps.
  std::size_t run_start = 0;
  auto bucket = [granularity](double t) { return std::floor(t / granularity); };
  for (std::size_t i = 1; i <= out.size(); ++i) {
    if (i < out.size() && bucket(out[i]) == bucket(out[run_start])) continue;
    const std::size_t run_len = i - run_start;
    const double base = bucket(out[run_start]) * granularity;
    if (mode == SpreadMode::kUniform) {
      for (std::size_t j = run_start; j < i; ++j)
        out[j] = base + granularity * rng.uniform();
      std::sort(out.begin() + static_cast<std::ptrdiff_t>(run_start),
                out.begin() + static_cast<std::ptrdiff_t>(i));
    } else {  // deterministic: evenly spread over the granule
      for (std::size_t j = run_start; j < i; ++j) {
        const auto pos = static_cast<double>(j - run_start);
        out[j] = base + granularity * (pos + 0.5) / static_cast<double>(run_len);
      }
    }
    run_start = i;
  }
  return out;
}

Result<PoissonTestResult> test_poisson_arrivals(std::span<const double> event_times,
                                                double t0, double t1,
                                                const PoissonTestOptions& options,
                                                support::Rng& rng) {
  if (!(t1 > t0))
    return Error::invalid_argument("test_poisson_arrivals: empty window");
  if (!(options.interval_seconds > 0.0))
    return Error::invalid_argument("test_poisson_arrivals: bad interval length");

  // Select, spread, and sort the arrivals inside the window.
  std::vector<double> in_window;
  in_window.reserve(event_times.size());
  for (double t : event_times)
    if (t >= t0 && t < t1) in_window.push_back(t);
  const std::vector<double> arrivals =
      spread_subsecond(in_window, options.spread, options.timestamp_granularity, rng);

  PoissonTestResult result;
  const auto n_intervals = static_cast<std::size_t>(
      std::ceil((t1 - t0) / options.interval_seconds));

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n_intervals; ++i) {
    const double lo = t0 + static_cast<double>(i) * options.interval_seconds;
    const double hi = std::min(t1, lo + options.interval_seconds);

    IntervalDiagnostics diag;
    diag.start = lo;

    // Collect inter-arrival times strictly inside [lo, hi).
    std::vector<double> gaps;
    std::size_t first = cursor;
    while (first < arrivals.size() && arrivals[first] < lo) ++first;
    std::size_t last = first;
    while (last < arrivals.size() && arrivals[last] < hi) ++last;
    cursor = last;
    diag.events = last - first;
    if (diag.events >= 2) {
      gaps.reserve(diag.events - 1);
      for (std::size_t j = first + 1; j < last; ++j)
        gaps.push_back(arrivals[j] - arrivals[j - 1]);
    }

    if (diag.events >= options.min_events_per_interval && gaps.size() >= 5) {
      diag.usable = true;
      diag.rho1 = stats::autocorrelation_at(gaps, 1);
      diag.rho_threshold = 1.96 / std::sqrt(static_cast<double>(gaps.size()));
      diag.rho_pass = std::fabs(diag.rho1) < diag.rho_threshold;
      if (auto ad = stats::anderson_darling_exponential(gaps); ad.ok()) {
        diag.ad_modified = ad.value().modified;
        diag.ad_pass = ad.value().exponential_at_5pct();
      } else {
        diag.usable = false;  // degenerate gaps (all zero) — skip interval
      }
    }
    result.intervals.push_back(diag);
  }

  std::size_t usable = 0;
  std::size_t rho_passed = 0;
  std::size_t rho_positive = 0;
  std::size_t ad_passed = 0;
  for (const auto& d : result.intervals) {
    if (!d.usable) continue;
    ++usable;
    if (d.rho_pass) ++rho_passed;
    if (d.rho1 > 0.0) ++rho_positive;
    if (d.ad_pass) ++ad_passed;
  }
  result.usable_intervals = usable;
  if (usable < 2)
    return Error::insufficient_data(
        "test_poisson_arrivals: fewer than 2 sub-intervals with enough events");

  result.independence_meta =
      stats::binomial_count_test(usable, rho_passed, 0.95, options.independence_level);
  result.sign_meta = stats::sign_test(usable, rho_positive, options.sign_level);
  result.exponential_meta =
      stats::binomial_count_test(usable, ad_passed, 0.95, options.exponential_level);

  result.independent = !result.independence_meta.rejected &&
                       !result.sign_meta.significant_positive &&
                       !result.sign_meta.significant_negative;
  result.exponential = !result.exponential_meta.rejected;
  return result;
}

}  // namespace fullweb::poisson
