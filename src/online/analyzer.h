// OnlineAnalyzer: rolling-window estimation over an unbounded CLF stream.
//
// The batch pipeline materializes a full Dataset before any of the paper's
// Figure-1 analyses run; this layer answers "is this traffic LRD /
// heavy-tailed / stationary *right now*" while records are still arriving.
// It consumes the in-file-order record stream from weblog::read_clf_records
// (one add per record, reader thread only) and maintains three families of
// state:
//
//  * A ring of per-bin arrival/byte counts, keyed by ABSOLUTE bin index
//    floor(time / bin_seconds), grouped into blocks of block_bins bins and
//    holding the most recent window_blocks blocks. Sliding the window is
//    O(1) block operations; because bins are absolute, the ring contents —
//    and every estimate derived from them — are independent of how the
//    stream was chunked. Windowed KPSS, variance-time Hurst, and the FRS
//    multiscale memory estimator are computed from the materialized window
//    at snapshot time (the window is bounded, so this is O(window)).
//
//  * A whole-stream mergeable TailSketch over transfer sizes: exact top-k
//    order statistics (bit-identical Hill via tail::hill_plot_from_top)
//    plus a priority body sample feeding an alias-table subsample into the
//    batch LLCD fitter. Per-shard sketches merge exactly for
//    core/analyze_fleet.
//
//  * Exact integer counters (records, bytes, invalid timestamps, late
//    arrivals) and an unsorted-input flag, so malformed inputs surface as
//    flags rather than silently skewing estimates.
//
// Determinism: item identities are (salt, sequence-number) pairs assigned
// in stream order, the only generator consumed at snapshot time starts from
// a fixed RngSplitter-carved state, and no result depends on wall clock,
// thread count, or chunk placement — snapshot_json() is byte-identical for
// the same records at any chunking and any executor width (gated by
// test_online_analyzer and the fleet_analyze --online determinism check).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "lrd/hurst.h"
#include "online/frs_memory.h"
#include "online/tail_sketch.h"
#include "stats/kpss.h"
#include "stats/prefix_moments.h"
#include "support/json.h"
#include "support/result.h"
#include "support/rng.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "weblog/clf.h"
#include "weblog/clf_reader.h"

namespace fullweb::online {

struct OnlineOptions {
  double bin_seconds = 1.0;       ///< bin width; 1 s matches the batch series
  std::size_t block_bins = 256;   ///< bins per ring block
  std::size_t window_blocks = 16; ///< blocks retained (window length)
  std::size_t tail_top_k = 512;       ///< exact order statistics retained
  std::size_t tail_body_capacity = 1024;  ///< body priority-sample size
  std::size_t tail_subsample = 512;   ///< alias-table draws for the LLCD fit
  std::size_t frs_scales = 6;         ///< dyadic scales for the FRS estimator
  tail::HillOptions hill;             ///< shared with the batch Hill path
  stats::KpssNull kpss_null = stats::KpssNull::kLevel;
};

/// Value-or-reason holder for one estimator inside a snapshot: estimators
/// that cannot run on the current window (too short, degenerate) report the
/// error string instead of a value — never NaN-filled results.
template <typename T>
struct SnapshotField {
  std::optional<T> value;
  std::string error;

  void assign(support::Result<T> r) {
    if (r.ok())
      value = std::move(r).value();
    else
      error = r.error().message;
  }
};

struct OnlineSnapshot {
  // Stream accounting (exact integers).
  std::uint64_t records = 0;        ///< records binned into the ring
  std::uint64_t invalid_time = 0;   ///< non-finite timestamps (not binned)
  std::uint64_t late_dropped = 0;   ///< arrivals before the current window
  std::uint64_t bytes_total = 0;    ///< sum of transfer sizes (wrapping)
  bool saw_unsorted = false;        ///< any timestamp regression observed

  // Window geometry, in absolute bins.
  std::int64_t window_first_bin = 0;
  std::int64_t window_last_bin = 0;
  std::size_t window_bins = 0;      ///< 0 = nothing binned yet
  double bin_seconds = 1.0;

  // Windowed estimates over the per-bin count series.
  stats::MomentSummary counts;      ///< per-bin counts in the window
  SnapshotField<stats::KpssResult> kpss;
  SnapshotField<lrd::HurstEstimate> hurst_vt;
  SnapshotField<FrsEstimate> frs;

  // Whole-stream tail estimates from the mergeable sketch.
  std::uint64_t tail_count = 0;     ///< accepted positive transfer sizes
  std::uint64_t tail_rejected = 0;
  std::size_t tail_retained = 0;
  double tail_min = 0.0;
  double tail_max = 0.0;
  SnapshotField<tail::HillEstimate> hill;
  SnapshotField<tail::LlcdFit> llcd;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  ///< sketch quantiles; 0 if empty

  /// Append this snapshot as one JSON object to an open writer (for
  /// embedding into larger documents, e.g. fleet_analyze --online).
  void write_json(support::JsonWriter& w) const;
  /// The standalone deterministic document.
  [[nodiscard]] std::string to_json() const;
};

class OnlineAnalyzer {
 public:
  /// The rng carves the sketch identity salt and the snapshot subsample
  /// stream via RngSplitter; the analyzer consumes nothing else from it.
  OnlineAnalyzer(const OnlineOptions& options, support::Rng rng);

  /// One observation: an arrival at `time` (seconds) transferring `bytes`.
  /// Non-finite times are counted (invalid_time) and not binned; the bytes
  /// value still feeds the tail sketch. Order of calls defines item
  /// identity, so feed records in stream order.
  void add(double time, double bytes);
  void add(const weblog::ClfRecord& r) {
    add(r.timestamp, static_cast<double>(r.bytes));
  }

  /// Stream one CLF file through add() via weblog::read_clf_records.
  /// Deliberately does NOT reset any state: calling feed() repeatedly
  /// continues the same unbounded stream across files.
  [[nodiscard]] support::Result<weblog::IngestStats> feed(
      const std::string& path, const weblog::ClfReaderOptions& reader = {});

  /// Current rolling-window estimates. Pure function of the records fed so
  /// far (plus the construction-time rng): repeated calls without new data
  /// return identical results.
  [[nodiscard]] OnlineSnapshot snapshot() const;
  [[nodiscard]] std::string snapshot_json() const {
    return snapshot().to_json();
  }

  [[nodiscard]] const TailSketch& sketch() const noexcept { return sketch_; }
  [[nodiscard]] const OnlineOptions& options() const noexcept { return opts_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] bool saw_unsorted() const noexcept { return saw_unsorted_; }

  /// The window's per-bin count series, oldest bin first, ending at the
  /// last occupied bin — exactly the series the batch pipeline would build
  /// over the same time range (timeseries::counts_per_bin semantics).
  [[nodiscard]] std::vector<double> window_counts() const;

 private:
  struct Block {
    std::int64_t index = 0;          ///< absolute block index
    std::vector<double> bins;        ///< block_bins counts
  };

  void advance_to_block(std::int64_t target);
  [[nodiscard]] std::int64_t block_of(std::int64_t abin) const noexcept;

  OnlineOptions opts_;
  std::uint64_t salt_ = 0;           ///< sketch item identity salt
  support::Rng subsample_base_;      ///< snapshot-time alias-draw stream
  TailSketch sketch_;

  std::deque<Block> ring_;           ///< consecutive blocks, newest last
  std::uint64_t seq_ = 0;            ///< items fed (identity sequence)
  std::uint64_t records_ = 0;
  std::uint64_t invalid_time_ = 0;
  std::uint64_t late_dropped_ = 0;
  std::uint64_t bytes_total_ = 0;
  bool saw_unsorted_ = false;
  double last_time_ = 0.0;           ///< latest finite timestamp seen
  std::int64_t first_abin_ = 0;      ///< earliest bin ever occupied
  std::int64_t last_abin_ = 0;       ///< latest bin ever occupied
};

}  // namespace fullweb::online
