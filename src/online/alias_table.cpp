#include "online/alias_table.h"

#include <cmath>

namespace fullweb::online {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights)
    if (w > 0.0 && std::isfinite(w)) total += w;
  if (n == 0 || !(total > 0.0)) return;

  // Scaled probabilities p_i * n split into the under- and over-full
  // worklists. Ascending index order on both lists makes the pairing — and
  // therefore the table — a pure function of the weight vector.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    scaled[i] =
        (w > 0.0 && std::isfinite(w)) ? w / total * static_cast<double>(n) : 0.0;
  }
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alias_[i] = i;

  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(i);

  // Process as stacks: pop order is descending index within each list, still
  // deterministic. Each pairing fills one small column and returns the
  // donor's remainder to whichever list it now belongs to.
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers on either list are within rounding of 1.
  for (std::size_t i : small) prob_[i] = 1.0;
  for (std::size_t i : large) prob_[i] = 1.0;
}

}  // namespace fullweb::online
