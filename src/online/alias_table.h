// Walker/Vose alias table: O(1) draws from a fixed discrete distribution.
//
// The online tail sketch retains a bounded, unequally-weighted set of
// samples (exact top-k order statistics at weight 1, body survivors at
// weight body_count / retained). Turning that weighted set back into an
// i.i.d.-style subsample for the batch LLCD fitter needs with-replacement
// draws proportional to the weights; the alias method does each draw with
// one uniform integer and one uniform double, independent of table size.
//
// Construction is deterministic: the classic two-worklist (small/large)
// pairing visits indices in ascending order, so the same weight vector
// always produces the same table — a requirement for the analyzer's
// byte-identical snapshots. Reference: Vose, "A linear algorithm for
// generating random numbers with a given distribution" (1991).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/rng.h"

namespace fullweb::online {

class AliasTable {
 public:
  AliasTable() = default;
  /// Build from non-negative weights. Zero-total or empty input yields an
  /// empty table (size() == 0, draw() returns 0); callers gate on size().
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// One index draw proportional to the construction weights. Consumes
  /// exactly two generator values, so draw sequences are reproducible from
  /// the rng state alone.
  [[nodiscard]] std::size_t draw(support::Rng& rng) const noexcept {
    if (prob_.empty()) return 0;
    const std::size_t col = static_cast<std::size_t>(rng.below(prob_.size()));
    const double u = rng.uniform();
    return u < prob_[col] ? col : alias_[col];
  }

 private:
  std::vector<double> prob_;        ///< acceptance probability per column
  std::vector<std::size_t> alias_;  ///< fallback index per column
};

}  // namespace fullweb::online
