// Mergeable bounded-memory sketch of a heavy-tailed positive sample.
//
// Retains two canonical item sets from an unbounded stream of positive
// values:
//
//  * the exact `top_k` largest order statistics (ties broken by the item
//    tag), which is everything the Hill estimator reads — so when the
//    configured tail fraction needs at most top_k order statistics, the
//    sketch's Hill plot is bit-identical to the batch one over the full
//    sample; and
//  * a bottom-m *priority sample* of the remaining "body": every item gets
//    a fixed priority -log(u)/w with u hashed from its identity tag
//    (Efraimidis–Spira exponential race; w = 1 gives a uniform sample),
//    and the m smallest priorities survive.
//
// Both retained sets are pure functions of the set of items ever inserted:
// the k-largest and m-smallest selections are associative and commutative,
// priorities are computed from immutable per-item tags rather than drawn
// from mutable generator state, and no floating-point accumulator is
// carried (counts are integers; min/max are exact). merge(A, B) is
// therefore bit-exact associative AND commutative — merge-of-merges equals
// the flat build — which is what lets per-shard sketches combine in any
// order under core/analyze_fleet. The only precondition (shared with
// stats::MomentSummary) is that merged sketches were built over disjoint
// item sets, i.e. distinct (salt, seq) identities.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/result.h"
#include "support/rng.h"

namespace fullweb::online {

class TailSketch {
 public:
  /// One retained sample. `tag` is the item's stream identity (make_tag of
  /// the producer salt and a per-producer sequence number); `priority` is
  /// the exponential-race key, fixed at insert time.
  struct Item {
    double value = 0.0;
    std::uint64_t tag = 0;
    double priority = 0.0;
  };

  TailSketch() : TailSketch(512, 1024) {}
  TailSketch(std::size_t top_k, std::size_t body_capacity);

  /// Deterministic identity for the seq-th item of the stream salted with
  /// `salt`. Distinct (salt, seq) pairs give distinct-with-overwhelming-
  /// probability tags; shards use distinct salts so merged identities stay
  /// disjoint.
  [[nodiscard]] static std::uint64_t make_tag(std::uint64_t salt,
                                              std::uint64_t seq) noexcept;

  /// Insert a value with sampling weight `weight` (> 0; 1 = uniform body
  /// sampling). Non-finite or non-positive values are counted in rejected()
  /// and otherwise ignored — the tail estimators only ever read positives.
  void insert(double value, std::uint64_t tag, double weight = 1.0);

  /// Fold `other` (built over disjoint identities, same capacities) into
  /// this sketch. Errors on capacity mismatch; bit-exact in any order.
  [[nodiscard]] support::Status merge(const TailSketch& other);

  [[nodiscard]] std::size_t top_k() const noexcept { return top_k_; }
  [[nodiscard]] std::size_t body_capacity() const noexcept {
    return body_capacity_;
  }
  /// Accepted (finite, positive) insertions.
  [[nodiscard]] std::uint64_t count() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::size_t retained() const noexcept {
    return top_.size() + body_.size();
  }
  /// Accepted items no longer represented by a retained sample.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return accepted_ - static_cast<std::uint64_t>(retained());
  }
  /// Exact extremes over every accepted value (0 when empty).
  [[nodiscard]] double min() const noexcept { return accepted_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return accepted_ ? max_ : 0.0; }

  /// The exact top order statistics, descending (top_values()[0] = X_(1)).
  [[nodiscard]] std::vector<double> top_values() const;
  /// Retained items for equality assertions and estimators: top set in
  /// descending (value, tag) order, body set in ascending (priority, tag)
  /// order.
  [[nodiscard]] std::span<const Item> top_items() const noexcept {
    return top_;
  }
  [[nodiscard]] std::span<const Item> body_items() const noexcept {
    return body_;
  }

  /// Weighted empirical quantile (q in [0, 1]) over the retained set: top
  /// items carry weight 1, body survivors each stand in for an equal share
  /// of the unretained body. Exact when dropped() == 0. NaN when empty.
  [[nodiscard]] double quantile(double q) const;

  /// A value sample suitable for the batch distribution fitters
  /// (tail::llcd_fit): when nothing was dropped and the retained multiset
  /// fits max_n this is the exact sample (ascending), otherwise `max_n`
  /// alias-table draws proportional to the per-item representation
  /// weights. Consumes rng only on the sampled path; deterministic given
  /// the rng state.
  [[nodiscard]] std::vector<double> sample_values(std::size_t max_n,
                                                  support::Rng& rng) const;

 private:
  void body_compete(const Item& item);
  void rebuild_from(std::vector<Item>&& items);

  std::size_t top_k_;
  std::size_t body_capacity_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<Item> top_;   ///< sorted by (value desc, tag asc)
  std::vector<Item> body_;  ///< sorted by (priority asc, tag asc)
};

}  // namespace fullweb::online
