// Multiscale memory-parameter estimator for the arrival counting process,
// after Faÿ, Roueff & Soulier ("Estimation of the memory parameter of the
// infinite-source Poisson process", PAPERS.md).
//
// FRS estimate the memory parameter of an infinite-source Poisson arrival
// process from the second-order behaviour of its counting measure across
// dyadic observation scales: with heavy-tailed sessions (index alpha in
// (1, 2)) the count variance over windows of length s grows like s^{2H}
// with H = (3 - alpha) / 2, while a memoryless (Poisson) stream gives the
// linear Var ~ s, i.e. H = 1/2. The estimator here is the streaming form of
// that statistic: block sums of the per-bin arrival counts at scales
// 1, 2, 4, ... 2^{J-1} bins, the per-scale population variance, and a
// log2-log2 regression whose slope is 2H. It needs only the windowed bin
// counts the OnlineAnalyzer already maintains — no sorting, no FFT, no
// second pass over raw arrivals — so it is the point-process companion to
// the windowed variance-time estimator on the same ring.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/result.h"

namespace fullweb::online {

struct FrsOptions {
  std::size_t scales = 6;      ///< dyadic scales 2^0 .. 2^{scales-1} bins
  std::size_t min_blocks = 4;  ///< drop scales with fewer complete blocks
};

struct FrsScalePoint {
  std::size_t scale_bins = 0;  ///< block length in bins (2^j)
  std::size_t blocks = 0;      ///< complete blocks at this scale
  double variance = 0.0;       ///< population variance of the block sums
};

struct FrsEstimate {
  double h = 0.5;              ///< memory parameter as a Hurst exponent
  double d = 0.0;              ///< LRD memory parameter, d = H - 1/2
  double alpha_implied = 2.0;  ///< session tail index via alpha = 3 - 2H
  double r_squared = 0.0;      ///< quality of the log2 Var vs scale fit
  std::vector<FrsScalePoint> points;  ///< scales actually used in the fit
};

/// Estimate the memory parameter from per-bin arrival counts. Errors when
/// fewer than three scales have min_blocks complete blocks and positive
/// variance (insufficient_data) — constant or empty streams land here
/// rather than producing a garbage slope.
[[nodiscard]] support::Result<FrsEstimate> frs_memory_from_counts(
    std::span<const double> counts, const FrsOptions& options = {});

}  // namespace fullweb::online
