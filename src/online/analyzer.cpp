#include "online/analyzer.h"

#include <algorithm>
#include <cmath>

#include "lrd/variance_time.h"

namespace fullweb::online {

using support::JsonWriter;
using support::Result;

OnlineAnalyzer::OnlineAnalyzer(const OnlineOptions& options, support::Rng rng)
    : opts_(options) {
  if (!(opts_.bin_seconds > 0.0) || !std::isfinite(opts_.bin_seconds))
    opts_.bin_seconds = 1.0;
  if (opts_.block_bins == 0) opts_.block_bins = 1;
  if (opts_.window_blocks == 0) opts_.window_blocks = 1;
  // The salt makes item identities unique per analyzer (shards get
  // different rngs, hence disjoint tag spaces for sketch merging); the
  // splitter leaf is the only generator any snapshot ever consumes.
  salt_ = rng();
  support::RngSplitter splitter(rng, 0);
  subsample_base_ = splitter.stream(0);
  sketch_ = TailSketch(opts_.tail_top_k, opts_.tail_body_capacity);
}

std::int64_t OnlineAnalyzer::block_of(std::int64_t abin) const noexcept {
  const auto bb = static_cast<std::int64_t>(opts_.block_bins);
  std::int64_t q = abin / bb;
  if (abin % bb != 0 && abin < 0) --q;  // floor division
  return q;
}

void OnlineAnalyzer::advance_to_block(std::int64_t target) {
  const auto wb = static_cast<std::int64_t>(opts_.window_blocks);
  std::int64_t start = ring_.empty() ? target : ring_.back().index + 1;
  if (target - start >= wb) {
    // The jump skips past everything retained: the intervening silence is
    // all-zero blocks, of which only the trailing window matters.
    ring_.clear();
    start = target - wb + 1;
  }
  for (std::int64_t b = start; b <= target; ++b)
    ring_.push_back(Block{b, std::vector<double>(opts_.block_bins, 0.0)});
  while (ring_.size() > opts_.window_blocks) ring_.pop_front();
}

void OnlineAnalyzer::add(double time, double bytes) {
  const std::uint64_t seq = seq_++;
  sketch_.insert(bytes, TailSketch::make_tag(salt_, seq));
  if (std::isfinite(bytes) && bytes > 0.0)
    bytes_total_ += static_cast<std::uint64_t>(bytes);

  if (!std::isfinite(time)) {
    ++invalid_time_;
    return;
  }
  const double fb = std::floor(time / opts_.bin_seconds);
  if (!(fb >= -9.0e18 && fb <= 9.0e18)) {  // would overflow the bin index
    ++invalid_time_;
    return;
  }
  if (records_ > 0 && !(time >= last_time_)) saw_unsorted_ = true;
  last_time_ = records_ > 0 ? std::max(last_time_, time) : time;

  const auto abin = static_cast<std::int64_t>(fb);
  if (ring_.empty()) {
    ring_.push_back(
        Block{block_of(abin), std::vector<double>(opts_.block_bins, 0.0)});
    first_abin_ = abin;
    last_abin_ = abin;
  }
  const std::int64_t b = block_of(abin);
  if (b > ring_.back().index) advance_to_block(b);
  if (b < ring_.front().index) {
    ++late_dropped_;
    return;
  }
  Block& blk = ring_[static_cast<std::size_t>(b - ring_.front().index)];
  const std::int64_t offset =
      abin - blk.index * static_cast<std::int64_t>(opts_.block_bins);
  blk.bins[static_cast<std::size_t>(offset)] += 1.0;
  ++records_;
  first_abin_ = std::min(first_abin_, abin);
  last_abin_ = std::max(last_abin_, abin);
}

Result<weblog::IngestStats> OnlineAnalyzer::feed(
    const std::string& path, const weblog::ClfReaderOptions& reader) {
  return weblog::read_clf_records(
      path, reader, [this](const weblog::ClfRecord& r) { add(r); });
}

std::vector<double> OnlineAnalyzer::window_counts() const {
  std::vector<double> out;
  if (records_ == 0 || ring_.empty()) return out;
  const auto bb = static_cast<std::int64_t>(opts_.block_bins);
  // The window starts at the first *occupied* bin while the stream is still
  // shorter than the ring (matching the batch series, whose t0 is the first
  // arrival), and at the ring's oldest bin once the window has slid.
  const std::int64_t start = std::max(ring_.front().index * bb, first_abin_);
  out.reserve(static_cast<std::size_t>(last_abin_ - start + 1));
  for (const Block& blk : ring_) {
    const std::int64_t first = blk.index * bb;
    for (std::int64_t a = std::max(first, start);
         a < first + bb && a <= last_abin_; ++a)
      out.push_back(blk.bins[static_cast<std::size_t>(a - first)]);
  }
  return out;
}

OnlineSnapshot OnlineAnalyzer::snapshot() const {
  OnlineSnapshot s;
  s.records = records_;
  s.invalid_time = invalid_time_;
  s.late_dropped = late_dropped_;
  s.bytes_total = bytes_total_;
  s.saw_unsorted = saw_unsorted_;
  s.bin_seconds = opts_.bin_seconds;

  const std::vector<double> win = window_counts();
  s.window_bins = win.size();
  if (!win.empty()) {
    const auto bb = static_cast<std::int64_t>(opts_.block_bins);
    s.window_first_bin = std::max(ring_.front().index * bb, first_abin_);
    s.window_last_bin = last_abin_;
    s.counts = stats::MomentSummary::of(win);
    s.kpss.assign(stats::kpss_test(win, opts_.kpss_null));
    s.hurst_vt.assign(lrd::variance_time_hurst(win));
    s.frs.assign(
        frs_memory_from_counts(win, FrsOptions{opts_.frs_scales, 4}));
  } else {
    s.kpss.error = "empty window";
    s.hurst_vt.error = "empty window";
    s.frs.error = "empty window";
  }

  s.tail_count = sketch_.count();
  s.tail_rejected = sketch_.rejected();
  s.tail_retained = sketch_.retained();
  s.tail_min = sketch_.min();
  s.tail_max = sketch_.max();
  if (sketch_.count() > 0) {
    const std::vector<double> top = sketch_.top_values();
    auto plot = tail::hill_plot_from_top(top, sketch_.count(), opts_.hill);
    if (plot.ok())
      s.hill.assign(tail::hill_estimate_from_plot(plot.value(), opts_.hill));
    else
      s.hill.error = plot.error().message;
    support::Rng rng = subsample_base_;
    const std::vector<double> sample =
        sketch_.sample_values(opts_.tail_subsample, rng);
    s.llcd.assign(tail::llcd_fit(sample));
    s.p50 = sketch_.quantile(0.50);
    s.p90 = sketch_.quantile(0.90);
    s.p99 = sketch_.quantile(0.99);
  } else {
    s.hill.error = "empty tail sample";
    s.llcd.error = "empty tail sample";
  }
  return s;
}

namespace {

void write_error(JsonWriter& w, const std::string& message) {
  w.begin_object();
  w.field("error", message);
  w.end_object();
}

void write_kpss(JsonWriter& w, const SnapshotField<stats::KpssResult>& f) {
  if (!f.value) return write_error(w, f.error);
  w.begin_object();
  w.field("statistic", f.value->statistic);
  w.field("lag", f.value->lag);
  w.field("p_value", f.value->p_value);
  w.field("critical_5pct", f.value->critical_5pct);
  w.field("stationary_at_5pct", f.value->stationary_at_5pct());
  w.end_object();
}

void write_hurst(JsonWriter& w, const SnapshotField<lrd::HurstEstimate>& f) {
  if (!f.value) return write_error(w, f.error);
  w.begin_object();
  w.field("h", f.value->h);
  w.key("ci95_halfwidth");
  if (f.value->ci95_halfwidth)
    w.value(*f.value->ci95_halfwidth);
  else
    w.null();
  w.key("r_squared");
  if (f.value->r_squared)
    w.value(*f.value->r_squared);
  else
    w.null();
  w.end_object();
}

void write_frs(JsonWriter& w, const SnapshotField<FrsEstimate>& f) {
  if (!f.value) return write_error(w, f.error);
  w.begin_object();
  w.field("h", f.value->h);
  w.field("d", f.value->d);
  w.field("alpha_implied", f.value->alpha_implied);
  w.field("r_squared", f.value->r_squared);
  w.key("scales");
  w.begin_array();
  for (const FrsScalePoint& p : f.value->points) {
    w.begin_object();
    w.field("scale_bins", p.scale_bins);
    w.field("blocks", p.blocks);
    w.field("variance", p.variance);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_hill(JsonWriter& w, const SnapshotField<tail::HillEstimate>& f) {
  if (!f.value) return write_error(w, f.error);
  w.begin_object();
  w.field("alpha", f.value->alpha);
  w.field("k_low", f.value->k_low);
  w.field("k_high", f.value->k_high);
  w.field("stabilized", f.value->stabilized);
  w.end_object();
}

void write_llcd(JsonWriter& w, const SnapshotField<tail::LlcdFit>& f) {
  if (!f.value) return write_error(w, f.error);
  w.begin_object();
  w.field("alpha", f.value->alpha);
  w.field("stderr_alpha", f.value->stderr_alpha);
  w.field("r_squared", f.value->r_squared);
  w.field("theta", f.value->theta);
  w.field("points", f.value->points);
  w.field("tail_samples", f.value->tail_samples);
  w.end_object();
}

}  // namespace

void OnlineSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("schema", "fullweb-online-snapshot-v1");
  w.field("records", static_cast<std::size_t>(records));
  w.field("invalid_time", static_cast<std::size_t>(invalid_time));
  w.field("late_dropped", static_cast<std::size_t>(late_dropped));
  w.field("bytes_total", static_cast<std::size_t>(bytes_total));
  w.field("saw_unsorted", saw_unsorted);
  w.key("window");
  w.begin_object();
  w.field("first_bin", static_cast<double>(window_first_bin));
  w.field("last_bin", static_cast<double>(window_last_bin));
  w.field("bins", window_bins);
  w.field("bin_seconds", bin_seconds);
  w.end_object();
  w.key("counts");
  w.begin_object();
  w.field("count", counts.count);
  w.field("mean", counts.mean);
  w.field("variance", counts.variance());
  w.field("min", counts.min);
  w.field("max", counts.max);
  w.end_object();
  w.key("kpss");
  write_kpss(w, kpss);
  w.key("hurst_vt");
  write_hurst(w, hurst_vt);
  w.key("frs");
  write_frs(w, frs);
  w.key("tail");
  w.begin_object();
  w.field("count", static_cast<std::size_t>(tail_count));
  w.field("rejected", static_cast<std::size_t>(tail_rejected));
  w.field("retained", tail_retained);
  w.field("min", tail_min);
  w.field("max", tail_max);
  w.key("hill");
  write_hill(w, hill);
  w.key("llcd");
  write_llcd(w, llcd);
  w.key("quantiles");
  w.begin_object();
  w.field("p50", p50);
  w.field("p90", p90);
  w.field("p99", p99);
  w.end_object();
  w.end_object();
  w.end_object();
}

std::string OnlineSnapshot::to_json() const {
  JsonWriter w;
  write_json(w);
  return std::move(w).str();
}

}  // namespace fullweb::online
