#include "online/tail_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "online/alias_table.h"

namespace fullweb::online {

using support::Error;
using support::Status;

namespace {

/// SplitMix64 finalizer: the bit mixer behind both tag construction and the
/// priority hash. Stateless, so priorities are pure functions of identity.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Exponential-race priority: E = -log(u) / w with u in (0, 1] hashed from
/// the tag. Smaller is more likely to survive; larger weight shrinks the
/// priority, biasing survival toward heavy items.
double race_priority(std::uint64_t tag, double weight) noexcept {
  const std::uint64_t bits = mix64(tag ^ 0x5851f42d4c957f2dULL) >> 11;
  double u = static_cast<double>(bits) * 0x1.0p-53;
  if (u == 0.0) u = 0x1.0p-53;
  const double w = (weight > 0.0 && std::isfinite(weight)) ? weight : 1.0;
  return -std::log(u) / w;
}

/// Total order for the top set: larger values first. The tag tiebreak makes
/// the k-largest selection a pure function of the item *set*, so equal
/// values at the selection boundary resolve identically in every build
/// order.
bool top_before(const TailSketch::Item& a, const TailSketch::Item& b) noexcept {
  if (a.value != b.value) return a.value > b.value;
  return a.tag < b.tag;
}

/// Total order for the body set: smallest priorities (= survivors) first.
bool body_before(const TailSketch::Item& a, const TailSketch::Item& b) noexcept {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.tag < b.tag;
}

}  // namespace

TailSketch::TailSketch(std::size_t top_k, std::size_t body_capacity)
    : top_k_(top_k == 0 ? 1 : top_k),
      body_capacity_(body_capacity) {
  top_.reserve(top_k_);
  body_.reserve(body_capacity_);
}

std::uint64_t TailSketch::make_tag(std::uint64_t salt,
                                   std::uint64_t seq) noexcept {
  return mix64(salt + 0x9e3779b97f4a7c15ULL * (seq + 1));
}

void TailSketch::insert(double value, std::uint64_t tag, double weight) {
  if (!(std::isfinite(value) && value > 0.0)) {
    ++rejected_;
    return;
  }
  if (accepted_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++accepted_;

  Item item{value, tag, race_priority(tag, weight)};
  if (top_.size() < top_k_ || top_before(item, top_.back())) {
    auto pos = std::lower_bound(top_.begin(), top_.end(), item, top_before);
    top_.insert(pos, item);
    if (top_.size() <= top_k_) return;
    const Item demoted = top_.back();
    top_.pop_back();
    body_compete(demoted);
    return;
  }
  body_compete(item);
}

void TailSketch::body_compete(const Item& item) {
  if (body_capacity_ == 0) return;
  if (body_.size() >= body_capacity_ && !body_before(item, body_.back()))
    return;
  auto pos = std::lower_bound(body_.begin(), body_.end(), item, body_before);
  body_.insert(pos, item);
  if (body_.size() > body_capacity_) body_.pop_back();
}

void TailSketch::rebuild_from(std::vector<Item>&& items) {
  // k-largest into the top set, everyone else races for the body: the same
  // selection the incremental path performs, applied to the union at once.
  std::sort(items.begin(), items.end(), top_before);
  const std::size_t keep = std::min(top_k_, items.size());
  top_.assign(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(keep));
  std::sort(items.begin() + static_cast<std::ptrdiff_t>(keep), items.end(),
            body_before);
  const std::size_t body_keep =
      std::min(body_capacity_, items.size() - keep);
  body_.assign(items.begin() + static_cast<std::ptrdiff_t>(keep),
               items.begin() + static_cast<std::ptrdiff_t>(keep + body_keep));
}

Status TailSketch::merge(const TailSketch& other) {
  if (top_k_ != other.top_k_ || body_capacity_ != other.body_capacity_)
    return Error::invalid_argument(
        "TailSketch::merge: capacity mismatch between sketches");
  if (other.accepted_ > 0) {
    min_ = accepted_ ? std::min(min_, other.min_) : other.min_;
    max_ = accepted_ ? std::max(max_, other.max_) : other.max_;
  }
  accepted_ += other.accepted_;
  rejected_ += other.rejected_;

  std::vector<Item> pool;
  pool.reserve(retained() + other.retained());
  pool.insert(pool.end(), top_.begin(), top_.end());
  pool.insert(pool.end(), body_.begin(), body_.end());
  pool.insert(pool.end(), other.top_.begin(), other.top_.end());
  pool.insert(pool.end(), other.body_.begin(), other.body_.end());
  rebuild_from(std::move(pool));
  return {};
}

std::vector<double> TailSketch::top_values() const {
  std::vector<double> out;
  out.reserve(top_.size());
  for (const Item& it : top_) out.push_back(it.value);
  return out;
}

double TailSketch::quantile(double q) const {
  if (accepted_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);

  // Merge the two retained sets into one ascending weighted empirical
  // distribution. Each body survivor stands in for an equal share of the
  // unretained body population.
  const double body_pop =
      static_cast<double>(accepted_) - static_cast<double>(top_.size());
  const double body_w =
      body_.empty() ? 0.0 : body_pop / static_cast<double>(body_.size());
  std::vector<std::pair<double, double>> cdf;  // (value, weight)
  cdf.reserve(retained());
  for (const Item& it : top_) cdf.emplace_back(it.value, 1.0);
  for (const Item& it : body_) cdf.emplace_back(it.value, body_w);
  std::sort(cdf.begin(), cdf.end());

  const double target = q * static_cast<double>(accepted_);
  double cum = 0.0;
  for (const auto& [v, w] : cdf) {
    cum += w;
    if (cum >= target) return v;
  }
  return cdf.back().first;
}

std::vector<double> TailSketch::sample_values(std::size_t max_n,
                                              support::Rng& rng) const {
  std::vector<double> out;
  if (accepted_ == 0 || max_n == 0) return out;

  if (dropped() == 0 && retained() <= max_n) {
    // The sketch holds the whole sample and it fits the request: hand it
    // back exactly (ascending, so the output is independent of internal
    // set layout).
    out.reserve(retained());
    for (const Item& it : top_) out.push_back(it.value);
    for (const Item& it : body_) out.push_back(it.value);
    std::sort(out.begin(), out.end());
    return out;
  }

  const double body_pop =
      static_cast<double>(accepted_) - static_cast<double>(top_.size());
  const double body_w =
      body_.empty() ? 0.0 : body_pop / static_cast<double>(body_.size());
  std::vector<double> values;
  std::vector<double> weights;
  values.reserve(retained());
  weights.reserve(retained());
  for (const Item& it : top_) {
    values.push_back(it.value);
    weights.push_back(1.0);
  }
  for (const Item& it : body_) {
    values.push_back(it.value);
    weights.push_back(body_w);
  }
  const AliasTable table(weights);
  if (table.empty()) return out;
  out.reserve(max_n);
  for (std::size_t i = 0; i < max_n; ++i) out.push_back(values[table.draw(rng)]);
  return out;
}

}  // namespace fullweb::online
