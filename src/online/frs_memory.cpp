#include "online/frs_memory.h"

#include <cmath>

#include "stats/prefix_moments.h"

namespace fullweb::online {

using support::Error;
using support::Result;

Result<FrsEstimate> frs_memory_from_counts(std::span<const double> counts,
                                           const FrsOptions& options) {
  const std::size_t scales = options.scales < 2 ? 2 : options.scales;
  const std::size_t min_blocks =
      options.min_blocks < 2 ? 2 : options.min_blocks;

  // One compensated prefix pass; every scale's block-sum variance is then
  // O(blocks) lookups. aggregated_variance gives the variance of block
  // *means*; block sums differ by the factor s^2, i.e. + 2 log2 s in log
  // space — folded into the regression ordinate below.
  const stats::PrefixMoments pm(counts);

  FrsEstimate est;
  std::vector<double> xs, ys;
  std::size_t scale = 1;
  for (std::size_t j = 0; j < scales; ++j, scale <<= 1) {
    const std::size_t blocks = counts.size() / scale;
    if (blocks < min_blocks) break;
    const double mean_var = pm.aggregated_variance(scale);
    const double sum_var =
        mean_var * static_cast<double>(scale) * static_cast<double>(scale);
    if (!(sum_var > 0.0) || !std::isfinite(sum_var)) continue;
    est.points.push_back({scale, blocks, sum_var});
    xs.push_back(static_cast<double>(j));
    ys.push_back(std::log2(sum_var));
  }
  if (xs.size() < 3)
    return Error::insufficient_data(
        "frs_memory: fewer than 3 usable scales (stream too short or "
        "degenerate)");

  // OLS of log2 Var_j on j: slope = 2H.
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double det = n * sxx - sx * sx;
  if (!(det > 0.0))
    return Error::numeric("frs_memory: degenerate scale design");
  const double slope = (n * sxy - sx * sy) / det;
  const double ss_tot = syy - sy * sy / n;
  const double ss_res_part = sxy - sx * sy / n;
  est.r_squared =
      ss_tot > 0.0 ? (ss_res_part * ss_res_part) / (det / n * ss_tot) : 1.0;

  est.h = slope / 2.0;
  est.d = est.h - 0.5;
  est.alpha_implied = 3.0 - 2.0 * est.h;
  return est;
}

}  // namespace fullweb::online
