#include "core/report_markdown.h"

#include <sstream>

#include "support/strings.h"

namespace fullweb::core {

namespace {

using support::format_sig;

void hurst_table(std::ostringstream& os, const lrd::HurstSuiteResult& raw,
                 const lrd::HurstSuiteResult& stationary) {
  os << "| estimator | raw | stationary |\n|---|---|---|\n";
  for (auto method :
       {lrd::HurstMethod::kVarianceTime, lrd::HurstMethod::kRoverS,
        lrd::HurstMethod::kPeriodogram, lrd::HurstMethod::kWhittle,
        lrd::HurstMethod::kAbryVeitch}) {
    const auto* r = raw.find(method);
    const auto* s = stationary.find(method);
    auto cell = [](const lrd::HurstEstimate* e) {
      if (e == nullptr) return std::string("–");
      std::string out = format_sig(e->h, 3);
      if (e->ci95_halfwidth)
        out += " ± " + format_sig(*e->ci95_halfwidth, 2);
      return out;
    };
    os << "| " << to_string(method) << " | " << cell(r) << " | " << cell(s)
       << " |\n";
  }
  os << "| **mean** | **" << format_sig(raw.mean_h(), 3) << "** | **"
     << format_sig(stationary.mean_h(), 3) << "** |\n";
}

void arrival_section(std::ostringstream& os, const char* title,
                     const ArrivalAnalysis& analysis,
                     const MarkdownReportOptions& options) {
  os << "## " << title << "\n\n";
  const auto& st = analysis.stationarity;
  os << "* KPSS (raw): statistic " << format_sig(st.kpss_raw.statistic, 4)
     << " → " << (st.was_stationary ? "stationary" : "**non-stationary**")
     << " at 5%\n";
  if (st.trend_removed)
    os << "* trend removed: slope " << format_sig(st.trend_slope, 3)
       << "/sample (relative drift " << format_sig(st.relative_drift, 3)
       << ")\n";
  if (st.seasonal_removed)
    os << "* periodicity removed: period " << st.period
       << " samples (strength " << format_sig(st.seasonal_strength, 3) << ")\n";
  os << "* verdict: "
     << (analysis.long_range_dependent()
             ? "**long-range dependent** (all stationary estimates in (0.5, 1))"
             : "no consistent LRD evidence")
     << "\n\n";
  hurst_table(os, analysis.hurst_raw, analysis.hurst_stationary);
  os << '\n';

  if (options.include_aggregation_sweeps && !analysis.whittle_sweep.empty()) {
    os << "### Aggregated-series estimates (asymptotic self-similarity)\n\n"
       << "| m | Whittle Ĥ^(m) | 95% CI | Abry-Veitch Ĥ^(m) | 95% CI |\n"
       << "|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < analysis.whittle_sweep.size(); ++i) {
      const auto& w = analysis.whittle_sweep[i];
      os << "| " << w.m << " | " << format_sig(w.estimate.h, 3) << " | ["
         << format_sig(w.estimate.ci_low(), 3) << ", "
         << format_sig(w.estimate.ci_high(), 3) << "] | ";
      if (i < analysis.abry_veitch_sweep.size()) {
        const auto& a = analysis.abry_veitch_sweep[i];
        os << format_sig(a.estimate.h, 3) << " | ["
           << format_sig(a.estimate.ci_low(), 3) << ", "
           << format_sig(a.estimate.ci_high(), 3) << "] |\n";
      } else {
        os << "– | – |\n";
      }
    }
    os << '\n';
  }
}

void poisson_section(std::ostringstream& os, const char* title,
                     const std::map<weblog::Load, PoissonBattery>& batteries,
                     const MarkdownReportOptions& options) {
  os << "### " << title << "\n\n";
  if (batteries.empty()) {
    os << "_not run_\n\n";
    return;
  }
  os << "| interval | events | verdict |\n|---|---|---|\n";
  for (const auto& [load, battery] : batteries) {
    std::string verdict;
    if (!battery.available) verdict = "NA (too few events)";
    else if (!battery.any_ran()) verdict = "NA (intervals too sparse)";
    else verdict = battery.poisson_all() ? "consistent with Poisson"
                                         : "**NOT Poisson**";
    os << "| " << to_string(load) << " | "
       << (battery.available ? std::to_string(battery.interval.request_count)
                             : std::string("–"))
       << " | " << verdict << " |\n";
  }
  os << '\n';
  if (options.include_poisson_detail) {
    os << "<details><summary>per-configuration verdicts</summary>\n\n"
       << "| interval | config | independent | exponential |\n|---|---|---|---|\n";
    for (const auto& [load, battery] : batteries) {
      struct Row {
        const char* label;
        const PoissonBattery::Cell* cell;
      };
      const Row rows[] = {
          {"1h / uniform", &battery.hourly_uniform},
          {"1h / deterministic", &battery.hourly_deterministic},
          {"10min / uniform", &battery.tenmin_uniform},
          {"10min / deterministic", &battery.tenmin_deterministic},
      };
      for (const auto& row : rows) {
        os << "| " << to_string(load) << " | " << row.label << " | ";
        if (!row.cell->ran) {
          os << "– | – |\n";
        } else {
          os << (row.cell->result.independent ? "yes" : "**no**") << " | "
             << (row.cell->result.exponential ? "yes" : "**no**") << " |\n";
        }
      }
    }
    os << "\n</details>\n\n";
  }
}

void tails_row(std::ostringstream& os, const std::string& label,
               const IntervalTails& tails) {
  auto cells = [](const TailAnalysis& t) {
    return t.hill_cell() + " / " + t.llcd_cell() + " / " + t.r2_cell();
  };
  os << "| " << label << " | " << tails.sessions << " | " << cells(tails.length)
     << " | " << cells(tails.requests) << " | " << cells(tails.bytes) << " |\n";
}

}  // namespace

std::string render_markdown(const FullWebModel& model,
                            const MarkdownReportOptions& options) {
  std::ostringstream os;
  os << "# FULL-Web workload model — " << model.server << "\n\n";
  os << "| requests | sessions | MB transferred |\n|---|---|---|\n| "
     << support::with_commas(static_cast<long long>(model.total_requests))
     << " | "
     << support::with_commas(static_cast<long long>(model.total_sessions))
     << " | " << format_sig(model.mb_transferred, 5) << " |\n\n";

  arrival_section(os, "Request arrival process", model.request_arrivals, options);
  poisson_section(os, "Poisson tests — requests", model.request_poisson, options);

  arrival_section(os, "Session arrival process", model.session_arrivals, options);
  poisson_section(os, "Poisson tests — sessions", model.session_poisson, options);

  os << "## Intra-session heavy-tail analysis\n\n"
     << "Cells are `alpha_Hill / alpha_LLCD / R²`; NS = Hill plot did not "
        "stabilize, NA = not enough data.\n\n"
     << "| interval | sessions | length (s) | requests | bytes |\n"
     << "|---|---|---|---|---|\n";
  for (const auto& [load, tails] : model.interval_tails)
    tails_row(os, to_string(load), tails);
  tails_row(os, "Week", model.week_tails);
  os << '\n';
  return os.str();
}

std::string render_markdown_errors(const ErrorAnalysis& errors) {
  std::ostringstream os;
  os << "## Error & reliability analysis\n\n"
     << "| class | requests |\n|---|---|\n";
  const char* labels[6] = {"unknown", "1xx", "2xx", "3xx", "4xx", "5xx"};
  for (int c = 1; c <= 5; ++c)
    os << "| " << labels[c] << " | " << errors.statuses.by_class[c] << " |\n";
  os << "\n* request error rate: " << format_sig(100.0 * errors.request_error_rate, 3)
     << "% (server errors " << format_sig(100.0 * errors.server_error_rate, 3)
     << "%)\n"
     << "* session reliability: "
     << format_sig(100.0 * errors.session_reliability, 4) << "% ("
     << errors.sessions_with_error << " of " << errors.sessions
     << " sessions hit an error; " << format_sig(errors.errors_per_bad_session, 3)
     << " errors per affected session)\n\n";
  return os.str();
}

std::string render_markdown_interarrivals(const InterArrivalAnalysis& analysis) {
  std::ostringstream os;
  os << "## Request inter-arrival model ranking\n\n"
     << "n = " << analysis.n << ", mean = " << format_sig(analysis.mean, 4)
     << " s, cv = " << format_sig(analysis.cv, 3) << "\n\n"
     << "| model | params | ΔAIC |\n|---|---|---|\n";
  for (const auto& f : analysis.fits) {
    os << "| " << to_string(f.model) << " | " << format_sig(f.param1, 4);
    if (f.model != InterArrivalModel::kExponential)
      os << ", " << format_sig(f.param2, 4);
    os << " | " << format_sig(f.delta_aic, 4) << " |\n";
  }
  os << "\n* exponential adequate: "
     << (analysis.exponential_adequate() ? "yes" : "**no**") << "\n\n";
  return os.str();
}

}  // namespace fullweb::core
