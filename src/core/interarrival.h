// Request inter-arrival time analysis (§1's second request-based
// characteristic).
//
// Fits the four classical candidate models — exponential (the Poisson
// hypothesis), Pareto, lognormal, and Weibull — to an inter-arrival sample
// by maximum likelihood and ranks them by AIC, alongside the
// Anderson-Darling exponentiality verdict. Under LRD traffic the
// exponential consistently loses to the heavier alternatives; this module
// lets log_audit say so quantitatively for any parsed trace.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stats/anderson_darling.h"
#include "support/result.h"

namespace fullweb::core {

enum class InterArrivalModel { kExponential, kPareto, kLognormal, kWeibull };

[[nodiscard]] std::string to_string(InterArrivalModel model);

struct ModelFit {
  InterArrivalModel model = InterArrivalModel::kExponential;
  double param1 = 0.0;       ///< lambda | alpha | mu     | shape
  double param2 = 0.0;       ///< -      | k     | sigma  | scale
  double log_likelihood = 0.0;
  double aic = 0.0;          ///< 2k - 2 lnL (k = #parameters)
  double delta_aic = 0.0;    ///< aic - min(aic); 0 for the winner
};

struct InterArrivalAnalysis {
  std::size_t n = 0;
  double mean = 0.0;
  double cv = 0.0;  ///< coefficient of variation; 1 for exponential
  std::vector<ModelFit> fits;            ///< sorted by AIC ascending
  std::optional<stats::AndersonDarlingResult> ad_exponential;

  [[nodiscard]] const ModelFit* best() const noexcept {
    return fits.empty() ? nullptr : &fits.front();
  }
  /// True when the exponential model both wins the AIC ranking and passes
  /// the A² test — the arrivals look locally Poisson.
  [[nodiscard]] bool exponential_adequate() const noexcept;
};

struct InterArrivalOptions {
  std::size_t min_samples = 50;
  /// Gaps of exactly zero (1-second log granularity collisions) are shifted
  /// to this floor before fitting; <= 0 drops them instead.
  double zero_gap_floor = 1e-3;
};

/// Analyze the gaps of a sorted arrival sequence (or pass pre-computed gaps
/// with `already_gaps = true`).
[[nodiscard]] support::Result<InterArrivalAnalysis> analyze_interarrivals(
    std::span<const double> times_or_gaps, bool already_gaps = false,
    const InterArrivalOptions& options = {});

}  // namespace fullweb::core
