#include "core/fleet.h"

#include <algorithm>
#include <utility>

#include "support/executor.h"
#include "support/json.h"

namespace fullweb::core {

using support::Error;
using support::Result;

namespace {

ShardResult summarize_shard(const weblog::Dataset& ds, FullWebModel model) {
  ShardResult shard;
  shard.name = ds.name();
  shard.requests = ds.requests().size();
  shard.sessions = ds.sessions().size();
  shard.bytes = ds.total_bytes();
  shard.distinct_clients = ds.distinct_clients();
  shard.t0 = ds.t0();
  shard.t1 = ds.t1();
  shard.model = std::move(model);

  // Mergeable state is built from the same derived series the fit consumed;
  // this is all of the shard's raw data the fleet level ever sees.
  const std::vector<double> rps = ds.requests_per_second();
  shard.rps = stats::MomentSummary::of(rps);
  const std::vector<double> lengths = ds.session_lengths();
  shard.session_length = stats::MomentSummary::of(lengths);
  const std::vector<double> counts = ds.session_request_counts();
  shard.session_requests = stats::MomentSummary::of(counts);
  const std::vector<double> bytes = ds.session_byte_counts();
  shard.session_bytes = stats::MomentSummary::of(bytes);
  return shard;
}

void merge_shard(FleetReport& fleet, const ShardResult& shard, bool first) {
  fleet.total_requests += shard.requests;
  fleet.total_sessions += shard.sessions;
  fleet.total_bytes += shard.bytes;
  fleet.t0 = first ? shard.t0 : std::min(fleet.t0, shard.t0);
  fleet.t1 = first ? shard.t1 : std::max(fleet.t1, shard.t1);
  fleet.rps.merge(shard.rps);
  fleet.session_length.merge(shard.session_length);
  fleet.session_requests.merge(shard.session_requests);
  fleet.session_bytes.merge(shard.session_bytes);

  if (shard.model.request_arrivals.long_range_dependent())
    ++fleet.shards_lrd_requests;
  if (shard.model.session_arrivals.long_range_dependent())
    ++fleet.shards_lrd_sessions;
  if (shard.model.week_tails.bytes.heavy_tailed())
    ++fleet.shards_heavy_tail_bytes;
  fleet.mean_request_h +=
      shard.model.request_arrivals.hurst_stationary.mean_h();
  fleet.mean_session_h +=
      shard.model.session_arrivals.hurst_stationary.mean_h();
}

void write_moments(support::JsonWriter& w, const char* name,
                   const stats::MomentSummary& m) {
  w.key(name);
  w.begin_object();
  w.field("count", m.count);
  w.field("mean", m.mean);
  w.field("variance", m.variance());
  w.field("min", m.min);
  w.field("max", m.max);
  w.end_object();
}

void write_arrivals(support::JsonWriter& w, const char* name,
                    const ArrivalAnalysis& a) {
  w.key(name);
  w.begin_object();
  w.field("mean_h_raw", a.hurst_raw.mean_h());
  w.field("mean_h_stationary", a.hurst_stationary.mean_h());
  w.field("lrd", a.long_range_dependent());
  w.key("estimates");
  w.begin_object();
  for (const auto& e : a.hurst_stationary.estimates)
    w.field(lrd::to_string(e.method), e.h);
  w.end_object();
  w.end_object();
}

void write_tail(support::JsonWriter& w, const char* name,
                const TailAnalysis& t) {
  w.key(name);
  w.begin_object();
  w.field("llcd_alpha", t.llcd_cell());
  w.field("hill_alpha", t.hill_cell());
  w.field("r2", t.r2_cell());
  w.field("heavy_tailed", t.heavy_tailed());
  w.end_object();
}

void write_shard(support::JsonWriter& w, const ShardResult& s) {
  w.begin_object();
  w.field("name", s.name);
  w.field("requests", s.requests);
  w.field("sessions", s.sessions);
  w.field("bytes", static_cast<std::size_t>(s.bytes));
  w.field("distinct_clients", s.distinct_clients);
  w.field("t0", s.t0);
  w.field("t1", s.t1);
  write_arrivals(w, "request_arrivals", s.model.request_arrivals);
  write_arrivals(w, "session_arrivals", s.model.session_arrivals);
  w.key("week_tails");
  w.begin_object();
  write_tail(w, "length", s.model.week_tails.length);
  write_tail(w, "requests", s.model.week_tails.requests);
  write_tail(w, "bytes", s.model.week_tails.bytes);
  w.end_object();
  write_moments(w, "rps", s.rps);
  write_moments(w, "session_length", s.session_length);
  write_moments(w, "session_requests", s.session_requests);
  write_moments(w, "session_bytes", s.session_bytes);
  w.end_object();
}

}  // namespace

Result<FleetReport> analyze_fleet(std::span<const weblog::Dataset> datasets,
                                  support::Rng& rng,
                                  const FleetOptions& options) {
  if (datasets.empty())
    return Error::insufficient_data("analyze_fleet: no shards");

  // Carve every shard's RNG region out of the caller's generator BEFORE
  // submitting any work: fit_fullweb_model's internal splitter consumes
  // exactly the 2^224 states the jump skips, so shard i always sees the
  // same region no matter which thread runs it, or in what order.
  std::vector<support::Rng> shard_rngs;
  shard_rngs.reserve(datasets.size());
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    shard_rngs.push_back(rng);
    rng.jump_pow2(224);
  }

  support::Executor& ex = support::Executor::resolve(options.executor);
  FullWebOptions fit = options.fit;
  fit.executor = &ex;
  fit.timings = nullptr;  // shared timings across concurrent fits would race

  std::vector<support::Future<Result<FullWebModel>>> fits;
  fits.reserve(datasets.size());
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const weblog::Dataset* ds = &datasets[i];
    support::Rng shard_rng = shard_rngs[i];
    fits.push_back(ex.async([ds, shard_rng, fit]() mutable {
      return fit_fullweb_model(*ds, shard_rng, fit);
    }));
  }

  FleetReport fleet;
  fleet.shards.reserve(datasets.size());
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    Result<FullWebModel> model = fits[i].get();
    if (!model.ok())
      return Error{"shard " + datasets[i].name() + ": " +
                       model.error().message,
                   model.error().category};
    fleet.shards.push_back(
        summarize_shard(datasets[i], std::move(model).value()));
    merge_shard(fleet, fleet.shards.back(), i == 0);
  }
  const double n = static_cast<double>(fleet.shards.size());
  fleet.mean_request_h /= n;
  fleet.mean_session_h /= n;
  return fleet;
}

std::string fleet_report_json(const FleetReport& report, bool include_shards) {
  support::JsonWriter w;
  w.begin_object();
  w.key("fleet");
  w.begin_object();
  w.field("shards", report.shards.size());
  w.field("total_requests", report.total_requests);
  w.field("total_sessions", report.total_sessions);
  w.field("total_bytes", static_cast<std::size_t>(report.total_bytes));
  w.field("t0", report.t0);
  w.field("t1", report.t1);
  w.field("shards_lrd_requests", report.shards_lrd_requests);
  w.field("shards_lrd_sessions", report.shards_lrd_sessions);
  w.field("shards_heavy_tail_bytes", report.shards_heavy_tail_bytes);
  w.field("mean_request_h", report.mean_request_h);
  w.field("mean_session_h", report.mean_session_h);
  write_moments(w, "rps", report.rps);
  write_moments(w, "session_length", report.session_length);
  write_moments(w, "session_requests", report.session_requests);
  write_moments(w, "session_bytes", report.session_bytes);
  w.end_object();
  if (include_shards) {
    w.key("shards");
    w.begin_array();
    for (const ShardResult& s : report.shards) write_shard(w, s);
    w.end_array();
  }
  w.end_object();
  return std::move(w).str();
}

}  // namespace fullweb::core
