// Error and reliability analysis — the "Error analysis" / "Reliability
// analysis" branches of the paper's Figure 1 pipeline (detailed in the
// companion studies [11], [12]).
//
// Reports the HTTP status-class mix, request-level error rates, and the
// session-level reliability view the companion papers introduced: the
// fraction of sessions that experience at least one failed request, and
// the distribution of errors across sessions (errors cluster — a few
// sessions absorb most failures).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "support/result.h"
#include "weblog/dataset.h"

namespace fullweb::core {

/// Counts by HTTP status class (1xx..5xx; index 0 collects unknowns).
struct StatusBreakdown {
  std::array<std::size_t, 6> by_class{};  ///< [0]=unknown, [1]=1xx .. [5]=5xx

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] std::size_t errors() const noexcept {
    return by_class[4] + by_class[5];
  }
};

struct ErrorAnalysis {
  StatusBreakdown statuses;
  double request_error_rate = 0.0;       ///< (4xx + 5xx) / requests
  double server_error_rate = 0.0;        ///< 5xx / requests

  std::size_t sessions = 0;
  std::size_t sessions_with_error = 0;
  /// Session reliability: probability a session completes with no failed
  /// request ([12]'s session-level reliability metric).
  double session_reliability = 1.0;
  /// Mean errors per erroneous session (clustering diagnostic: >> 1 means
  /// failures concentrate in few sessions).
  double errors_per_bad_session = 0.0;

  /// Request error rate per analysis interval (paper's 4-hour windows) —
  /// shows whether failures track load.
  std::vector<double> interval_error_rates;
};

struct ErrorAnalysisOptions {
  double interval_seconds = 4.0 * 3600.0;
};

/// Errors when the dataset is empty (cannot happen for a constructed
/// Dataset) or statuses are entirely unknown.
[[nodiscard]] support::Result<ErrorAnalysis> analyze_errors(
    const weblog::Dataset& dataset, const ErrorAnalysisOptions& options = {});

}  // namespace fullweb::core
