// Intra-session tail analysis (§5.2): LLCD fit + Hill estimate + curvature
// tests for one sample vector, with the paper's NS/NA verdict encoding.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "support/result.h"
#include "support/rng.h"
#include "tail/curvature.h"
#include "tail/hill.h"
#include "tail/llcd.h"

namespace fullweb::support {
class Executor;
class StageTimings;
}

namespace fullweb::core {

struct TailAnalysisOptions {
  tail::LlcdOptions llcd;
  tail::HillOptions hill;
  bool run_curvature = true;
  std::size_t curvature_replicates = 199;
  std::size_t min_samples = 60;  ///< below this, everything is NA
  /// Task executor for the estimator/curvature fan-out (null = global pool).
  support::Executor* executor = nullptr;
  /// Optional per-stage observer (null = off; see support/timing.h).
  support::StageTimings* timings = nullptr;
};

/// One cell group of Tables 2/3/4.
struct TailAnalysis {
  /// NA: not enough data to estimate at all (the paper's NASA-Pub2 Low).
  bool available = false;

  std::optional<tail::LlcdFit> llcd;       ///< alpha_LLCD, sigma, R^2
  std::optional<tail::HillEstimate> hill;  ///< alpha_Hill; NS if !stabilized
  std::optional<tail::CurvatureResult> curvature_pareto;
  std::optional<tail::CurvatureResult> curvature_lognormal;

  /// Table-cell strings: "1.67", "NS", or "NA".
  [[nodiscard]] std::string hill_cell() const;
  [[nodiscard]] std::string llcd_cell() const;
  [[nodiscard]] std::string r2_cell() const;

  /// Heavy-tail verdict under the Pareto model (alpha < 2: infinite
  /// variance), based on the LLCD estimate when available.
  [[nodiscard]] bool heavy_tailed() const noexcept {
    return llcd.has_value() && llcd->alpha < 2.0;
  }
};

/// Runs the LLCD fit, the Hill estimate, and (when warranted) the two
/// Monte-Carlo curvature tests as concurrent tasks. Each curvature test
/// draws from its own substream of `rng`, so results do not depend on the
/// executor's thread count.
[[nodiscard]] TailAnalysis analyze_tail(std::span<const double> samples,
                                        support::Rng& rng,
                                        const TailAnalysisOptions& options = {});

}  // namespace fullweb::core
