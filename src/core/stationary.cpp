#include "core/stationary.h"

#include "timeseries/detrend.h"
#include "timeseries/seasonal.h"

namespace fullweb::core {

using support::Error;
using support::Result;

Result<StationaryReport> make_stationary(std::span<const double> xs,
                                         const StationaryOptions& options) {
  StationaryReport report;

  auto raw = stats::kpss_test(xs, stats::KpssNull::kLevel, options.kpss_lag);
  if (!raw) return raw.error();
  report.kpss_raw = raw.value();
  report.was_stationary = report.kpss_raw.stationary_at_5pct();

  if (report.was_stationary && options.only_if_nonstationary) {
    report.series.assign(xs.begin(), xs.end());
    report.kpss_stationary = report.kpss_raw;
    return report;
  }

  // 1. Trend: least-squares estimate, removed (mean level preserved).
  auto trend = timeseries::detrend_linear(xs, /*keep_mean=*/true);
  report.trend_removed = true;
  report.trend_slope = trend.fit.slope;
  report.relative_drift = trend.relative_drift;
  std::vector<double> working = std::move(trend.residual);

  // 2. Periodicity: detect via periodogram, remove when the series is long
  //    enough to resolve it.
  if (working.size() >= 2 * options.max_period) {
    auto period = timeseries::detect_period(working, options.min_period,
                                            options.max_period);
    if (period.ok()) {
      report.period = period.value();
      report.seasonal_strength =
          timeseries::seasonal_strength(working, report.period);
      if (options.seasonal_method == SeasonalMethod::kDifference) {
        working = timeseries::seasonal_difference(working, report.period);
      } else {
        working = timeseries::remove_seasonal_means(working, report.period);
      }
      report.seasonal_removed = true;
    }
  }

  auto post = stats::kpss_test(working, stats::KpssNull::kLevel, options.kpss_lag);
  if (post.ok()) report.kpss_stationary = post.value();
  report.series = std::move(working);
  return report;
}

}  // namespace fullweb::core
