#include "core/stationary.h"

#include <algorithm>
#include <optional>

#include "stats/periodogram.h"
#include "support/executor.h"
#include "support/timing.h"
#include "timeseries/detrend.h"
#include "timeseries/seasonal.h"

namespace fullweb::core {

using support::Error;
using support::Result;

namespace {

/// The detrend -> periodogram -> period/strength chain (§4.1 steps 1-2,
/// before any removal). One periodogram serves both the dominant-period
/// scan and the strength diagnostic; they used to pay a full-series FFT
/// each.
struct SeasonalScan {
  timeseries::TrendFit trend;
  std::optional<std::size_t> period;
  double strength = 0.0;
};

SeasonalScan scan_seasonality(std::span<const double> xs,
                              const StationaryOptions& options,
                              support::Executor& ex) {
  SeasonalScan scan;
  scan.trend = timeseries::detrend_linear(xs, /*keep_mean=*/true);
  const auto& working = scan.trend.residual;
  if (working.size() >= 2 * options.max_period) {
    // The full-series FFT dominates this stage; chunk it on the pool. The
    // width annotation mirrors the FFT's ~16k-element chunk granularity.
    support::StageTimer t(
        options.timings, "scan periodogram", support::StageTimings::Kind::kPhase,
        std::max<double>(1.0, static_cast<double>(working.size()) / 32768.0));
    const auto pg = stats::periodogram(working, &ex);
    if (auto period = timeseries::detect_period(pg, options.min_period,
                                                options.max_period);
        period.ok()) {
      scan.period = period.value();
      scan.strength =
          timeseries::seasonal_strength(pg, working.size(), *scan.period);
    }
  }
  return scan;
}

}  // namespace

Result<StationaryReport> make_stationary(std::span<const double> xs,
                                         const StationaryOptions& options) {
  StationaryReport report;
  support::Executor& ex = support::Executor::resolve(options.executor);

  // The raw KPSS and the seasonality scan are independent reads of the
  // input, and the scan carries the full-series FFT that dominates this
  // stage, so a parallel pool overlaps them. With only_if_nonstationary the
  // scan is speculative — a stationary verdict discards it — which is the
  // right trade on the nonstationary week-scale series this pipeline exists
  // for. Every value below is a pure function of the input, so the report
  // is identical at any thread count.
  std::optional<SeasonalScan> scan;
  Result<stats::KpssResult> raw =
      Error::invalid_argument("make_stationary: kpss did not run");
  if (ex.serial()) {
    support::StageTimer t(options.timings, "kpss (raw)");
    raw = stats::kpss_test(xs, stats::KpssNull::kLevel, options.kpss_lag);
  } else {
    support::TaskGroup group(ex);
    group.run([&] {
      support::StageTimer t(options.timings, "kpss (raw)");
      raw = stats::kpss_test(xs, stats::KpssNull::kLevel, options.kpss_lag);
    });
    group.run([&] {
      support::StageTimer t(options.timings, "seasonal scan");
      scan = scan_seasonality(xs, options, ex);
    });
    group.wait();
  }
  if (!raw) return raw.error();
  report.kpss_raw = raw.value();
  report.was_stationary = report.kpss_raw.stationary_at_5pct();

  if (report.was_stationary && options.only_if_nonstationary) {
    report.series.assign(xs.begin(), xs.end());
    report.kpss_stationary = report.kpss_raw;
    return report;  // any speculative scan is discarded
  }

  if (!scan.has_value()) {
    // Recorded as a task even on the serial path: a parallel pool overlaps
    // this scan with the raw KPSS above, and span trees are captured from
    // serial runs.
    support::StageTimer t(options.timings, "seasonal scan");
    scan = scan_seasonality(xs, options, ex);
  }

  // 1. Trend: least-squares estimate, removed (mean level preserved).
  report.trend_removed = true;
  report.trend_slope = scan->trend.fit.slope;
  report.relative_drift = scan->trend.relative_drift;
  std::vector<double> working = std::move(scan->trend.residual);

  // 2. Periodicity: remove when detected (the scan only ran the detection
  //    on series long enough to resolve two cycles of max_period).
  if (scan->period.has_value()) {
    report.period = *scan->period;
    report.seasonal_strength = scan->strength;
    if (options.seasonal_method == SeasonalMethod::kDifference) {
      working = timeseries::seasonal_difference(working, report.period);
    } else {
      working = timeseries::remove_seasonal_means(working, report.period);
    }
    report.seasonal_removed = true;
  }

  support::StageTimer post_timer(options.timings, "kpss (post)",
                                 support::StageTimings::Kind::kPhase);
  auto post = stats::kpss_test(working, stats::KpssNull::kLevel, options.kpss_lag);
  post_timer.stop();
  if (post.ok()) report.kpss_stationary = post.value();
  report.series = std::move(working);
  return report;
}

}  // namespace fullweb::core
