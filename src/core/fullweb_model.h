// The FULL-Web model: the paper's complete request- and session-level
// statistical characterization of one Web server's workload, in one call.
//
// Mirrors the paper's structure:
//   §4.1  request arrival process  -> ArrivalAnalysis (raw/stationary Hurst,
//                                     aggregation sweeps)
//   §4.2  Poisson tests (requests) -> PoissonBattery per Low/Med/High
//   §5.1  session arrival process  -> ArrivalAnalysis + PoissonBattery
//   §5.2  intra-session tails      -> TailAnalysis for session length,
//                                     requests/session, bytes/session,
//                                     per Low/Med/High interval and the week
//
// fit_fullweb_model expresses the Figure 1 branches — the two arrival
// analyses, the per-interval Poisson batteries, the per-interval tail
// analyses, and the error analysis — as a task graph on a
// support::Executor. Every stochastic component draws from a fixed RNG
// substream (support::RngSplitter), so the fitted model is bit-identical
// at any thread count, including a serial (--threads 1) run.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/arrival_analysis.h"
#include "core/error_analysis.h"
#include "core/tail_analysis.h"
#include "poisson/poisson_test.h"
#include "support/result.h"
#include "support/rng.h"
#include "support/timing.h"
#include "weblog/dataset.h"

namespace fullweb::support {
class Executor;
}

namespace fullweb::core {

/// The four §4.2 test configurations for one 4-hour interval.
struct PoissonBattery {
  weblog::Interval interval;
  bool available = false;  ///< enough events to run any configuration

  struct Cell {
    bool ran = false;
    poisson::PoissonTestResult result;
    std::string skip_reason;  ///< set when !ran
  };
  Cell hourly_uniform;
  Cell hourly_deterministic;
  Cell tenmin_uniform;
  Cell tenmin_deterministic;

  /// True when every configuration that ran is consistent with Poisson.
  [[nodiscard]] bool poisson_all() const noexcept;
  /// True when at least one configuration ran.
  [[nodiscard]] bool any_ran() const noexcept;
};

/// Tables 2/3/4 cells for one interval (or the whole week).
struct IntervalTails {
  weblog::Interval interval;
  std::size_t sessions = 0;
  TailAnalysis length;    ///< session length in time units (Table 2)
  TailAnalysis requests;  ///< requests per session (Table 3)
  TailAnalysis bytes;     ///< bytes transferred per session (Table 4)
};

struct FullWebOptions {
  ArrivalAnalysisOptions arrivals;
  TailAnalysisOptions tails;
  double interval_seconds = 4.0 * 3600.0;  ///< the paper's 4-hour windows
  bool run_poisson = true;
  poisson::PoissonTestOptions poisson;     ///< base options; interval length
                                           ///< and spread mode are varied
  std::size_t poisson_min_events = 200;    ///< below this an interval is NA
  bool run_error_analysis = true;          ///< Figure 1's error branch
  ErrorAnalysisOptions errors;

  /// Task executor for the whole pipeline (null = the global pool). Also
  /// used for nested fan-outs (Hurst suites, curvature, bootstrap) unless
  /// those sub-options name their own executor.
  support::Executor* executor = nullptr;
  /// Optional per-branch wall-clock observer (see support/timing.h).
  support::StageTimings* timings = nullptr;
};

struct FullWebModel {
  std::string server;

  // Table 1 row.
  std::size_t total_requests = 0;
  std::size_t total_sessions = 0;
  double mb_transferred = 0.0;

  ArrivalAnalysis request_arrivals;  ///< §4.1
  ArrivalAnalysis session_arrivals;  ///< §5.1.1

  std::map<weblog::Load, PoissonBattery> request_poisson;  ///< §4.2
  std::map<weblog::Load, PoissonBattery> session_poisson;  ///< §5.1.2

  std::map<weblog::Load, IntervalTails> interval_tails;    ///< Tables 2-4
  IntervalTails week_tails;                                 ///< Week rows

  /// Figure 1's error-analysis branch; absent when statuses are unknown
  /// or the branch is disabled.
  std::optional<ErrorAnalysis> errors;
};

[[nodiscard]] support::Result<FullWebModel> fit_fullweb_model(
    const weblog::Dataset& dataset, support::Rng& rng,
    const FullWebOptions& options = {});

/// Render the model as a multi-section text report (quickstart output).
[[nodiscard]] std::string render_report(const FullWebModel& model);

}  // namespace fullweb::core
