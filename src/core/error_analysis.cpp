#include "core/error_analysis.h"

#include <unordered_map>

namespace fullweb::core {

using support::Error;
using support::Result;

std::size_t StatusBreakdown::total() const noexcept {
  std::size_t n = 0;
  for (std::size_t c : by_class) n += c;
  return n;
}

Result<ErrorAnalysis> analyze_errors(const weblog::Dataset& dataset,
                                     const ErrorAnalysisOptions& options) {
  if (dataset.requests().empty())
    return Error::insufficient_data("analyze_errors: empty dataset");

  ErrorAnalysis out;
  for (const auto& r : dataset.requests()) {
    const std::size_t cls =
        r.status >= 100 && r.status <= 599 ? r.status / 100 : 0;
    ++out.statuses.by_class[cls];
  }
  const auto n = static_cast<double>(dataset.requests().size());
  if (out.statuses.by_class[0] == dataset.requests().size())
    return Error::insufficient_data("analyze_errors: no known statuses");

  out.request_error_rate = static_cast<double>(out.statuses.errors()) / n;
  out.server_error_rate =
      static_cast<double>(out.statuses.by_class[5]) / n;

  // Session view: walk requests once, attributing errors to the session
  // active for that client at that time (sessions are disjoint per client).
  // Build per-client session start lists.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_client;
  const auto& sessions = dataset.sessions();
  for (std::uint32_t i = 0; i < sessions.size(); ++i)
    by_client[sessions[i].client].push_back(i);

  std::vector<std::uint32_t> errors_in_session(sessions.size(), 0);
  std::unordered_map<std::uint32_t, std::size_t> cursor;
  for (const auto& r : dataset.requests()) {
    if (r.status < 400 || r.status > 599) continue;
    auto it = by_client.find(r.client);
    if (it == by_client.end()) continue;
    auto& cur = cursor[r.client];
    const auto& list = it->second;
    while (cur + 1 < list.size() && sessions[list[cur + 1]].start <= r.time)
      ++cur;
    ++errors_in_session[list[cur]];
  }

  out.sessions = sessions.size();
  std::size_t total_errors_in_bad = 0;
  for (std::uint32_t e : errors_in_session) {
    if (e > 0) {
      ++out.sessions_with_error;
      total_errors_in_bad += e;
    }
  }
  out.session_reliability =
      out.sessions == 0
          ? 1.0
          : 1.0 - static_cast<double>(out.sessions_with_error) /
                      static_cast<double>(out.sessions);
  out.errors_per_bad_session =
      out.sessions_with_error == 0
          ? 0.0
          : static_cast<double>(total_errors_in_bad) /
                static_cast<double>(out.sessions_with_error);

  // Per-interval error rates.
  const auto intervals = dataset.partition(options.interval_seconds);
  if (!intervals.empty()) {
    std::vector<std::size_t> err(intervals.size(), 0);
    std::vector<std::size_t> all(intervals.size(), 0);
    for (const auto& r : dataset.requests()) {
      auto idx = static_cast<std::size_t>((r.time - dataset.t0()) /
                                          options.interval_seconds);
      if (idx >= intervals.size()) idx = intervals.size() - 1;
      ++all[idx];
      if (r.status >= 400 && r.status <= 599) ++err[idx];
    }
    out.interval_error_rates.resize(intervals.size(), 0.0);
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      if (all[i] > 0)
        out.interval_error_rates[i] =
            static_cast<double>(err[i]) / static_cast<double>(all[i]);
    }
  }
  return out;
}

}  // namespace fullweb::core
