#include "core/arrival_analysis.h"

namespace fullweb::core {

using support::Result;

Result<ArrivalAnalysis> analyze_arrivals(std::span<const double> counts,
                                         const ArrivalAnalysisOptions& options) {
  ArrivalAnalysis out;
  out.hurst_raw = lrd::hurst_suite(counts, options.hurst);

  auto st = make_stationary(counts, options.stationary);
  if (!st) return st.error();
  out.stationarity = std::move(st).value();

  out.hurst_stationary = lrd::hurst_suite(out.stationarity.series, options.hurst);

  if (options.run_aggregation_sweep) {
    out.whittle_sweep = lrd::aggregated_hurst_sweep(
        out.stationarity.series, lrd::HurstMethod::kWhittle,
        options.aggregation_levels, options.hurst);
    out.abry_veitch_sweep = lrd::aggregated_hurst_sweep(
        out.stationarity.series, lrd::HurstMethod::kAbryVeitch,
        options.aggregation_levels, options.hurst);
  }
  return out;
}

}  // namespace fullweb::core
