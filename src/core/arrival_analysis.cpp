#include "core/arrival_analysis.h"

#include <optional>

#include "support/executor.h"
#include "support/timing.h"
#include "timeseries/pyramid.h"

namespace fullweb::core {

using support::Result;

Result<ArrivalAnalysis> analyze_arrivals(std::span<const double> counts,
                                         const ArrivalAnalysisOptions& options) {
  ArrivalAnalysis out;
  support::Executor& ex = support::Executor::resolve(options.hurst.executor);
  using Kind = support::StageTimings::Kind;

  lrd::HurstSuiteOptions hopts = options.hurst;
  if (hopts.timings == nullptr) hopts.timings = options.timings;

  // The raw-series suite and the stationarization read the same input and
  // are independent — run them concurrently. (hurst_suite fans out its five
  // estimators on the same executor internally.)
  Result<StationaryReport> st =
      support::Error::invalid_argument("stationarization did not run");
  {
    support::StageTimer phase(options.timings, "raw series", Kind::kPhase);
    support::TaskGroup group(ex);
    group.run([&] {
      support::StageTimer t(options.timings, "hurst suite (raw)");
      out.hurst_raw = lrd::hurst_suite(counts, hopts);
    });
    group.run([&] {
      // Overlap the KPSS/seasonality stages inside make_stationary on the
      // same pool (it stays serial when the pool is).
      support::StageTimer t(options.timings, "stationarize");
      StationaryOptions sopts = options.stationary;
      if (sopts.executor == nullptr) sopts.executor = &ex;
      if (sopts.timings == nullptr) sopts.timings = options.timings;
      st = make_stationary(counts, sopts);
    });
    group.wait();
  }
  if (!st) return st.error();
  out.stationarity = std::move(st).value();

  // The stationary-series suite and the two Figure 7/8 sweeps all read the
  // stationarized series. Both sweeps use the same aggregation levels, so
  // one pyramid materializes each aggregated series once and the Whittle and
  // Abry-Veitch sweeps share it.
  std::optional<timeseries::AggregationPyramid> pyramid;
  if (options.run_aggregation_sweep) {
    support::StageTimer t(options.timings, "aggregation pyramid", Kind::kPhase);
    pyramid.emplace(std::span<const double>(out.stationarity.series),
                    options.aggregation_levels);
  }
  support::StageTimer phase(options.timings, "stationary series", Kind::kPhase);
  const auto sweep_width =
      static_cast<double>(options.aggregation_levels.size());
  support::TaskGroup group(ex);
  group.run([&] {
    support::StageTimer t(options.timings, "hurst suite (stationary)");
    out.hurst_stationary = lrd::hurst_suite(out.stationarity.series, hopts);
  });
  if (pyramid.has_value()) {
    // The sweeps parallel_for over the aggregation levels.
    group.run([&] {
      support::StageTimer t(options.timings, "whittle sweep", Kind::kTask,
                            sweep_width);
      out.whittle_sweep = lrd::aggregated_hurst_sweep(
          *pyramid, lrd::HurstMethod::kWhittle, options.hurst);
    });
    group.run([&] {
      support::StageTimer t(options.timings, "abry-veitch sweep", Kind::kTask,
                            sweep_width);
      out.abry_veitch_sweep = lrd::aggregated_hurst_sweep(
          *pyramid, lrd::HurstMethod::kAbryVeitch, options.hurst);
    });
  }
  group.wait();
  return out;
}

}  // namespace fullweb::core
