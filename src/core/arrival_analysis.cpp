#include "core/arrival_analysis.h"

#include <optional>

#include "support/executor.h"
#include "timeseries/pyramid.h"

namespace fullweb::core {

using support::Result;

Result<ArrivalAnalysis> analyze_arrivals(std::span<const double> counts,
                                         const ArrivalAnalysisOptions& options) {
  ArrivalAnalysis out;
  support::Executor& ex = support::Executor::resolve(options.hurst.executor);

  // The raw-series suite and the stationarization read the same input and
  // are independent — run them concurrently. (hurst_suite fans out its five
  // estimators on the same executor internally.)
  Result<StationaryReport> st =
      support::Error::invalid_argument("stationarization did not run");
  {
    support::TaskGroup group(ex);
    group.run([&] { out.hurst_raw = lrd::hurst_suite(counts, options.hurst); });
    group.run([&] { st = make_stationary(counts, options.stationary); });
    group.wait();
  }
  if (!st) return st.error();
  out.stationarity = std::move(st).value();

  // The stationary-series suite and the two Figure 7/8 sweeps all read the
  // stationarized series. Both sweeps use the same aggregation levels, so
  // one pyramid materializes each aggregated series once and the Whittle and
  // Abry-Veitch sweeps share it.
  std::optional<timeseries::AggregationPyramid> pyramid;
  if (options.run_aggregation_sweep) {
    pyramid.emplace(std::span<const double>(out.stationarity.series),
                    options.aggregation_levels);
  }
  support::TaskGroup group(ex);
  group.run([&] {
    out.hurst_stationary =
        lrd::hurst_suite(out.stationarity.series, options.hurst);
  });
  if (pyramid.has_value()) {
    group.run([&] {
      out.whittle_sweep = lrd::aggregated_hurst_sweep(
          *pyramid, lrd::HurstMethod::kWhittle, options.hurst);
    });
    group.run([&] {
      out.abry_veitch_sweep = lrd::aggregated_hurst_sweep(
          *pyramid, lrd::HurstMethod::kAbryVeitch, options.hurst);
    });
  }
  group.wait();
  return out;
}

}  // namespace fullweb::core
