#include "core/arrival_analysis.h"

#include "support/executor.h"

namespace fullweb::core {

using support::Result;

Result<ArrivalAnalysis> analyze_arrivals(std::span<const double> counts,
                                         const ArrivalAnalysisOptions& options) {
  ArrivalAnalysis out;
  support::Executor& ex = support::Executor::resolve(options.hurst.executor);

  // The raw-series suite and the stationarization read the same input and
  // are independent — run them concurrently. (hurst_suite fans out its five
  // estimators on the same executor internally.)
  Result<StationaryReport> st =
      support::Error::invalid_argument("stationarization did not run");
  {
    support::TaskGroup group(ex);
    group.run([&] { out.hurst_raw = lrd::hurst_suite(counts, options.hurst); });
    group.run([&] { st = make_stationary(counts, options.stationary); });
    group.wait();
  }
  if (!st) return st.error();
  out.stationarity = std::move(st).value();

  // The stationary-series suite and the two Figure 7/8 sweeps all read the
  // stationarized series.
  support::TaskGroup group(ex);
  group.run([&] {
    out.hurst_stationary =
        lrd::hurst_suite(out.stationarity.series, options.hurst);
  });
  if (options.run_aggregation_sweep) {
    group.run([&] {
      out.whittle_sweep = lrd::aggregated_hurst_sweep(
          out.stationarity.series, lrd::HurstMethod::kWhittle,
          options.aggregation_levels, options.hurst);
    });
    group.run([&] {
      out.abry_veitch_sweep = lrd::aggregated_hurst_sweep(
          out.stationarity.series, lrd::HurstMethod::kAbryVeitch,
          options.aggregation_levels, options.hurst);
    });
  }
  group.wait();
  return out;
}

}  // namespace fullweb::core
