// The paper's stationarization pipeline (§4.1):
//   KPSS on the raw series -> least-squares trend removal -> periodogram
//   periodicity detection -> seasonal differencing -> KPSS re-test.
//
// Hurst estimators assume stationarity; skipping this pipeline overestimates
// long-range dependence (the paper's central methodological point).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "stats/kpss.h"
#include "support/result.h"

namespace fullweb::support {
class Executor;
class StageTimings;
}

namespace fullweb::core {

enum class SeasonalMethod {
  kDifference,  ///< Box-Jenkins seasonal differencing (the paper's choice)
  kMeans,       ///< subtract per-phase means (length-preserving alternative)
};

struct StationaryOptions {
  /// Periodicity search range in samples; defaults bracket the 24 h cycle
  /// for 1-second bins. The series must cover >= 2 cycles of max_period for
  /// seasonal detection to run at all.
  std::size_t min_period = 3600;
  std::size_t max_period = 2 * 86400;
  SeasonalMethod seasonal_method = SeasonalMethod::kDifference;
  /// Remove the trend / the seasonal component only when the raw KPSS
  /// rejects stationarity at 5% (true), or unconditionally (false).
  bool only_if_nonstationary = true;
  long kpss_lag = -1;  ///< forwarded to kpss_test; -1 = automatic
  /// Task executor (null = the global pool). A parallel pool overlaps the
  /// raw KPSS with the detrend/periodicity scan — speculatively when
  /// only_if_nonstationary is set, since the verdict usually rejects on the
  /// week-scale series this pipeline exists for. Results are identical at
  /// any thread count; a serial executor keeps the early-return ordering
  /// and does no speculative work.
  support::Executor* executor = nullptr;
  /// Optional per-stage observer (null = off; see support/timing.h).
  support::StageTimings* timings = nullptr;
};

struct StationaryReport {
  stats::KpssResult kpss_raw;
  bool was_stationary = false;     ///< raw series already passed KPSS

  bool trend_removed = false;
  double trend_slope = 0.0;        ///< per-sample slope of the removed trend
  double relative_drift = 0.0;     ///< |trend over window| / mean level

  bool seasonal_removed = false;
  std::size_t period = 0;          ///< detected period in samples (0 = none)
  double seasonal_strength = 0.0;  ///< periodogram power fraction at period

  std::optional<stats::KpssResult> kpss_stationary;  ///< after processing
  std::vector<double> series;      ///< the stationary(ized) series
};

/// Run the pipeline. The returned series equals the input when the raw
/// series already passes KPSS and only_if_nonstationary is set.
[[nodiscard]] support::Result<StationaryReport> make_stationary(
    std::span<const double> xs, const StationaryOptions& options = {});

}  // namespace fullweb::core
