// Fleet-scale shard-and-merge analysis: the full FULL-Web fit applied to
// N logical servers ("shards") in parallel, with the per-shard results
// aggregated into one fleet-level report.
//
// The paper characterizes each of its four servers independently; a
// hosting fleet asks the natural follow-up — run the same §4/§5 pipeline
// over every vhost and summarize what fraction of the fleet is LRD /
// heavy-tailed, with fleet-wide moment summaries of the per-second rates
// and intra-session metrics. Raw series never cross shard boundaries:
// each shard contributes only its FullWebModel plus mergeable
// stats::MomentSummary state (Chan et al. pairwise combination), so the
// merge is O(shards), not O(events) — the shape a distributed reduction
// would use.
//
// Determinism: shard RNG streams are carved out of the caller's generator
// serially (each shard gets the 2^224-state region fit_fullweb_model
// reserves) before any task is submitted, so the fleet report is
// bit-identical at any executor thread count; fleet_report_json over two
// such runs is byte-identical.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/fullweb_model.h"
#include "stats/prefix_moments.h"
#include "support/result.h"
#include "support/rng.h"

namespace fullweb::support {
class Executor;
}

namespace fullweb::core {

struct FleetOptions {
  /// Per-shard fit configuration. The executor inside is overridden with
  /// FleetOptions::executor (one pool serves both the shard fan-out and
  /// each fit's internal task graph — blocking waits help, so nesting is
  /// deadlock-free); the timings pointer is forced null per shard (a
  /// shared StageTimings across concurrent fits would race).
  FullWebOptions fit;
  /// Shard-level executor (null = the global pool).
  support::Executor* executor = nullptr;
};

/// One shard's contribution: the fitted model plus the mergeable summary
/// state the fleet aggregation consumes.
struct ShardResult {
  std::string name;
  std::size_t requests = 0;
  std::size_t sessions = 0;
  std::uint64_t bytes = 0;
  std::size_t distinct_clients = 0;
  double t0 = 0.0;
  double t1 = 0.0;

  FullWebModel model;

  stats::MomentSummary rps;               ///< per-second request counts
  stats::MomentSummary session_length;    ///< seconds
  stats::MomentSummary session_requests;  ///< requests per session
  stats::MomentSummary session_bytes;     ///< bytes per session
};

struct FleetReport {
  std::vector<ShardResult> shards;  ///< input order

  // Merged totals (exact).
  std::size_t total_requests = 0;
  std::size_t total_sessions = 0;
  std::uint64_t total_bytes = 0;
  double t0 = 0.0;  ///< min over shards
  double t1 = 0.0;  ///< max over shards

  // Merged moment state (pairwise combination over shard summaries).
  stats::MomentSummary rps;
  stats::MomentSummary session_length;
  stats::MomentSummary session_requests;
  stats::MomentSummary session_bytes;

  // Fleet-level verdict tallies.
  std::size_t shards_lrd_requests = 0;   ///< request arrivals LRD (§4.1)
  std::size_t shards_lrd_sessions = 0;   ///< session arrivals LRD (§5.1)
  std::size_t shards_heavy_tail_bytes = 0;  ///< week bytes/session heavy
  double mean_request_h = 0.0;  ///< mean over shards of stationary mean H
  double mean_session_h = 0.0;
};

/// Fit every dataset (one per shard) and merge. Errors when `datasets` is
/// empty or any per-shard fit fails; `rng` is advanced past every region
/// the shards consumed regardless of thread count.
[[nodiscard]] support::Result<FleetReport> analyze_fleet(
    std::span<const weblog::Dataset> datasets, support::Rng& rng,
    const FleetOptions& options = {});

/// Deterministic JSON rendering (support::JsonWriter dialect): a "fleet"
/// object with the merged state plus, when `include_shards`, a "shards"
/// array with one summary object per shard. Byte-identical across runs
/// that produced bit-identical reports.
[[nodiscard]] std::string fleet_report_json(const FleetReport& report,
                                            bool include_shards = true);

}  // namespace fullweb::core
