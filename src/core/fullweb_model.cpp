#include "core/fullweb_model.h"

#include <sstream>

#include "support/strings.h"
#include "support/table.h"

namespace fullweb::core {

using support::Error;
using support::Result;

bool PoissonBattery::poisson_all() const noexcept {
  bool any = false;
  for (const Cell* c : {&hourly_uniform, &hourly_deterministic, &tenmin_uniform,
                        &tenmin_deterministic}) {
    if (!c->ran) continue;
    any = true;
    if (!c->result.poisson()) return false;
  }
  return any;
}

bool PoissonBattery::any_ran() const noexcept {
  return hourly_uniform.ran || hourly_deterministic.ran || tenmin_uniform.ran ||
         tenmin_deterministic.ran;
}

namespace {

/// Events (request or session-start times) within one picked interval.
std::vector<double> times_in(const std::vector<double>& all, double t0, double t1) {
  std::vector<double> out;
  for (double t : all)
    if (t >= t0 && t < t1) out.push_back(t);
  return out;
}

PoissonBattery run_battery(const std::vector<double>& event_times,
                           const weblog::Interval& interval,
                           const FullWebOptions& options, support::Rng& rng) {
  PoissonBattery battery;
  battery.interval = interval;

  const auto in_window = times_in(event_times, interval.t0, interval.t1);
  if (in_window.size() < options.poisson_min_events) return battery;  // NA
  battery.available = true;

  struct Config {
    PoissonBattery::Cell PoissonBattery::*cell;
    double interval_seconds;
    poisson::SpreadMode spread;
  };
  const Config configs[] = {
      {&PoissonBattery::hourly_uniform, 3600.0, poisson::SpreadMode::kUniform},
      {&PoissonBattery::hourly_deterministic, 3600.0,
       poisson::SpreadMode::kDeterministic},
      {&PoissonBattery::tenmin_uniform, 600.0, poisson::SpreadMode::kUniform},
      {&PoissonBattery::tenmin_deterministic, 600.0,
       poisson::SpreadMode::kDeterministic},
  };
  for (const auto& cfg : configs) {
    poisson::PoissonTestOptions popts = options.poisson;
    popts.interval_seconds = cfg.interval_seconds;
    popts.spread = cfg.spread;
    auto r = poisson::test_poisson_arrivals(in_window, interval.t0, interval.t1,
                                            popts, rng);
    PoissonBattery::Cell& cell = battery.*(cfg.cell);
    if (r.ok()) {
      cell.ran = true;
      cell.result = std::move(r).value();
    } else {
      cell.skip_reason = r.error().message;
    }
  }
  return battery;
}

IntervalTails run_tails(const weblog::Dataset& dataset,
                        const weblog::Interval& interval,
                        const FullWebOptions& options, support::Rng& rng) {
  IntervalTails tails;
  tails.interval = interval;
  const auto lengths = dataset.session_lengths(interval.t0, interval.t1);
  tails.sessions = lengths.size();
  tails.length = analyze_tail(lengths, rng, options.tails);
  tails.requests = analyze_tail(
      dataset.session_request_counts(interval.t0, interval.t1), rng, options.tails);
  tails.bytes = analyze_tail(dataset.session_byte_counts(interval.t0, interval.t1),
                             rng, options.tails);
  return tails;
}

}  // namespace

Result<FullWebModel> fit_fullweb_model(const weblog::Dataset& dataset,
                                       support::Rng& rng,
                                       const FullWebOptions& options) {
  FullWebModel model;
  model.server = dataset.name();
  model.total_requests = dataset.requests().size();
  model.total_sessions = dataset.sessions().size();
  model.mb_transferred =
      static_cast<double>(dataset.total_bytes()) / (1024.0 * 1024.0);

  // §4.1 / §5.1.1 — arrival processes.
  auto req = analyze_arrivals(dataset.requests_per_second(), options.arrivals);
  if (!req) return req.error();
  model.request_arrivals = std::move(req).value();

  // Session series follow the paper's §5.1.1 flow: process only when KPSS
  // rejects (NASA-Pub2's sparse session series is stationary as-is, and
  // seasonal-differencing a near-white sparse series over-differences it).
  auto session_opts = options.arrivals;
  session_opts.stationary.only_if_nonstationary = true;
  auto sess = analyze_arrivals(dataset.sessions_per_second(), session_opts);
  if (!sess) return sess.error();
  model.session_arrivals = std::move(sess).value();

  // §4.2 / §5.1.2 — Poisson batteries on the Low/Med/High intervals.
  const auto request_times = dataset.request_times();
  const auto session_times = dataset.session_start_times();
  for (weblog::Load load :
       {weblog::Load::kLow, weblog::Load::kMed, weblog::Load::kHigh}) {
    auto interval = dataset.pick(load, options.interval_seconds);
    if (!interval) continue;
    if (options.run_poisson) {
      model.request_poisson[load] =
          run_battery(request_times, interval.value(), options, rng);
      model.session_poisson[load] =
          run_battery(session_times, interval.value(), options, rng);
    }
    // §5.2 — per-interval tails.
    model.interval_tails[load] = run_tails(dataset, interval.value(), options, rng);
  }

  // Week-level tails.
  weblog::Interval week;
  week.t0 = dataset.t0();
  week.t1 = dataset.t1();
  week.request_count = model.total_requests;
  week.session_count = model.total_sessions;
  model.week_tails = run_tails(dataset, week, options, rng);
  return model;
}

namespace {

std::string h_summary(const lrd::HurstSuiteResult& suite) {
  std::ostringstream os;
  bool first = true;
  for (const auto& e : suite.estimates) {
    if (!first) os << "  ";
    first = false;
    os << to_string(e.method) << "=" << support::format_sig(e.h, 3);
  }
  return os.str();
}

std::string poisson_verdict(const PoissonBattery& battery) {
  if (!battery.available) return "NA (too few events)";
  if (!battery.any_ran()) return "NA (intervals too sparse)";
  return battery.poisson_all() ? "consistent with Poisson" : "NOT Poisson";
}

void tails_row(support::Table& table, const std::string& label,
               const IntervalTails& tails) {
  table.add_row({label, std::to_string(tails.sessions),
                 tails.length.hill_cell(), tails.length.llcd_cell(),
                 tails.length.r2_cell(), tails.requests.hill_cell(),
                 tails.requests.llcd_cell(), tails.requests.r2_cell(),
                 tails.bytes.hill_cell(), tails.bytes.llcd_cell(),
                 tails.bytes.r2_cell()});
}

}  // namespace

std::string render_report(const FullWebModel& model) {
  std::ostringstream os;
  os << "FULL-Web model: " << model.server << "\n"
     << "  requests: " << support::with_commas(static_cast<long long>(model.total_requests))
     << "   sessions: " << support::with_commas(static_cast<long long>(model.total_sessions))
     << "   MB transferred: " << support::format_sig(model.mb_transferred, 5) << "\n\n";

  os << "Request arrival process (per second):\n"
     << "  raw KPSS stat " << support::format_sig(model.request_arrivals.stationarity.kpss_raw.statistic, 4)
     << (model.request_arrivals.stationarity.was_stationary ? " (stationary)"
                                                            : " (NON-stationary)")
     << "; period " << model.request_arrivals.stationarity.period << " s\n"
     << "  H (raw):        " << h_summary(model.request_arrivals.hurst_raw) << "\n"
     << "  H (stationary): " << h_summary(model.request_arrivals.hurst_stationary)
     << "\n  verdict: "
     << (model.request_arrivals.long_range_dependent() ? "long-range dependent"
                                                       : "no consistent LRD evidence")
     << "\n\n";

  os << "Session arrival process (initiated per second):\n"
     << "  raw KPSS stat " << support::format_sig(model.session_arrivals.stationarity.kpss_raw.statistic, 4)
     << (model.session_arrivals.stationarity.was_stationary ? " (stationary)"
                                                            : " (NON-stationary)")
     << "\n  H (raw):        " << h_summary(model.session_arrivals.hurst_raw) << "\n"
     << "  H (stationary): " << h_summary(model.session_arrivals.hurst_stationary)
     << "\n  verdict: "
     << (model.session_arrivals.long_range_dependent() ? "long-range dependent"
                                                       : "no consistent LRD evidence")
     << "\n\n";

  os << "Poisson-arrival tests (piecewise 1h / 10min rates):\n";
  for (const auto& [load, battery] : model.request_poisson) {
    os << "  requests, " << to_string(load) << ": " << poisson_verdict(battery) << "\n";
  }
  for (const auto& [load, battery] : model.session_poisson) {
    os << "  sessions, " << to_string(load) << ": " << poisson_verdict(battery) << "\n";
  }
  os << "\nIntra-session tail indices (Hill / LLCD / R^2):\n";
  support::Table table({"interval", "sessions", "len aHill", "len aLLCD", "len R2",
                        "req aHill", "req aLLCD", "req R2", "byte aHill",
                        "byte aLLCD", "byte R2"});
  for (const auto& [load, tails] : model.interval_tails)
    tails_row(table, to_string(load), tails);
  tails_row(table, "Week", model.week_tails);
  os << table.to_string();
  return os.str();
}

}  // namespace fullweb::core
