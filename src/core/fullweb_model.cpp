#include "core/fullweb_model.h"

#include <array>
#include <sstream>
#include <vector>

#include "support/executor.h"
#include "support/strings.h"
#include "support/table.h"

namespace fullweb::core {

using support::Error;
using support::Result;

bool PoissonBattery::poisson_all() const noexcept {
  bool any = false;
  for (const Cell* c : {&hourly_uniform, &hourly_deterministic, &tenmin_uniform,
                        &tenmin_deterministic}) {
    if (!c->ran) continue;
    any = true;
    if (!c->result.poisson()) return false;
  }
  return any;
}

bool PoissonBattery::any_ran() const noexcept {
  return hourly_uniform.ran || hourly_deterministic.ran || tenmin_uniform.ran ||
         tenmin_deterministic.ran;
}

namespace {

/// Events (request or session-start times) within one picked interval.
std::vector<double> times_in(const std::vector<double>& all, double t0, double t1) {
  std::vector<double> out;
  for (double t : all)
    if (t >= t0 && t < t1) out.push_back(t);
  return out;
}

/// One §4.2 battery. `rng` is the battery's private stream; each of the
/// four configurations draws from its own substream and runs as a task, so
/// the cells are scheduling-independent.
void run_battery(PoissonBattery& battery, const std::vector<double>& event_times,
                 const weblog::Interval& interval, const FullWebOptions& options,
                 support::Executor& ex, support::Rng rng) {
  battery.interval = interval;

  const auto in_window = times_in(event_times, interval.t0, interval.t1);
  if (in_window.size() < options.poisson_min_events) return;  // NA
  battery.available = true;

  struct Config {
    PoissonBattery::Cell PoissonBattery::*cell;
    double interval_seconds;
    poisson::SpreadMode spread;
    const char* name;
  };
  const std::array<Config, 4> configs = {{
      {&PoissonBattery::hourly_uniform, 3600.0, poisson::SpreadMode::kUniform,
       "hourly uniform"},
      {&PoissonBattery::hourly_deterministic, 3600.0,
       poisson::SpreadMode::kDeterministic, "hourly deterministic"},
      {&PoissonBattery::tenmin_uniform, 600.0, poisson::SpreadMode::kUniform,
       "tenmin uniform"},
      {&PoissonBattery::tenmin_deterministic, 600.0,
       poisson::SpreadMode::kDeterministic, "tenmin deterministic"},
  }};

  // Level 0: the four config streams are leaves, consumed whole by
  // test_poisson_arrivals.
  support::RngSplitter streams(rng, 0);
  std::array<support::Rng, 4> config_rngs = {streams.stream(0), streams.stream(1),
                                             streams.stream(2), streams.stream(3)};

  support::TaskGroup group(ex);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    group.run([&, i] {
      const Config& cfg = configs[i];
      support::StageTimer t(options.timings, cfg.name);
      poisson::PoissonTestOptions popts = options.poisson;
      popts.interval_seconds = cfg.interval_seconds;
      popts.spread = cfg.spread;
      auto r = poisson::test_poisson_arrivals(in_window, interval.t0,
                                              interval.t1, popts, config_rngs[i]);
      PoissonBattery::Cell& cell = battery.*(cfg.cell);
      if (r.ok()) {
        cell.ran = true;
        cell.result = std::move(r).value();
      } else {
        cell.skip_reason = r.error().message;
      }
    });
  }
  group.wait();
}

/// Tables 2/3/4 for one interval: the three sample vectors are analyzed as
/// concurrent tasks, each on its own substream.
void run_tails(IntervalTails& tails, const weblog::Dataset& dataset,
               const weblog::Interval& interval, const FullWebOptions& options,
               support::Executor& ex, support::Rng rng) {
  tails.interval = interval;

  // Level 1: each metric stream is re-split once more by analyze_tail (its
  // curvature tests), so metrics need whole level-0 regions of their own.
  support::RngSplitter streams(rng, 1);
  std::array<support::Rng, 3> metric_rngs = {streams.stream(0), streams.stream(1),
                                             streams.stream(2)};

  support::TaskGroup group(ex);
  group.run([&] {
    support::StageTimer t(options.timings, "session lengths");
    const auto lengths = dataset.session_lengths(interval.t0, interval.t1);
    tails.sessions = lengths.size();
    tails.length = analyze_tail(lengths, metric_rngs[0], options.tails);
  });
  group.run([&] {
    support::StageTimer t(options.timings, "session requests");
    const auto counts = dataset.session_request_counts(interval.t0, interval.t1);
    tails.requests = analyze_tail(counts, metric_rngs[1], options.tails);
  });
  group.run([&] {
    support::StageTimer t(options.timings, "session bytes");
    const auto bytes = dataset.session_byte_counts(interval.t0, interval.t1);
    tails.bytes = analyze_tail(bytes, metric_rngs[2], options.tails);
  });
  group.wait();
}

}  // namespace

Result<FullWebModel> fit_fullweb_model(const weblog::Dataset& dataset,
                                       support::Rng& rng,
                                       const FullWebOptions& options) {
  // Plumb the pipeline executor into the nested fan-outs unless the caller
  // picked different ones per layer.
  FullWebOptions opts = options;
  if (opts.arrivals.hurst.executor == nullptr)
    opts.arrivals.hurst.executor = opts.executor;
  if (opts.tails.executor == nullptr) opts.tails.executor = opts.executor;
  if (opts.arrivals.timings == nullptr) opts.arrivals.timings = opts.timings;
  if (opts.tails.timings == nullptr) opts.tails.timings = opts.timings;
  support::Executor& ex = support::Executor::resolve(opts.executor);

  // Fixed substream ids per branch — the assignment depends only on the
  // dataset, never on scheduling, which is what makes parallel and serial
  // fits bit-identical. Level 2: each branch stream is re-split by
  // run_battery / run_tails (and run_tails's streams again by
  // analyze_tail), so branches must be a whole level-1 region apart.
  support::RngSplitter streams(rng, 2);

  FullWebModel model;
  model.server = dataset.name();
  model.total_requests = dataset.requests().size();
  model.total_sessions = dataset.sessions().size();
  model.mb_transferred =
      static_cast<double>(dataset.total_bytes()) / (1024.0 * 1024.0);

  // Interval selection is cheap and deterministic; do it up front so the
  // task graph below is static.
  struct LoadWork {
    weblog::Load load;
    weblog::Interval interval;
    std::size_t stream_base;  ///< substreams: base+0 req battery,
                              ///< base+1 session battery, base+2 tails
  };
  std::vector<LoadWork> load_work;
  {
    std::size_t index = 0;
    for (weblog::Load load :
         {weblog::Load::kLow, weblog::Load::kMed, weblog::Load::kHigh}) {
      auto interval = dataset.pick(load, opts.interval_seconds);
      if (interval) load_work.push_back({load, interval.value(), 3 * index});
      ++index;  // stream ids stay pinned to the load, not to availability
    }
  }
  constexpr std::size_t kWeekStream = 9;

  // Pre-create every map slot on this thread; tasks only write through the
  // references (std::map insertion is not thread-safe, filling values is).
  for (const auto& work : load_work) {
    if (opts.run_poisson) {
      model.request_poisson[work.load];
      model.session_poisson[work.load];
    }
    model.interval_tails[work.load];
  }

  // §4.1 / §5.1.1 / §4.2 / §5.1.2 / §5.2 / errors — the Figure 1 fan-out,
  // submitted critical-path-first. The week-scale tail job covers every
  // session of the trace and dominates the fit, so it goes on the pool
  // before anything else queues; the arrival analyses (the next-longest
  // chains) follow, and the short per-interval work fills the remaining
  // slack. Submission order only changes who runs when — every branch
  // writes its own slot with its own pinned substream, so the fit stays
  // bit-identical.
  support::Result<ArrivalAnalysis> req_arrivals =
      support::Error::invalid_argument("request-arrival analysis did not run");
  support::Result<ArrivalAnalysis> sess_arrivals =
      support::Error::invalid_argument("session-arrival analysis did not run");

  support::TaskGroup group(ex);
  group.run([&, rng_stream = streams.stream(kWeekStream)] {
    support::StageTimer t(opts.timings, "tails Week");
    weblog::Interval week;
    week.t0 = dataset.t0();
    week.t1 = dataset.t1();
    week.request_count = model.total_requests;
    week.session_count = model.total_sessions;
    run_tails(model.week_tails, dataset, week, opts, ex, rng_stream);
  });

  // Inputs shared across branches materialize as pool tasks overlapping the
  // week job; each consumer blocks only on the buffer it reads (get() helps
  // run queued tasks instead of idling, so a waiting branch costs nothing).
  std::vector<double> requests_per_second, sessions_per_second;
  std::vector<double> request_times, session_times;
  support::Future<void> rps_ready =
      ex.async([&] { requests_per_second = dataset.requests_per_second(); });
  support::Future<void> sps_ready =
      ex.async([&] { sessions_per_second = dataset.sessions_per_second(); });
  support::Future<void> req_times_ready, sess_times_ready;
  if (opts.run_poisson) {
    req_times_ready =
        ex.async([&] { request_times = dataset.request_times(); });
    sess_times_ready =
        ex.async([&] { session_times = dataset.session_start_times(); });
  }

  group.run([&] {
    support::StageTimer t(opts.timings, "request arrivals (s4.1)");
    rps_ready.get();
    req_arrivals = analyze_arrivals(requests_per_second, opts.arrivals);
  });
  group.run([&] {
    // Session series follow the paper's §5.1.1 flow: process only when KPSS
    // rejects (NASA-Pub2's sparse session series is stationary as-is, and
    // seasonal-differencing a near-white sparse series over-differences it).
    support::StageTimer t(opts.timings, "session arrivals (s5.1)");
    auto session_opts = opts.arrivals;
    session_opts.stationary.only_if_nonstationary = true;
    sps_ready.get();
    sess_arrivals = analyze_arrivals(sessions_per_second, session_opts);
  });

  for (const auto& work : load_work) {
    group.run([&, rng_stream = streams.stream(work.stream_base + 2)] {
      support::StageTimer t(opts.timings, "tails " + to_string(work.load));
      run_tails(model.interval_tails[work.load], dataset, work.interval, opts,
                ex, rng_stream);
    });
    if (opts.run_poisson) {
      group.run([&, rng_stream = streams.stream(work.stream_base)] {
        support::StageTimer t(opts.timings,
                              "poisson requests " + to_string(work.load));
        req_times_ready.get();
        run_battery(model.request_poisson[work.load], request_times,
                    work.interval, opts, ex, rng_stream);
      });
      group.run([&, rng_stream = streams.stream(work.stream_base + 1)] {
        support::StageTimer t(opts.timings,
                              "poisson sessions " + to_string(work.load));
        sess_times_ready.get();
        run_battery(model.session_poisson[work.load], session_times,
                    work.interval, opts, ex, rng_stream);
      });
    }
  }

  if (opts.run_error_analysis) {
    group.run([&] {
      support::StageTimer t(opts.timings, "error analysis");
      if (auto e = analyze_errors(dataset, opts.errors); e.ok())
        model.errors = e.value();
    });
  }

  // Drain the producers from this thread before waiting on the group: a
  // task exception unwinding out of wait() must never leave a
  // materialization task queued with references to the locals above.
  rps_ready.get();
  sps_ready.get();
  if (req_times_ready.valid()) req_times_ready.get();
  if (sess_times_ready.valid()) sess_times_ready.get();
  group.wait();

  if (!req_arrivals) return req_arrivals.error();
  model.request_arrivals = std::move(req_arrivals).value();
  if (!sess_arrivals) return sess_arrivals.error();
  model.session_arrivals = std::move(sess_arrivals).value();
  return model;
}

namespace {

std::string h_summary(const lrd::HurstSuiteResult& suite) {
  std::ostringstream os;
  bool first = true;
  for (const auto& e : suite.estimates) {
    if (!first) os << "  ";
    first = false;
    os << to_string(e.method) << "=" << support::format_sig(e.h, 3);
  }
  return os.str();
}

std::string poisson_verdict(const PoissonBattery& battery) {
  if (!battery.available) return "NA (too few events)";
  if (!battery.any_ran()) return "NA (intervals too sparse)";
  return battery.poisson_all() ? "consistent with Poisson" : "NOT Poisson";
}

void tails_row(support::Table& table, const std::string& label,
               const IntervalTails& tails) {
  table.add_row({label, std::to_string(tails.sessions),
                 tails.length.hill_cell(), tails.length.llcd_cell(),
                 tails.length.r2_cell(), tails.requests.hill_cell(),
                 tails.requests.llcd_cell(), tails.requests.r2_cell(),
                 tails.bytes.hill_cell(), tails.bytes.llcd_cell(),
                 tails.bytes.r2_cell()});
}

}  // namespace

std::string render_report(const FullWebModel& model) {
  std::ostringstream os;
  os << "FULL-Web model: " << model.server << "\n"
     << "  requests: " << support::with_commas(static_cast<long long>(model.total_requests))
     << "   sessions: " << support::with_commas(static_cast<long long>(model.total_sessions))
     << "   MB transferred: " << support::format_sig(model.mb_transferred, 5) << "\n\n";

  os << "Request arrival process (per second):\n"
     << "  raw KPSS stat " << support::format_sig(model.request_arrivals.stationarity.kpss_raw.statistic, 4)
     << (model.request_arrivals.stationarity.was_stationary ? " (stationary)"
                                                            : " (NON-stationary)")
     << "; period " << model.request_arrivals.stationarity.period << " s\n"
     << "  H (raw):        " << h_summary(model.request_arrivals.hurst_raw) << "\n"
     << "  H (stationary): " << h_summary(model.request_arrivals.hurst_stationary)
     << "\n  verdict: "
     << (model.request_arrivals.long_range_dependent() ? "long-range dependent"
                                                       : "no consistent LRD evidence")
     << "\n\n";

  os << "Session arrival process (initiated per second):\n"
     << "  raw KPSS stat " << support::format_sig(model.session_arrivals.stationarity.kpss_raw.statistic, 4)
     << (model.session_arrivals.stationarity.was_stationary ? " (stationary)"
                                                            : " (NON-stationary)")
     << "\n  H (raw):        " << h_summary(model.session_arrivals.hurst_raw) << "\n"
     << "  H (stationary): " << h_summary(model.session_arrivals.hurst_stationary)
     << "\n  verdict: "
     << (model.session_arrivals.long_range_dependent() ? "long-range dependent"
                                                       : "no consistent LRD evidence")
     << "\n\n";

  os << "Poisson-arrival tests (piecewise 1h / 10min rates):\n";
  for (const auto& [load, battery] : model.request_poisson) {
    os << "  requests, " << to_string(load) << ": " << poisson_verdict(battery) << "\n";
  }
  for (const auto& [load, battery] : model.session_poisson) {
    os << "  sessions, " << to_string(load) << ": " << poisson_verdict(battery) << "\n";
  }
  os << "\nIntra-session tail indices (Hill / LLCD / R^2):\n";
  support::Table table({"interval", "sessions", "len aHill", "len aLLCD", "len R2",
                        "req aHill", "req aLLCD", "req R2", "byte aHill",
                        "byte aLLCD", "byte R2"});
  for (const auto& [load, tails] : model.interval_tails)
    tails_row(table, to_string(load), tails);
  tails_row(table, "Week", model.week_tails);
  os << table.to_string();

  if (model.errors.has_value()) {
    const ErrorAnalysis& e = *model.errors;
    os << "\nError analysis:\n"
       << "  request error rate: " << support::format_sig(100.0 * e.request_error_rate, 3)
       << "% (server errors " << support::format_sig(100.0 * e.server_error_rate, 3)
       << "%)\n"
       << "  session reliability: " << support::format_sig(e.session_reliability, 4)
       << "  (" << e.sessions_with_error << " of " << e.sessions
       << " sessions saw an error; "
       << support::format_sig(e.errors_per_bad_session, 3)
       << " errors per bad session)\n";
  }
  return os.str();
}

}  // namespace fullweb::core
