// Arrival-process analysis: the request-level (§4) and inter-session
// (§5.1) halves of the FULL-Web model, for one counting series.
//
// Pipeline: Hurst suite on the raw series (Figures 4/9) -> stationarization
// (§4.1) -> Hurst suite on the stationary series (Figures 6/10) ->
// aggregated-series sweeps with CIs (Figures 7/8).
#pragma once

#include <span>
#include <vector>

#include "core/stationary.h"
#include "lrd/estimator_suite.h"
#include "support/result.h"

namespace fullweb::support {
class StageTimings;
}

namespace fullweb::core {

struct ArrivalAnalysisOptions {
  /// The paper applies trend + periodicity removal to every server before
  /// the "stationary" estimates of Figures 6/10, so the pipeline runs
  /// unconditionally here (a KPSS-passing series can still carry a diurnal
  /// component strong enough to inflate Hurst estimates).
  StationaryOptions stationary{.only_if_nonstationary = false};
  lrd::HurstSuiteOptions hurst;
  bool run_aggregation_sweep = true;
  std::vector<std::size_t> aggregation_levels = {1,  2,  5,  10,  20,
                                                 50, 100, 200, 500, 1000};
  /// Optional per-stage observer, forwarded into the stationarization and
  /// Hurst-suite sub-stages (null = off; see support/timing.h).
  support::StageTimings* timings = nullptr;
};

struct ArrivalAnalysis {
  lrd::HurstSuiteResult hurst_raw;         ///< on the raw series
  StationaryReport stationarity;
  lrd::HurstSuiteResult hurst_stationary;  ///< after trend/seasonal removal
  std::vector<lrd::AggregatedHurstPoint> whittle_sweep;      ///< Fig 7
  std::vector<lrd::AggregatedHurstPoint> abry_veitch_sweep;  ///< Fig 8

  /// The paper's LRD verdict: every stationary-series estimate in (0.5, 1).
  [[nodiscard]] bool long_range_dependent() const noexcept {
    return hurst_stationary.all_indicate_lrd();
  }
};

[[nodiscard]] support::Result<ArrivalAnalysis> analyze_arrivals(
    std::span<const double> counts_per_second,
    const ArrivalAnalysisOptions& options = {});

}  // namespace fullweb::core
