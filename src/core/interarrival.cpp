#include "core/interarrival.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace fullweb::core {

using support::Error;
using support::Result;

std::string to_string(InterArrivalModel model) {
  switch (model) {
    case InterArrivalModel::kExponential: return "exponential";
    case InterArrivalModel::kPareto: return "Pareto";
    case InterArrivalModel::kLognormal: return "lognormal";
    case InterArrivalModel::kWeibull: return "Weibull";
  }
  return "?";
}

bool InterArrivalAnalysis::exponential_adequate() const noexcept {
  if (fits.empty() || fits.front().model != InterArrivalModel::kExponential)
    return false;
  return ad_exponential.has_value() && ad_exponential->exponential_at_5pct();
}

namespace {

/// Weibull MLE shape via bisection on the profile score
///   g(c) = sum x^c ln x / sum x^c - 1/c - mean(ln x),
/// which is strictly increasing in c.
double weibull_shape_mle(std::span<const double> xs) {
  double mean_log = 0.0;
  for (double x : xs) mean_log += std::log(x);
  mean_log /= static_cast<double>(xs.size());

  auto score = [&](double c) {
    double s = 0.0, sl = 0.0;
    for (double x : xs) {
      const double xc = std::pow(x, c);
      s += xc;
      sl += xc * std::log(x);
    }
    return sl / s - 1.0 / c - mean_log;
  };

  double lo = 0.05, hi = 20.0;
  if (score(lo) > 0.0) return lo;
  if (score(hi) < 0.0) return hi;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    (score(mid) < 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

Result<InterArrivalAnalysis> analyze_interarrivals(
    std::span<const double> times_or_gaps, bool already_gaps,
    const InterArrivalOptions& options) {
  // Build the positive gap sample.
  std::vector<double> gaps;
  if (already_gaps) {
    gaps.assign(times_or_gaps.begin(), times_or_gaps.end());
  } else {
    std::vector<double> sorted(times_or_gaps.begin(), times_or_gaps.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i)
      gaps.push_back(sorted[i] - sorted[i - 1]);
  }
  std::vector<double> xs;
  xs.reserve(gaps.size());
  for (double g : gaps) {
    if (g < 0.0)
      return Error::invalid_argument("analyze_interarrivals: negative gap");
    if (g == 0.0) {
      if (options.zero_gap_floor > 0.0) xs.push_back(options.zero_gap_floor);
    } else {
      xs.push_back(g);
    }
  }
  if (xs.size() < options.min_samples)
    return Error::insufficient_data("analyze_interarrivals: too few gaps");

  InterArrivalAnalysis out;
  out.n = xs.size();
  out.mean = stats::mean(xs);
  out.cv = out.mean > 0.0 ? stats::stddev(xs) / out.mean : 0.0;

  const auto n = static_cast<double>(xs.size());
  double sum = 0.0, sum_log = 0.0;
  double min_x = xs.front();
  for (double x : xs) {
    sum += x;
    sum_log += std::log(x);
    min_x = std::min(min_x, x);
  }

  // --- exponential --------------------------------------------------------
  {
    const double lambda = n / sum;
    ModelFit fit;
    fit.model = InterArrivalModel::kExponential;
    fit.param1 = lambda;
    fit.log_likelihood = n * std::log(lambda) - lambda * sum;
    fit.aic = 2.0 * 1.0 - 2.0 * fit.log_likelihood;
    out.fits.push_back(fit);
  }
  // --- Pareto (location = sample minimum) ---------------------------------
  {
    const double k = min_x;
    const double denom = sum_log - n * std::log(k);
    if (denom > 0.0) {
      const double alpha = n / denom;
      ModelFit fit;
      fit.model = InterArrivalModel::kPareto;
      fit.param1 = alpha;
      fit.param2 = k;
      fit.log_likelihood =
          n * std::log(alpha) + n * alpha * std::log(k) - (alpha + 1.0) * sum_log;
      fit.aic = 2.0 * 2.0 - 2.0 * fit.log_likelihood;
      out.fits.push_back(fit);
    }
  }
  // --- lognormal -----------------------------------------------------------
  {
    const double mu = sum_log / n;
    double ss = 0.0;
    for (double x : xs) {
      const double d = std::log(x) - mu;
      ss += d * d;
    }
    const double sigma = std::sqrt(ss / n);
    if (sigma > 0.0) {
      ModelFit fit;
      fit.model = InterArrivalModel::kLognormal;
      fit.param1 = mu;
      fit.param2 = sigma;
      fit.log_likelihood = -sum_log - n * std::log(sigma) -
                           0.5 * n * std::log(2.0 * std::numbers::pi) - 0.5 * n;
      fit.aic = 2.0 * 2.0 - 2.0 * fit.log_likelihood;
      out.fits.push_back(fit);
    }
  }
  // --- Weibull --------------------------------------------------------------
  {
    const double shape = weibull_shape_mle(xs);
    double sc = 0.0;
    for (double x : xs) sc += std::pow(x, shape);
    const double scale = std::pow(sc / n, 1.0 / shape);
    double ll = n * std::log(shape) - n * shape * std::log(scale) +
                (shape - 1.0) * sum_log;
    for (double x : xs) ll -= std::pow(x / scale, shape);
    ModelFit fit;
    fit.model = InterArrivalModel::kWeibull;
    fit.param1 = shape;
    fit.param2 = scale;
    fit.log_likelihood = ll;
    fit.aic = 2.0 * 2.0 - 2.0 * ll;
    out.fits.push_back(fit);
  }

  std::sort(out.fits.begin(), out.fits.end(),
            [](const ModelFit& a, const ModelFit& b) { return a.aic < b.aic; });
  const double best_aic = out.fits.front().aic;
  for (auto& f : out.fits) f.delta_aic = f.aic - best_aic;

  if (auto ad = stats::anderson_darling_exponential(xs); ad.ok())
    out.ad_exponential = ad.value();
  return out;
}

}  // namespace fullweb::core
