// Markdown rendering of a fitted FULL-Web model — the shareable artifact of
// a workload study (drop it in a wiki/PR; the plain-text render_report()
// remains the terminal-friendly view).
#pragma once

#include <string>

#include "core/error_analysis.h"
#include "core/fullweb_model.h"
#include "core/interarrival.h"

namespace fullweb::core {

struct MarkdownReportOptions {
  bool include_aggregation_sweeps = true;
  bool include_poisson_detail = true;  ///< per-configuration verdict matrix
};

/// Render the model (§4 + §5 structure) as GitHub-flavored Markdown.
[[nodiscard]] std::string render_markdown(const FullWebModel& model,
                                          const MarkdownReportOptions& options = {});

/// Optional add-on sections from the companion analyses.
[[nodiscard]] std::string render_markdown_errors(const ErrorAnalysis& errors);
[[nodiscard]] std::string render_markdown_interarrivals(
    const InterArrivalAnalysis& analysis);

}  // namespace fullweb::core
