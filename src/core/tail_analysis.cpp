#include "core/tail_analysis.h"

#include "support/executor.h"
#include "support/strings.h"
#include "support/timing.h"

namespace fullweb::core {

std::string TailAnalysis::hill_cell() const {
  if (!available || !hill.has_value()) return "NA";
  if (!hill->stabilized) return "NS";
  return support::format_sig(hill->alpha, 3);
}

std::string TailAnalysis::llcd_cell() const {
  if (!available || !llcd.has_value()) return "NA";
  return support::format_sig(llcd->alpha, 4);
}

std::string TailAnalysis::r2_cell() const {
  if (!available || !llcd.has_value()) return "NA";
  return support::format_sig(llcd->r_squared, 3);
}

TailAnalysis analyze_tail(std::span<const double> samples, support::Rng& rng,
                          const TailAnalysisOptions& options) {
  TailAnalysis out;
  if (samples.size() < options.min_samples) return out;  // NA

  // The two curvature tests get fixed substreams of the caller's generator
  // up front, so their draws are independent of scheduling (and of whether
  // the estimators below succeed). Level 0: curvature_test consumes its
  // stream whole (subdividing it internally into level -1 per-replicate
  // micro-streams). Callers handing us a stream from a splitter must have
  // split at level >= 1 to leave room for this split.
  support::RngSplitter streams(rng, 0);
  support::Rng pareto_rng = streams.stream(0);
  support::Rng lognormal_rng = streams.stream(1);

  support::Executor& ex = support::Executor::resolve(options.executor);
  {
    // The estimator pair and the curvature pair are sequential phases (the
    // curvature tests only run when an estimator succeeded), so the span
    // model adds them; within each phase the tasks are concurrent.
    support::StageTimer phase(options.timings, "estimators",
                              support::StageTimings::Kind::kPhase);
    support::TaskGroup group(ex);
    group.run([&] {
      support::StageTimer t(options.timings, "llcd fit");
      if (auto fit = tail::llcd_fit(samples, options.llcd); fit.ok())
        out.llcd = fit.value();
    });
    group.run([&] {
      support::StageTimer t(options.timings, "hill estimate");
      if (auto est = tail::hill_estimate(samples, options.hill); est.ok())
        out.hill = est.value();
    });
    group.wait();
  }
  out.available = out.llcd.has_value() || out.hill.has_value();
  if (!out.available) return out;

  if (options.run_curvature) {
    support::StageTimer phase(options.timings, "curvature",
                              support::StageTimings::Kind::kPhase);
    tail::CurvatureOptions copts;
    copts.replicates = options.curvature_replicates;
    copts.executor = &ex;  // replicates fan out on the same pool
    const auto width = static_cast<double>(copts.replicates);
    support::TaskGroup group(ex);
    group.run([&, copts]() mutable {
      support::StageTimer t(options.timings, "curvature pareto",
                            support::StageTimings::Kind::kTask, width);
      copts.model = tail::TailModel::kPareto;
      if (auto c = tail::curvature_test(samples, pareto_rng, copts); c.ok())
        out.curvature_pareto = c.value();
    });
    group.run([&, copts]() mutable {
      support::StageTimer t(options.timings, "curvature lognormal",
                            support::StageTimings::Kind::kTask, width);
      copts.model = tail::TailModel::kLognormal;
      if (auto c = tail::curvature_test(samples, lognormal_rng, copts); c.ok())
        out.curvature_lognormal = c.value();
    });
    group.wait();
  }
  return out;
}

}  // namespace fullweb::core
