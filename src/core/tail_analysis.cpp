#include "core/tail_analysis.h"

#include "support/executor.h"
#include "support/strings.h"

namespace fullweb::core {

std::string TailAnalysis::hill_cell() const {
  if (!available || !hill.has_value()) return "NA";
  if (!hill->stabilized) return "NS";
  return support::format_sig(hill->alpha, 3);
}

std::string TailAnalysis::llcd_cell() const {
  if (!available || !llcd.has_value()) return "NA";
  return support::format_sig(llcd->alpha, 4);
}

std::string TailAnalysis::r2_cell() const {
  if (!available || !llcd.has_value()) return "NA";
  return support::format_sig(llcd->r_squared, 3);
}

TailAnalysis analyze_tail(std::span<const double> samples, support::Rng& rng,
                          const TailAnalysisOptions& options) {
  TailAnalysis out;
  if (samples.size() < options.min_samples) return out;  // NA

  // The two curvature tests get fixed substreams of the caller's generator
  // up front, so their draws are independent of scheduling (and of whether
  // the estimators below succeed). Level 0: curvature_test consumes its
  // stream whole. Callers handing us a stream from a splitter must have
  // split at level >= 1 to leave room for this split.
  support::RngSplitter streams(rng, 0);
  support::Rng pareto_rng = streams.stream(0);
  support::Rng lognormal_rng = streams.stream(1);

  support::Executor& ex = support::Executor::resolve(options.executor);
  {
    support::TaskGroup group(ex);
    group.run([&] {
      if (auto fit = tail::llcd_fit(samples, options.llcd); fit.ok())
        out.llcd = fit.value();
    });
    group.run([&] {
      if (auto est = tail::hill_estimate(samples, options.hill); est.ok())
        out.hill = est.value();
    });
    group.wait();
  }
  out.available = out.llcd.has_value() || out.hill.has_value();
  if (!out.available) return out;

  if (options.run_curvature) {
    tail::CurvatureOptions copts;
    copts.replicates = options.curvature_replicates;
    support::TaskGroup group(ex);
    group.run([&, copts]() mutable {
      copts.model = tail::TailModel::kPareto;
      if (auto c = tail::curvature_test(samples, pareto_rng, copts); c.ok())
        out.curvature_pareto = c.value();
    });
    group.run([&, copts]() mutable {
      copts.model = tail::TailModel::kLognormal;
      if (auto c = tail::curvature_test(samples, lognormal_rng, copts); c.ok())
        out.curvature_lognormal = c.value();
    });
    group.wait();
  }
  return out;
}

}  // namespace fullweb::core
