// FWC1 reader/writer. See columnar.h for the format contract.
//
// Also defines weblog::Dataset::to_columnar / from_columnar: member
// functions declared in weblog/dataset.h but deliberately defined in this
// translation unit, so the store layer can populate a Dataset's private
// tables directly without weblog growing a link-time dependency on the
// store (fullweb_store links fullweb_weblog, never the reverse).
#include "store/columnar.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define FULLWEB_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FULLWEB_STORE_HAS_MMAP 0
#endif

namespace fullweb::store {

using support::Error;
using support::Result;
using weblog::Dataset;
using weblog::Request;
using weblog::Session;

namespace {

// ---- column catalogue -----------------------------------------------------

// Column ids are stable wire identifiers; adding a column means a new id
// (and a version bump if readers must understand it).
enum ColumnId : std::uint32_t {
  kReqTime = 0,
  kReqClient = 1,
  kReqStatus = 2,
  kReqBytes = 3,
  kSessStart = 4,
  kSessClient = 5,
  kSessEndDelta = 6,
  kSessRequests = 7,
  kSessBytes = 8,
};
constexpr std::uint32_t kColumnCount = 9;

// Wire encodings. A reader rejects a column whose encoding differs from
// the one this catalogue prescribes — there is exactly one valid encoding
// per column in version 1.
enum Encoding : std::uint32_t {
  kEncVarint = 0,      ///< one LEB128 varint per row
  kEncDeltaKey = 1,    ///< order-preserving f64 keys, wrapping row deltas
  kEncDict16 = 2,      ///< varint dict size, dict of u16 LE, varint indices
  kEncPairDelta = 3,   ///< per-row key delta against a sibling column
};

const char* column_name(std::uint32_t id) {
  switch (id) {
    case kReqTime: return "req_time";
    case kReqClient: return "req_client";
    case kReqStatus: return "req_status";
    case kReqBytes: return "req_bytes";
    case kSessStart: return "sess_start";
    case kSessClient: return "sess_client";
    case kSessEndDelta: return "sess_end_delta";
    case kSessRequests: return "sess_requests";
    case kSessBytes: return "sess_bytes";
  }
  return "?";
}

std::uint32_t expected_encoding(std::uint32_t id) {
  switch (id) {
    case kReqTime:
    case kSessStart: return kEncDeltaKey;
    case kReqStatus: return kEncDict16;
    case kSessEndDelta: return kEncPairDelta;
    default: return kEncVarint;
  }
}

// ---- primitive codecs -----------------------------------------------------

// Order-preserving double <-> u64: non-negative doubles already compare
// like their bit patterns, so setting the sign bit lifts them above the
// negatives, whose patterns compare reversed and get fully flipped.
std::uint64_t time_key(double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  return (bits & 0x8000000000000000ull) != 0 ? ~bits
                                             : (bits | 0x8000000000000000ull);
}

double key_time(std::uint64_t key) {
  const std::uint64_t bits = (key & 0x8000000000000000ull) != 0
                                 ? (key & 0x7fffffffffffffffull)
                                 : ~key;
  double x;
  std::memcpy(&x, &bits, sizeof x);
  return x;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Bounds-checked little-endian cursor over a mapped byte range. Every
/// getter fails soft (ok() goes false, zero returned) instead of reading
/// past `end`, so decode loops can check once per row batch.
struct Cursor {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  bool failed = false;

  [[nodiscard]] bool ok() const noexcept { return !failed; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end - p);
  }

  std::uint16_t get_u16() noexcept {
    if (failed || remaining() < 2) { failed = true; return 0; }
    std::uint16_t v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    return v;
  }
  std::uint32_t get_u32() noexcept {
    if (failed || remaining() < 4) { failed = true; return 0; }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    return v;
  }
  std::uint64_t get_u64() noexcept {
    if (failed || remaining() < 8) { failed = true; return 0; }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    return v;
  }
  double get_f64() noexcept {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::uint64_t get_varint() noexcept {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (failed || p == end) { failed = true; return 0; }
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // A 10th byte may only carry the single remaining bit.
        if (shift == 63 && byte > 1) { failed = true; return 0; }
        return v;
      }
    }
    failed = true;  // unterminated varint
    return 0;
  }
};

// ---- file I/O -------------------------------------------------------------

/// Read-only view of a whole file: mmap when available (the columnar file
/// is decoded in one forward pass, so the page cache streams it), with a
/// buffered-read fallback that owns the bytes.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      release();
      map_ = std::exchange(other.map_, nullptr);
      map_len_ = std::exchange(other.map_len_, 0);
      owned_ = std::move(other.owned_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ~MappedFile() { release(); }

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  static Result<MappedFile> open(const std::string& path) {
    MappedFile f;
#if FULLWEB_STORE_HAS_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        f.size_ = static_cast<std::size_t>(st.st_size);
        if (f.size_ == 0) {
          ::close(fd);
          f.data_ = reinterpret_cast<const std::uint8_t*>("");
          return f;
        }
        void* m = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (m != MAP_FAILED) {
          f.map_ = m;
          f.map_len_ = f.size_;
          f.data_ = static_cast<const std::uint8_t*>(m);
          return f;
        }
        f.size_ = 0;
        // fall through to the buffered path below
      } else {
        ::close(fd);
      }
    }
#endif
    std::FILE* fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr)
      return Error{"columnar: cannot open " + path, "io"};
    std::uint8_t buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, fp)) > 0)
      f.owned_.insert(f.owned_.end(), buf, buf + got);
    const bool bad = std::ferror(fp) != 0;
    std::fclose(fp);
    if (bad) return Error{"columnar: read failed for " + path, "io"};
    f.data_ = f.owned_.data();
    f.size_ = f.owned_.size();
    return f;
  }

 private:
  void release() noexcept {
#if FULLWEB_STORE_HAS_MMAP
    if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
    map_ = nullptr;
    map_len_ = 0;
  }

  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::vector<std::uint8_t> owned_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// ---- column encoders ------------------------------------------------------

std::vector<std::uint8_t> encode_req_time(std::span<const Request> reqs) {
  std::vector<std::uint8_t> out;
  std::uint64_t prev = 0;
  for (const auto& r : reqs) {
    const std::uint64_t key = time_key(r.time);
    put_varint(out, key - prev);  // wrapping: exact even on equal/odd order
    prev = key;
  }
  return out;
}

std::vector<std::uint8_t> encode_sess_start(std::span<const Session> sess) {
  std::vector<std::uint8_t> out;
  std::uint64_t prev = 0;
  for (const auto& s : sess) {
    const std::uint64_t key = time_key(s.start);
    put_varint(out, key - prev);
    prev = key;
  }
  return out;
}

std::vector<std::uint8_t> encode_sess_end_delta(std::span<const Session> sess) {
  std::vector<std::uint8_t> out;
  for (const auto& s : sess)
    put_varint(out, time_key(s.end) - time_key(s.start));
  return out;
}

std::vector<std::uint8_t> encode_status_dict(std::span<const Request> reqs) {
  std::vector<std::uint16_t> dict;
  dict.reserve(8);
  for (const auto& r : reqs)
    if (!std::binary_search(dict.begin(), dict.end(), r.status))
      dict.insert(std::upper_bound(dict.begin(), dict.end(), r.status),
                  r.status);
  std::vector<std::uint8_t> out;
  put_varint(out, dict.size());
  for (std::uint16_t code : dict) put_u16(out, code);
  for (const auto& r : reqs) {
    const auto it = std::lower_bound(dict.begin(), dict.end(), r.status);
    put_varint(out, static_cast<std::uint64_t>(it - dict.begin()));
  }
  return out;
}

template <typename Row, typename Get>
std::vector<std::uint8_t> encode_varints(std::span<const Row> rows, Get get) {
  std::vector<std::uint8_t> out;
  for (const auto& row : rows) put_varint(out, static_cast<std::uint64_t>(get(row)));
  return out;
}

// ---- reader ---------------------------------------------------------------

struct DecodedTables {
  std::string name;
  std::vector<Request> requests;
  std::vector<Session> sessions;
  double t0 = 0.0;
  double t1 = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t distinct_clients = 0;
};

Error parse_error(const std::string& path, const std::string& what) {
  return Error{"columnar: " + path + ": " + what, "parse"};
}

Result<DecodedTables> decode(const std::string& path, const std::uint8_t* data,
                             std::size_t size) {
  Cursor c{data, data + size};
  const std::uint32_t magic = c.get_u32();
  const std::uint32_t version = c.get_u32();
  if (!c.ok() || magic != kColumnarMagic)
    return parse_error(path, "bad magic (not an FWC file)");
  if (version != kColumnarVersion)
    return parse_error(path, "unsupported version " + std::to_string(version));

  DecodedTables t;
  const std::uint64_t n_requests = c.get_u64();
  const std::uint64_t n_sessions = c.get_u64();
  t.t0 = c.get_f64();
  t.t1 = c.get_f64();
  t.total_bytes = c.get_u64();
  t.distinct_clients = c.get_u64();
  const std::uint32_t name_len = c.get_u32();
  const std::uint32_t column_count = c.get_u32();
  if (!c.ok() || c.remaining() < name_len)
    return parse_error(path, "truncated header");
  t.name.assign(reinterpret_cast<const char*>(c.p), name_len);
  c.p += name_len;
  if (column_count != kColumnCount)
    return parse_error(path, "expected " + std::to_string(kColumnCount) +
                                 " columns, file declares " +
                                 std::to_string(column_count));
  if (n_requests == 0)
    return Error{"columnar: " + path + ": empty request table",
                 "insufficient_data"};
  // Every request costs at least one payload byte (each varint column is
  // >= 1 byte/row), so a header declaring more rows than file bytes is
  // corrupt — reject before resize() turns it into a huge allocation.
  if (n_requests > size)
    return parse_error(path, "request count exceeds file size");
  // A session covers at least one request, so a plausible file never has
  // more sessions than requests — this also bounds the allocations below
  // by the actual file-implied sizes before any reserve().
  if (n_sessions == 0 || n_sessions > n_requests)
    return parse_error(path, "implausible session count");

  t.requests.resize(n_requests);
  t.sessions.resize(n_sessions);

  bool seen[kColumnCount] = {};
  for (std::uint32_t block = 0; block < kColumnCount; ++block) {
    const std::uint32_t id = c.get_u32();
    const std::uint32_t encoding = c.get_u32();
    const std::uint64_t payload_len = c.get_u64();
    if (!c.ok() || c.remaining() < payload_len)
      return parse_error(path, "truncated column block");
    if (id >= kColumnCount)
      return parse_error(path, "unknown column id " + std::to_string(id));
    if (seen[id])
      return parse_error(path, std::string("duplicate column ") + column_name(id));
    seen[id] = true;
    if (encoding != expected_encoding(id))
      return parse_error(path, std::string("unexpected encoding for ") +
                                   column_name(id));

    Cursor col{c.p, c.p + payload_len};
    c.p += payload_len;
    switch (id) {
      case kReqTime: {
        std::uint64_t key = 0;
        for (auto& r : t.requests) {
          key += col.get_varint();
          r.time = key_time(key);
        }
        break;
      }
      case kReqClient:
        for (auto& r : t.requests) {
          const std::uint64_t v = col.get_varint();
          if (v > 0xffffffffull) col.failed = true;
          r.client = static_cast<std::uint32_t>(v);
        }
        break;
      case kReqStatus: {
        const std::uint64_t dict_size = col.get_varint();
        if (dict_size == 0 || dict_size > 0x10000ull) col.failed = true;
        std::vector<std::uint16_t> dict(col.ok() ? dict_size : 0);
        for (auto& code : dict) code = col.get_u16();
        for (auto& r : t.requests) {
          const std::uint64_t idx = col.get_varint();
          if (idx >= dict.size()) { col.failed = true; break; }
          r.status = dict[idx];
        }
        break;
      }
      case kReqBytes:
        for (auto& r : t.requests) r.bytes = col.get_varint();
        break;
      case kSessStart: {
        std::uint64_t key = 0;
        for (auto& s : t.sessions) {
          key += col.get_varint();
          s.start = key_time(key);
        }
        break;
      }
      case kSessClient:
        for (auto& s : t.sessions) {
          const std::uint64_t v = col.get_varint();
          if (v > 0xffffffffull) col.failed = true;
          s.client = static_cast<std::uint32_t>(v);
        }
        break;
      case kSessEndDelta:
        // Depends on sess_start being decoded already; the writer always
        // emits sess_start first and the reader enforces it.
        if (!seen[kSessStart])
          return parse_error(path, "sess_end_delta precedes sess_start");
        for (auto& s : t.sessions)
          s.end = key_time(time_key(s.start) + col.get_varint());
        break;
      case kSessRequests:
        for (auto& s : t.sessions) s.requests = col.get_varint();
        break;
      case kSessBytes:
        for (auto& s : t.sessions) s.bytes = col.get_varint();
        break;
    }
    if (!col.ok())
      return parse_error(path, std::string("corrupt payload in ") +
                                   column_name(id));
    if (col.p != col.end)
      return parse_error(path, std::string("trailing bytes in ") +
                                   column_name(id));
  }
  if (c.p != c.end) return parse_error(path, "trailing bytes after columns");
  for (std::uint32_t id = 0; id < kColumnCount; ++id)
    if (!seen[id])
      return parse_error(path, std::string("missing column ") + column_name(id));

  // Integrity: the header's derived fields must agree with the decoded
  // tables, so a tampered or bit-rotted file fails loud instead of feeding
  // silently-wrong totals into the fits.
  std::uint64_t req_bytes = 0;
  for (const auto& r : t.requests) req_bytes += r.bytes;
  if (req_bytes != t.total_bytes)
    return parse_error(path, "total_bytes disagrees with request table");
  if (!(t.t0 <= t.requests.front().time) || !(t.requests.back().time < t.t1))
    return parse_error(path, "observation window excludes request times");
  std::unordered_set<std::uint32_t> clients;
  clients.reserve(t.requests.size());
  for (const auto& r : t.requests) clients.insert(r.client);
  if (clients.size() != t.distinct_clients)
    return parse_error(path, "distinct_clients disagrees with request table");
  std::uint64_t sess_requests = 0, sess_bytes = 0;
  for (const auto& s : t.sessions) {
    if (s.end < s.start)
      return parse_error(path, "session with end < start");
    sess_requests += s.requests;
    sess_bytes += s.bytes;
  }
  if (sess_requests != n_requests || sess_bytes != t.total_bytes)
    return parse_error(path, "session totals disagree with request table");
  return t;
}

}  // namespace

bool has_columnar_extension(const std::string& path) {
  const std::string ext = kColumnarExtension;
  return path.size() > ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

Result<ColumnarInfo> write_columnar(const Dataset& dataset,
                                    const std::string& path) {
  const std::span<const Request> reqs = dataset.requests();
  const std::span<const Session> sess = dataset.sessions();

  // Assemble every column payload in memory first: the file is written in
  // one pass (header sizes are known only once payloads exist) and a
  // failed write never leaves a structurally-valid prefix behind.
  struct Block {
    std::uint32_t id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Block> blocks;
  blocks.reserve(kColumnCount);
  blocks.push_back({kReqTime, encode_req_time(reqs)});
  blocks.push_back({kReqClient, encode_varints(
      reqs, [](const Request& r) { return r.client; })});
  blocks.push_back({kReqStatus, encode_status_dict(reqs)});
  blocks.push_back({kReqBytes, encode_varints(
      reqs, [](const Request& r) { return r.bytes; })});
  blocks.push_back({kSessStart, encode_sess_start(sess)});
  blocks.push_back({kSessClient, encode_varints(
      sess, [](const Session& s) { return s.client; })});
  blocks.push_back({kSessEndDelta, encode_sess_end_delta(sess)});
  blocks.push_back({kSessRequests, encode_varints(
      sess, [](const Session& s) { return s.requests; })});
  blocks.push_back({kSessBytes, encode_varints(
      sess, [](const Session& s) { return s.bytes; })});

  std::vector<std::uint8_t> file;
  put_u32(file, kColumnarMagic);
  put_u32(file, kColumnarVersion);
  put_u64(file, reqs.size());
  put_u64(file, sess.size());
  put_f64(file, dataset.t0());
  put_f64(file, dataset.t1());
  put_u64(file, dataset.total_bytes());
  put_u64(file, dataset.distinct_clients());
  put_u32(file, static_cast<std::uint32_t>(dataset.name().size()));
  put_u32(file, kColumnCount);
  file.insert(file.end(), dataset.name().begin(), dataset.name().end());

  ColumnarInfo info;
  info.requests = reqs.size();
  info.sessions = sess.size();
  for (const auto& b : blocks) {
    put_u32(file, b.id);
    put_u32(file, expected_encoding(b.id));
    put_u64(file, b.payload.size());
    file.insert(file.end(), b.payload.begin(), b.payload.end());
    info.columns.push_back({column_name(b.id), b.payload.size()});
  }
  info.file_bytes = file.size();

  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr)
    return Error{"columnar: cannot create " + path, "io"};
  const bool wrote =
      std::fwrite(file.data(), 1, file.size(), fp) == file.size();
  const bool closed = std::fclose(fp) == 0;
  if (!wrote || !closed) {
    std::remove(path.c_str());
    return Error{"columnar: write failed for " + path, "io"};
  }
  return info;
}

Result<Dataset> read_columnar(const std::string& path) {
  return Dataset::from_columnar(path);
}

}  // namespace fullweb::store

namespace fullweb::weblog {

support::Result<std::uint64_t> Dataset::to_columnar(
    const std::string& path) const {
  return store::write_columnar(*this, path).map(
      [](const store::ColumnarInfo& info) { return info.file_bytes; });
}

support::Result<Dataset> Dataset::from_columnar(const std::string& path) {
  auto mapped = store::MappedFile::open(path);
  if (!mapped.ok()) return mapped.error();
  auto tables =
      store::decode(path, mapped.value().data(), mapped.value().size());
  if (!tables.ok()) return tables.error();
  auto& t = tables.value();

  Dataset ds;
  ds.name_ = std::move(t.name);
  ds.requests_ = std::move(t.requests);
  ds.sessions_ = std::move(t.sessions);
  ds.t0_ = t.t0;
  ds.t1_ = t.t1;
  ds.total_bytes_ = t.total_bytes;
  ds.distinct_clients_ = static_cast<std::size_t>(t.distinct_clients);
  return ds;
}

}  // namespace fullweb::weblog
