// On-disk binary columnar store for parsed request tables.
//
// Re-analyzing a server (or a fleet of thousands of vhosts) must not pay
// for CLF text parsing twice: a Dataset written once with to_columnar()
// reloads via from_columnar() without touching the text path, the
// sessionizer, or the client-string interner — the compact Request and
// Session tables round-trip bit-identically, so every downstream fit is
// byte-for-byte the same as from the original ingest.
//
// Layout ("FWC1", all little-endian):
//
//   header   magic u32 | version u32 | n_requests u64 | n_sessions u64
//            t0 f64 | t1 f64 | total_bytes u64 | distinct_clients u64
//            name_len u32 | column_count u32 | name bytes
//   columns  column_count blocks of: id u32 | encoding u32 |
//            payload_len u64 | payload
//
// Per-column lightweight compression:
//   * sorted times (request time, session start) — order-preserving u64
//     keys (positive doubles compare like their bit patterns; the sign-fold
//     extends that to negatives), consecutive deltas LEB128-varint coded.
//     Seconds-quantized logs cost ~3-4 bytes per timestamp instead of 8.
//   * session end — per-row key delta against the same row's start
//     (end >= start, so deltas are non-negative varints).
//   * client ids — plain varints. The dictionary itself (client string ->
//     dense id) lives upstream in Dataset's interner; the store persists
//     the dictionary-coded ids, which is all the analyses consume.
//   * status — a dictionary block (sorted distinct u16 codes) followed by
//     varint dictionary indices: real logs carry a handful of distinct
//     statuses, so each request costs ~1 byte.
//   * bytes / per-session counts — plain varints.
//
// Reading memory-maps the file (falling back to a buffered read when mmap
// is unavailable) and decodes with strict bounds checks: truncation, magic
// or version mismatch, unknown/duplicate/missing columns, payload overruns
// and totals that disagree with the header are all rejected as errors, not
// UB. The Dataset member fn declarations live in weblog/dataset.h; link
// fullweb_store to use them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"
#include "weblog/dataset.h"

namespace fullweb::store {

/// "FWC1" when read as bytes (little-endian u32).
inline constexpr std::uint32_t kColumnarMagic = 0x31435746u;
inline constexpr std::uint32_t kColumnarVersion = 1;
/// Conventional file suffix, used by tools to route ingest.
inline constexpr const char* kColumnarExtension = ".fwc";

/// What one write produced, for audits and the ingest benchmarks.
struct ColumnarInfo {
  std::uint64_t file_bytes = 0;    ///< total bytes written / mapped
  std::uint64_t requests = 0;
  std::uint64_t sessions = 0;
  struct Column {
    std::string name;              ///< e.g. "req_time"
    std::uint64_t payload_bytes = 0;
  };
  std::vector<Column> columns;     ///< file order
};

/// Serialize `dataset` to `path`. Overwrites. Errors with category "io" on
/// any filesystem failure (the partial file is removed best-effort).
[[nodiscard]] support::Result<ColumnarInfo> write_columnar(
    const weblog::Dataset& dataset, const std::string& path);

/// Load a Dataset previously written by write_columnar. Errors with
/// category "io" when the file cannot be opened and "parse" on any format
/// violation. Equivalent to weblog::Dataset::from_columnar.
[[nodiscard]] support::Result<weblog::Dataset> read_columnar(
    const std::string& path);

/// True when `path` names a columnar file by extension (routing heuristic
/// for tools that accept mixed CLF/columnar inputs).
[[nodiscard]] bool has_columnar_extension(const std::string& path);

}  // namespace fullweb::store
