#include "tail/hill.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "support/workspace.h"

namespace fullweb::tail {

using support::Error;
using support::Result;

Result<HillPlot> hill_plot_from_top(std::span<const double> top_desc,
                                    std::size_t n_total,
                                    const HillOptions& options) {
  auto k_max = static_cast<std::size_t>(
      std::floor(options.max_tail_fraction * static_cast<double>(n_total)));
  if (n_total > 0 && k_max > n_total - 1) k_max = n_total - 1;  // needs X_(k+1)
  // A producer that retained fewer order statistics than the fraction asks
  // for (a sketch whose top set is smaller than the deep tail) truncates the
  // plot to its exact prefix rather than substituting sampled values.
  if (top_desc.size() > 0 && k_max > top_desc.size() - 1)
    k_max = top_desc.size() - 1;
  if (k_max < std::max<std::size_t>(options.min_k, 2) + 1)
    return Error::insufficient_data("hill_plot: sample too small for tail fraction");

  HillPlot plot;
  plot.k.reserve(k_max);
  plot.alpha.reserve(k_max);
  double sum_log = 0.0;  // running sum of log X_(1..k)
  for (std::size_t k = 1; k <= k_max; ++k) {
    sum_log += std::log(top_desc[k - 1]);
    const double h = sum_log / static_cast<double>(k) - std::log(top_desc[k]);
    if (!(h > kHillTieEpsilon)) {
      // Ties at the top of the sample: H = 0 means alpha undefined here.
      plot.k.push_back(k);
      plot.alpha.push_back(std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    plot.k.push_back(k);
    plot.alpha.push_back(1.0 / h);
  }
  return plot;
}

Result<HillPlot> hill_plot(std::span<const double> xs, const HillOptions& options) {
  auto& sorted = support::Workspace::for_thread().real(support::ws::kTailSorted);
  sorted.clear();
  sorted.reserve(xs.size());
  for (double v : xs)
    if (v > 0.0) sorted.push_back(v);
  const std::size_t n = sorted.size();
  auto k_max = static_cast<std::size_t>(
      std::floor(options.max_tail_fraction * static_cast<double>(n)));
  if (n > 0 && k_max > n - 1) k_max = n - 1;  // alpha_k needs X_(k+1)
  if (k_max < std::max<std::size_t>(options.min_k, 2) + 1)
    return Error::insufficient_data("hill_plot: sample too small for tail fraction");

  // The plot only reads the k_max + 1 largest order statistics, so select
  // them first and sort just that prefix (descending: sorted[0] = X_(1),
  // the largest) instead of sorting all n samples. Equal values make the
  // selection boundary arbitrary among ties, but the prefix *values* — and
  // hence the plot — match the full sort exactly.
  const std::size_t top = k_max + 1;
  if (top < n)
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(top - 1),
                     sorted.end(), std::greater<>());
  std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(top),
            std::greater<>());

  return hill_plot_from_top(
      std::span<const double>(sorted.data(), top), n, options);
}

Result<HillEstimate> hill_estimate(std::span<const double> xs,
                                   const HillOptions& options) {
  auto plot_r = hill_plot(xs, options);
  if (!plot_r) return plot_r.error();
  return hill_estimate_from_plot(plot_r.value(), options);
}

Result<HillEstimate> hill_estimate_from_plot(const HillPlot& plot,
                                             const HillOptions& options) {
  // "Settling to a constant" means the *deep-tail* region — the upper part
  // of the k range, where most tail points are included — is flat. A sliding
  // minimum-CV window would be fooled by slowly drifting plots (lognormal
  // data drifts monotonically but is locally smooth), so we measure the
  // coefficient of variation over the whole region k in [k_max/3, k_max].
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < plot.k.size(); ++i) {
    if (plot.k[i] >= options.min_k && std::isfinite(plot.alpha[i]))
      idx.push_back(i);
  }
  if (idx.size() < 10)
    return Error::insufficient_data("hill_estimate: too few usable k values");

  const std::size_t k_max = plot.k[idx.back()];
  const std::size_t k_start = std::max(options.min_k, k_max / 3);
  double sum = 0.0, sum2 = 0.0;
  std::size_t count = 0;
  std::size_t k_low = k_max;
  for (std::size_t i : idx) {
    if (plot.k[i] < k_start) continue;
    sum += plot.alpha[i];
    sum2 += plot.alpha[i] * plot.alpha[i];
    k_low = std::min(k_low, plot.k[i]);
    ++count;
  }
  if (count < 5)
    return Error::insufficient_data("hill_estimate: stable region too small");

  const double m = sum / static_cast<double>(count);
  if (!(m > 0.0)) return Error::numeric("hill_estimate: degenerate Hill plot");
  const double var = std::max(0.0, sum2 / static_cast<double>(count) - m * m);
  const double cv = std::sqrt(var) / m;

  HillEstimate est;
  est.alpha = m;
  est.k_low = k_low;
  est.k_high = k_max;
  est.stabilized = cv <= options.stability_cv;
  return est;
}

}  // namespace fullweb::tail
