// Hill estimator of the tail index (paper eq. 5).
//
// For ordered statistics X_(1) >= X_(2) >= ... >= X_(n),
//   H_{k,n} = (1/k) Σ_{i=1..k} [log X_(i) - log X_(k+1)],
// and alpha_{k,n} = 1 / H_{k,n}. The Hill plot draws alpha_{k,n} against k;
// when it settles to a roughly constant level the data are consistent with
// a Pareto-type tail and that level estimates alpha. A plot that never
// stabilizes is the paper's "NS" verdict — strong evidence *against* the
// semiparametric Pareto model (Resnick 1997).
#pragma once

#include <span>
#include <vector>

#include "support/result.h"

namespace fullweb::tail {

struct HillOptions {
  /// Largest k as a fraction of n (the paper restricts Fig. 12 to the upper
  /// 14% tail; we default slightly wider).
  double max_tail_fraction = 0.15;
  std::size_t min_k = 10;  ///< ignore the noisy smallest-k region entirely
  /// Stabilization criterion: the coefficient of variation of alpha_{k,n}
  /// over the deep-tail region k in [k_max/3, k_max] must stay below this;
  /// drifting plots (non-Pareto data) exceed it and are reported NS.
  double stability_cv = 0.075;
};

struct HillPlot {
  std::vector<std::size_t> k;   ///< number of upper-order statistics used
  std::vector<double> alpha;    ///< alpha_{k,n}
};

/// Tie threshold on the Hill statistic H_{k,n}. A run of equal values at the
/// top of the sample makes H exactly zero in real arithmetic, but the
/// floating-point recursion can leave a residue of a few ulps — which would
/// invert to an astronomically large alpha instead of the NaN tie flag. Real
/// tail signal has H ~ 1/alpha >> this.
inline constexpr double kHillTieEpsilon = 1e-12;

struct HillEstimate {
  double alpha = 0.0;           ///< mean of alpha over the stable window
  std::size_t k_low = 0;        ///< stable window bounds (inclusive)
  std::size_t k_high = 0;
  bool stabilized = false;      ///< false => report as "NS"
};

/// Compute the Hill plot over k = 1 .. floor(max_tail_fraction * n).
/// Requires at least ~2/max_tail_fraction positive samples.
[[nodiscard]] support::Result<HillPlot> hill_plot(std::span<const double> xs,
                                                  const HillOptions& options = {});

/// The plot kernel on prepared inputs: `top_desc` holds the largest order
/// statistics of a positive sample of total size `n_total`, sorted
/// descending (top_desc[0] = X_(1)). The plot only ever reads
/// k_max + 1 = floor(max_tail_fraction * n_total) + 1 order statistics, so
/// any producer that retains at least that prefix exactly — the batch path
/// after its selection, or online::TailSketch's top set — gets a plot
/// bit-identical to the full-sample one. When top_desc is shorter than
/// k_max + 1 the plot is truncated to the available prefix (still exact as
/// far as it goes); errors when even the truncated range is below the
/// minimum usable k.
[[nodiscard]] support::Result<HillPlot> hill_plot_from_top(
    std::span<const double> top_desc, std::size_t n_total,
    const HillOptions& options = {});

/// Scan the plot for the most stable window and report its mean alpha.
/// `stabilized == false` reproduces the paper's NS entries; an error is the
/// paper's NA (not enough data to compute the plot at all).
[[nodiscard]] support::Result<HillEstimate> hill_estimate(
    std::span<const double> xs, const HillOptions& options = {});

/// The stable-window scan on a prebuilt plot (shared by hill_estimate and
/// the online sketch path).
[[nodiscard]] support::Result<HillEstimate> hill_estimate_from_plot(
    const HillPlot& plot, const HillOptions& options = {});

}  // namespace fullweb::tail
