// Downey's Monte-Carlo curvature test for distinguishing Pareto from
// lognormal tails.
//
// A Pareto CCDF is a straight line on log-log axes; a lognormal CCDF bends
// downward ever more steeply in the extreme tail. The test (Downey, IMW
// 2001, adapted per §5.2.1 of the paper):
//   1. Fit the candidate model (Pareto above a cutoff, or lognormal) to the
//      sample.
//   2. Measure the curvature statistic: the quadratic coefficient of a
//      parabola fitted to the log-log CCDF of the tail.
//   3. Draw `replicates` synthetic samples of the same size from the fitted
//      model, compute each one's curvature, and report the two-sided
//      Monte-Carlo p-value of the empirical curvature.
// The paper found the Pareto p-value is sensitive to the plugged-in alpha
// and to the random replicate sample — we expose both knobs (`alpha_override`
// and the caller-supplied Rng) so benches can reproduce that observation.
//
// The Monte-Carlo replicates fan out on the configured executor: replicate
// b always draws from micro-stream b of a level -1 RngSplitter over the
// caller's generator, so the p-value is bit-identical at any thread count.
// The split CONSUMES the generator (see support/rng.h): callers must hand
// curvature_test a dedicated leaf stream and never draw from it afterwards.
#pragma once

#include <optional>
#include <span>

#include "support/result.h"
#include "support/rng.h"

namespace fullweb::support {
class Executor;
}

namespace fullweb::tail {

enum class TailModel { kPareto, kLognormal };

struct CurvatureOptions {
  TailModel model = TailModel::kPareto;
  std::size_t replicates = 199;   ///< Monte-Carlo replicates
  /// Fraction of the sample treated as the tail for both the Pareto fit
  /// cutoff and the curvature measurement window.
  double tail_fraction = 0.5;
  /// Use this alpha instead of the MLE (Pareto only) — the sensitivity knob.
  std::optional<double> alpha_override;
  /// Task executor for the replicate fan-out (null = the global pool).
  support::Executor* executor = nullptr;
};

struct CurvatureResult {
  double curvature = 0.0;        ///< empirical quadratic coefficient
  double p_value = 1.0;          ///< two-sided Monte-Carlo p
  bool rejected_at_5pct = false;
  // Fitted null-model parameters actually used for simulation:
  double param1 = 0.0;           ///< Pareto alpha, or lognormal mu
  double param2 = 0.0;           ///< Pareto k (cutoff), or lognormal sigma
  std::size_t replicates = 0;
};

/// Run the test. Errors if the sample is too small (< ~50 tail points) or
/// the null model cannot be fitted.
[[nodiscard]] support::Result<CurvatureResult> curvature_test(
    std::span<const double> xs, support::Rng& rng,
    const CurvatureOptions& options = {});

/// The curvature statistic alone (exposed for tests).
[[nodiscard]] support::Result<double> llcd_curvature(std::span<const double> xs,
                                                     double tail_fraction);

}  // namespace fullweb::tail
