// LLCD (log-log complementary distribution) tail-index estimation.
//
// §3.2 of the paper: plot the empirical CCDF on log-log axes; for a
// heavy-tailed (Pareto-type) distribution the plot is linear above some
// cutoff theta with slope -alpha. The slope is estimated by least-squares
// regression over the points above theta; the paper reports alpha_LLCD, its
// standard error, and the regression R² (Tables 2-4, Figures 11 and 13).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "support/result.h"

namespace fullweb::tail {

struct LlcdOptions {
  /// Fraction of the sample (by count) treated as the tail when theta is
  /// chosen automatically; <= 0 turns on the R²-scan auto-selector.
  double tail_fraction = 0.0;
  /// Explicit cutoff: fit only points with x >= theta. NaN = not set.
  double theta = std::numeric_limits<double>::quiet_NaN();
  /// Minimum distinct points in the regression.
  std::size_t min_points = 10;
};

struct LlcdFit {
  double alpha = 0.0;          ///< tail index (= -slope)
  double stderr_alpha = 0.0;   ///< regression SE of the slope
  double r_squared = 0.0;
  double theta = 0.0;          ///< cutoff actually used
  std::size_t points = 0;      ///< distinct CCDF points in the regression
  std::size_t tail_samples = 0;///< raw samples above theta

  /// Heavy tail in the infinite-variance sense (1 < alpha < 2 => finite
  /// mean, infinite variance; alpha <= 1 => infinite mean).
  [[nodiscard]] bool infinite_variance() const noexcept { return alpha < 2.0; }
  [[nodiscard]] bool infinite_mean() const noexcept { return alpha < 1.0; }
};

/// Fit the LLCD tail slope. Errors when too few distinct tail points exist
/// (the paper's "NA" cells for NASA-Pub2 Low).
[[nodiscard]] support::Result<LlcdFit> llcd_fit(std::span<const double> xs,
                                                const LlcdOptions& options = {});

/// The LLCD plot itself: (log10 x, log10 P[X > x]) over distinct sample
/// values, excluding the final zero-CCDF point — the data of Figs 11 & 13.
struct LlcdPlot {
  std::vector<double> log10_x;
  std::vector<double> log10_ccdf;
};
[[nodiscard]] support::Result<LlcdPlot> llcd_plot(std::span<const double> xs);

}  // namespace fullweb::tail
