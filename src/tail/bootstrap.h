// Bootstrap confidence intervals for tail-index estimates.
//
// The paper reports the LLCD regression's least-squares standard error
// (sigma_alpha), which understates the real uncertainty: LLCD points are
// ECDF values and strongly dependent, and the Hill estimate has no simple
// finite-sample SE at all. Nonparametric bootstrap percentile intervals
// (resample the SAMPLE, re-run the whole estimator) give an honest
// uncertainty measure for both, and quantify how much wider than
// sigma_alpha the truth is.
// Each replicate draws from its own RNG substream (support::RngSplitter),
// so resampling parallelizes on the configured executor and the interval is
// bit-identical at any thread count.
#pragma once

#include <span>

#include "support/result.h"
#include "support/rng.h"
#include "tail/hill.h"
#include "tail/llcd.h"

namespace fullweb::support {
class Executor;
}

namespace fullweb::tail {

struct BootstrapCi {
  double estimate = 0.0;   ///< point estimate on the original sample
  double lo = 0.0;         ///< percentile interval lower bound
  double hi = 0.0;         ///< percentile interval upper bound
  std::size_t replicates_used = 0;  ///< resamples whose estimator succeeded
};

struct BootstrapOptions {
  std::size_t replicates = 199;
  double level = 0.95;     ///< two-sided confidence level
  /// Minimum fraction of replicates that must produce an estimate; below
  /// this the interval is unreliable and an error is returned.
  double min_success = 0.5;
  /// Task executor for the resampling fan-out (null = the global pool).
  support::Executor* executor = nullptr;
};

/// Percentile bootstrap CI for alpha_LLCD.
[[nodiscard]] support::Result<BootstrapCi> bootstrap_llcd_ci(
    std::span<const double> samples, support::Rng& rng,
    const BootstrapOptions& options = {}, const LlcdOptions& llcd = {});

/// Percentile bootstrap CI for alpha_Hill (only stabilized replicates count).
[[nodiscard]] support::Result<BootstrapCi> bootstrap_hill_ci(
    std::span<const double> samples, support::Rng& rng,
    const BootstrapOptions& options = {}, const HillOptions& hill = {});

}  // namespace fullweb::tail
