#include "tail/llcd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "stats/regression.h"
#include "support/workspace.h"

namespace fullweb::tail {

using support::Error;
using support::Result;

Result<LlcdPlot> llcd_plot(std::span<const double> xs) {
  if (xs.size() < 2) return Error::insufficient_data("llcd_plot: need n >= 2");
  const auto e = stats::ecdf(xs);
  LlcdPlot plot;
  plot.log10_x.reserve(e.x.size());
  plot.log10_ccdf.reserve(e.x.size());
  for (std::size_t i = 0; i + 1 < e.x.size(); ++i) {  // drop last (CCDF = 0)
    if (!(e.x[i] > 0.0)) continue;                    // log axis needs x > 0
    plot.log10_x.push_back(std::log10(e.x[i]));
    plot.log10_ccdf.push_back(std::log10(1.0 - e.f[i]));
  }
  if (plot.log10_x.size() < 2)
    return Error::insufficient_data("llcd_plot: fewer than 2 positive points");
  return plot;
}

namespace {

struct FitAttempt {
  LlcdFit fit;
  bool ok = false;
};

/// Regress over plot points with x >= theta; count raw tail samples too.
/// `lx`/`ly` are caller-owned scratch, reused across theta attempts so the
/// auto-theta scan does not reallocate per fraction.
FitAttempt fit_above(const LlcdPlot& plot, std::span<const double> xs,
                     double theta, std::size_t min_points,
                     std::vector<double>& lx, std::vector<double>& ly) {
  FitAttempt out;
  const double log_theta = std::log10(theta);
  lx.clear();
  ly.clear();
  for (std::size_t i = 0; i < plot.log10_x.size(); ++i) {
    if (plot.log10_x[i] >= log_theta) {
      lx.push_back(plot.log10_x[i]);
      ly.push_back(plot.log10_ccdf[i]);
    }
  }
  if (lx.size() < min_points) return out;
  const auto f = stats::ols(lx, ly);
  if (!(f.slope < 0.0)) return out;  // a rising CCDF tail is not Pareto-like
  out.fit.alpha = -f.slope;
  out.fit.stderr_alpha = f.stderr_slope;
  out.fit.r_squared = f.r_squared;
  out.fit.theta = theta;
  out.fit.points = lx.size();
  out.fit.tail_samples = static_cast<std::size_t>(
      std::count_if(xs.begin(), xs.end(), [&](double v) { return v >= theta; }));
  out.ok = true;
  return out;
}

}  // namespace

Result<LlcdFit> llcd_fit(std::span<const double> xs, const LlcdOptions& options) {
  auto plot_r = llcd_plot(xs);
  if (!plot_r) return plot_r.error();
  const LlcdPlot& plot = plot_r.value();

  std::vector<double> lx, ly;  // regression scratch shared by every attempt

  // Explicit theta wins; then an explicit tail fraction; else scan.
  if (!std::isnan(options.theta)) {
    const auto a = fit_above(plot, xs, options.theta, options.min_points, lx, ly);
    if (!a.ok)
      return Error::insufficient_data("llcd_fit: too few points above theta");
    return a.fit;
  }

  // Sorted positive samples (for quantile-based thetas) live in per-thread
  // scratch: bootstrap replicates re-fit at a fixed sample size, so the
  // buffer is sorted in place with no per-replicate allocation.
  auto& positive = support::Workspace::for_thread().real(support::ws::kTailSorted);
  positive.clear();
  positive.reserve(xs.size());
  for (double v : xs)
    if (v > 0.0) positive.push_back(v);
  if (positive.size() < options.min_points)
    return Error::insufficient_data("llcd_fit: too few positive samples");
  std::sort(positive.begin(), positive.end());

  if (options.tail_fraction > 0.0) {
    const double q = std::clamp(1.0 - options.tail_fraction, 0.0, 1.0);
    const double theta = stats::quantile_sorted(positive, q);
    const auto a = fit_above(plot, xs, theta, options.min_points, lx, ly);
    if (!a.ok)
      return Error::insufficient_data(
          "llcd_fit: too few distinct points in requested tail");
    return a.fit;
  }

  // Auto-theta: scan tail fractions from half the sample down to 1%, keep
  // the best R² (mimicking the paper's "select theta above which the plot
  // appears linear").
  static constexpr double kFractions[] = {0.50, 0.40, 0.30, 0.25, 0.20,
                                          0.15, 0.10, 0.07, 0.05, 0.03,
                                          0.02, 0.01};
  FitAttempt best;
  for (double frac : kFractions) {
    const double theta = stats::quantile_sorted(positive, 1.0 - frac);
    const auto a = fit_above(plot, xs, theta, options.min_points, lx, ly);
    if (a.ok && (!best.ok || a.fit.r_squared > best.fit.r_squared)) best = a;
  }
  if (!best.ok)
    return Error::insufficient_data(
        "llcd_fit: no tail fraction yields enough distinct points");
  return best.fit;
}

}  // namespace fullweb::tail
