#include "tail/curvature.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/regression.h"
#include "support/executor.h"
#include "support/workspace.h"
#include "tail/llcd.h"

namespace fullweb::tail {

using support::Error;
using support::Result;

Result<double> llcd_curvature(std::span<const double> xs, double tail_fraction) {
  auto plot_r = llcd_plot(xs);
  if (!plot_r) return plot_r.error();
  const LlcdPlot& plot = plot_r.value();

  // Keep the tail: points above the (1 - tail_fraction) quantile of log10 x.
  std::vector<double> sorted_lx = plot.log10_x;
  std::sort(sorted_lx.begin(), sorted_lx.end());
  const double cut =
      stats::quantile_sorted(sorted_lx, std::clamp(1.0 - tail_fraction, 0.0, 1.0));

  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < plot.log10_x.size(); ++i) {
    if (plot.log10_x[i] >= cut) {
      lx.push_back(plot.log10_x[i]);
      ly.push_back(plot.log10_ccdf[i]);
    }
  }
  if (lx.size() < 10)
    return Error::insufficient_data("llcd_curvature: fewer than 10 tail points");

  const auto fit = stats::quadratic_fit(lx, ly);
  if (fit.n < 10) return Error::numeric("llcd_curvature: quadratic fit failed");
  return fit.c2;
}

Result<CurvatureResult> curvature_test(std::span<const double> xs,
                                       support::Rng& rng,
                                       const CurvatureOptions& options) {
  std::vector<double> positive;
  positive.reserve(xs.size());
  for (double v : xs)
    if (v > 0.0) positive.push_back(v);
  const std::size_t n = positive.size();
  if (n < 50) return Error::insufficient_data("curvature_test: need n >= 50");

  auto curv_r = llcd_curvature(positive, options.tail_fraction);
  if (!curv_r) return curv_r.error();

  CurvatureResult result;
  result.curvature = curv_r.value();
  result.replicates = options.replicates;

  // Fit the null model and prepare a sampler producing samples of size n.
  std::vector<double> sorted = positive;
  std::sort(sorted.begin(), sorted.end());

  std::function<double(support::Rng&)> draw;
  if (options.model == TailModel::kPareto) {
    // Pareto fitted above the tail cutoff; the simulated sample mixes the
    // empirical body below the cutoff with Pareto draws above it, mirroring
    // Downey's semiparametric setup (the test statistic only looks at the
    // tail anyway).
    const double cutoff = stats::quantile_sorted(
        sorted, std::clamp(1.0 - options.tail_fraction, 0.0, 1.0));
    double alpha;
    if (options.alpha_override) {
      alpha = *options.alpha_override;
      if (!(alpha > 0.0))
        return Error::invalid_argument("curvature_test: alpha_override <= 0");
    } else {
      auto fit = stats::Pareto::fit_mle(positive, std::max(cutoff, 1e-12));
      if (!fit) return fit.error();
      alpha = fit.value().alpha();
    }
    result.param1 = alpha;
    result.param2 = std::max(cutoff, 1e-12);
    const stats::Pareto tail_model(alpha, result.param2);
    const double p_tail =
        static_cast<double>(std::count_if(positive.begin(), positive.end(),
                                          [&](double v) { return v >= result.param2; })) /
        static_cast<double>(n);
    draw = [tail_model, p_tail, &sorted](support::Rng& r) {
      if (r.uniform() < p_tail) return tail_model.sample(r);
      // Bootstrap from the empirical body (below the cutoff).
      const auto idx = r.below(sorted.size());
      return sorted[idx];
    };
  } else {
    auto fit = stats::Lognormal::fit_mle(positive);
    if (!fit) return fit.error();
    result.param1 = fit.value().mu();
    result.param2 = fit.value().sigma();
    const stats::Lognormal model = fit.value();
    draw = [model](support::Rng& r) { return model.sample(r); };
  }

  // Monte-Carlo reference distribution of the curvature statistic. One
  // level -1 micro-stream per replicate — subdividing the caller's leaf in
  // place — so replicate `rep` draws the same synthetic sample no matter how
  // replicates are chunked across threads: the p-value is bit-identical at
  // any thread count. grain = 1 because replicates are few (hundreds) and
  // each one is a full quadratic fit, so one task per replicate lets work
  // stealing balance the unevenness.
  support::RngSplitter streams(rng, support::RngSplitter::kMinLevel);
  std::vector<support::Rng> replicate_rngs;
  replicate_rngs.reserve(options.replicates);
  for (std::size_t rep = 0; rep < options.replicates; ++rep)
    replicate_rngs.push_back(streams.stream(rep));

  std::vector<std::optional<double>> curvatures(options.replicates);
  support::Executor& ex = support::Executor::resolve(options.executor);
  ex.parallel_for(
      0, options.replicates,
      [&](std::size_t rep) {
        support::Rng& replicate_rng = replicate_rngs[rep];
        // Per-worker reusable sample buffer (the bootstrap.cpp pattern):
        // every element is overwritten before the fit reads it.
        auto& sample = support::Workspace::for_thread().real(
            support::ws::kCurvatureSample);
        sample.resize(n);
        for (std::size_t i = 0; i < n; ++i) sample[i] = draw(replicate_rng);
        if (auto c = llcd_curvature(sample, options.tail_fraction); c.ok())
          curvatures[rep] = c.value();
      },
      /*grain=*/1);

  std::size_t less_eq = 0;
  std::size_t greater_eq = 0;
  std::size_t usable = 0;
  for (const auto& c : curvatures) {
    if (!c.has_value()) continue;
    ++usable;
    if (*c <= result.curvature) ++less_eq;
    if (*c >= result.curvature) ++greater_eq;
  }
  if (usable < options.replicates / 2)
    return Error::numeric("curvature_test: too many degenerate replicates");

  // Two-sided Monte-Carlo p-value with the standard +1 correction.
  const double p_lo = static_cast<double>(less_eq + 1) /
                      static_cast<double>(usable + 1);
  const double p_hi = static_cast<double>(greater_eq + 1) /
                      static_cast<double>(usable + 1);
  result.p_value = std::min(1.0, 2.0 * std::min(p_lo, p_hi));
  result.rejected_at_5pct = result.p_value < 0.05;
  return result;
}

}  // namespace fullweb::tail
